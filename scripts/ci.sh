#!/usr/bin/env sh
# Tier-1 gate: hermetic build + tests + formatting, no network, no registry.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
# Doctests, explicitly: documentation examples are part of the API
# contract and must keep compiling and passing on their own.
cargo test -q --offline --workspace --doc
cargo fmt --check
# Documentation gate: every public item documented, no broken intra-doc
# links, rendered cleanly.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Live-exposition smoke on the default build: the example profiles a
# drifting-Zipf trace while scraping its own /metrics (it asserts inside
# that footprint gauges are nonzero and scrapes are # EOF-terminated);
# here we additionally pin the §5.7 space table to the output.
cargo run --release --offline -q -p krr --example live_scrape > /tmp/krr_live_scrape.out
grep -q "krr / olken space ratio" /tmp/krr_live_scrape.out
grep -q "serving live metrics on http://" /tmp/krr_live_scrape.out

# Optional perf tracking: KRR_CI_BENCH=1 refreshes BENCH_pipeline.json
# (sequential vs rescan vs route-once pipeline throughput), BENCH_obs.json
# (flight-recorder off vs on; exits nonzero if tracing costs more than its
# 5% budget), and BENCH_space.json (KRR vs Olken/SHARDS/CounterStacks deep
# footprint at M=1e6 — exits nonzero unless KRR < Olken — plus the
# /metrics scrape-overhead gate, also 5%).
if [ "${KRR_CI_BENCH:-0}" = "1" ]; then
    cargo bench -q --offline -p krr-bench --bench pipeline
    cargo bench -q --offline -p krr-bench --bench obs
    cargo bench -q --offline -p krr-bench --bench space
fi

echo "ci: OK"
