#!/usr/bin/env sh
# Tier-1 gate: hermetic build + tests + formatting, no network, no registry.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo fmt --check

echo "ci: OK"
