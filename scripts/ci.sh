#!/usr/bin/env sh
# Tier-1 gate: hermetic build + tests + formatting, no network, no registry.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
# Doctests, explicitly: documentation examples are part of the API
# contract and must keep compiling and passing on their own.
cargo test -q --offline --workspace --doc
cargo fmt --check
# Documentation gate: every public item documented, no broken intra-doc
# links, rendered cleanly.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Optional perf tracking: KRR_CI_BENCH=1 refreshes BENCH_pipeline.json
# (sequential vs rescan vs route-once pipeline throughput) and
# BENCH_obs.json (flight-recorder off vs on; the obs bench exits nonzero
# if tracing costs more than its 5% budget).
if [ "${KRR_CI_BENCH:-0}" = "1" ]; then
    cargo bench -q --offline -p krr-bench --bench pipeline
    cargo bench -q --offline -p krr-bench --bench obs
fi

echo "ci: OK"
