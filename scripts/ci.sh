#!/usr/bin/env sh
# Tier-1 gate: hermetic build + tests + formatting, no network, no registry.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
# Doctests, explicitly: documentation examples are part of the API
# contract and must keep compiling and passing on their own.
cargo test -q --offline --workspace --doc
cargo fmt --check
# Lint gate: clippy across every target (tests, benches, examples too),
# warnings are errors.
cargo clippy -q --offline --workspace --all-targets -- -D warnings
# Documentation gate: every public item documented, no broken intra-doc
# links, rendered cleanly.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Markdown link gate: every relative link target in the handbook set must
# exist on disk (fragments are stripped; external schemes are skipped).
# Keeps README/docs cross-references from rotting as files move.
link_errors=0
for doc in README.md EXPERIMENTS.md DESIGN.md ROADMAP.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    for link in $(grep -oE '\]\([^)]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//'); do
        case "$link" in
        http://*|https://*|mailto:*|\#*) continue ;;
        esac
        target=${link%%#*}
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ]; then
            echo "ci: dead link in $doc -> $link" >&2
            link_errors=$((link_errors + 1))
        fi
    done
done
[ "$link_errors" -eq 0 ] || { echo "ci: $link_errors dead doc link(s)" >&2; exit 1; }

# Live-exposition smoke on the default build: the example profiles a
# drifting-Zipf trace while scraping its own /metrics (it asserts inside
# that footprint gauges are nonzero and scrapes are # EOF-terminated);
# here we additionally pin the §5.7 space table to the output.
cargo run --release --offline -q -p krr --example live_scrape > /tmp/krr_live_scrape.out
grep -q "krr / olken space ratio" /tmp/krr_live_scrape.out
grep -q "serving live metrics on http://" /tmp/krr_live_scrape.out

# Loopback load smoke: the flash-crowd example replays a burst schedule
# over real RESP connections against a profiled mini-Redis while scraping
# /metrics, and asserts inside (zero errors, complete histograms, the
# burst tail no better than steady state).
cargo run --release --offline -q -p krr --example flash_crowd > /tmp/krr_flash_crowd.out
grep -q "flash crowd amplified p99" /tmp/krr_flash_crowd.out
grep -q "errors 0" /tmp/krr_flash_crowd.out

# Artifact gate: every committed BENCH_*.json / krr-*-v* document must
# carry a known schema tag and its required keys (`krr doctor --offline`
# exits nonzero on any validation failure; its diagnoses are advisory
# and never gate).
cargo run --release --offline -q -p krr --bin krr -- doctor --offline . > /tmp/krr_doctor.out
grep -q "BENCH_pipeline.json (krr-bench-pipeline-v2)" /tmp/krr_doctor.out
grep -q "BENCH_doctor.json (krr-bench-doctor-v1)" /tmp/krr_doctor.out

# Optional perf tracking: KRR_CI_BENCH=1 refreshes BENCH_pipeline.json
# (sequential vs rescan vs route-once pipeline throughput), BENCH_obs.json
# (flight-recorder off vs on; exits nonzero if tracing costs more than its
# 5% budget), and BENCH_space.json (KRR vs Olken/SHARDS/CounterStacks deep
# footprint at M=1e6 — exits nonzero unless KRR < Olken — plus the
# /metrics scrape-overhead gate, also 5%) and BENCH_load.json (open-loop
# RESP load A/B: p99 with MRC profiling + live scraping on vs off — exits
# nonzero past a 10% tail budget) and BENCH_fleet.json (1000+-tenant
# arena in one process: aggregate /metrics scrape overhead under the same
# 5% budget, per-tenant resident bytes within 2x of the Footprint
# prediction) and BENCH_doctor.json (paired forensics on/off RESP A/B:
# exemplar+profiler p99 cost under a 3% budget, MRC bit-identical).
if [ "${KRR_CI_BENCH:-0}" = "1" ]; then
    # Long-running SPSC ring stress (ignored by default): hammers
    # push/pop/park/close across capacities from both sides.
    cargo test -q --offline --release -p krr-core ring_stress_long -- --ignored
    cargo bench -q --offline -p krr-bench --bench pipeline
    cargo bench -q --offline -p krr-bench --bench obs
    cargo bench -q --offline -p krr-bench --bench space
    cargo bench -q --offline -p krr-bench --bench load
    cargo bench -q --offline -p krr-bench --bench fleet
    cargo bench -q --offline -p krr-bench --bench doctor
fi

echo "ci: OK"
