//! Uniform-size vs byte-level modeling on a variable-object-size workload
//! (§4.4.1 and Fig 5.3's point).
//!
//! Under diverse object sizes, an MRC built on the uniform-size assumption
//! (uni-KRR: distance = objects × mean size) can deviate badly from the
//! true byte-addressed curve; var-KRR's sizeArray fixes this at O(logM)
//! extra cost. Both are compared against a byte-capacity K-LRU simulation.
//!
//! Run with: `cargo run --release -p krr --example varsize_mrc`

use krr::prelude::*;

fn main() {
    let k = 8u32;
    let profile = krr::trace::msr::profile(krr::trace::msr::MsrTrace::Rsrch);
    let trace = profile.generate_var_size(400_000, 5, 0.2);
    let (objects, bytes) = krr::sim::working_set(&trace);
    let mean_size = bytes as f64 / objects as f64;
    println!(
        "msr_rsrch var-size: {} objects, {:.1} MiB, mean object {:.0} B",
        objects,
        bytes as f64 / (1024.0 * 1024.0),
        mean_size
    );

    // var-KRR: byte-level distances via the sizeArray.
    let mut var = KrrModel::new(KrrConfig::new(f64::from(k)).byte_level(2, 4096));
    // uni-KRR: object distances, x-axis rescaled by the mean object size.
    let mut uni = KrrModel::new(KrrConfig::new(f64::from(k)));
    for r in &trace {
        var.access(r.key, r.size);
        uni.access_key(r.key);
    }
    let var_mrc = var.mrc();
    let uni_points: Vec<(f64, f64)> = uni
        .mrc()
        .points()
        .iter()
        .map(|&(x, y)| (x * mean_size, y))
        .collect();
    let uni_mrc = Mrc::from_points(uni_points);

    // Ground truth: byte-capacity K-LRU simulation at 12 sizes.
    let caps = krr::sim::even_capacities(bytes, 12);
    let truth = simulate_mrc(&trace, Policy::klru(k), Unit::Bytes, &caps, 9, 8);

    println!(
        "\n{:>10}  {:>8}  {:>8}  {:>8}",
        "MiB", "actual", "var-KRR", "uni-KRR"
    );
    for &c in &caps {
        println!(
            "{:>10.1}  {:>8.4}  {:>8.4}  {:>8.4}",
            c as f64 / (1024.0 * 1024.0),
            truth.eval(c as f64),
            var_mrc.eval(c as f64),
            uni_mrc.eval(c as f64)
        );
    }
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    println!(
        "\nMAE vs simulation:  var-KRR {:.5}   uni-KRR {:.5}",
        truth.mae(&var_mrc, &sizes),
        truth.mae(&uni_mrc, &sizes)
    );
}
