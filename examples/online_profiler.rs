//! Online MRC profiling with the observability layer attached (§2.4, §5.5).
//!
//! Streams a *drifting* Zipf workload through KRR + spatial sampling the
//! way a sidecar profiler would, with the two PR-3 observability tools
//! running beside it:
//!
//! * a [`StatsTimeline`] emitting one `krr-stats-v1` JSON-Lines row per
//!   window (windowed deltas of the shared metrics registry — the same
//!   rows `krr model --stats-every N --stats-out f.jsonl` writes), and
//! * an [`AccuracyWatchdog`]: a spatially-sampled shadow Olken profiler
//!   whose KRR-vs-exact-LRU MAE is stable while the workload is
//!   stationary, so a jump past the threshold flags the drift.
//!
//! The workload shifts twice — the hot-key skew flattens, then the key
//! space moves entirely. Watch the MAE *trajectory*: it decays through
//! the stationary warm-up, bumps back over the threshold when the skew
//! flips (drift events), then falls when the key-space move floods both
//! profilers with cold misses (K-LRU and LRU agree when everything
//! misses — the watchdog gauge makes that regime change visible too).
//!
//! Run with: `cargo run --release -p krr --example online_profiler`

use krr::baselines::{AccuracyWatchdog, WatchdogConfig};
use krr::core::rng::Xoshiro256;
use krr::core::{MetricsRegistry, StatsTimeline};
use krr::prelude::*;
use std::sync::Arc;

/// Three workload phases: same generator, drifting parameters.
fn phases() -> Vec<(&'static str, krr::trace::Zipf, u64)> {
    vec![
        // Hot skewed working set.
        (
            "zipf(0.9) keys 0..100k",
            krr::trace::Zipf::new(100_000, 0.9),
            0,
        ),
        // Drift 1: the skew flattens — more of the tail is hot.
        (
            "zipf(0.5) keys 0..100k",
            krr::trace::Zipf::new(100_000, 0.5),
            0,
        ),
        // Drift 2: the key space moves wholesale.
        (
            "zipf(0.9) keys 300k..400k",
            krr::trace::Zipf::new(100_000, 0.9),
            300_000,
        ),
    ]
}

fn main() {
    let reg = Arc::new(MetricsRegistry::new());
    let mut model = KrrModel::new(
        KrrConfig::new(24.0)
            .updater(UpdaterKind::Backward)
            .sampling(0.1)
            .seed(3),
    );
    model.set_metrics(Arc::clone(&reg));

    // Shadow profiler over ~5% of references; compare every 200k. The
    // threshold sits just above this workload's stationary K-LRU-vs-LRU
    // plateau (~0.119), so only warm-up and genuine shifts cross it.
    let mut dog = AccuracyWatchdog::new(WatchdogConfig {
        rate: 0.05,
        check_every: 200_000,
        mae_threshold: 0.12,
        ..WatchdogConfig::default()
    });
    dog.set_metrics(Arc::clone(&reg));

    // One stats row per 500k references, straight to stdout so the
    // krr-stats-v1 shape is visible between the narrative lines.
    let mut timeline = StatsTimeline::new(Arc::clone(&reg), std::io::stdout(), 500_000);

    let per_phase = 1_000_000u64;
    let mut rng = Xoshiro256::seed_from_u64(11);
    let mut refs = 0u64;
    let mut drift_events = 0u64;
    for (name, zipf, offset) in phases() {
        println!("--- phase: {name} ---");
        for _ in 0..per_phase {
            let key = zipf.sample(&mut rng) + offset;
            model.access_key(key);
            dog.observe(key);
            refs += 1;
            timeline.offer(refs).expect("stdout");
            if dog.check_due() {
                let report = dog.check(&model.mrc());
                if report.drifted {
                    drift_events += 1;
                }
                println!(
                    "watchdog @{refs}: MAE vs shadow LRU = {:.4} ({} shadow refs){}",
                    report.mae,
                    report.shadow_refs,
                    if report.drifted { "  <-- DRIFT" } else { "" }
                );
            }
        }
    }
    timeline.finish(refs).expect("stdout");

    let snap = reg.snapshot();
    println!(
        "\n{} refs, {} watchdog checks over {} shadow refs, {} drift events (live gauge {} ppm)",
        refs,
        snap.watchdog_checks,
        snap.watchdog_shadow_refs,
        snap.watchdog_drift_events,
        snap.watchdog_mae_ppm,
    );
    assert_eq!(drift_events, snap.watchdog_drift_events);
    println!(
        "the same timeline/watchdog wiring runs inside `krr model --stats-every N` \
         and the mini-Redis server (INFO '# watchdog', METRICS, TRACE DUMP, SLOWLOG)"
    );
}
