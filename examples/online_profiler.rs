//! Online MRC profiling: the low-overhead deployment mode (§2.4, §5.5).
//!
//! Streams a long trace through KRR + spatial sampling (backward update,
//! R = 0.01) as a sidecar profiler would, printing an MRC snapshot and the
//! profiler's cost every window. The point of the paper's fast updaters is
//! that this costs microseconds per thousand requests.
//!
//! Run with: `cargo run --release -p krr --example online_profiler`

use krr::prelude::*;
use std::time::Instant;

fn main() {
    let profile = krr::trace::msr::profile(krr::trace::msr::MsrTrace::Web);
    let trace = profile.generate(2_000_000, 11, 0.5);
    let (objects, _) = krr::sim::working_set(&trace);
    let rate = krr::core::sampling::rate_for_working_set(0.01, objects, 8 * 1024);

    let mut model = KrrModel::new(
        KrrConfig::new(5.0)
            .updater(UpdaterKind::Backward)
            .sampling(rate)
            .seed(3),
    );

    let window = 250_000usize;
    let checkpoints = [0.1, 0.25, 0.5, 1.0];
    println!("online profiling of msr_web (K=5, R={rate:.3}), window = {window} requests");
    println!(
        "{:>10} {:>10} {:>42} {:>12}",
        "requests", "sampled", "miss@10%/25%/50%/100% of WSS", "profile cost"
    );

    let mut spent = std::time::Duration::ZERO;
    for (w, chunk) in trace.chunks(window).enumerate() {
        let t0 = Instant::now();
        for r in chunk {
            model.access_key(r.key);
        }
        spent += t0.elapsed();
        let mrc = model.mrc();
        let misses: Vec<String> = checkpoints
            .iter()
            .map(|&f| format!("{:.3}", mrc.eval(objects as f64 * f)))
            .collect();
        let s = model.stats();
        println!(
            "{:>10} {:>10} {:>42} {:>9.1?} total",
            (w + 1) * window,
            s.sampled,
            misses.join(" / "),
            spent
        );
    }

    let s = model.stats();
    let per_million = spent.as_secs_f64() * 1e6 / (s.processed as f64 / 1e6) / 1e6;
    println!(
        "\ntotal profiler time {spent:?} for {} requests ({per_million:.3} s per million) — \
         cheap enough to run inline with a cache server",
        s.processed
    );
}
