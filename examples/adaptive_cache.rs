//! An adaptive cache that re-tunes its eviction sampling size online —
//! DLRU (Wang et al., MEMSYS '20), the application the paper's introduction
//! motivates, built directly on the KRR profiler.
//!
//! The workload shifts between regimes where different sampling sizes win
//! (between loop cliffs: large K; below a loop cliff: K=1); the adaptive
//! cache follows the winner with no offline tuning.
//!
//! Run with: `cargo run --release -p krr --example adaptive_cache`

use krr::prelude::*;
use krr::sim::dlru::DLruCache;
use krr::trace::patterns;

fn main() {
    let cap = Capacity::Objects(30_000);
    let candidates = [4u32, 1, 32];

    // Phase 1: MSR src2-like between its loop cliffs — large K wins there
    // (see the dynamic_k example). Phase 2: a pure loop of 45K keys just
    // above the cache size — K=1 (random replacement) wins by a mile.
    let phase1 =
        krr::trace::msr::profile(krr::trace::msr::MsrTrace::Src2).generate(500_000, 1, 0.2);
    let mut phase2 = patterns::loop_trace(45_000, 500_000);
    for r in &mut phase2 {
        r.key += 1 << 40; // disjoint keyspace
    }
    let trace: Vec<Request> = phase1.into_iter().chain(phase2).collect();

    let mut adaptive = DLruCache::new(cap, &candidates, 50_000, 1.0, 1);
    let mut history = Vec::new();
    for (i, r) in trace.iter().enumerate() {
        adaptive.access(r);
        if i % 100_000 == 99_999 {
            history.push((i + 1, adaptive.current_k()));
        }
    }

    println!("adaptive K over time (epoch = 50K requests):");
    for (i, k) in &history {
        println!("  after {i:>9} requests: K = {k}");
    }
    println!("switches: {}", adaptive.switches());

    println!("\nfinal miss ratios over the whole (shifting) trace:");
    let adaptive_miss = adaptive.stats().miss_ratio();
    for k in candidates {
        let mut fixed = KLruCache::new(cap, k, 1);
        for r in &trace {
            fixed.access(r);
        }
        println!("  fixed K={k:<2}: {:.4}", fixed.stats().miss_ratio());
    }
    println!("  adaptive  : {adaptive_miss:.4}");
    println!(
        "\nexpected shape: the adaptive cache tracks the per-phase winner and lands at or \
         below every fixed K"
    );
}
