//! Flash-crowd load test against a live, observed mini-Redis.
//!
//! Builds a zipfian GET workload, prefills a mini-Redis with MRC
//! profiling enabled, then replays the trace on a flash-crowd schedule —
//! a steady base rate, a 5.5× burst for the middle tenth of the run,
//! then recovery — over real RESP connections, open-loop (latency is
//! measured from the *scheduled* dispatch time, so queueing delay during
//! the burst shows up in the tail instead of being silently absorbed).
//! While the crowd hammers the server, this process also scrapes the
//! store's `/metrics` endpoint the way a Prometheus agent would, and
//! finishes by asking the server for its online MRC.
//!
//! Run with: `cargo run --release -p krr --example flash_crowd`

use krr::core::expo::http_get;
use krr::core::KrrConfig;
use krr::load::{prefill, run, Arrival, LoadConfig, Schedule};
use krr::redis::resp::Value;
use krr::redis::{Client, MiniRedis, Server};
use krr::trace::ycsb;

fn main() {
    const REQUESTS: usize = 12_000;
    const QPS: f64 = 15_000.0;

    // Read-heavy zipfian workload; the keyspace overflows maxmemory so
    // random-sampling eviction stays busy during the burst.
    let trace = ycsb::WorkloadC::new(1_500, 0.9).generate(REQUESTS, 42);

    let mut store = MiniRedis::new(4 << 20, 5, 7);
    store.enable_mrc_profiling(&KrrConfig::new(5.0), 2);
    let mut server = Server::start(store).expect("start mini-Redis");

    // Attach the exposition server on a free port (probe one first).
    let probe = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("probe port");
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    let mut client = Client::connect(server.addr()).expect("connect");
    let reply = client
        .raw(&[b"CONFIG", b"SET", b"expo-port", port.to_string().as_bytes()])
        .expect("CONFIG SET expo-port");
    assert!(matches!(&reply, Value::Simple(s) if s == "OK"), "{reply:?}");
    let expo = server.expo_addr().expect("exposition server");
    println!(
        "mini-Redis on {}, /metrics on http://{expo}/metrics",
        server.addr()
    );

    let written = prefill(server.addr(), &trace).expect("prefill");
    println!("prefilled {written} distinct keys\n");

    let schedule = Schedule::generate(Arrival::Burst, QPS, trace.len(), 42);
    let cfg = LoadConfig {
        connections: 4,
        pipeline_depth: 16,
        ..LoadConfig::default()
    };
    let report = run(server.addr(), &schedule, &trace, &cfg).expect("load run");

    // Scrape mid-flight state the way an agent would (the run just ended,
    // but the server is still live and serving).
    let (status, _, metrics) = http_get(expo, "/metrics").expect("scrape /metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.ends_with("# EOF\n"),
        "scrape must be EOF-terminated"
    );
    let (status, _, mrc) = http_get(expo, "/mrc").expect("scrape /mrc");
    assert_eq!(status, 200);
    server.shutdown();

    print!("{}", report.render_text());
    println!(
        "\nonline MRC from the profiled GET stream: {} points",
        mrc.matches('[').count().saturating_sub(1)
    );

    // The open-loop story, asserted: the burst phase really ran ~5.5×
    // hotter than base, every request got a measured reply, and the
    // burst's tail (scheduled-send to reply) is no better than base's.
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.latency_ns.count, trace.len() as u64);
    let base = &report.phases[0];
    let burst = &report.phases[1];
    assert_eq!((base.name.as_str(), burst.name.as_str()), ("base", "burst"));
    assert!(
        burst.target_qps > 5.0 * base.target_qps,
        "burst {} vs base {}",
        burst.target_qps,
        base.target_qps
    );
    assert!(
        burst.latency_ns.p99_ns >= base.latency_ns.p99_ns,
        "a 5.5x flash crowd cannot have a better tail than steady state"
    );
    println!(
        "flash crowd amplified p99 {:.0}µs -> {:.0}µs ({:.1}x)",
        base.latency_ns.p99_ns / 1e3,
        burst.latency_ns.p99_ns / 1e3,
        burst.latency_ns.p99_ns / base.latency_ns.p99_ns
    );
}
