//! Thread-parallel MRC profiling with sharded KRR.
//!
//! Hash-partition the key space into shards, give each its own KRR model,
//! and run shards on worker threads — complementary spatial samples whose
//! merged histogram covers every reference. Shows the accuracy staying
//! put while wall-clock drops with cores (on multi-core machines).
//!
//! Run with: `cargo run --release -p krr --example parallel_profiling`

use krr::core::sharded::ShardedKrr;
use krr::prelude::*;
use std::time::Instant;

fn main() {
    let n = 2_000_000;
    let workload = krr::trace::msr::profile(krr::trace::msr::MsrTrace::Proj);
    let trace = workload.generate(n, 13, 0.2);
    let refs: Vec<(u64, u32)> = trace.iter().map(|r| (r.key, 1)).collect();
    let (objects, _) = krr::sim::working_set(&trace);
    let k = 5.0;
    println!("msr_proj: {n} requests, {objects} objects, K = {k}");

    // Reference: the plain sequential model.
    let t0 = Instant::now();
    let mut plain = KrrModel::new(KrrConfig::new(k).seed(1));
    for &(key, _) in &refs {
        plain.access_key(key);
    }
    let seq_time = t0.elapsed();
    let plain_mrc = plain.mrc();
    println!("\nsequential KRR: {seq_time:?}");

    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let sizes = even_sizes(objects as f64, 25);
    for threads in [1, 2, cores.max(4)] {
        let shards = 16;
        let t0 = Instant::now();
        let mut sharded = ShardedKrr::new(&KrrConfig::new(k).seed(2), shards);
        sharded.process_parallel(&refs, threads);
        let elapsed = t0.elapsed();
        let mae = plain_mrc.mae(&sharded.mrc(), &sizes);
        println!(
            "sharded x{shards}, {threads:>2} thread(s): {elapsed:>10.2?}  \
             (vs sequential MAE {mae:.5})"
        );
    }
    println!(
        "\nnote: process_parallel streams through the route-once pipeline — one router \
         hashes each key once and batches it to the owning shard's worker, so total \
         routing work is N regardless of thread count; results are bit-identical to \
         the sequential path (deterministic per-shard order and seeds)."
    );
}
