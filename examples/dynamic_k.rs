//! Choosing the eviction sampling size K per workload (the DLRU idea the
//! paper's introduction motivates: Wang et al., MEMSYS '20).
//!
//! For a *Type A* workload (looping reuse), miss ratio depends strongly on
//! K at mid-range cache sizes — sometimes smaller K wins! For a *Type B*
//! workload it barely matters, so the cheapest K is best. KRR lets us
//! evaluate every K in one pass each, without running the cache.
//!
//! Run with: `cargo run --release -p krr --example dynamic_k`

use krr::prelude::*;

fn evaluate(name: &str, trace: &[Request], cache_frac: f64) {
    let (objects, _) = krr::sim::working_set(trace);
    let cache = objects as f64 * cache_frac;
    println!(
        "\n{name}: {objects} objects, cache = {:.0} ({:.0}% of WSS)",
        cache,
        cache_frac * 100.0
    );
    let mut best = (0u32, f64::INFINITY);
    for k in [1u32, 2, 4, 8, 16, 32] {
        let mut model = KrrModel::new(KrrConfig::new(f64::from(k)));
        for r in trace {
            model.access_key(r.key);
        }
        let miss = model.mrc().eval(cache);
        println!("  K={k:>2}: predicted miss ratio {miss:.4}");
        if miss < best.1 {
            best = (k, miss);
        }
    }
    println!("  => best sampling size: K={} (miss {:.4})", best.0, best.1);
}

fn main() {
    let n = 600_000;

    // Type A: MSR src2-like (loop heavy). At cache sizes below a loop
    // cliff, small K (closer to random replacement) avoids LRU's loop
    // thrashing; above the cliff large K wins. Probe both regimes.
    let type_a = krr::trace::msr::profile(krr::trace::msr::MsrTrace::Src2).generate(n, 1, 0.2);
    evaluate(
        "msr_src2 (Type A, below the long-loop cliff)",
        &type_a,
        0.25,
    );
    evaluate("msr_src2 (Type A, between the cliffs)", &type_a, 0.45);

    // Type B: Zipf-dominated. K barely matters; pick K=1 and save the
    // sampling cost.
    let type_b = krr::trace::msr::profile(krr::trace::msr::MsrTrace::Prxy).generate(n, 2, 0.2);
    evaluate("msr_prxy (Type B)", &type_b, 0.3);
}
