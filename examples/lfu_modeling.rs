//! Modeling sampled LFU — the paper's future-work direction (§7) — with
//! miniature cache simulation (§6.2).
//!
//! Sampled LFU (Redis `allkeys-lfu`) is not a stack policy, so no KRR-style
//! one-pass model exists for it. The generic fallback is miniature
//! simulation: scaled-down caches over spatially sampled requests. This
//! example builds MRCs for K-LFU and K-LRU on a scan-polluted workload and
//! shows where LFU wins — and that the miniature prediction matches full
//! simulation.
//!
//! Run with: `cargo run --release -p krr --example lfu_modeling`

use krr::prelude::*;
use krr::sim::{KLfuCache, MiniSim};

fn main() {
    // Zipf working set + 20% one-shot scan traffic: LFU's favourite regime.
    let n = 600_000;
    let zipf = krr::trace::ycsb::WorkloadC::new(20_000, 0.9).generate(n, 3);
    let mut rng = krr::core::rng::Xoshiro256::seed_from_u64(4);
    let trace: Vec<Request> = zipf
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            if rng.unit() < 0.2 {
                Request::unit(1_000_000 + i as u64) // never re-referenced
            } else {
                r
            }
        })
        .collect();
    let (objects, _) = krr::sim::working_set(&trace);
    let caps = even_capacities(20_000, 10);
    println!(
        "workload: {} requests, {objects} distinct objects (scan-polluted Zipf)",
        n
    );

    // Miniature simulation at R = 10% for both policies.
    // R chosen to keep sampled-key mass representative: at extreme Zipf
    // skew a single unsampled hot key shifts every miniature miss ratio
    // (the hot-key bias SHARDS-adj corrects in the KRR model).
    let rate = 0.25;
    let mut mini_lfu = MiniSim::new(&caps, rate, |c| Box::new(KLfuCache::new(c, 5, 7)), false);
    let mut mini_lru = MiniSim::new(&caps, rate, |c| Box::new(KLruCache::new(c, 5, 7)), false);
    for r in &trace {
        mini_lfu.access(r);
        mini_lru.access(r);
    }

    // Ground truth at three sizes.
    println!(
        "\n{:>10} {:>12} {:>12} {:>14} {:>14}",
        "cache", "K-LFU mini", "K-LRU mini", "K-LFU actual", "K-LRU actual"
    );
    for &c in caps.iter().step_by(3) {
        let mut lfu = KLfuCache::new(Capacity::Objects(c), 5, 9);
        let mut lru = KLruCache::new(Capacity::Objects(c), 5, 9);
        for r in &trace {
            lfu.access(r);
            lru.access(r);
        }
        println!(
            "{c:>10} {:>12.4} {:>12.4} {:>14.4} {:>14.4}",
            mini_lfu.mrc().eval(c as f64),
            mini_lru.mrc().eval(c as f64),
            lfu.stats().miss_ratio(),
            lru.stats().miss_ratio()
        );
    }

    let (processed, sampled) = mini_lfu.counts();
    println!(
        "\nminiature simulation touched {sampled} of {processed} references \
         ({:.1}%) per policy — one pass predicted the whole curve",
        100.0 * sampled as f64 / processed as f64
    );
    println!(
        "expected shape: K-LFU beats K-LRU at mid sizes (scan resistance), and \
         each miniature column tracks its actual column"
    );
}
