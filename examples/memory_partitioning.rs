//! Multi-tenant memory partitioning from KRR-built MRCs — the LAMA
//! use case ([10] in the paper): profile each Redis instance's workload
//! online, then divide a memory budget to minimize total misses.
//!
//! Three tenants with very different demand curves share one budget. The
//! cliff-shaped (Type A) analytics tenant makes the allocation non-convex:
//! the greedy sees zero marginal gain below the cliff and strands that
//! tenant at nothing, while the exact DP funds it past the cliff and beats
//! both the greedy and the equal split — the reason LAMA-style systems
//! need whole-curve optimization, not local gradients.
//!
//! Run with: `cargo run --release -p krr --example memory_partitioning`

use krr::core::partition::{allocate_greedy, allocate_optimal, Tenant};
use krr::prelude::*;

fn profile(trace: &[Request], k: f64) -> Mrc {
    let mut model = KrrModel::new(KrrConfig::new(k).seed(9));
    for r in trace {
        model.access_key(r.key);
    }
    model.mrc()
}

fn main() {
    let n = 400_000;
    // Tenant A: Zipf session store, very hot.
    let a = krr::trace::ycsb::WorkloadC::new(30_000, 1.1).generate(n, 1);
    // Tenant B: loop-heavy analytics cache (Type A cliff).
    let b = krr::trace::patterns::loop_trace(20_000, n);
    // Tenant C: broad, mildly skewed catalogue.
    let c = krr::trace::ycsb::WorkloadC::new(60_000, 0.7).generate(n, 2);

    let tenants = vec![
        Tenant::new("sessions", profile(&a, 5.0), 10_000.0),
        Tenant::new("analytics", profile(&b, 5.0), 3_000.0),
        Tenant::new("catalogue", profile(&c, 5.0), 2_000.0),
    ];

    let budget = 60_000u64;
    let quantum = 1_000u64;
    let equal: Vec<u64> = vec![budget / 3; 3];
    let equal_miss: f64 = tenants
        .iter()
        .zip(&equal)
        .map(|(t, &x)| t.miss_rate(x))
        .sum();
    let greedy = allocate_greedy(&tenants, budget, quantum);
    let optimal = allocate_optimal(&tenants, budget, quantum);

    println!(
        "budget: {budget} objects across {} tenants\n",
        tenants.len()
    );
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "tenant", "equal", "greedy", "optimal"
    );
    for (i, t) in tenants.iter().enumerate() {
        println!(
            "{:>12} {:>12} {:>12} {:>12}",
            t.name, equal[i], greedy.per_tenant[i], optimal.per_tenant[i]
        );
    }
    println!(
        "\ntotal miss rate:  equal {:.0}/s   greedy {:.0}/s   optimal {:.0}/s",
        equal_miss, greedy.total_miss_rate, optimal.total_miss_rate
    );
    println!(
        "\nexpected shape: the DP beats the equal split; the greedy strands the \
         cliff-shaped analytics tenant (zero marginal gain below its loop cliff) and \
         can even lose to the equal split — non-convex MRCs need the exact allocator"
    );
}
