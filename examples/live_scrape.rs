//! Live scraping + space accounting, end to end.
//!
//! Profiles a drifting-Zipf workload (the hot set shifts every phase, so
//! the MRC keeps moving) with the exposition server attached, scrapes its
//! *own* `/metrics`, `/mrc`, and `/healthz` endpoints between phases the
//! way a Prometheus agent would, and finishes with the paper's §5.7 space
//! comparison: KRR's deep footprint next to the reference profilers run
//! over the same trace.
//!
//! Run with: `cargo run --release -p krr --example live_scrape`

use krr::baselines::{CounterStacks, OlkenLru, Shards, ShardsMax};
use krr::core::expo::{http_get, ExpoServer, ExpoSources, MrcCell};
use krr::core::rng::Xoshiro256;
use krr::core::sharded::ShardedKrr;
use krr::core::{Footprint, KrrConfig, MetricsRegistry};
use krr::trace::Zipf;
use std::sync::Arc;

/// Pulls the value of an unlabeled gauge out of an OpenMetrics body.
fn gauge_value(body: &str, name: &str) -> Option<u64> {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
}

fn main() {
    const PHASES: usize = 8;
    const PER_PHASE: usize = 50_000;
    const KEYSPACE: u64 = 30_000;
    const DRIFT: u64 = 4_000;

    // Drifting Zipf: within a phase keys are Zipf(0.9)-popular; each phase
    // shifts the whole hot set by DRIFT keys, forcing real eviction churn.
    let zipf = Zipf::new(KEYSPACE, 0.9);
    let mut rng = Xoshiro256::seed_from_u64(42);
    let trace: Vec<u64> = (0..PHASES * PER_PHASE)
        .map(|i| {
            let phase = (i / PER_PHASE) as u64;
            zipf.sample(&mut rng) + phase * DRIFT
        })
        .collect();

    let registry = Arc::new(MetricsRegistry::new());
    let mrc_cell = Arc::new(MrcCell::new());
    let mut bank = ShardedKrr::new(&KrrConfig::new(5.0).seed(9), 4);
    bank.set_metrics(Arc::clone(&registry));

    let sources = ExpoSources {
        metrics: Some(Arc::clone(&registry)),
        mrc: Some(Arc::clone(&mrc_cell)),
        ..ExpoSources::default()
    };
    let server = ExpoServer::start("127.0.0.1:0", sources).expect("bind exposition server");
    let addr = server.addr();
    println!("serving live metrics on http://{addr}/metrics\n");

    println!("phase  accesses  resident  footprint_total  mrc_points  health");
    for (phase, chunk) in trace.chunks(PER_PHASE).enumerate() {
        bank.process_stream(chunk.iter().map(|&k| (k, 1)), 2);
        bank.publish_footprint();
        mrc_cell.publish(bank.mrc());

        // Scrape our own endpoints, exactly as an external agent would.
        let (status, ctype, metrics) = http_get(addr, "/metrics").expect("scrape /metrics");
        assert_eq!(status, 200);
        assert!(ctype.starts_with("application/openmetrics-text"));
        assert!(metrics.ends_with("# EOF\n"), "scrape must be terminated");
        let accesses = gauge_value(&metrics, "krr_accesses_total").unwrap_or(0);
        let footprint = gauge_value(&metrics, "krr_footprint_total_bytes").unwrap_or(0);
        assert!(footprint > 0, "footprint gauges must be published");

        let (status, _, mrc_body) = http_get(addr, "/mrc").expect("scrape /mrc");
        assert_eq!(status, 200);
        let points = mrc_body.matches('[').count().saturating_sub(1);

        let (h_status, _, _) = http_get(addr, "/healthz").expect("scrape /healthz");
        println!(
            "{phase:>5}  {accesses:>8}  {resident:>8}  {footprint:>15}  {points:>10}  {health}",
            resident = bank.stats().distinct,
            health = if h_status == 200 { "ok" } else { "degraded" },
        );
    }

    // §5.7 space comparison: reference profilers over the same trace.
    let mut olken = OlkenLru::new();
    let mut shards = Shards::new(0.01);
    let mut shards_max = ShardsMax::new(8 << 10);
    let mut cstacks = CounterStacks::new(10_000, 10, 0.02);
    for &k in &trace {
        olken.access_key(k);
        shards.access_key(k);
        shards_max.access_key(k);
        cstacks.access_key(k);
    }

    println!(
        "\nspace (deep heap bytes, same {}-request trace):",
        trace.len()
    );
    let rows: &[(&str, usize)] = &[
        ("krr (4 shards, K'=K^1.4)", bank.deep_bytes()),
        ("olken (unsampled)", olken.deep_bytes()),
        ("shards (rate 0.01)", shards.deep_bytes()),
        ("shards_max (s_max 8192)", shards_max.deep_bytes()),
        ("counterstacks", cstacks.deep_bytes()),
    ];
    for (name, bytes) in rows {
        println!("  {name:<26} {bytes:>12}");
    }
    assert!(
        bank.deep_bytes() < olken.deep_bytes(),
        "KRR must be smaller than the unsampled Olken tree"
    );
    println!(
        "\nkrr / olken space ratio: {:.4}",
        bank.deep_bytes() as f64 / olken.deep_bytes() as f64
    );
}
