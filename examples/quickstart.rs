//! Quickstart: build a Miss Ratio Curve for a Redis-style cache
//! (`maxmemory-samples = 5`) in one pass over a skewed workload, and check
//! it against a brute-force K-LRU simulation at a few sizes.
//!
//! Run with: `cargo run --release -p krr --example quickstart`

use krr::prelude::*;

fn main() {
    // A YCSB-C-style read-only Zipfian workload: 50K objects, 500K requests.
    let objects = 50_000u64;
    let trace = krr::trace::ycsb::WorkloadC::new(objects, 0.99).generate(500_000, 42);

    // One-pass KRR model of K-LRU with K = 5 (the Redis default).
    let mut model = KrrModel::new(KrrConfig::new(5.0));
    for r in &trace {
        model.access_key(r.key);
    }
    let mrc = model.mrc();

    println!("cache size -> predicted miss ratio (KRR, one pass)");
    for frac in [0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let size = objects as f64 * frac;
        println!("  {:>8.0} objects: {:.4}", size, mrc.eval(size));
    }

    // Cross-check three sizes against the ground-truth simulator.
    println!("\nvalidation against direct K-LRU simulation:");
    for frac in [0.1, 0.5, 1.0] {
        let size = (objects as f64 * frac) as u64;
        let simulated = krr::sim::miss_ratio(&trace, Policy::klru(5), Capacity::Objects(size), 7);
        let predicted = mrc.eval(size as f64);
        println!(
            "  C={size:>6}: simulated {simulated:.4}  predicted {predicted:.4}  |err| {:.4}",
            (simulated - predicted).abs()
        );
    }

    let stats = model.stats();
    println!(
        "\nprocessed {} requests, {} distinct objects, in a single pass",
        stats.processed, stats.distinct
    );
}
