//! Capacity planning for a variable-object-size KV cache.
//!
//! The motivating use case of MRC work (§2.1): given a production-like
//! workload, how much memory buys a target hit ratio? We profile a
//! Twitter-like variable-size trace with the byte-level (var-KRR) model
//! under spatial sampling — cheap enough to run online — and read the
//! required capacity straight off the curve.
//!
//! Run with: `cargo run --release -p krr --example cache_sizing`

use krr::prelude::*;

fn main() {
    let cluster = krr::trace::twitter::TwitterCluster::C26_0;
    let profile = krr::trace::twitter::profile(cluster);
    let trace = profile.generate(1_000_000, 7, 0.5, /* var_size = */ true);
    let (objects, bytes) = krr::sim::working_set(&trace);
    println!(
        "workload {}: {} requests, {} objects, {:.1} MiB working set",
        profile.name,
        trace.len(),
        objects,
        bytes as f64 / (1024.0 * 1024.0)
    );

    // Byte-level KRR for Redis's default K = 5, with 10% spatial sampling
    // (the paper's guard: keep >= 8K sampled objects).
    let rate = krr::core::sampling::rate_for_working_set(0.1, objects, 8 * 1024);
    let mut model = KrrModel::new(KrrConfig::new(5.0).byte_level(2, 4096).sampling(rate));
    for r in &trace {
        model.access(r.key, r.size);
    }
    let mrc = model.mrc();

    println!("\nmemory -> predicted miss ratio (var-KRR + spatial sampling @ R={rate:.3}):");
    for frac in [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let mem = bytes as f64 * frac;
        println!(
            "  {:>8.1} MiB: {:.4}",
            mem / (1024.0 * 1024.0),
            mrc.eval(mem)
        );
    }

    // Find the smallest capacity achieving the miss-ratio target. (Cold
    // misses put a floor on the reachable miss ratio for a finite trace, so
    // the target is relative to that floor.)
    let floor = mrc.eval(bytes as f64 * 2.0);
    let target = floor + 0.05;
    let step = bytes / 200;
    let needed = (1..=200u64)
        .map(|i| i * step)
        .find(|&c| mrc.eval(c as f64) <= target);
    match needed {
        Some(c) => println!(
            "\n=> {:.1} MiB reaches miss ratio <= {target:.3} ({}% of the working set)",
            c as f64 / (1024.0 * 1024.0),
            c * 100 / bytes
        ),
        None => println!("\n=> even the full working set misses more than {target:.3}"),
    }

    let s = model.stats();
    println!(
        "profiler touched only {} of {} references ({:.2}% sampled)",
        s.sampled,
        s.processed,
        100.0 * s.sampled as f64 / s.processed as f64
    );
}
