//! Integration: the multi-tenant fleet arena — per-tenant bit-identity
//! across thread counts, tenant-labeled OpenMetrics series, and the
//! `krr partition --live` scrape path producing the exact allocation the
//! offline trace path produces.

mod support;

use std::process::Command;
use std::sync::Arc;

use krr::core::expo::{render_openmetrics, ExpoServer, ExpoSources};
use krr::core::fleet::{FleetArena, FleetCell, FleetConfig};
use krr::core::{KrrConfig, MetricsRegistry};
use krr::trace::{io as trace_io, Request};
use support::openmetrics;

/// A skewed multi-tenant reference stream: (tenant, key, size), tenant
/// assigned by key residue so hot keys concentrate on a few tenants.
fn fleet_refs(keys: u64, tenants: u64, n: usize, seed: u64) -> Vec<(u64, u64, u32)> {
    use krr::core::rng::Xoshiro256;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u = rng.unit();
            let key = (u * u * keys as f64) as u64;
            (key % tenants, key, 1 + (u * 100.0) as u32)
        })
        .collect()
}

/// Per-tenant MRCs (sorted by tenant id) after one parallel run.
fn mrcs_at(refs: &[(u64, u64, u32)], threads: usize) -> Vec<(u64, krr::core::Mrc)> {
    let mut arena = FleetArena::new(FleetConfig::new(KrrConfig::new(16.0).seed(5)));
    arena.process_parallel(refs, threads);
    let mut ids = arena.tenant_ids();
    ids.sort_unstable();
    ids.iter()
        .map(|&id| (id, arena.tenant_mrc(id).expect("registered tenant")))
        .collect()
}

#[test]
fn per_tenant_mrcs_are_bit_identical_across_thread_counts() {
    let refs = fleet_refs(6_000, 12, 150_000, 21);

    // Sequential arrival-order baseline through the single-access entry
    // point: what every thread count must reproduce exactly.
    let mut seq = FleetArena::new(FleetConfig::new(KrrConfig::new(16.0).seed(5)));
    for &(t, k, s) in &refs {
        seq.access(t, k, s);
    }

    let base = mrcs_at(&refs, 1);
    assert_eq!(base.len(), 12, "every tenant id residue must register");
    for (id, mrc) in &base {
        let s = seq.tenant_mrc(*id).unwrap();
        assert_eq!(
            mrc.points(),
            s.points(),
            "tenant {id}: pipeline vs sequential"
        );
    }

    for threads in [2, 4, 8] {
        let got = mrcs_at(&refs, threads);
        assert_eq!(base.len(), got.len(), "{threads} threads lost a tenant");
        for ((id_a, a), (id_b, b)) in base.iter().zip(&got) {
            assert_eq!(id_a, id_b);
            assert_eq!(
                a.points().len(),
                b.points().len(),
                "tenant {id_a} point count at {threads} threads"
            );
            for (i, (pa, pb)) in a.points().iter().zip(b.points()).enumerate() {
                assert_eq!(
                    pa.0.to_bits(),
                    pb.0.to_bits(),
                    "tenant {id_a} x diverged at point {i} with {threads} threads"
                );
                assert_eq!(
                    pa.1.to_bits(),
                    pb.1.to_bits(),
                    "tenant {id_a} y diverged at point {i} with {threads} threads"
                );
            }
        }
    }
}

#[test]
fn tenant_labeled_series_render_as_valid_openmetrics() {
    let refs = fleet_refs(2_000, 5, 40_000, 3);
    let reg = Arc::new(MetricsRegistry::new());
    let mut arena = FleetArena::new(FleetConfig::new(KrrConfig::new(8.0).seed(2)));
    arena.set_metrics(Arc::clone(&reg));
    arena.process_parallel(&refs, 4);
    arena.publish_metrics();

    let text = render_openmetrics(&reg.snapshot());
    let doc = openmetrics::validate(&text).expect("labeled fleet render must validate");
    assert_eq!(doc.value("krr_tenant_count"), Some(5.0));
    assert_eq!(
        doc.series("krr_tenant_refs_total").len(),
        5,
        "one labeled refs series per tenant"
    );
    assert_eq!(doc.series("krr_tenant_resident_bytes").len(), 5);
    assert!(
        text.contains("krr_tenant_refs_total{tenant=\"0\"}"),
        "{text}"
    );
    // Fleet refs across labels must account for the whole stream.
    let total: f64 = doc
        .series("krr_tenant_refs_total")
        .iter()
        .map(|s| s.value)
        .sum();
    assert_eq!(total, refs.len() as f64);
    // Rolled-up tenant footprint gauges ride along.
    assert!(doc.value("krr_footprint_tenant_total_bytes").unwrap() > 0.0);
    assert!(doc.value("krr_footprint_tenant_max_bytes").unwrap() > 0.0);
}

/// Strips the tenant-name column: rows become `(greedy, optimal)` pairs,
/// so offline (named by file path) and live (named by tenant id) output
/// can be compared allocation-for-allocation.
fn allocations(stdout: &str) -> (Vec<(String, String)>, String) {
    let mut rows = Vec::new();
    let mut total = String::new();
    for line in stdout.lines() {
        if line.starts_with("total weighted miss:") {
            total = line.to_string();
        } else if !line.trim_start().starts_with("tenant") {
            let cols: Vec<&str> = line.split_whitespace().collect();
            let [.., greedy, optimal] = cols[..] else {
                panic!("unexpected partition row: {line:?}");
            };
            rows.push((greedy.to_string(), optimal.to_string()));
        }
    }
    assert!(!rows.is_empty(), "no allocation rows in: {stdout}");
    assert!(!total.is_empty(), "no total line in: {stdout}");
    (rows, total)
}

#[test]
fn live_partition_matches_offline_trace_path_bit_for_bit() {
    const TENANTS: u64 = 8;
    let bin = env!("CARGO_BIN_EXE_krr");
    let dir = std::env::temp_dir().join(format!("krr-fleet-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // One trace, written to CSV for the CLI and kept in memory for the
    // live arena — both sides see identical (tenant, key, size) streams.
    let refs = fleet_refs(4_000, TENANTS, 120_000, 7);
    let trace: Vec<Request> = refs.iter().map(|&(_, k, s)| Request::get(k, s)).collect();
    let trace_path = dir.join("trace.csv");
    trace_io::write_csv(std::fs::File::create(&trace_path).unwrap(), &trace).unwrap();

    // Offline path: `krr model --tenants --mrc-out`, then `krr partition`
    // over the written per-tenant curves.
    let mrc_dir = dir.join("mrcs");
    let out = Command::new(bin)
        .args([
            "model",
            trace_path.to_str().unwrap(),
            "--tenants",
            "8",
            "--k",
            "16",
            "--seed",
            "5",
            "--mrc-out",
            mrc_dir.to_str().unwrap(),
        ])
        .output()
        .expect("krr model --tenants");
    assert!(
        out.status.success(),
        "model failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut args = vec![
        "partition".to_string(),
        "--budget".to_string(),
        "20000".to_string(),
        "--quantum".to_string(),
        "100".to_string(),
    ];
    args.extend((0..TENANTS).map(|id| {
        let p = mrc_dir.join(format!("tenant-{id}.csv"));
        assert!(p.exists(), "model --mrc-out missed {}", p.display());
        p.to_str().unwrap().to_string()
    }));
    let offline = Command::new(bin)
        .args(&args)
        .output()
        .expect("offline partition");
    assert!(
        offline.status.success(),
        "offline partition failed: {}",
        String::from_utf8_lossy(&offline.stderr)
    );

    // Live path: the same fleet served over HTTP, scraped by
    // `krr partition --live`. The thread count differs from whatever the
    // CLI used — bit-identity across threads is what makes this fair.
    let mut arena = FleetArena::new(FleetConfig::new(KrrConfig::new(16.0).seed(5)).budget(4096.0));
    arena.process_parallel(&refs, 3);
    let cell = Arc::new(FleetCell::new());
    cell.publish(arena.view());
    let server = ExpoServer::start(
        "127.0.0.1:0",
        ExpoSources {
            tenants: Some(Arc::clone(&cell)),
            ..ExpoSources::default()
        },
    )
    .unwrap();
    let live = Command::new(bin)
        .args([
            "partition",
            "--budget",
            "20000",
            "--quantum",
            "100",
            "--live",
            &server.addr().to_string(),
        ])
        .output()
        .expect("live partition");
    assert!(
        live.status.success(),
        "live partition failed: {}",
        String::from_utf8_lossy(&live.stderr)
    );

    let (offline_rows, offline_total) = allocations(&String::from_utf8_lossy(&offline.stdout));
    let (live_rows, live_total) = allocations(&String::from_utf8_lossy(&live.stdout));
    assert_eq!(offline_rows.len(), TENANTS as usize);
    assert_eq!(
        offline_rows, live_rows,
        "live allocation diverged from the offline trace path"
    );
    assert_eq!(offline_total, live_total, "total weighted miss diverged");

    let _ = std::fs::remove_dir_all(&dir);
}
