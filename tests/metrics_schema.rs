//! Golden-shape test for the `krr-metrics-v1` JSON document.
//!
//! The METRICS wire command, `--metrics-out`, and the persisted snapshot
//! all emit this schema, and downstream dashboards key on its field
//! paths. The contract: the schema may only *grow*. A key that
//! disappears or changes type breaks consumers and must fail here; new
//! keys are fine and should be appended to [`GOLDEN`] (keep it sorted)
//! in the same change that adds them.

mod support;

use krr::core::sharded::ShardedKrr;
use krr::core::{KrrConfig, MetricsRegistry};
use krr::trace::ycsb;
use std::sync::Arc;
use support::json::{parse, Json};

/// Sorted `(dotted.path, type)` pairs of every field in krr-metrics-v1.
/// Arrays are recorded as `"arr"` without element descent (histogram
/// bucket arrays may legitimately be empty).
const GOLDEN: &[(&str, &str)] = &[
    ("eviction", "obj"),
    ("eviction.candidate_age", "obj"),
    ("eviction.candidate_age.buckets", "arr"),
    ("eviction.candidate_age.count", "num"),
    ("eviction.candidate_age.max", "num"),
    ("eviction.candidate_age.mean", "num"),
    ("eviction.candidate_age.p99", "num"),
    ("eviction.candidate_age.sum", "num"),
    ("eviction.evictions", "num"),
    ("latency", "obj"),
    ("latency.access_ns", "obj"),
    ("latency.access_ns.buckets", "arr"),
    ("latency.access_ns.count", "num"),
    ("latency.access_ns.max", "num"),
    ("latency.access_ns.mean", "num"),
    ("latency.access_ns.p99", "num"),
    ("latency.access_ns.sum", "num"),
    ("memory", "obj"),
    ("memory.heap_live_bytes", "num"),
    ("memory.heap_peak_bytes", "num"),
    ("memory.hist_bytes", "num"),
    ("memory.pipeline_bytes", "num"),
    ("memory.shadow_bytes", "num"),
    ("memory.sizes_bytes", "num"),
    ("memory.stack_bytes", "num"),
    ("memory.tenant", "obj"),
    ("memory.tenant.count", "num"),
    ("memory.tenant.max_bytes", "num"),
    ("memory.tenant.mean_bytes", "num"),
    ("memory.tenant.total_bytes", "num"),
    ("memory.total_bytes", "num"),
    ("model", "obj"),
    ("model.accesses", "num"),
    ("model.cold_misses", "num"),
    ("model.hits", "num"),
    ("model.spatial_rejected", "num"),
    ("pipeline", "obj"),
    ("pipeline.batches", "num"),
    ("pipeline.keys_hashed", "num"),
    ("pipeline.queue_depth_hwm", "arr"),
    ("pipeline.ring", "obj"),
    ("pipeline.ring.depth_hwm", "arr"),
    ("pipeline.ring.router_parks", "num"),
    ("pipeline.ring.worker_parks", "num"),
    ("pipeline.ring.wraps", "num"),
    ("pipeline.router_busy_ns", "num"),
    ("pipeline.stalls", "num"),
    ("pipeline.worker_busy_ns", "num"),
    ("schema", "str"),
    ("shards", "obj"),
    ("shards.accesses", "arr"),
    ("shards.depth_hwm", "arr"),
    ("shards.merge_ns", "num"),
    ("shards.merges", "num"),
    ("shards.resident", "arr"),
    ("tenant", "obj"),
    ("tenant.count", "num"),
    ("tenant.drifted", "num"),
    ("tenant.refs", "num"),
    ("tenant.rows", "arr"),
    ("tenant.shadowed", "num"),
    ("updater", "obj"),
    ("updater.chain_len", "obj"),
    ("updater.chain_len.buckets", "arr"),
    ("updater.chain_len.count", "num"),
    ("updater.chain_len.max", "num"),
    ("updater.chain_len.mean", "num"),
    ("updater.chain_len.p99", "num"),
    ("updater.chain_len.sum", "num"),
    ("updater.positions_scanned", "obj"),
    ("updater.positions_scanned.buckets", "arr"),
    ("updater.positions_scanned.count", "num"),
    ("updater.positions_scanned.max", "num"),
    ("updater.positions_scanned.mean", "num"),
    ("updater.positions_scanned.p99", "num"),
    ("updater.positions_scanned.sum", "num"),
    ("watchdog", "obj"),
    ("watchdog.checks", "num"),
    ("watchdog.drift_events", "num"),
    ("watchdog.mae_ppm", "num"),
    ("watchdog.shadow_refs", "num"),
];

/// A representative snapshot: sharded model with the full metrics
/// plumbing attached, so every section of the document is populated.
fn representative_metrics_json() -> String {
    let reg = Arc::new(MetricsRegistry::new());
    let mut bank = ShardedKrr::new(&KrrConfig::new(5.0).seed(3), 4);
    bank.set_metrics(Arc::clone(&reg));
    let trace = ycsb::WorkloadC::new(500, 0.9).generate(5_000, 3);
    bank.process_stream(trace.iter().map(|r| (r.key, r.size)), 2);
    let _ = bank.mrc();
    // A small fleet on the same registry populates the tenant sections
    // (which are emitted even when empty, but should be exercised live).
    let mut fleet =
        krr::core::fleet::FleetArena::new(krr::core::fleet::FleetConfig::new(KrrConfig::new(4.0)));
    fleet.set_metrics(Arc::clone(&reg));
    for r in trace.iter().take(2_000) {
        fleet.access(r.key % 3, r.key, r.size);
    }
    fleet.publish_metrics();
    let mut buf = Vec::new();
    krr::core::persist::write_metrics_json(&mut buf, &reg.snapshot()).unwrap();
    String::from_utf8(buf).unwrap()
}

fn walk(v: &Json, path: String, out: &mut Vec<(String, &'static str)>) {
    if !path.is_empty() {
        out.push((path.clone(), v.kind()));
    }
    if let Some(fields) = v.as_obj() {
        for (k, child) in fields {
            let p = if path.is_empty() {
                k.clone()
            } else {
                format!("{path}.{k}")
            };
            walk(child, p, out);
        }
    }
}

#[test]
fn golden_list_is_sorted_and_duplicate_free() {
    for w in GOLDEN.windows(2) {
        assert!(
            w[0].0 < w[1].0,
            "GOLDEN out of order near {:?} / {:?}",
            w[0].0,
            w[1].0
        );
    }
}

#[test]
fn metrics_schema_only_grows() {
    let json = representative_metrics_json();
    let doc = parse(&json).expect("metrics snapshot must be valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("krr-metrics-v1")
    );
    let mut actual = Vec::new();
    walk(&doc, String::new(), &mut actual);
    for (path, kind) in GOLDEN {
        match actual.iter().find(|(p, _)| p == path) {
            None => panic!("schema regression: key {path:?} disappeared from krr-metrics-v1"),
            Some((_, k)) if k != kind => panic!(
                "schema regression: key {path:?} changed type {kind:?} -> {k:?} in krr-metrics-v1"
            ),
            Some(_) => {}
        }
    }
    // Growth is allowed, but any new key must be added to GOLDEN so it is
    // covered by the only-grows contract from then on.
    for (path, kind) in &actual {
        assert!(
            GOLDEN.iter().any(|(p, _)| p == path),
            "new key {path:?} ({kind}) is not in GOLDEN — append it (sorted) to lock it in"
        );
    }
}
