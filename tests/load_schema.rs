//! Golden-shape test for the `krr-load-v1` JSON document.
//!
//! `krr load --json`, `benches/load.rs`, and the flash-crowd example all
//! emit this schema. The contract mirrors `krr-metrics-v1`: the schema
//! may only *grow*. A key that disappears or changes type must fail
//! here; new keys are fine and should be appended to [`GOLDEN`] (kept
//! sorted) in the same change that adds them.

mod support;

use krr::load::{run, AbReport, Arrival, LoadConfig, Schedule};
use krr::redis::{MiniRedis, Server};
use krr::trace::ycsb;
use support::json::{parse, Json};

/// Sorted `(dotted.path, type)` pairs of every field in krr-load-v1.
/// Arrays are recorded as `"arr"` without element descent.
const GOLDEN: &[(&str, &str)] = &[
    ("ab", "obj"),
    ("ab.delta_pct", "num"),
    ("ab.enabled", "bool"),
    ("ab.limit_pct", "num"),
    ("ab.off_p99_ns", "num"),
    ("ab.on_p99_ns", "num"),
    ("achieved_qps", "num"),
    ("arrival", "str"),
    ("connections", "num"),
    ("duration_ns", "num"),
    ("errors", "num"),
    ("latency_ns", "obj"),
    ("latency_ns.count", "num"),
    ("latency_ns.max", "num"),
    ("latency_ns.mean", "num"),
    ("latency_ns.p50", "num"),
    ("latency_ns.p99", "num"),
    ("latency_ns.p999", "num"),
    ("phases", "arr"),
    ("pipeline_depth", "num"),
    ("requests", "num"),
    ("schema", "str"),
    ("target_qps", "num"),
];

/// Phase-element fields, locked separately since [`walk`] does not
/// descend into arrays.
const GOLDEN_PHASE: &[(&str, &str)] = &[
    ("achieved_qps", "num"),
    ("errors", "num"),
    ("latency_ns", "obj"),
    ("latency_ns.count", "num"),
    ("latency_ns.max", "num"),
    ("latency_ns.mean", "num"),
    ("latency_ns.p50", "num"),
    ("latency_ns.p99", "num"),
    ("latency_ns.p999", "num"),
    ("name", "str"),
    ("requests", "num"),
    ("target_qps", "num"),
];

/// A representative report from a real (tiny) loopback run: a burst
/// schedule so the phases array is populated, with the A/B section
/// filled in the way `run_ab` fills it.
fn representative_load_json() -> String {
    let trace = ycsb::WorkloadC::new(200, 0.9).generate(2_000, 13);
    let mut server = Server::start(MiniRedis::new(8 << 20, 5, 29)).unwrap();
    krr::load::prefill(server.addr(), &trace).unwrap();
    let schedule = Schedule::generate(Arrival::Burst, 20_000.0, trace.len(), 7);
    let cfg = LoadConfig {
        connections: 2,
        pipeline_depth: 8,
        ..LoadConfig::default()
    };
    let mut report = run(server.addr(), &schedule, &trace, &cfg).unwrap();
    server.shutdown();
    report.ab = AbReport::compare(1_000.0, 1_020.0, 10.0);
    report.to_json()
}

fn walk(v: &Json, path: String, out: &mut Vec<(String, &'static str)>) {
    if !path.is_empty() {
        out.push((path.clone(), v.kind()));
    }
    if let Some(fields) = v.as_obj() {
        for (k, child) in fields {
            let p = if path.is_empty() {
                k.clone()
            } else {
                format!("{path}.{k}")
            };
            walk(child, p, out);
        }
    }
}

fn assert_covers(actual: &[(String, &'static str)], golden: &[(&str, &str)], what: &str) {
    for (path, kind) in golden {
        match actual.iter().find(|(p, _)| p == path) {
            None => panic!("schema regression: key {path:?} disappeared from {what}"),
            Some((_, k)) if k != kind => {
                panic!("schema regression: key {path:?} changed type {kind:?} -> {k:?} in {what}")
            }
            Some(_) => {}
        }
    }
    for (path, kind) in actual {
        assert!(
            golden.iter().any(|(p, _)| p == path),
            "new key {path:?} ({kind}) is not in the {what} golden list — append it (sorted)"
        );
    }
}

#[test]
fn golden_lists_are_sorted_and_duplicate_free() {
    for golden in [GOLDEN, GOLDEN_PHASE] {
        for w in golden.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "golden list out of order near {:?} / {:?}",
                w[0].0,
                w[1].0
            );
        }
    }
}

#[test]
fn load_schema_only_grows() {
    let json = representative_load_json();
    let doc = parse(&json).expect("load report must be valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("krr-load-v1")
    );

    let mut actual = Vec::new();
    walk(&doc, String::new(), &mut actual);
    assert_covers(&actual, GOLDEN, "krr-load-v1");

    // The burst schedule guarantees a non-empty phases array; lock the
    // element shape too.
    let phases = doc.get("phases").and_then(Json::as_arr).unwrap();
    assert_eq!(phases.len(), 3, "burst must report base/burst/recover");
    for phase in phases {
        let mut actual = Vec::new();
        walk(phase, String::new(), &mut actual);
        assert_covers(&actual, GOLDEN_PHASE, "krr-load-v1 phase");
    }
}
