//! Integration: the exact-LRU baselines agree with each other and with
//! simulation, and they *disagree* with K-LRU on Type A traces for small K
//! — the motivation of the whole paper (Fig 5.2a).

use krr::prelude::*;
use krr::trace::{msr, ycsb};

fn olken_mrc(trace: &[Request]) -> Mrc {
    let mut o = OlkenLru::new();
    for r in trace {
        o.access_key(r.key);
    }
    o.mrc()
}

#[test]
fn olken_equals_lru_simulation() {
    let trace = ycsb::WorkloadC::new(10_000, 0.99).generate(200_000, 1);
    let caps = even_capacities(10_000, 25);
    let sim = simulate_mrc(&trace, Policy::ExactLru, Unit::Objects, &caps, 1, 8);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let mae = sim.mae(&olken_mrc(&trace), &sizes);
    assert!(mae < 0.003, "Olken vs simulation MAE {mae}");
}

#[test]
fn shards_tracks_olken() {
    let objects = 150_000u64;
    let trace = ycsb::WorkloadC::new(objects, 0.99).generate(500_000, 2);
    let mut s = Shards::new(0.06);
    for r in &trace {
        s.access_key(r.key);
    }
    let sizes = even_sizes(objects as f64, 25);
    let mae = s.mrc().mae(&olken_mrc(&trace), &sizes);
    assert!(mae < 0.035, "SHARDS vs Olken MAE {mae}");
}

#[test]
fn aet_tracks_olken() {
    let trace = ycsb::WorkloadC::new(20_000, 0.99).generate(300_000, 3);
    let mut a = Aet::new();
    for r in &trace {
        a.access_key(r.key);
    }
    let sizes = even_sizes(20_000.0, 25);
    let mae = a.mrc().mae(&olken_mrc(&trace), &sizes);
    assert!(mae < 0.03, "AET vs Olken MAE {mae}");
}

#[test]
fn lru_baselines_mispredict_klru_on_type_a() {
    // The punchline: on a loop-heavy Type A trace, exact-LRU techniques
    // (SHARDS/Olken/AET all produce the same LRU curve) are far from the
    // true K-LRU miss ratio at small K, while KRR is close.
    let trace = msr::profile(msr::MsrTrace::Src2).generate(300_000, 4, 0.1);
    let (objects, _) = krr::sim::working_set(&trace);
    let caps = even_capacities(objects, 15);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let k = 2u32;
    let truth = simulate_mrc(&trace, Policy::klru(k), Unit::Objects, &caps, 1, 8);

    let lru_mae = truth.mae(&olken_mrc(&trace), &sizes);
    let mut model = KrrModel::new(KrrConfig::new(f64::from(k)).seed(5));
    for r in &trace {
        model.access_key(r.key);
    }
    let krr_mae = truth.mae(&model.mrc(), &sizes);

    assert!(
        lru_mae > 5.0 * krr_mae && lru_mae > 0.03,
        "expected LRU baseline to mispredict K-LRU: LRU MAE {lru_mae}, KRR MAE {krr_mae}"
    );
}

#[test]
fn type_b_traces_are_k_insensitive() {
    // On Type B traces all K (and LRU) produce nearly the same MRC
    // (Fig 5.2b), so even an LRU baseline is fine there.
    let trace = msr::profile(msr::MsrTrace::Usr).generate(300_000, 5, 0.05);
    let (objects, _) = krr::sim::working_set(&trace);
    let caps = even_capacities(objects, 15);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let k1 = simulate_mrc(&trace, Policy::klru(1), Unit::Objects, &caps, 1, 8);
    let lru = simulate_mrc(&trace, Policy::ExactLru, Unit::Objects, &caps, 1, 8);
    let gap = k1.mae(&lru, &sizes);
    assert!(gap < 0.02, "Type B K=1 vs LRU gap {gap}");
}

#[test]
fn type_a_traces_have_large_k_gap() {
    // And the same gap is *large* on Type A traces — this is Fig 1.1.
    let trace = msr::profile(msr::MsrTrace::Web).generate(300_000, 6, 0.1);
    let (objects, _) = krr::sim::working_set(&trace);
    let caps = even_capacities(objects, 15);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let k1 = simulate_mrc(&trace, Policy::klru(1), Unit::Objects, &caps, 1, 8);
    let lru = simulate_mrc(&trace, Policy::ExactLru, Unit::Objects, &caps, 1, 8);
    let gap = k1.mae(&lru, &sizes);
    assert!(gap > 0.04, "Type A K=1 vs LRU gap only {gap}");
}

#[test]
fn shards_max_bounds_space_with_usable_accuracy() {
    let objects = 100_000u64;
    let trace = ycsb::WorkloadC::new(objects, 0.99).generate(300_000, 7);
    let mut sm = ShardsMax::new(8_192);
    for r in &trace {
        sm.access_key(r.key);
    }
    let (tracked, rate) = sm.tracker_state();
    assert!(tracked <= 8_192);
    assert!(rate < 1.0);
    let sizes = even_sizes(objects as f64, 20);
    let mae = sm.mrc().mae(&olken_mrc(&trace), &sizes);
    assert!(mae < 0.05, "SHARDS_max MAE {mae}");
}
