//! Property-based tests (proptest) over the core invariants: stack
//! permutation safety, histogram/MRC consistency, probability identities,
//! sizeArray exactness, and cache capacity enforcement.

use krr::prelude::*;
use krr::trace::Request;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The KRR stack stays a permutation of the referenced keys with a
    /// consistent index, for any access sequence, K and updater.
    #[test]
    fn stack_permutation_invariant(
        keys in prop::collection::vec(0u64..200, 1..400),
        k in 1.0f64..40.0,
        updater_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let updater = UpdaterKind::ALL[updater_idx];
        let mut stack = krr::core::KrrStack::new(k, updater, seed);
        let mut seen = std::collections::HashSet::new();
        for &key in &keys {
            stack.access(key, 1);
            seen.insert(key);
            prop_assert_eq!(stack.position_of(key), Some(1));
        }
        prop_assert_eq!(stack.len(), seen.len());
        let mut on_stack = std::collections::HashSet::new();
        for (i, e) in stack.iter().enumerate() {
            prop_assert!(on_stack.insert(e.key));
            prop_assert_eq!(stack.position_of(e.key), Some(i as u64 + 1));
        }
        prop_assert_eq!(on_stack, seen);
    }

    /// Histogram-derived MRCs are monotone non-increasing and bounded in
    /// [0, 1] for arbitrary recorded distances.
    #[test]
    fn mrc_monotone_and_bounded(
        distances in prop::collection::vec(1u64..100_000, 1..500),
        colds in 0u64..50,
        bin_width in 1u64..512,
    ) {
        let mut h = krr::core::SdHistogram::new(bin_width);
        for &d in &distances {
            h.record(d);
        }
        for _ in 0..colds {
            h.record_cold();
        }
        let mrc = Mrc::from_histogram(&h, 1.0);
        let mut prev = f64::INFINITY;
        for &(_, m) in mrc.points() {
            prop_assert!((0.0..=1.0).contains(&m));
            prop_assert!(m <= prev + 1e-12);
            prev = m;
        }
        // At infinite capacity only colds miss.
        let total = distances.len() as u64 + colds;
        let expect = colds as f64 / total as f64;
        prop_assert!((mrc.eval(1e18) - expect).abs() < 1e-9);
    }

    /// Eviction probabilities (Prop. 1) form a distribution and the CDF
    /// inverse roundtrips for random parameters.
    #[test]
    fn eviction_probability_identities(c in 1u64..2_000, k in 1.0f64..64.0) {
        let sum: f64 = (1..=c)
            .map(|d| krr::core::prob::eviction_prob_with_replacement(d, c, k))
            .sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        // Inverse CDF lands within the CDF bracket.
        for r in [0.001, 0.37, 0.82, 1.0] {
            let x = krr::core::prob::sample_eviction_position(r, c, k);
            prop_assert!(x >= 1 && x <= c);
            let lo = krr::core::prob::eviction_position_cdf(x - 1, c, k);
            let hi = krr::core::prob::eviction_position_cdf(x, c, k);
            prop_assert!(r >= lo - 1e-9 && r <= hi + 1e-9, "r={r} not in [{lo},{hi}]");
        }
    }

    /// sizeArray boundary sums remain exact prefix sums under arbitrary
    /// reference sequences with resizes.
    #[test]
    fn sizearray_exactness(
        ops in prop::collection::vec((0u64..100, 1u32..1_000), 1..600),
        base in 2u64..6,
        seed in any::<u64>(),
    ) {
        let mut stack = krr::core::KrrStack::new(4.0, UpdaterKind::Backward, seed);
        let mut sa = krr::core::SizeArray::new(base);
        for &(key, size) in &ops {
            match stack.position_of(key) {
                Some(phi) => {
                    let old = stack.entry_at(phi).unwrap().size;
                    sa.on_resize(phi, old, size);
                    let acc = stack.access(key, size);
                    sa.apply(stack.last_chain(), stack.last_chain_sizes(), acc.phi(), size);
                }
                None => {
                    let acc = stack.access(key, size);
                    sa.on_insert(size);
                    sa.apply(stack.last_chain(), stack.last_chain_sizes(), acc.phi(), size);
                }
            }
        }
        let sizes: Vec<u64> = stack.iter().map(|e| u64::from(e.size)).collect();
        let mut bound = 1u64;
        let mut t = 0u32;
        while bound <= sizes.len() as u64 {
            let naive: u64 = sizes[..bound as usize].iter().sum();
            prop_assert_eq!(sa.distance(bound), naive);
            t += 1;
            bound = base.pow(t);
        }
        prop_assert_eq!(sa.total_bytes(), sizes.iter().sum::<u64>());
    }

    /// Caches never exceed capacity and never lie about hits.
    #[test]
    fn caches_enforce_capacity(
        reqs in prop::collection::vec((0u64..300, 1u32..200), 1..800),
        cap in 1u64..5_000,
        k in 1u32..16,
    ) {
        let mut klru = KLruCache::new(Capacity::Bytes(cap), k, 1);
        let mut lru = ExactLru::new(Capacity::Bytes(cap));
        for &(key, size) in &reqs {
            let r = Request::get(key, size);
            klru.access(&r);
            lru.access(&r);
            prop_assert!(klru.used_bytes() <= cap, "K-LRU over budget");
            prop_assert!(lru.used_bytes() <= cap, "LRU over budget");
        }
        let st = klru.stats();
        prop_assert_eq!(st.hits + st.misses, reqs.len() as u64);
    }

    /// Spatial filtering is a pure function of the key: two filters with
    /// the same rate agree, and admitted fraction ~= rate.
    #[test]
    fn spatial_filter_determinism(rate_millis in 1u64..1000) {
        let rate = rate_millis as f64 / 1000.0;
        let a = krr::core::SpatialFilter::with_rate(rate);
        let b = krr::core::SpatialFilter::with_rate(rate);
        let n = 20_000u64;
        let mut admitted = 0u64;
        for key in 0..n {
            prop_assert_eq!(a.admits(key), b.admits(key));
            if a.admits(key) {
                admitted += 1;
            }
        }
        let got = admitted as f64 / n as f64;
        prop_assert!((got - rate).abs() < 0.02 + rate * 0.2, "rate {rate} got {got}");
    }

    /// The mini-Redis store never exceeds maxmemory and SET-then-GET always
    /// hits immediately.
    #[test]
    fn mini_redis_memory_safety(
        reqs in prop::collection::vec((0u64..200, 1u32..500), 1..500),
        mem in 1_000u64..50_000,
    ) {
        let mut store = MiniRedis::new(mem, 5, 3);
        for &(key, size) in &reqs {
            store.set(key, size);
            prop_assert!(store.used_memory() <= mem);
            if u64::from(size) <= mem {
                prop_assert!(store.get(key), "SET-then-GET must hit");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zipf sampling stays in range, is deterministic per seed, and its
    /// head is at least as popular as deep ranks.
    #[test]
    fn zipf_sampler_properties(
        n in 2u64..20_000,
        s_tenths in 0u32..25,
        seed in any::<u64>(),
    ) {
        use krr::core::rng::Xoshiro256;
        let s = f64::from(s_tenths) / 10.0;
        let z = krr::trace::Zipf::new(n, s);
        let mut a = Xoshiro256::seed_from_u64(seed);
        let mut b = Xoshiro256::seed_from_u64(seed);
        let mut head = 0u32;
        let mut deep = 0u32;
        for _ in 0..400 {
            let x = z.sample(&mut a);
            prop_assert_eq!(x, z.sample(&mut b), "determinism");
            prop_assert!(x < n);
            if x == 0 {
                head += 1;
            }
            if x >= n / 2 {
                deep += 1;
            }
        }
        if s_tenths >= 10 && n >= 100 {
            // Strong skew: item 0 alone should outdraw the entire deep
            // half often enough to register.
            prop_assert!(head + 5 >= deep / 10, "head {head} deep {deep}");
        }
    }

    /// Size distributions respect their bounds for arbitrary parameters.
    #[test]
    fn size_distributions_bounded(
        lo in 1u32..1_000,
        span in 0u32..10_000,
        shape_tenths in 10u32..40,
        seed in any::<u64>(),
    ) {
        use krr::core::rng::Xoshiro256;
        use krr::trace::dist::SizeDist;
        let hi = lo + span;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let u = SizeDist::Uniform { lo, hi };
        let p = SizeDist::Pareto {
            scale: f64::from(lo),
            shape: f64::from(shape_tenths) / 10.0,
            cap: hi,
        };
        for _ in 0..200 {
            let s = u.sample(&mut rng);
            prop_assert!(s >= lo && s <= hi);
            let s = p.sample(&mut rng);
            prop_assert!(s >= 1 && s <= hi.max(1));
        }
    }

    /// Trace CSV IO roundtrips arbitrary traces.
    #[test]
    fn trace_io_roundtrip(
        reqs in prop::collection::vec((any::<u64>(), 1u32..1_000_000, any::<bool>()), 0..200),
    ) {
        use krr::trace::{io, Op, Request};
        let trace: Vec<Request> = reqs
            .iter()
            .map(|&(key, size, set)| Request {
                key,
                size,
                op: if set { Op::Set } else { Op::Get },
            })
            .collect();
        let mut buf = Vec::new();
        io::write_csv(&mut buf, &trace).unwrap();
        let back = io::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Histogram persistence roundtrips arbitrary histograms.
    #[test]
    fn histogram_persist_roundtrip(
        distances in prop::collection::vec(1u64..100_000, 0..200),
        colds in 0u64..30,
        width in 1u64..64,
    ) {
        let mut h = krr::core::SdHistogram::new(width);
        for &d in &distances {
            h.record(d);
        }
        for _ in 0..colds {
            h.record_cold();
        }
        let mut buf = Vec::new();
        krr::core::persist::write_histogram(&mut buf, &h).unwrap();
        let back = krr::core::persist::read_histogram(buf.as_slice()).unwrap();
        prop_assert_eq!(back.total(), h.total());
        prop_assert_eq!(back.cold(), h.cold());
        for b in 0..h.num_bins() {
            prop_assert_eq!(back.bin(b), h.bin(b));
        }
    }

    /// Histogram merge is commutative and totals add up.
    #[test]
    fn histogram_merge_commutes(
        xs in prop::collection::vec(1u64..10_000, 0..100),
        ys in prop::collection::vec(1u64..10_000, 0..100),
        width in 1u64..32,
    ) {
        let build = |ds: &[u64]| {
            let mut h = krr::core::SdHistogram::new(width);
            for &d in ds {
                h.record(d);
            }
            h
        };
        let mut ab = build(&xs);
        ab.merge(&build(&ys));
        let mut ba = build(&ys);
        ba.merge(&build(&xs));
        prop_assert_eq!(ab.total(), ba.total());
        for b in 0..ab.num_bins().max(ba.num_bins()) {
            prop_assert_eq!(ab.bin(b), ba.bin(b), "bin {}", b);
        }
    }

    /// The generic sampled cache with LruScore respects capacity and
    /// accounting for arbitrary request streams.
    #[test]
    fn generic_sampled_cache_capacity(
        reqs in prop::collection::vec((0u64..200, 1u32..300), 1..400),
        cap in 100u64..5_000,
        k in 1u32..12,
    ) {
        use krr::sim::sampled::{LruScore, SampledCache};
        let mut c = SampledCache::new(Capacity::Bytes(cap), k, LruScore, 5);
        for &(key, size) in &reqs {
            c.access(&Request::get(key, size));
            prop_assert!(c.used_bytes() <= cap);
        }
        let st = c.stats();
        prop_assert_eq!(st.hits + st.misses, reqs.len() as u64);
    }

    /// OPT never loses to LRU (Belady optimality smoke test on random
    /// small traces).
    #[test]
    fn opt_dominates_lru(
        keys in prop::collection::vec(0u64..60, 50..400),
        cap in 2u64..40,
    ) {
        use krr::sim::opt::{next_use_times, simulate_opt};
        let trace: Vec<Request> = keys.iter().map(|&k| Request::unit(k)).collect();
        let next = next_use_times(&trace);
        let opt = simulate_opt(&trace, &next, cap).miss_ratio();
        let mut lru = ExactLru::new(Capacity::Objects(cap));
        for r in &trace {
            lru.access(r);
        }
        prop_assert!(opt <= lru.stats().miss_ratio() + 1e-9);
    }
}
