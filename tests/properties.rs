//! Property-based tests over the core invariants: stack permutation
//! safety, histogram/MRC consistency, probability identities, sizeArray
//! exactness, and cache capacity enforcement.
//!
//! Runs on the in-tree deterministic harness in `support` (see its module
//! docs) rather than proptest, so the suite needs no registry access.
//! Cases that proptest once shrank to minimal counterexamples are kept as
//! pinned `#[test]` regressions at the bottom.

mod support;

use krr::prelude::*;
use krr::trace::Request;
use support::check;

/// The KRR stack stays a permutation of the referenced keys with a
/// consistent index, for any access sequence, K and updater.
#[test]
fn stack_permutation_invariant() {
    check("stack_permutation_invariant", 64, |g| {
        let keys = g.vec(1, 400, |g| g.u64(0, 200));
        let k = g.f64(1.0, 40.0);
        let updater = UpdaterKind::ALL[g.usize(0, 3)];
        let seed = g.any_u64();
        let mut stack = krr::core::KrrStack::new(k, updater, seed);
        let mut seen = std::collections::HashSet::new();
        for &key in &keys {
            stack.access(key, 1);
            seen.insert(key);
            assert_eq!(stack.position_of(key), Some(1));
        }
        assert_eq!(stack.len(), seen.len());
        let mut on_stack = std::collections::HashSet::new();
        for (i, e) in stack.iter().enumerate() {
            assert!(on_stack.insert(e.key));
            assert_eq!(stack.position_of(e.key), Some(i as u64 + 1));
        }
        assert_eq!(on_stack, seen);
    });
}

/// Histogram-derived MRCs are monotone non-increasing and bounded in
/// [0, 1] for arbitrary recorded distances.
#[test]
fn mrc_monotone_and_bounded() {
    check("mrc_monotone_and_bounded", 64, |g| {
        let distances = g.vec(1, 500, |g| g.u64(1, 100_000));
        let colds = g.u64(0, 50);
        let bin_width = g.u64(1, 512);
        let mut h = krr::core::SdHistogram::new(bin_width);
        for &d in &distances {
            h.record(d);
        }
        for _ in 0..colds {
            h.record_cold();
        }
        let mrc = Mrc::from_histogram(&h, 1.0);
        let mut prev = f64::INFINITY;
        for &(_, m) in mrc.points() {
            assert!((0.0..=1.0).contains(&m));
            assert!(m <= prev + 1e-12);
            prev = m;
        }
        // At infinite capacity only colds miss.
        let total = distances.len() as u64 + colds;
        let expect = colds as f64 / total as f64;
        assert!((mrc.eval(1e18) - expect).abs() < 1e-9);
    });
}

/// Eviction probabilities (Prop. 1) form a distribution and the CDF
/// inverse roundtrips for random parameters.
#[test]
fn eviction_probability_identities() {
    check("eviction_probability_identities", 64, |g| {
        let c = g.u64(1, 2_000);
        let k = g.f64(1.0, 64.0);
        let sum: f64 = (1..=c)
            .map(|d| krr::core::prob::eviction_prob_with_replacement(d, c, k))
            .sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // Inverse CDF lands within the CDF bracket.
        for r in [0.001, 0.37, 0.82, 1.0] {
            let x = krr::core::prob::sample_eviction_position(r, c, k);
            assert!(x >= 1 && x <= c);
            let lo = krr::core::prob::eviction_position_cdf(x - 1, c, k);
            let hi = krr::core::prob::eviction_position_cdf(x, c, k);
            assert!(r >= lo - 1e-9 && r <= hi + 1e-9, "r={r} not in [{lo},{hi}]");
        }
    });
}

/// sizeArray boundary sums remain exact prefix sums under arbitrary
/// reference sequences with resizes.
#[test]
fn sizearray_exactness() {
    check("sizearray_exactness", 64, |g| {
        let ops = g.vec(1, 600, |g| (g.u64(0, 100), g.u32(1, 1_000)));
        let base = g.u64(2, 6);
        let seed = g.any_u64();
        let mut stack = krr::core::KrrStack::new(4.0, UpdaterKind::Backward, seed);
        let mut sa = krr::core::SizeArray::new(base);
        for &(key, size) in &ops {
            match stack.position_of(key) {
                Some(phi) => {
                    let old = stack.entry_at(phi).unwrap().size;
                    sa.on_resize(phi, old, size);
                    let acc = stack.access(key, size);
                    sa.apply(
                        stack.last_chain(),
                        stack.last_chain_sizes(),
                        acc.phi(),
                        size,
                    );
                }
                None => {
                    let acc = stack.access(key, size);
                    sa.on_insert(size);
                    sa.apply(
                        stack.last_chain(),
                        stack.last_chain_sizes(),
                        acc.phi(),
                        size,
                    );
                }
            }
        }
        let sizes: Vec<u64> = stack.iter().map(|e| u64::from(e.size)).collect();
        let mut bound = 1u64;
        let mut t = 0u32;
        while bound <= sizes.len() as u64 {
            let naive: u64 = sizes[..bound as usize].iter().sum();
            assert_eq!(sa.distance(bound), naive);
            t += 1;
            bound = base.pow(t);
        }
        assert_eq!(sa.total_bytes(), sizes.iter().sum::<u64>());
    });
}

fn assert_caches_enforce_capacity(reqs: &[(u64, u32)], cap: u64, k: u32) {
    let mut klru = KLruCache::new(Capacity::Bytes(cap), k, 1);
    let mut lru = ExactLru::new(Capacity::Bytes(cap));
    for &(key, size) in reqs {
        let r = Request::get(key, size);
        klru.access(&r);
        lru.access(&r);
        assert!(klru.used_bytes() <= cap, "K-LRU over budget");
        assert!(lru.used_bytes() <= cap, "LRU over budget");
    }
    let st = klru.stats();
    assert_eq!(st.hits + st.misses, reqs.len() as u64);
}

/// Caches never exceed capacity and never lie about hits.
#[test]
fn caches_enforce_capacity() {
    check("caches_enforce_capacity", 64, |g| {
        let reqs = g.vec(1, 800, |g| (g.u64(0, 300), g.u32(1, 200)));
        let cap = g.u64(1, 5_000);
        let k = g.u32(1, 16);
        assert_caches_enforce_capacity(&reqs, cap, k);
    });
}

/// Spatial filtering is a pure function of the key: two filters with
/// the same rate agree, and admitted fraction ~= rate.
#[test]
fn spatial_filter_determinism() {
    check("spatial_filter_determinism", 64, |g| {
        let rate = g.u64(1, 1000) as f64 / 1000.0;
        let a = krr::core::SpatialFilter::with_rate(rate);
        let b = krr::core::SpatialFilter::with_rate(rate);
        let n = 20_000u64;
        let mut admitted = 0u64;
        for key in 0..n {
            assert_eq!(a.admits(key), b.admits(key));
            if a.admits(key) {
                admitted += 1;
            }
        }
        let got = admitted as f64 / n as f64;
        assert!(
            (got - rate).abs() < 0.02 + rate * 0.2,
            "rate {rate} got {got}"
        );
    });
}

/// The mini-Redis store never exceeds maxmemory and SET-then-GET always
/// hits immediately.
#[test]
fn mini_redis_memory_safety() {
    check("mini_redis_memory_safety", 64, |g| {
        let reqs = g.vec(1, 500, |g| (g.u64(0, 200), g.u32(1, 500)));
        let mem = g.u64(1_000, 50_000);
        let mut store = MiniRedis::new(mem, 5, 3);
        for &(key, size) in &reqs {
            store.set(key, size);
            assert!(store.used_memory() <= mem);
            if u64::from(size) <= mem {
                assert!(store.get(key), "SET-then-GET must hit");
            }
        }
    });
}

/// Zipf sampling stays in range, is deterministic per seed, and its
/// head is at least as popular as deep ranks.
#[test]
fn zipf_sampler_properties() {
    check("zipf_sampler_properties", 32, |g| {
        use krr::core::rng::Xoshiro256;
        let n = g.u64(2, 20_000);
        let s_tenths = g.u32(0, 25);
        let seed = g.any_u64();
        let s = f64::from(s_tenths) / 10.0;
        let z = krr::trace::Zipf::new(n, s);
        let mut a = Xoshiro256::seed_from_u64(seed);
        let mut b = Xoshiro256::seed_from_u64(seed);
        let mut head = 0u32;
        let mut deep = 0u32;
        for _ in 0..400 {
            let x = z.sample(&mut a);
            assert_eq!(x, z.sample(&mut b), "determinism");
            assert!(x < n);
            if x == 0 {
                head += 1;
            }
            if x >= n / 2 {
                deep += 1;
            }
        }
        if s_tenths >= 10 && n >= 100 {
            // Strong skew: item 0 alone should outdraw the entire deep
            // half often enough to register.
            assert!(head + 5 >= deep / 10, "head {head} deep {deep}");
        }
    });
}

/// Size distributions respect their bounds for arbitrary parameters.
#[test]
fn size_distributions_bounded() {
    check("size_distributions_bounded", 32, |g| {
        use krr::core::rng::Xoshiro256;
        use krr::trace::dist::SizeDist;
        let lo = g.u32(1, 1_000);
        let span = g.u32(0, 10_000);
        let shape_tenths = g.u32(10, 40);
        let seed = g.any_u64();
        let hi = lo + span;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let u = SizeDist::Uniform { lo, hi };
        let p = SizeDist::Pareto {
            scale: f64::from(lo),
            shape: f64::from(shape_tenths) / 10.0,
            cap: hi,
        };
        for _ in 0..200 {
            let s = u.sample(&mut rng);
            assert!(s >= lo && s <= hi);
            let s = p.sample(&mut rng);
            assert!(s >= 1 && s <= hi.max(1));
        }
    });
}

/// Trace CSV IO roundtrips arbitrary traces.
#[test]
fn trace_io_roundtrip() {
    check("trace_io_roundtrip", 32, |g| {
        use krr::trace::{io, Op, Request};
        let trace: Vec<Request> = g.vec(0, 200, |g| Request {
            key: g.any_u64(),
            size: g.u32(1, 1_000_000),
            op: if g.bool() { Op::Set } else { Op::Get },
        });
        let mut buf = Vec::new();
        io::write_csv(&mut buf, &trace).unwrap();
        let back = io::read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    });
}

/// Histogram persistence roundtrips arbitrary histograms.
#[test]
fn histogram_persist_roundtrip() {
    check("histogram_persist_roundtrip", 32, |g| {
        let distances = g.vec(0, 200, |g| g.u64(1, 100_000));
        let colds = g.u64(0, 30);
        let width = g.u64(1, 64);
        let mut h = krr::core::SdHistogram::new(width);
        for &d in &distances {
            h.record(d);
        }
        for _ in 0..colds {
            h.record_cold();
        }
        let mut buf = Vec::new();
        krr::core::persist::write_histogram(&mut buf, &h).unwrap();
        let back = krr::core::persist::read_histogram(buf.as_slice()).unwrap();
        assert_eq!(back.total(), h.total());
        assert_eq!(back.cold(), h.cold());
        for b in 0..h.num_bins() {
            assert_eq!(back.bin(b), h.bin(b));
        }
    });
}

/// Histogram merge is commutative and totals add up.
#[test]
fn histogram_merge_commutes() {
    check("histogram_merge_commutes", 32, |g| {
        let xs = g.vec(0, 100, |g| g.u64(1, 10_000));
        let ys = g.vec(0, 100, |g| g.u64(1, 10_000));
        let width = g.u64(1, 32);
        let build = |ds: &[u64]| {
            let mut h = krr::core::SdHistogram::new(width);
            for &d in ds {
                h.record(d);
            }
            h
        };
        let mut ab = build(&xs);
        ab.merge(&build(&ys));
        let mut ba = build(&ys);
        ba.merge(&build(&xs));
        assert_eq!(ab.total(), ba.total());
        for b in 0..ab.num_bins().max(ba.num_bins()) {
            assert_eq!(ab.bin(b), ba.bin(b), "bin {b}");
        }
    });
}

/// The generic sampled cache with LruScore respects capacity and
/// accounting for arbitrary request streams.
#[test]
fn generic_sampled_cache_capacity() {
    check("generic_sampled_cache_capacity", 32, |g| {
        use krr::sim::sampled::{LruScore, SampledCache};
        let reqs = g.vec(1, 400, |g| (g.u64(0, 200), g.u32(1, 300)));
        let cap = g.u64(100, 5_000);
        let k = g.u32(1, 12);
        let mut c = SampledCache::new(Capacity::Bytes(cap), k, LruScore, 5);
        for &(key, size) in &reqs {
            c.access(&Request::get(key, size));
            assert!(c.used_bytes() <= cap);
        }
        let st = c.stats();
        assert_eq!(st.hits + st.misses, reqs.len() as u64);
    });
}

/// OPT never loses to LRU (Belady optimality smoke test on random
/// small traces).
#[test]
fn opt_dominates_lru() {
    check("opt_dominates_lru", 32, |g| {
        use krr::sim::opt::{next_use_times, simulate_opt};
        let keys = g.vec(50, 400, |g| g.u64(0, 60));
        let cap = g.u64(2, 40);
        let trace: Vec<Request> = keys.iter().map(|&k| Request::unit(k)).collect();
        let next = next_use_times(&trace);
        let opt = simulate_opt(&trace, &next, cap).miss_ratio();
        let mut lru = ExactLru::new(Capacity::Objects(cap));
        for r in &trace {
            lru.access(r);
        }
        assert!(opt <= lru.stats().miss_ratio() + 1e-9);
    });
}

/// Regression pinned from the proptest era (`.proptest-regressions` case
/// cc230302): byte capacity smaller than every object size — the cache
/// must keep evicting down to empty rather than loop or overshoot. The
/// shrunken essence is `cap = 8` with all sizes in [28, 200).
#[test]
fn regression_capacity_below_every_object_size() {
    let reqs: Vec<(u64, u32)> = vec![
        (40, 87),
        (94, 114),
        (199, 175),
        (254, 135),
        (45, 104),
        (208, 86),
        (247, 160),
        (136, 24),
        (139, 105),
        (78, 191),
        (142, 33),
        (228, 98),
        (275, 24),
        (67, 41),
        (155, 73),
        (3, 106),
        (264, 153),
        (15, 137),
        (201, 152),
        (147, 164),
        (154, 138),
        (263, 33),
        (112, 38),
        (58, 64),
        (20, 109),
        (155, 164),
        (248, 171),
        (118, 149),
        (206, 158),
        (31, 121),
        (231, 121),
        (250, 152),
        (190, 115),
        (179, 72),
        (154, 31),
        (100, 101),
        (98, 11),
        (110, 195),
        (182, 45),
        (86, 13),
        (59, 150),
        (185, 167),
        (229, 103),
        (159, 127),
        (41, 1),
        (156, 78),
        (105, 159),
        (36, 85),
        (291, 131),
        (279, 73),
        (230, 100),
        (66, 22),
        (76, 45),
        (100, 164),
        (11, 109),
        (248, 2),
        (141, 133),
        (97, 32),
        (88, 24),
        (264, 118),
        (97, 93),
        (228, 140),
        (132, 72),
        (79, 180),
        (41, 64),
        (13, 28),
        (140, 130),
        (139, 136),
        (250, 98),
        (254, 180),
        (202, 5),
        (221, 6),
        (43, 184),
        (76, 78),
        (20, 143),
        (245, 131),
        (221, 149),
        (44, 84),
        (63, 120),
        (281, 45),
        (249, 6),
        (182, 99),
        (81, 5),
        (2, 159),
        (251, 11),
        (294, 126),
        (102, 73),
        (124, 74),
        (260, 98),
        (72, 134),
        (87, 91),
        (160, 135),
        (253, 119),
        (62, 179),
        (71, 156),
        (187, 174),
        (209, 15),
        (30, 8),
        (222, 59),
        (100, 166),
        (98, 30),
        (281, 46),
        (101, 196),
        (156, 121),
        (274, 149),
        (58, 75),
        (182, 190),
        (110, 13),
        (140, 129),
        (55, 51),
        (169, 63),
        (66, 9),
        (66, 187),
        (260, 114),
        (152, 152),
        (104, 189),
        (212, 167),
        (51, 75),
        (51, 182),
        (79, 28),
        (65, 7),
        (51, 49),
        (119, 134),
        (15, 60),
        (169, 41),
        (296, 72),
        (298, 65),
        (33, 155),
        (263, 101),
        (204, 20),
        (177, 112),
        (98, 84),
        (98, 120),
        (157, 73),
        (276, 162),
        (213, 107),
        (17, 105),
        (64, 60),
        (188, 70),
        (243, 51),
        (14, 168),
        (90, 70),
        (44, 29),
        (200, 196),
        (57, 107),
        (1, 73),
        (120, 32),
        (37, 164),
        (254, 49),
        (202, 137),
        (168, 156),
        (169, 58),
        (256, 193),
        (10, 23),
        (120, 178),
        (291, 75),
        (114, 169),
        (44, 12),
        (29, 1),
        (129, 162),
        (195, 94),
        (172, 168),
        (260, 86),
        (283, 101),
        (291, 163),
        (221, 85),
        (262, 68),
        (299, 128),
        (55, 32),
        (29, 148),
        (202, 130),
        (257, 80),
        (277, 110),
        (169, 106),
        (232, 151),
        (72, 57),
        (118, 94),
        (79, 166),
        (86, 75),
        (286, 1),
        (213, 91),
        (42, 129),
        (291, 122),
        (157, 23),
        (200, 118),
        (123, 196),
        (68, 28),
        (88, 124),
        (290, 87),
        (253, 142),
        (232, 21),
        (266, 99),
        (143, 154),
        (270, 50),
        (42, 199),
        (18, 179),
        (128, 113),
        (84, 55),
        (68, 78),
        (22, 140),
        (194, 50),
        (170, 93),
        (295, 33),
        (194, 123),
        (279, 32),
        (33, 23),
        (21, 193),
        (43, 151),
        (285, 113),
        (96, 53),
        (40, 61),
        (111, 35),
        (94, 145),
        (81, 36),
        (32, 135),
        (143, 56),
        (14, 113),
        (13, 133),
        (244, 89),
        (48, 153),
        (203, 128),
        (29, 23),
        (179, 114),
        (91, 165),
        (278, 175),
        (187, 56),
        (191, 167),
        (136, 39),
        (129, 56),
        (193, 191),
        (47, 183),
        (275, 51),
        (247, 164),
        (282, 54),
        (234, 55),
        (126, 61),
        (193, 48),
        (264, 110),
        (30, 42),
        (124, 187),
        (267, 93),
        (2, 136),
        (249, 116),
        (34, 118),
        (230, 92),
        (226, 81),
        (297, 32),
        (182, 194),
        (126, 14),
        (87, 161),
        (43, 6),
        (279, 181),
        (59, 1),
        (33, 132),
        (35, 4),
        (177, 59),
        (272, 148),
        (185, 96),
        (79, 143),
        (72, 58),
        (42, 87),
        (269, 77),
        (150, 170),
        (205, 32),
        (167, 28),
        (115, 99),
    ];
    assert_caches_enforce_capacity(&reqs, 8, 7);
    // The same shape across every sampling size, including K larger than
    // the (always-zero) resident population.
    for k in [1, 2, 7, 15] {
        assert_caches_enforce_capacity(&reqs, 8, k);
    }
}

/// `bucket_of`/`bucket_bound` round-trip: every value lands in the bucket
/// whose bound range contains it, and bounds are monotone.
#[test]
fn histogram_bucket_roundtrip() {
    use krr::core::metrics::{bucket_bound, bucket_of, LOG_BUCKETS};
    check("histogram_bucket_roundtrip", 256, |g| {
        let v = match g.usize(0, 3) {
            0 => g.u64(0, 1 << 10),
            1 => g.any_u64(),
            // Powers of two and their neighbours: the bucket edges.
            _ => {
                let p = 1u64 << g.u32(0, 64);
                p.saturating_add(g.u64(0, 3)).saturating_sub(1)
            }
        };
        let b = bucket_of(v);
        assert!(b < LOG_BUCKETS, "bucket index {b} out of range for {v}");
        assert!(
            v <= bucket_bound(b),
            "{v} above its bucket bound {}",
            bucket_bound(b)
        );
        if b > 0 {
            assert!(
                v > bucket_bound(b - 1),
                "{v} also fits the previous bucket (bound {})",
                bucket_bound(b - 1)
            );
        }
    });
    // Exhaustive edge sweep: bounds are strictly increasing and each
    // bound maps back into its own bucket.
    for b in 0..LOG_BUCKETS {
        assert_eq!(bucket_of(bucket_bound(b)), b.min(64));
        if b > 0 {
            assert!(bucket_bound(b) > bucket_bound(b - 1));
        }
    }
}

/// Percentile estimates stay within bucket resolution of the true order
/// statistic: for any recorded multiset, `percentile(p)` is an upper
/// bound of the bucket holding the true p-quantile, and never exceeds
/// the recorded max.
#[test]
fn histogram_percentile_brackets_true_quantile() {
    use krr::core::metrics::{bucket_of, LogHistogram};
    check("histogram_percentile_brackets_true_quantile", 128, |g| {
        let mut values = g.vec(1, 300, |g| {
            if g.bool() {
                g.u64(0, 1 << 12)
            } else {
                g.any_u64() >> g.u32(0, 40)
            }
        });
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, values.len() as u64);
        assert_eq!(snap.max, *values.last().unwrap());
        for p in [0.0, 0.001, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = snap.percentile(p);
            // The true order statistic under the same ceil(p*n) (min 1)
            // rank convention.
            let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            assert!(est <= snap.max, "p{p}: estimate {est} above max");
            assert!(
                est >= truth,
                "p{p}: estimate {est} below the true quantile {truth}"
            );
            // Same bucket (or clipped to max): bucket resolution is the
            // promised error bound.
            assert!(
                bucket_of(est) == bucket_of(truth) || est == snap.max,
                "p{p}: estimate {est} left the true quantile's bucket ({truth})"
            );
        }
    });
}

/// Percentile boundary behaviour: empty histograms report 0 for every p,
/// and a single-value histogram reports that value's bucket bound
/// (clipped to the value itself, since max == value) for all p.
#[test]
fn histogram_percentile_boundaries() {
    use krr::core::metrics::LogHistogram;
    let empty = LogHistogram::new().snapshot();
    for p in [0.0, 0.5, 1.0] {
        assert_eq!(empty.percentile(p), 0);
    }
    check("histogram_percentile_boundaries", 128, |g| {
        let v = g.any_u64() >> g.u32(0, 63);
        let h = LogHistogram::new();
        h.record(v);
        let snap = h.snapshot();
        // One sample: every percentile, including p=0 (clamped to rank 1)
        // and p=1, is that sample, reported exactly thanks to the max
        // clip.
        for p in [0.0, 0.25, 1.0] {
            assert_eq!(snap.percentile(p), v, "single-value histogram at p{p}");
        }
        // Delta against itself empties the window but keeps the absolute
        // max, so percentiles collapse to 0-count behaviour.
        let d = snap.delta(&snap);
        assert_eq!(d.count, 0);
        assert_eq!(d.percentile(0.99), 0);
    });
}
