//! Statistical coverage of Eq. 4.1 — the stay probability `((i-1)/i)^K` —
//! directly against live stacks driven by each updater, plus boundary-case
//! unit tests for the backward sampler's inverse-CDF step
//! `x = ⌈r^(1/K)·(i-1)⌉` (Eq. 4.2).

mod support;

use krr::core::prob::{eviction_position_cdf, sample_eviction_position, stay_prob};
use krr::core::rng::Xoshiro256;
use krr::core::{KrrStack, UpdaterKind};
use support::Gen;

/// Drives a real stack and measures, per interior position `i`, how often
/// its resident *stays* across an update triggered by a deep reference.
/// Eq. 4.1 says stay with probability `((i-1)/i)^K`; each empirical
/// frequency must land within 3σ (binomial) of that.
fn assert_stay_probability(updater: UpdaterKind, k: f64, depth: u64, trials: usize, seed: u64) {
    let mut stack = KrrStack::new(k, updater, seed);
    for key in 0..depth {
        stack.access(key, 1);
    }
    // Reference the current bottom entry every trial, so each update has
    // distance exactly `depth` and every interior position [2, depth-1]
    // faces one Eq. 4.1 coin flip per trial. (The referenced object moves
    // to the top and a chain-carried one drops to the bottom, so the stack
    // stays a permutation of the same `depth` keys throughout.)
    let mut stays = vec![0u64; depth as usize];
    for _ in 0..trials {
        let deep_key = stack.entry_at(depth).unwrap().key;
        let before: Vec<u64> = (2..depth).map(|i| stack.entry_at(i).unwrap().key).collect();
        stack.access(deep_key, 1);
        for (idx, &key) in before.iter().enumerate() {
            let i = idx as u64 + 2;
            // The resident stayed iff position i was not on the swap chain,
            // i.e. the same key still sits at i after the cyclic shift.
            if stack.entry_at(i).map(|e| e.key) == Some(key) {
                stays[i as usize] += 1;
            }
        }
    }
    let n = trials as f64;
    for i in 2..depth {
        let p = stay_prob(i, k);
        let got = stays[i as usize] as f64 / n;
        let sigma = (p * (1.0 - p) / n).sqrt();
        assert!(
            (got - p).abs() <= 3.0 * sigma + 1e-9,
            "{updater} K={k} i={i}: stay freq {got:.4} vs Eq 4.1 {p:.4} (3σ = {:.4})",
            3.0 * sigma
        );
    }
}

#[test]
fn eq41_stay_probability_naive() {
    assert_stay_probability(UpdaterKind::Naive, 3.0, 24, 40_000, 101);
}

#[test]
fn eq41_stay_probability_topdown() {
    assert_stay_probability(UpdaterKind::TopDown, 3.0, 24, 40_000, 102);
}

#[test]
fn eq41_stay_probability_backward() {
    assert_stay_probability(UpdaterKind::Backward, 3.0, 24, 40_000, 103);
}

#[test]
fn eq41_stay_probability_fractional_kprime() {
    // K′ = 5^1.4 ≈ 9.52 — the corrected effective K is fractional, and
    // Eq. 4.1 must hold for it just as for integers.
    let kp = krr::core::prob::k_prime(5.0, 1.4);
    assert_stay_probability(UpdaterKind::Backward, kp, 20, 40_000, 104);
}

// ---- Inverse-CDF boundary cases: x = ⌈r^(1/K)·(i-1)⌉ over c = i-1 ----

/// r → 0: the jump lands on position 1 (the clamp floor), never 0.
#[test]
fn inverse_cdf_r_near_zero_clamps_to_one() {
    for &k in &[1.0f64, 2.0, 5.0, 9.52] {
        for &c in &[1u64, 2, 10, 1_000_000] {
            assert_eq!(sample_eviction_position(f64::MIN_POSITIVE, c, k), 1);
            assert_eq!(sample_eviction_position(1e-300, c, k), 1);
        }
    }
}

/// r → 1: the draw is exactly c (the ceiling can't exceed the clamp cap,
/// even when r^(1/K) rounds to slightly above 1).
#[test]
fn inverse_cdf_r_one_hits_cap() {
    for &k in &[1.0f64, 2.0, 5.0, 9.52] {
        for &c in &[1u64, 2, 10, 1_000_000] {
            assert_eq!(sample_eviction_position(1.0, c, k), c);
            assert_eq!(sample_eviction_position(1.0 - 1e-16, c, k), c);
        }
    }
}

/// i = 2 (c = 1): the smallest jump target — every draw must land on 1,
/// which is what terminates the backward walk.
#[test]
fn inverse_cdf_c_one_always_returns_one() {
    let mut rng = Xoshiro256::seed_from_u64(7);
    for &k in &[1.0f64, 3.0, 9.52] {
        for _ in 0..1_000 {
            assert_eq!(sample_eviction_position(rng.unit_open_low(), 1, k), 1);
        }
    }
}

/// Fractional K′: draws still bracket the CDF exactly, i.e. the inverse
/// really inverts `P(X ≤ i) = (i/c)^K` for non-integer K.
#[test]
fn inverse_cdf_brackets_cdf_for_fractional_k() {
    let mut g = Gen::from_seed(0x4537_1341);
    for _ in 0..2_000 {
        let c = g.u64(1, 5_000);
        let k = g.f64(1.0, 22.6); // spans K'=1..K'=16^1.4
        let r = g.f64(1e-12, 1.0);
        let x = sample_eviction_position(r, c, k);
        assert!((1..=c).contains(&x));
        let lo = eviction_position_cdf(x - 1, c, k);
        let hi = eviction_position_cdf(x, c, k);
        assert!(
            r >= lo - 1e-9 && r <= hi + 1e-9,
            "r={r} outside [{lo}, {hi}] (c={c} k={k})"
        );
    }
}

/// The ceiling boundary itself: r sitting exactly on the CDF of position i
/// maps to i (⌈·⌉ of an exact integer), r infinitesimally above maps to
/// i+1. Checked for a fractional K′ where boundaries are irrational.
#[test]
fn inverse_cdf_boundary_rounding() {
    let c = 12u64;
    let k = 2.5f64;
    for i in 1..c {
        let cdf = eviction_position_cdf(i, c, k);
        // Exactly at (or a hair under) the boundary: still position i.
        assert_eq!(sample_eviction_position(cdf * (1.0 - 1e-12), c, k), i);
        // Just past it: the next position.
        assert_eq!(sample_eviction_position(cdf * (1.0 + 1e-9), c, k), i + 1);
    }
}
