//! Integration: KRR's MRC matches direct K-LRU simulation across workload
//! families and K values — the paper's central accuracy claim (Table 5.1).

use krr::prelude::*;
use krr::trace::{msr, patterns, twitter, ycsb};

fn krr_mrc(trace: &[Request], k: u32, seed: u64) -> Mrc {
    let mut model = KrrModel::new(KrrConfig::new(f64::from(k)).seed(seed));
    for r in trace {
        model.access_key(r.key);
    }
    model.mrc()
}

fn mae_vs_simulation(trace: &[Request], k: u32) -> f64 {
    let (objects, _) = krr::sim::working_set(trace);
    let caps = even_capacities(objects, 20);
    let sim = simulate_mrc(trace, Policy::klru(k), Unit::Objects, &caps, 1, 8);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    sim.mae(&krr_mrc(trace, k, 2), &sizes)
}

#[test]
fn ycsb_c_accuracy_across_k() {
    let trace = ycsb::WorkloadC::new(20_000, 0.99).generate(300_000, 1);
    for k in [1u32, 2, 4, 8, 16] {
        let mae = mae_vs_simulation(&trace, k);
        assert!(mae < 0.01, "YCSB-C K={k}: MAE {mae}");
    }
}

#[test]
fn ycsb_e_accuracy() {
    let trace = ycsb::WorkloadE::new(5_000, 1.5).generate(200_000, 2);
    for k in [1u32, 4, 16] {
        let mae = mae_vs_simulation(&trace, k);
        assert!(mae < 0.02, "YCSB-E K={k}: MAE {mae}");
    }
}

#[test]
fn msr_type_a_accuracy() {
    let trace = msr::profile(msr::MsrTrace::Src2).generate(300_000, 3, 0.1);
    for k in [1u32, 4, 16] {
        let mae = mae_vs_simulation(&trace, k);
        assert!(mae < 0.015, "msr_src2 K={k}: MAE {mae}");
    }
}

#[test]
fn msr_type_b_accuracy() {
    let trace = msr::profile(msr::MsrTrace::Usr).generate(300_000, 4, 0.05);
    for k in [1u32, 8] {
        let mae = mae_vs_simulation(&trace, k);
        assert!(mae < 0.01, "msr_usr K={k}: MAE {mae}");
    }
}

#[test]
fn twitter_accuracy() {
    let trace = twitter::profile(twitter::TwitterCluster::C34_1).generate(300_000, 5, 0.1, false);
    for k in [2u32, 8] {
        let mae = mae_vs_simulation(&trace, k);
        assert!(mae < 0.015, "tw34.1 K={k}: MAE {mae}");
    }
}

#[test]
fn kprime_correction_improves_loop_worst_case() {
    // §4.2: the loop pattern is KRR's worst case and K' = K^1.4 offsets it.
    let trace = patterns::loop_trace(5_000, 200_000);
    let (objects, _) = krr::sim::working_set(&trace);
    let caps = even_capacities(objects, 20);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let k = 8u32;
    let sim = simulate_mrc(&trace, Policy::klru(k), Unit::Objects, &caps, 1, 8);

    let corrected = KrrConfig::new(f64::from(k));
    let raw = KrrConfig::new(f64::from(k)).raw_k();
    let run = |cfg: KrrConfig| {
        let mut m = KrrModel::new(cfg.seed(7));
        for r in &trace {
            m.access_key(r.key);
        }
        m.mrc()
    };
    let mae_corrected = sim.mae(&run(corrected), &sizes);
    let mae_raw = sim.mae(&run(raw), &sizes);
    assert!(
        mae_corrected < mae_raw,
        "K' correction should help on loops: {mae_corrected} vs {mae_raw}"
    );
    assert!(mae_corrected < 0.05, "corrected loop MAE {mae_corrected}");
}

#[test]
fn k1_krr_equals_random_replacement() {
    // When K = 1, KRR is Mattson's RR stack: statistically identical to
    // random replacement.
    let trace = patterns::loop_trace(1_000, 100_000);
    let mae = mae_vs_simulation(&trace, 1);
    assert!(mae < 0.01, "K=1 loop MAE {mae}");
}

#[test]
fn large_k_krr_converges_to_lru() {
    // §5.3: "as K increases the K-LRU converges to LRU".
    let trace = msr::profile(msr::MsrTrace::Web).generate(200_000, 6, 0.05);
    let (objects, _) = krr::sim::working_set(&trace);
    let caps = even_capacities(objects, 20);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let lru = simulate_mrc(&trace, Policy::ExactLru, Unit::Objects, &caps, 1, 8);
    let krr64 = krr_mrc(&trace, 64, 8);
    let mae = lru.mae(&krr64, &sizes);
    assert!(mae < 0.02, "K=64 vs LRU MAE {mae}");
}

#[test]
fn all_three_updaters_give_statistically_equal_mrcs() {
    let trace = ycsb::WorkloadC::new(5_000, 0.99).generate(100_000, 9);
    let sizes = even_sizes(5_000.0, 20);
    let run = |u: UpdaterKind| {
        let mut m = KrrModel::new(KrrConfig::new(4.0).updater(u).seed(11));
        for r in &trace {
            m.access_key(r.key);
        }
        m.mrc()
    };
    let naive = run(UpdaterKind::Naive);
    let topdown = run(UpdaterKind::TopDown);
    let backward = run(UpdaterKind::Backward);
    assert!(naive.mae(&topdown, &sizes) < 0.005);
    assert!(naive.mae(&backward, &sizes) < 0.005);
    assert!(topdown.mae(&backward, &sizes) < 0.005);
}

#[test]
fn without_replacement_simulation_close_to_with_replacement() {
    // §3: for small K and large C the two sampling versions agree.
    let trace = ycsb::WorkloadC::new(10_000, 0.99).generate(150_000, 10);
    let caps = even_capacities(10_000, 10);
    let with = simulate_mrc(
        &trace,
        Policy::KLru {
            k: 5,
            with_replacement: true,
        },
        Unit::Objects,
        &caps,
        1,
        8,
    );
    let without = simulate_mrc(
        &trace,
        Policy::KLru {
            k: 5,
            with_replacement: false,
        },
        Unit::Objects,
        &caps,
        1,
        8,
    );
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    assert!(with.mae(&without, &sizes) < 0.01);
}
