//! Crash-safety tests for the `krr-ckpt-v1` checkpoint subsystem.
//!
//! The contract under test is the paper-reproduction invariant the whole
//! subsystem exists for: kill a profiling run at **any** batch boundary,
//! restore from the last checkpoint, finish the trace, and the resulting
//! MRC is bit-identical to an uninterrupted run. Alongside that, corrupted
//! inputs (bad magic, future version, flipped bits, truncation) must be
//! rejected with descriptive errors rather than yielding a silently wrong
//! profiler.

mod support;

use krr::core::rng::Xoshiro256;
use krr::core::sharded::ShardedKrr;
use krr::core::{KrrConfig, KrrModel};
use krr::redis::MiniRedis;
use krr::trace::Request;

/// A skewed, variable-size reference stream (quadratic key popularity).
fn skewed_refs(n: usize, seed: u64) -> Vec<(u64, u32)> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u = rng.unit();
            ((u * u * 4_000.0) as u64, 1 + rng.below(64) as u32)
        })
        .collect()
}

#[test]
fn model_resume_is_bit_identical_at_every_batch_boundary() {
    let refs = skewed_refs(8_000, 1);
    let cfg = KrrConfig::new(5.0).sampling(0.5).seed(9);
    let mut reference = KrrModel::new(cfg.clone());
    for &(k, s) in &refs {
        reference.access(k, s);
    }
    let ref_points = reference.mrc().points().to_vec();
    let batch = 1_000;
    for cut in (batch..refs.len()).step_by(batch) {
        // Run to the boundary, "crash", restore, finish.
        let mut pre = KrrModel::new(cfg.clone());
        for &(k, s) in &refs[..cut] {
            pre.access(k, s);
        }
        let mut bytes = Vec::new();
        pre.checkpoint(&mut bytes).unwrap();
        let mut resumed = KrrModel::restore(&bytes[..]).unwrap();
        for &(k, s) in &refs[cut..] {
            resumed.access(k, s);
        }
        assert_eq!(
            resumed.mrc().points(),
            ref_points.as_slice(),
            "MRC diverged after resume at boundary {cut}"
        );
        assert_eq!(resumed.stats().processed, reference.stats().processed);
        assert_eq!(resumed.stats().sampled, reference.stats().sampled);
    }
}

#[test]
fn sharded_resume_is_bit_identical_even_across_thread_counts() {
    let refs = skewed_refs(12_000, 2);
    let cfg = KrrConfig::new(8.0).seed(3);
    let mut reference = ShardedKrr::new(&cfg, 4);
    reference.process_stream(refs.iter().copied(), 3);
    let ref_points = reference.mrc().points().to_vec();
    // Boundaries chosen off the pipeline's internal batch size; per-shard
    // order is global arrival order regardless of chunking or threads.
    for cut in [1_000usize, 5_000, 11_999] {
        let mut pre = ShardedKrr::new(&cfg, 4);
        pre.process_stream(refs[..cut].iter().copied(), 2);
        let mut bytes = Vec::new();
        pre.checkpoint(&mut bytes).unwrap();
        let mut resumed = ShardedKrr::restore(&bytes[..]).unwrap();
        resumed.process_stream(refs[cut..].iter().copied(), 5);
        assert_eq!(
            resumed.mrc().points(),
            ref_points.as_slice(),
            "MRC diverged after resume at boundary {cut}"
        );
    }
}

#[test]
fn checkpoint_bytes_are_deterministic() {
    let refs = skewed_refs(4_000, 5);
    let make = || {
        let mut m = ShardedKrr::new(&KrrConfig::new(5.0).seed(6), 3);
        m.process_stream(refs.iter().copied(), 2);
        let mut bytes = Vec::new();
        m.checkpoint(&mut bytes).unwrap();
        bytes
    };
    assert_eq!(make(), make(), "same state must serialize identically");
}

#[test]
fn corrupted_checkpoints_are_rejected_with_clear_errors() {
    let mut model = KrrModel::new(KrrConfig::new(5.0).seed(4));
    for k in 0..2_000u64 {
        model.access_key(k % 300);
    }
    let mut bytes = Vec::new();
    model.checkpoint(&mut bytes).unwrap();
    assert!(KrrModel::restore(&bytes[..]).is_ok(), "pristine file loads");

    // Wrong magic: not one of ours.
    let mut bad = bytes.clone();
    bad[0] = b'X';
    let err = KrrModel::restore(&bad[..]).unwrap_err();
    assert!(err.to_string().contains("bad magic"), "got: {err}");

    // A version from the future must be refused, not misparsed.
    let mut future = bytes.clone();
    future[7] = 9;
    let err = KrrModel::restore(&future[..]).unwrap_err();
    assert!(
        err.to_string().contains("unsupported checkpoint version 9"),
        "got: {err}"
    );

    // A single flipped payload bit fails the section CRC. Section layout
    // after the 8-byte header: tag(4) + len(8) + payload + crc(4), so
    // offset 24 is payload byte 4 of the first (MODL) section.
    let mut flipped = bytes.clone();
    flipped[24] ^= 0x01;
    let err = KrrModel::restore(&flipped[..]).unwrap_err();
    assert!(err.to_string().contains("crc mismatch"), "got: {err}");
}

#[test]
fn truncated_checkpoints_are_rejected_at_every_cut() {
    let mut model = KrrModel::new(KrrConfig::new(5.0).seed(7));
    for k in 0..500u64 {
        model.access_key(k % 100);
    }
    let mut bytes = Vec::new();
    model.checkpoint(&mut bytes).unwrap();
    // Every proper prefix must fail parsing or decoding — never produce a
    // profiler from partial state.
    for cut in [0, 4, 7, 8, 12, 20, bytes.len() / 2, bytes.len() - 1] {
        let err = KrrModel::restore(&bytes[..cut]).unwrap_err();
        assert!(
            err.to_string().contains("truncated checkpoint"),
            "cut {cut}: {err}"
        );
    }
}

#[test]
fn metrics_counters_survive_a_model_checkpoint_cycle() {
    use krr::core::checkpoint::{CheckpointReader, CheckpointWriter, SECTION_METRICS};
    use krr::core::{MetricsRegistry, MetricsSnapshot};
    use std::sync::Arc;

    let reg = Arc::new(MetricsRegistry::new());
    let mut bank = ShardedKrr::new(&KrrConfig::new(5.0).seed(8), 2);
    bank.set_metrics(Arc::clone(&reg));
    bank.process_stream(skewed_refs(6_000, 9).into_iter(), 2);
    let before = reg.snapshot();
    assert!(before.accesses > 0 && before.hits > 0);

    let mut w = CheckpointWriter::new();
    before.save_state(w.section(SECTION_METRICS));
    let mut bytes = Vec::new();
    w.write_to(&mut bytes).unwrap();

    let r = CheckpointReader::from_bytes(&bytes).unwrap();
    let snap = MetricsSnapshot::load_state(&mut r.require(SECTION_METRICS).unwrap()).unwrap();
    let fresh = Arc::new(MetricsRegistry::new());
    fresh.absorb(&snap);
    let after = fresh.snapshot();
    assert_eq!(after.accesses, before.accesses);
    assert_eq!(after.hits, before.hits);
    assert_eq!(after.cold_misses, before.cold_misses);
    assert_eq!(after.shard_accesses, before.shard_accesses);
}

#[test]
fn mini_redis_bgsave_restores_dataset_profiler_and_counters() {
    let dir = std::env::temp_dir().join(format!("krr-ckpt-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dump.ckpt");

    let mut original = MiniRedis::new(200_000, 5, 11);
    original.enable_mrc_profiling(&KrrConfig::new(5.0).seed(12), 2);
    let mut rng = Xoshiro256::seed_from_u64(13);
    for _ in 0..20_000 {
        let u = rng.unit();
        original.access(&Request::get((u * u * 2_000.0) as u64, 100));
    }
    original.set_checkpoint_path(&path);
    original.bgsave().unwrap();

    let mut restored = MiniRedis::restore_from(&path).unwrap();
    assert_eq!(restored.len(), original.len());
    assert_eq!(restored.used_memory(), original.used_memory());
    assert_eq!(restored.stats(), original.stats());
    assert_eq!(
        restored.mrc_profile().unwrap().points(),
        original.mrc_profile().unwrap().points()
    );
    // Identical GET streams keep identical dict membership afterwards.
    for k in 0..2_000u64 {
        assert_eq!(restored.get(k), original.get(k), "key {k}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn property_random_cut_points_resume_bit_identically() {
    support::check("checkpoint::random_cuts", 12, |g| {
        let n = g.usize(500, 4_000);
        let refs = skewed_refs(n, g.any_u64());
        let cfg = KrrConfig::new(g.f64(2.0, 16.0)).seed(g.any_u64());
        let mut reference = KrrModel::new(cfg.clone());
        for &(k, s) in &refs {
            reference.access(k, s);
        }
        let cut = g.usize(1, n);
        let mut pre = KrrModel::new(cfg);
        for &(k, s) in &refs[..cut] {
            pre.access(k, s);
        }
        let mut bytes = Vec::new();
        pre.checkpoint(&mut bytes).unwrap();
        let mut resumed = KrrModel::restore(&bytes[..]).unwrap();
        for &(k, s) in &refs[cut..] {
            resumed.access(k, s);
        }
        assert_eq!(resumed.mrc().points(), reference.mrc().points());
    });
}
