//! Integration: the beyond-the-paper extensions — miniature simulation,
//! sampled LFU, CounterStacks — behave correctly against ground truth and
//! against each other.

use krr::prelude::*;
use krr::sim::{KLfuCache, MiniSim};
use krr::trace::{msr, patterns, ycsb};

#[test]
fn minisim_matches_krr_on_klru() {
    // Two completely different techniques must agree on the same policy.
    let trace = ycsb::WorkloadC::new(30_000, 0.99).generate(300_000, 1);
    let caps = even_capacities(30_000, 12);
    let k = 5u32;

    let mut ms = MiniSim::new(&caps, 0.2, |c| Box::new(KLruCache::new(c, k, 3)), false);
    let mut model = KrrModel::new(KrrConfig::new(f64::from(k)).seed(4));
    for r in &trace {
        ms.access(r);
        model.access_key(r.key);
    }
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let mae = ms.mrc().mae(&model.mrc(), &sizes);
    assert!(mae < 0.03, "MiniSim vs KRR MAE {mae}");
}

#[test]
fn minisim_handles_non_stack_policy() {
    // K-LFU has no stack model; miniature simulation must still predict it.
    let trace = ycsb::WorkloadC::new(10_000, 0.6).generate(200_000, 2);
    let caps = [1_000u64, 3_000, 6_000];
    let mut ms = MiniSim::new(&caps, 0.3, |c| Box::new(KLfuCache::new(c, 5, 5)), false);
    for r in &trace {
        ms.access(r);
    }
    for (i, &c) in caps.iter().enumerate() {
        let mut actual = KLfuCache::new(Capacity::Objects(c), 5, 6);
        for r in &trace {
            actual.access(r);
        }
        let predicted = ms.mrc().eval(c as f64);
        let truth = actual.stats().miss_ratio();
        assert!(
            (predicted - truth).abs() < 0.05,
            "C={c} (#{i}): predicted {predicted} vs actual {truth}"
        );
    }
}

#[test]
fn klfu_resists_scans_better_than_klru() {
    // The qualitative reason sampled LFU exists.
    let zipf = ycsb::WorkloadC::new(5_000, 1.0).generate(200_000, 3);
    let mut rng = krr::core::rng::Xoshiro256::seed_from_u64(4);
    let trace: Vec<Request> = zipf
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            if rng.unit() < 0.3 {
                Request::unit(1_000_000 + i as u64)
            } else {
                r
            }
        })
        .collect();
    let cap = Capacity::Objects(2_500);
    let mut lfu = KLfuCache::new(cap, 5, 7);
    let mut lru = KLruCache::new(cap, 5, 7);
    for r in &trace {
        lfu.access(r);
        lru.access(r);
    }
    let a = lfu.stats().miss_ratio();
    let b = lru.stats().miss_ratio();
    assert!(
        a < b - 0.02,
        "K-LFU {a} should beat K-LRU {b} under scan pollution"
    );
}

#[test]
fn counterstacks_tracks_olken_loosely() {
    let trace = ycsb::WorkloadC::new(20_000, 0.99).generate(250_000, 5);
    let mut cs = CounterStacks::with_defaults();
    let mut o = OlkenLru::new();
    for r in &trace {
        cs.access_key(r.key);
        o.access_key(r.key);
    }
    let sizes = even_sizes(20_000.0, 20);
    let mae = cs.mrc().mae(&o.mrc(), &sizes);
    assert!(mae < 0.06, "CounterStacks MAE {mae}");
    // Space bound: far fewer counters than chunks processed.
    assert!(cs.num_counters() < 80, "{} counters", cs.num_counters());
}

#[test]
fn counterstacks_and_krr_agree_where_both_are_valid() {
    // On a Type B trace, K-LRU ≈ LRU, so CounterStacks (LRU) and KRR (K=8)
    // should land on the same curve.
    let trace = msr::profile(msr::MsrTrace::Prxy).generate(250_000, 6, 0.1);
    let (objects, _) = krr::sim::working_set(&trace);
    let mut cs = CounterStacks::with_defaults();
    let mut model = KrrModel::new(KrrConfig::new(8.0).seed(7));
    for r in &trace {
        cs.access_key(r.key);
        model.access_key(r.key);
    }
    let sizes = even_sizes(objects as f64, 15);
    let mae = cs.mrc().mae(&model.mrc(), &sizes);
    assert!(mae < 0.06, "CounterStacks vs KRR on Type B: MAE {mae}");
}

#[test]
fn hll_cardinalities_power_counterstacks_cold_counts() {
    // Cold misses recovered by CounterStacks ≈ true distinct count.
    let m = 30_000u64;
    let trace = patterns::loop_trace(m, 150_000);
    let mut cs = CounterStacks::with_defaults();
    for r in &trace {
        cs.access_key(r.key);
    }
    let mrc = cs.mrc();
    // Miss ratio at infinite size = colds/total = m / 150_000 = 0.2.
    let tail = mrc.eval(1e12);
    assert!((tail - 0.2).abs() < 0.03, "cold fraction {tail}");
}

#[test]
fn statstack_and_aet_and_olken_agree_on_zipf() {
    let keys = 10_000u64;
    let trace = ycsb::WorkloadC::new(keys, 0.99).generate(200_000, 8);
    let mut ss = StatStack::new();
    let mut o = OlkenLru::new();
    for r in &trace {
        ss.access_key(r.key);
        o.access_key(r.key);
    }
    let sizes = even_sizes(keys as f64, 20);
    let mae = ss.mrc().mae(&o.mrc(), &sizes);
    assert!(mae < 0.03, "StatStack vs Olken MAE {mae}");
}

#[test]
fn mimir_tracks_olken_on_msr() {
    let trace = msr::profile(msr::MsrTrace::Prxy).generate(200_000, 9, 0.05);
    let (objects, _) = krr::sim::working_set(&trace);
    let mut m = Mimir::new(128);
    let mut o = OlkenLru::new();
    for r in &trace {
        m.access_key(r.key);
        o.access_key(r.key);
    }
    let sizes = even_sizes(objects as f64, 20);
    let mae = m.mrc().mae(&o.mrc(), &sizes);
    assert!(mae < 0.05, "MIMIR vs Olken MAE {mae}");
}

#[test]
fn sharded_krr_matches_plain_krr_cross_crate() {
    let trace = msr::profile(msr::MsrTrace::Web).generate(300_000, 10, 0.05);
    let (objects, _) = krr::sim::working_set(&trace);
    let refs: Vec<(u64, u32)> = trace.iter().map(|r| (r.key, 1)).collect();
    let cfg = KrrConfig::new(5.0).seed(11);
    let mut sharded = ShardedKrr::new(&cfg, 8);
    sharded.process_parallel(&refs, 4);
    let mut plain = KrrModel::new(cfg);
    for r in &trace {
        plain.access_key(r.key);
    }
    let sizes = even_sizes(objects as f64, 20);
    let mae = sharded.mrc().mae(&plain.mrc(), &sizes);
    assert!(mae < 0.03, "sharded vs plain MAE {mae}");
}

#[test]
fn histogram_persistence_roundtrips_a_real_model() {
    let trace = ycsb::WorkloadC::new(5_000, 0.9).generate(100_000, 12);
    let mut model = KrrModel::new(KrrConfig::new(5.0).seed(13));
    for r in &trace {
        model.access_key(r.key);
    }
    let mut buf = Vec::new();
    krr::core::persist::write_histogram(&mut buf, model.histogram()).unwrap();
    let back = krr::core::persist::read_histogram(buf.as_slice()).unwrap();
    let original = model.mrc();
    let mut restored = Mrc::from_histogram(&back, 1.0);
    restored.make_monotone();
    assert_eq!(original.points(), restored.points());
}

#[test]
fn trace_characterization_guides_modeling_choice() {
    // The workflow §5.3 implies: classify, then pick the model.
    let type_a = msr::profile(msr::MsrTrace::Src2).generate(150_000, 14, 0.05);
    let type_b = msr::profile(msr::MsrTrace::Usr).generate(150_000, 15, 0.05);
    let ca = krr::trace::analyze::characterize(&type_a);
    let cb = krr::trace::analyze::characterize(&type_b);
    assert!(ca.is_type_a() && !cb.is_type_a());
    assert!(
        cb.zipf_exponent > 0.7,
        "usr is Zipf-dominated: {}",
        cb.zipf_exponent
    );
}
