//! Doc-sync: the architecture document must name every metric.
//!
//! `docs/ARCHITECTURE.md` carries the "krr-metrics-v1 key → meaning"
//! table operators navigate by; a metric that exists in the snapshot but
//! not in the docs is invisible at 3am. This test walks a representative
//! live snapshot (the same construction as the golden-schema test) and
//! asserts every dotted key appears verbatim in the document. Histogram
//! internals (`buckets`/`count`/`sum`/…) are the generic
//! `HistogramSnapshot` shape documented once, so only the histogram's own
//! path is required, not its subfields.

mod support;

use krr::core::sharded::ShardedKrr;
use krr::core::{KrrConfig, MetricsRegistry};
use krr::trace::ycsb;
use std::sync::Arc;
use support::json::{parse, Json};

/// Same representative snapshot as `tests/metrics_schema.rs`: sharded run
/// plus a small fleet, so every section is populated.
fn representative_metrics_json() -> String {
    let reg = Arc::new(MetricsRegistry::new());
    let mut bank = ShardedKrr::new(&KrrConfig::new(5.0).seed(3), 4);
    bank.set_metrics(Arc::clone(&reg));
    let trace = ycsb::WorkloadC::new(500, 0.9).generate(5_000, 3);
    bank.process_stream(trace.iter().map(|r| (r.key, r.size)), 2);
    let _ = bank.mrc();
    let mut fleet =
        krr::core::fleet::FleetArena::new(krr::core::fleet::FleetConfig::new(KrrConfig::new(4.0)));
    fleet.set_metrics(Arc::clone(&reg));
    for r in trace.iter().take(2_000) {
        fleet.access(r.key % 3, r.key, r.size);
    }
    fleet.publish_metrics();
    let mut buf = Vec::new();
    krr::core::persist::write_metrics_json(&mut buf, &reg.snapshot()).unwrap();
    String::from_utf8(buf).unwrap()
}

/// Collects the dotted paths the docs must mention: every key, except
/// descents into histogram objects (an object with a `buckets` child).
fn doc_required_paths(v: &Json, path: &str, out: &mut Vec<String>) {
    if !path.is_empty() {
        out.push(path.to_string());
    }
    let Some(fields) = v.as_obj() else { return };
    if fields.iter().any(|(k, _)| k == "buckets") {
        return; // histogram: its subfields are the generic snapshot shape
    }
    for (k, child) in fields {
        let p = if path.is_empty() {
            k.clone()
        } else {
            format!("{path}.{k}")
        };
        doc_required_paths(child, &p, out);
    }
}

#[test]
fn architecture_doc_names_every_metrics_key() {
    let doc_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/ARCHITECTURE.md"
    ))
    .expect("docs/ARCHITECTURE.md exists");
    let snapshot = parse(&representative_metrics_json()).expect("valid snapshot JSON");
    let mut required = Vec::new();
    doc_required_paths(&snapshot, "", &mut required);
    assert!(
        required.iter().any(|p| p == "pipeline.ring.router_parks"),
        "representative snapshot lost its pipeline section: {required:?}"
    );
    let missing: Vec<&String> = required
        .iter()
        .filter(|p| !doc_text.contains(p.as_str()))
        .collect();
    assert!(
        missing.is_empty(),
        "krr-metrics-v1 keys missing from docs/ARCHITECTURE.md \
         (add them to the metric table): {missing:?}"
    );
}

#[test]
fn observability_doc_names_every_http_endpoint() {
    let doc_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/OBSERVABILITY.md"
    ))
    .expect("docs/OBSERVABILITY.md exists");
    for endpoint in [
        "/metrics",
        "/mrc",
        "/stats",
        "/trace",
        "/tenants",
        "/exemplars",
        "/profile",
        "/healthz",
    ] {
        assert!(
            doc_text.contains(endpoint),
            "endpoint {endpoint} missing from docs/OBSERVABILITY.md"
        );
    }
    for artifact in [
        "krr-metrics-v1",
        "krr-exemplars-v1",
        "krr-doctor-v1",
        "krr-trace-v1",
        "krr-stats-v1",
    ] {
        assert!(
            doc_text.contains(artifact),
            "artifact schema {artifact} missing from docs/OBSERVABILITY.md"
        );
    }
}
