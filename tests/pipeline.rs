//! Integration: the streaming route-once profiling pipeline — edge cases,
//! bit-identity across entry points, and the route-once hashing guarantee
//! (total key hashes = N, not T×N).

use std::sync::Arc;

use krr::core::metrics::MetricsRegistry;
use krr::core::pipeline::PipelineConfig;
use krr::core::sharded::ShardedKrr;
use krr::prelude::*;
use krr::trace::io::CsvStream;
use krr::trace::{io as trace_io, Request};

fn skewed(keys: u64, n: usize, seed: u64) -> Vec<(u64, u32)> {
    use krr::core::rng::Xoshiro256;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u = rng.unit();
            ((u * u * keys as f64) as u64, 1 + (u * 100.0) as u32)
        })
        .collect()
}

fn sequential(cfg: &KrrConfig, shards: usize, refs: &[(u64, u32)]) -> ShardedKrr {
    let mut bank = ShardedKrr::new(cfg, shards);
    for &(k, s) in refs {
        bank.access(k, s);
    }
    bank
}

#[test]
fn threads_exceed_shards() {
    let refs = skewed(3_000, 50_000, 1);
    let cfg = KrrConfig::new(5.0).seed(1);
    let seq = sequential(&cfg, 2, &refs);
    for threads in [3, 8, 64] {
        let mut par = ShardedKrr::new(&cfg, 2);
        par.process_stream(refs.iter().copied(), threads);
        assert_eq!(par.mrc().points(), seq.mrc().points(), "threads={threads}");
        assert_eq!(par.stats(), seq.stats());
    }
}

#[test]
fn single_shard_bank() {
    let refs = skewed(2_000, 30_000, 2);
    let cfg = KrrConfig::new(4.0).seed(2);
    let seq = sequential(&cfg, 1, &refs);
    let mut par = ShardedKrr::new(&cfg, 1);
    par.process_stream(refs.iter().copied(), 4);
    assert_eq!(par.mrc().points(), seq.mrc().points());
}

#[test]
fn empty_trace() {
    let cfg = KrrConfig::new(5.0).seed(3);
    let mut bank = ShardedKrr::new(&cfg, 4);
    bank.process_stream(std::iter::empty(), 4);
    assert_eq!(bank.stats().processed, 0);
    let seq = sequential(&cfg, 4, &[]);
    assert_eq!(bank.mrc().points(), seq.mrc().points());
}

#[test]
fn one_reference_trace() {
    let cfg = KrrConfig::new(5.0).seed(4);
    let refs = [(77u64, 3u32)];
    let seq = sequential(&cfg, 4, &refs);
    let mut par = ShardedKrr::new(&cfg, 4);
    par.process_stream(refs.iter().copied(), 4);
    assert_eq!(par.stats().processed, 1);
    assert_eq!(par.mrc().points(), seq.mrc().points());
}

#[test]
fn stream_slice_and_sequential_agree() {
    let refs = skewed(8_000, 120_000, 5);
    let cfg = KrrConfig::new(5.0).seed(5);
    let seq = sequential(&cfg, 6, &refs);

    let mut slice = ShardedKrr::new(&cfg, 6);
    slice.process_parallel(&refs, 4);
    assert_eq!(slice.mrc().points(), seq.mrc().points());

    // Stream from actual CSV bytes, exercising the full file path.
    let trace: Vec<Request> = refs.iter().map(|&(k, s)| Request::get(k, s)).collect();
    let mut csv = Vec::new();
    trace_io::write_csv(&mut csv, &trace).unwrap();
    let mut streamed = ShardedKrr::new(&cfg, 6);
    streamed.process_stream(
        CsvStream::new(csv.as_slice()).map(|r| {
            let r = r.expect("well-formed CSV");
            (r.key, r.size)
        }),
        4,
    );
    assert_eq!(streamed.mrc().points(), seq.mrc().points());
    assert_eq!(streamed.stats(), seq.stats());
}

#[test]
fn rescan_baseline_agrees_too() {
    let refs = skewed(5_000, 80_000, 6);
    let cfg = KrrConfig::new(4.0).seed(6);
    let seq = sequential(&cfg, 5, &refs);
    for threads in [1, 2, 5] {
        let mut old = ShardedKrr::new(&cfg, 5);
        old.process_parallel_rescan(&refs, threads);
        assert_eq!(old.mrc().points(), seq.mrc().points(), "threads={threads}");
    }
}

#[test]
fn route_once_hashes_each_key_exactly_once() {
    let refs = skewed(4_000, 40_000, 7);
    let n = refs.len() as u64;
    let cfg = KrrConfig::new(5.0).seed(7);

    let reg = Arc::new(MetricsRegistry::new());
    let mut bank = ShardedKrr::new(&cfg, 8);
    bank.set_metrics(Arc::clone(&reg));
    bank.process_stream(refs.iter().copied(), 4);
    assert_eq!(reg.snapshot().pipeline_keys_hashed, n, "pipeline is N");

    // The legacy rescan path re-hashes the whole trace in every worker:
    // T×N total — the cost the pipeline removes.
    let reg_old = Arc::new(MetricsRegistry::new());
    let mut old = ShardedKrr::new(&cfg, 8);
    old.set_metrics(Arc::clone(&reg_old));
    old.process_parallel_rescan(&refs, 4);
    assert_eq!(
        reg_old.snapshot().pipeline_keys_hashed,
        4 * n,
        "rescan is T×N"
    );
}

#[test]
fn wide_pools_get_scaled_tuning_with_fewer_stalls() {
    // At 8+ workers the default 4096×4 tuning leaves the lone router
    // behind the fan-out; `for_threads` widens batches and queue credit.
    let tuned = PipelineConfig::for_threads(8);
    let narrow = PipelineConfig::for_threads(4);
    assert!(tuned.batch_size > narrow.batch_size);
    assert!(tuned.queue_depth > narrow.queue_depth);

    let refs = skewed(20_000, 400_000, 9);
    let cfg = KrrConfig::new(5.0).seed(9);
    let stalls_with = |pcfg: &PipelineConfig| {
        let reg = Arc::new(MetricsRegistry::new());
        let mut bank = ShardedKrr::new(&cfg, 8);
        bank.set_metrics(Arc::clone(&reg));
        bank.process_stream_with(refs.iter().copied(), 8, pcfg);
        (reg.snapshot().pipeline_stalls, bank)
    };
    // A deliberately starved config stalls the router constantly; the
    // 8-thread tuning must beat it decisively, not marginally.
    let (stalls_starved, starved) = stalls_with(&PipelineConfig {
        batch_size: 64,
        queue_depth: 1,
    });
    let (stalls_tuned, tuned_bank) = stalls_with(&PipelineConfig::for_threads(8));
    assert!(stalls_starved > 0, "starved config should stall the router");
    assert!(
        stalls_tuned * 10 <= stalls_starved,
        "tuned config still stalling: {stalls_tuned} vs starved {stalls_starved}"
    );
    // Tuning changes scheduling only — results stay bit-identical.
    assert_eq!(tuned_bank.mrc().points(), starved.mrc().points());
    assert_eq!(tuned_bank.stats(), starved.stats());

    // The default entry point picks up the scaled tuning automatically.
    let seq = sequential(&cfg, 8, &refs);
    let mut auto = ShardedKrr::new(&cfg, 8);
    auto.process_stream(refs.iter().copied(), 8);
    assert_eq!(auto.mrc().points(), seq.mrc().points());
    assert_eq!(auto.stats(), seq.stats());
}

#[test]
fn pipeline_metrics_flow_to_renderings() {
    let refs = skewed(4_000, 50_000, 8);
    let cfg = KrrConfig::new(5.0).seed(8);
    let reg = Arc::new(MetricsRegistry::new());
    let mut bank = ShardedKrr::new(&cfg, 4);
    bank.set_metrics(Arc::clone(&reg));
    // Small batches so multiple batches (and likely stalls) occur.
    bank.process_stream_with(
        refs.iter().copied(),
        2,
        &PipelineConfig {
            batch_size: 256,
            queue_depth: 1,
        },
    );
    let snap = reg.snapshot();
    assert!(
        snap.pipeline_batches >= 4,
        "batches: {}",
        snap.pipeline_batches
    );
    assert_eq!(snap.pipeline_keys_hashed, refs.len() as u64);
    assert_eq!(snap.pipeline_queue_hwm.len(), 4);
    assert!(snap.pipeline_queue_hwm.iter().all(|&d| d >= 1));
    assert!(snap.pipeline_router_busy_ns > 0);
    assert!(snap.pipeline_worker_busy_ns > 0);
    // Ring transport statistics: one depth high-water mark per worker,
    // and with ~100 batches per worker pushed through 2-slot rings the
    // positions must have wrapped many times.
    assert_eq!(snap.pipeline_ring_hwm.len(), 2);
    assert!(snap.pipeline_ring_hwm.iter().all(|&d| d >= 1));
    assert!(snap.pipeline_ring_wraps > 0, "tiny rings must wrap");
    // Per-shard access counters cover the whole trace.
    assert_eq!(snap.shard_accesses.iter().sum::<u64>(), refs.len() as u64);
    let info = snap.render_info();
    assert!(info.contains("# pipeline"), "{info}");
    assert!(
        info.contains(&format!("keys_hashed:{}", refs.len())),
        "{info}"
    );
    let json = snap.to_json();
    assert!(json.contains("\"pipeline\":{\"batches\":"), "{json}");
    assert!(json.contains("\"ring\":{\"wraps\":"), "{json}");
    assert!(info.contains("ring_wraps:"), "{info}");
}

#[test]
fn park_storm_keeps_ring_stats_consistent_across_thread_counts() {
    // A deliberately starved tuning (tiny batches, one-slot rings) turns
    // every run into a park storm: the router blocks on full rings and
    // the workers nap on empty ones. The post-join ring statistics must
    // stay internally consistent at every thread count, and none of the
    // parking may leak into the model's results.
    let refs = skewed(8_000, 120_000, 21);
    let cfg = KrrConfig::new(5.0).seed(21);
    let seq = sequential(&cfg, 8, &refs);
    let storm = PipelineConfig {
        batch_size: 16,
        queue_depth: 1,
    };
    let mut prev_batches = 0u64;
    for threads in [1usize, 2, 8] {
        let reg = Arc::new(MetricsRegistry::new());
        let mut bank = ShardedKrr::new(&cfg, 8);
        bank.set_metrics(Arc::clone(&reg));
        bank.process_stream_with(refs.iter().copied(), threads, &storm);
        let snap = reg.snapshot();
        // One depth high-water mark per worker, each within the one-slot
        // ring's capacity and touched at least once.
        assert_eq!(snap.pipeline_ring_hwm.len(), threads, "t={threads}");
        // queue_depth 1 rounds up to a 2-slot ring; under a storm the
        // router keeps it pinned at capacity.
        assert!(
            snap.pipeline_ring_hwm.iter().all(|&d| (1..=2).contains(&d)),
            "t={threads}: starved rings must pin depth_hwm at capacity, got {:?}",
            snap.pipeline_ring_hwm
        );
        // 16-key batches over 120k refs: thousands of batches, so the
        // one-slot rings wrapped constantly and parking happened on both
        // sides (a single worker still parks: it drains faster than the
        // router refills).
        assert!(
            snap.pipeline_batches >= (refs.len() / storm.batch_size) as u64,
            "t={threads}: batches {}",
            snap.pipeline_batches
        );
        // Wraps count full trips around each ring (batches ÷ capacity,
        // capacity 2 here), so across all rings they sum to about half
        // the batch count.
        assert!(
            snap.pipeline_ring_wraps * 2 >= snap.pipeline_batches - 2 * threads as u64,
            "t={threads}: wraps {} vs batches {}",
            snap.pipeline_ring_wraps,
            snap.pipeline_batches
        );
        assert!(
            snap.pipeline_worker_parks > 0,
            "t={threads}: starved workers never parked"
        );
        // Parks are bounded by what could have happened: the router can
        // park at most once per attempted push, a worker at most once per
        // pop attempt that found nothing.
        assert!(
            snap.pipeline_router_parks <= snap.pipeline_stalls + snap.pipeline_batches,
            "t={threads}: router parks {} exceed push attempts",
            snap.pipeline_router_parks
        );
        // Batch count is a pure function of the trace and batch size —
        // identical across thread counts.
        if prev_batches > 0 {
            assert_eq!(snap.pipeline_batches, prev_batches, "t={threads}");
        }
        prev_batches = snap.pipeline_batches;
        // And the storm is scheduling-only: bits match the sequential run.
        assert_eq!(bank.mrc().points(), seq.mrc().points(), "t={threads}");
        assert_eq!(bank.stats(), seq.stats(), "t={threads}");
    }
}

#[test]
fn channel_baseline_matches_ring_pipeline() {
    // The PR 6 sync_channel transport stays live as the A/B benchmark
    // baseline; both transports must produce the same bits at every
    // thread count, including threads > shards.
    let refs = skewed(6_000, 90_000, 11);
    let cfg = KrrConfig::new(5.0).seed(11).sampling(0.4);
    let seq = sequential(&cfg, 5, &refs);
    for threads in [1, 2, 5, 16] {
        let mut rings = ShardedKrr::new(&cfg, 5);
        rings.process_stream(refs.iter().copied(), threads);
        let mut chans = ShardedKrr::new(&cfg, 5);
        chans.process_stream_channels(refs.iter().copied(), threads);
        assert_eq!(rings.mrc().points(), seq.mrc().points(), "t={threads}");
        assert_eq!(chans.mrc().points(), seq.mrc().points(), "t={threads}");
        assert_eq!(rings.stats(), chans.stats());
    }
}
