//! Integration: validating KRR against the mini-Redis substrate (§5.7,
//! Fig 5.5) — KRR ≈ in-house K-LRU simulator ≈ (mini-)Redis, with the
//! clustered-sampling deviation reproduced and explained.

use krr::prelude::*;
use krr::trace::msr;

const K: u32 = 5; // Redis default maxmemory-samples
const OBJ: u32 = 200; // §5.7 sets all objects to 200 bytes

fn redis_miss_ratio(trace: &[Request], memory: u64, mode: SamplingMode, seed: u64) -> f64 {
    let mut store = MiniRedis::with_mode(memory, K as usize, mode, seed);
    let mut hits = 0u64;
    for r in trace {
        if store.access(&Request::get(r.key, OBJ)) {
            hits += 1;
        }
    }
    1.0 - hits as f64 / trace.len() as f64
}

fn redis_mrc(trace: &[Request], mems: &[u64], mode: SamplingMode) -> Mrc {
    let points: Vec<(f64, f64)> = std::iter::once((0.0, 1.0))
        .chain(
            mems.iter()
                .map(|&m| (m as f64, redis_miss_ratio(trace, m, mode, m ^ 0xFACE))),
        )
        .collect();
    let mut mrc = Mrc::from_points(points);
    mrc.make_monotone();
    mrc
}

#[test]
fn krr_predicts_mini_redis() {
    let trace = msr::profile(msr::MsrTrace::Src2).generate(200_000, 1, 0.05);
    let (objects, _) = krr::sim::working_set(&trace);
    let total_bytes = objects * u64::from(OBJ);
    let mems = even_capacities(total_bytes, 10);
    let redis = redis_mrc(&trace, &mems, SamplingMode::ClusteredWalk);

    // KRR in object space, x-axis scaled to bytes.
    let mut model = KrrModel::new(KrrConfig::new(f64::from(K)).seed(2));
    for r in &trace {
        model.access_key(r.key);
    }
    let krr = Mrc::from_points(
        model
            .mrc()
            .points()
            .iter()
            .map(|&(x, y)| (x * f64::from(OBJ), y))
            .collect(),
    );
    let sizes: Vec<f64> = mems.iter().map(|&m| m as f64).collect();
    let mae = redis.mae(&krr, &sizes);
    assert!(mae < 0.04, "KRR vs mini-Redis MAE {mae}");
}

#[test]
fn simulator_matches_redis_with_uniform_sampling() {
    // Footnote 3: with the fair sampling backend, Redis behaves like the
    // idealized K-LRU simulator.
    let trace = msr::profile(msr::MsrTrace::Web).generate(150_000, 3, 0.05);
    let (objects, _) = krr::sim::working_set(&trace);
    let total_bytes = objects * u64::from(OBJ);
    let mems = even_capacities(total_bytes, 8);
    let redis_uniform = redis_mrc(&trace, &mems, SamplingMode::UniformRandom);

    let byte_trace: Vec<Request> = trace.iter().map(|r| Request::get(r.key, OBJ)).collect();
    let sim = simulate_mrc(&byte_trace, Policy::klru(K), Unit::Bytes, &mems, 4, 8);
    let sizes: Vec<f64> = mems.iter().map(|&m| m as f64).collect();
    let mae = redis_uniform.mae(&sim, &sizes);
    assert!(
        mae < 0.025,
        "uniform-sampling mini-Redis vs simulator MAE {mae}"
    );
}

#[test]
fn clustered_sampling_stays_close_but_can_deviate() {
    // The paper observes a *slight* deviation between Redis (clustered
    // dictGetSomeKeys) and the simulator; it must stay small but the store
    // must still be well approximated by the simulator overall.
    let trace = msr::profile(msr::MsrTrace::Src2).generate(150_000, 5, 0.05);
    let (objects, _) = krr::sim::working_set(&trace);
    let total_bytes = objects * u64::from(OBJ);
    let mems = even_capacities(total_bytes, 8);
    let clustered = redis_mrc(&trace, &mems, SamplingMode::ClusteredWalk);
    let byte_trace: Vec<Request> = trace.iter().map(|r| Request::get(r.key, OBJ)).collect();
    let sim = simulate_mrc(&byte_trace, Policy::klru(K), Unit::Bytes, &mems, 6, 8);
    let sizes: Vec<f64> = mems.iter().map(|&m| m as f64).collect();
    let mae = clustered.mae(&sim, &sizes);
    assert!(mae < 0.05, "clustered mini-Redis vs simulator MAE {mae}");
}

#[test]
fn eviction_pool_beats_poolless_sampling_at_approximating_lru() {
    // The pool is why samples=5 suffices in production Redis: it accumulates
    // good candidates across cycles. Check mini-Redis with K=5 lands close
    // to exact LRU on a skewed workload.
    let trace = msr::profile(msr::MsrTrace::Prxy).generate(150_000, 7, 0.1);
    let (objects, _) = krr::sim::working_set(&trace);
    let memory = objects * u64::from(OBJ) / 2;
    let redis_miss = redis_miss_ratio(&trace, memory, SamplingMode::ClusteredWalk, 8);
    let byte_trace: Vec<Request> = trace.iter().map(|r| Request::get(r.key, OBJ)).collect();
    let lru_miss = krr::sim::miss_ratio(&byte_trace, Policy::ExactLru, Capacity::Bytes(memory), 9);
    assert!(
        (redis_miss - lru_miss).abs() < 0.03,
        "mini-Redis {redis_miss} vs LRU {lru_miss}"
    );
}
