//! A minimal OpenMetrics text-format validator for the `/metrics`
//! endpoint tests.
//!
//! Checks the structural subset of the spec the exposition server emits:
//!
//! * the document ends with exactly one `# EOF` line,
//! * every sample line names a metric declared by a preceding `# TYPE`
//!   line (with the `_total` / `_bucket` / `_count` / `_sum` suffix rules
//!   for counters and histograms),
//! * label blocks are well-formed `{name="value",...}` with no raw `"`,
//!   `\` or newline inside values,
//! * sample values parse as finite-or-+Inf-bound numbers,
//! * histogram `_bucket` series are cumulative in `le` order and end with
//!   an `le="+Inf"` bucket equal to `_count`,
//! * exemplars (`... # {labels} value`) appear only on histogram
//!   `_bucket` lines, carry well-formed labels, and their value respects
//!   the bucket's `le` bound.
//!
//! Intentionally not a full parser — timestamps and escape sequences are
//! rejected rather than handled, because the server never produces them;
//! seeing one is a bug.

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name, including any `_total`/`_bucket` suffix.
    pub name: String,
    /// Label pairs in document order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
    /// Trailing exemplar, if any: its label pairs and value.
    pub exemplar: Option<(Vec<(String, String)>, f64)>,
}

/// A validated OpenMetrics document.
#[derive(Debug, Default)]
pub struct Exposition {
    /// `# TYPE` declarations in document order: `(family, type)`.
    pub families: Vec<(String, String)>,
    /// All sample lines in document order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// All samples of `name` (exact sample-name match).
    pub fn series(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// The value of the single unlabeled sample `name`, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }
}

/// Sample suffixes a declared family type allows.
fn allowed_suffixes(family_type: &str) -> &'static [&'static str] {
    match family_type {
        "counter" => &["_total"],
        "histogram" => &["_bucket", "_count", "_sum"],
        // gauge/unknown: the bare family name only.
        _ => &[""],
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let name = &rest[..eq];
        if !valid_name(name) {
            return Err(format!("bad label name {name:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("label value must be quoted: {after:?}"));
        }
        let close = after[1..]
            .find('"')
            .ok_or_else(|| format!("unterminated label value: {after:?}"))?;
        let value = &after[1..1 + close];
        if value.contains('\\') || value.contains('\n') {
            return Err(format!("escapes not supported in value {value:?}"));
        }
        labels.push((name.to_string(), value.to_string()));
        rest = &after[close + 2..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(labels)
}

/// Parses the part after `" # "`: `{labels} value`.
fn parse_exemplar(ex: &str) -> Result<(Vec<(String, String)>, f64), String> {
    let rest = ex
        .strip_prefix('{')
        .ok_or_else(|| format!("exemplar must start with a label block: {ex:?}"))?;
    let (block, value_str) = rest
        .split_once("} ")
        .ok_or_else(|| format!("exemplar needs a value after its labels: {ex:?}"))?;
    let labels = parse_labels(block)?;
    if labels.is_empty() {
        return Err(format!("exemplar label block is empty: {ex:?}"));
    }
    let value: f64 = value_str
        .parse()
        .map_err(|_| format!("bad exemplar value {value_str:?}"))?;
    if !value.is_finite() {
        return Err(format!("exemplar value must be finite: {value_str:?}"));
    }
    Ok((labels, value))
}

/// Parses and validates `text`; returns the document or the first error.
pub fn validate(text: &str) -> Result<Exposition, String> {
    if !text.ends_with("# EOF\n") {
        return Err("document must end with '# EOF\\n'".into());
    }
    let mut doc = Exposition::default();
    let mut eof_seen = false;
    for (ln, line) in text.lines().enumerate() {
        let ctx = |msg: String| format!("line {}: {msg}", ln + 1);
        if eof_seen {
            return Err(ctx("content after # EOF".into()));
        }
        if line == "# EOF" {
            eof_seen = true;
            continue;
        }
        if line.is_empty() {
            return Err(ctx("blank lines are not allowed".into()));
        }
        if let Some(meta) = line.strip_prefix("# ") {
            let mut parts = meta.splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            match keyword {
                "TYPE" => {
                    let family = parts
                        .next()
                        .ok_or_else(|| ctx("TYPE needs a name".into()))?;
                    let kind = parts
                        .next()
                        .ok_or_else(|| ctx("TYPE needs a type".into()))?;
                    if !valid_name(family) {
                        return Err(ctx(format!("bad family name {family:?}")));
                    }
                    if !["counter", "gauge", "histogram", "unknown"].contains(&kind) {
                        return Err(ctx(format!("unsupported family type {kind:?}")));
                    }
                    if doc.families.iter().any(|(f, _)| f == family) {
                        return Err(ctx(format!("duplicate TYPE for {family:?}")));
                    }
                    doc.families.push((family.to_string(), kind.to_string()));
                }
                "HELP" | "UNIT" => {}
                other => return Err(ctx(format!("unknown comment keyword {other:?}"))),
            }
            continue;
        }
        // Sample line: name[{labels}] value [# {labels} exemplar_value]
        let (sample_part, exemplar) = match line.split_once(" # ") {
            Some((s, ex)) => (s, Some(parse_exemplar(ex).map_err(ctx)?)),
            None => (line, None),
        };
        let (name_and_labels, value_str) = sample_part
            .rsplit_once(' ')
            .ok_or_else(|| ctx("sample line needs a value".into()))?;
        if value_str.contains('#') || name_and_labels.contains(' ') {
            return Err(ctx("timestamps are not supported".into()));
        }
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((n, rest)) => {
                let block = rest
                    .strip_suffix('}')
                    .ok_or_else(|| ctx("unterminated label block".into()))?;
                (n, parse_labels(block).map_err(ctx)?)
            }
            None => (name_and_labels, Vec::new()),
        };
        if !valid_name(name) {
            return Err(ctx(format!("bad sample name {name:?}")));
        }
        let value: f64 = value_str
            .parse()
            .map_err(|_| ctx(format!("bad sample value {value_str:?}")))?;
        // The sample must belong to a declared family, suffix-correctly.
        let owner = doc.families.iter().find(|(f, t)| {
            allowed_suffixes(t)
                .iter()
                .any(|sfx| name.strip_suffix(sfx) == Some(f))
        });
        let Some((_, family_type)) = owner else {
            return Err(ctx(format!("sample {name:?} has no matching # TYPE")));
        };
        if family_type == "counter" && value < 0.0 {
            return Err(ctx(format!("counter {name:?} is negative")));
        }
        if exemplar.is_some() && !(family_type == "histogram" && name.ends_with("_bucket")) {
            return Err(ctx(format!("exemplar on non-bucket sample {name:?}")));
        }
        doc.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
            exemplar,
        });
    }
    // Histogram checks: per family, buckets cumulative and +Inf == _count.
    for (family, kind) in &doc.families {
        if kind != "histogram" {
            continue;
        }
        let buckets = doc.series(&format!("{family}_bucket"));
        let mut last = f64::NEG_INFINITY;
        let mut prev_count = -1.0;
        let mut inf_value = None;
        for b in &buckets {
            let le = b
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("{family}_bucket without le label"))?;
            let bound: f64 = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse()
                    .map_err(|_| format!("{family}: bad le bound {le:?}"))?
            };
            if bound <= last {
                return Err(format!("{family}: le bounds not increasing at {le:?}"));
            }
            if b.value < prev_count {
                return Err(format!("{family}: bucket counts not cumulative at {le:?}"));
            }
            if let Some((_, ex_value)) = &b.exemplar {
                if *ex_value > bound {
                    return Err(format!(
                        "{family}: exemplar {ex_value} exceeds le bound {le:?}"
                    ));
                }
            }
            last = bound;
            prev_count = b.value;
            if bound.is_infinite() {
                inf_value = Some(b.value);
            }
        }
        if !buckets.is_empty() {
            let inf = inf_value.ok_or_else(|| format!("{family}: no +Inf bucket"))?;
            let count = doc
                .value(&format!("{family}_count"))
                .ok_or_else(|| format!("{family}: missing _count"))?;
            if (inf - count).abs() > 1e-9 {
                return Err(format!("{family}: +Inf bucket {inf} != _count {count}"));
            }
        }
    }
    Ok(doc)
}
