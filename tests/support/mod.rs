//! Deterministic in-tree property-test harness.
//!
//! A registry-free replacement for `proptest`, keeping the repo's tier-1
//! path (`cargo build --release && cargo test -q`) hermetic. Each property
//! runs `cases` times against inputs drawn from a [`Gen`] whose seed is
//! derived from the property *name* and the case index — fully
//! deterministic across runs and machines, no shrinking, no persistence
//! files. When a case fails, the panic message names the property, the
//! case index, and the case seed; replay it in a regular `#[test]` with
//! [`Gen::from_seed`].

// Shared by several test targets; each uses a different subset.
#![allow(dead_code)]

pub mod json;
pub mod openmetrics;

use krr::core::rng::{mix64, Xoshiro256};

/// Deterministic input generator for one property case.
pub struct Gen {
    rng: Xoshiro256,
    seed: u64,
}

impl Gen {
    /// Generator seeded explicitly — used to replay a failing case as a
    /// pinned regression test.
    #[must_use]
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: Xoshiro256::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was built from (for failure reports).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.rng.below(hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.unit() * (hi - lo)
    }

    /// Any `u64` (full range).
    pub fn any_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// A vector of `len in [min_len, max_len)` elements drawn by `f`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Runs `body` against `cases` deterministically seeded generators. The
/// per-case seed depends only on `name` and the case index, so failures
/// reproduce exactly and independently of execution order.
pub fn check(name: &str, cases: u64, mut body: impl FnMut(&mut Gen)) {
    let base = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    for case in 0..cases {
        let seed = mix64(base ^ mix64(case));
        let mut gen = Gen::from_seed(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut gen)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property {name:?} failed at case {case}/{cases} \
                 (replay with Gen::from_seed({seed:#x})): {msg}"
            );
        }
    }
}
