//! Re-export shim: the minimal JSON parser now lives in `krr_core::json`
//! (promoted so `krr doctor` and the CI artifact validator share one
//! implementation with these golden-schema tests). Test call sites keep
//! using `support::json::{parse, Json}` unchanged.

// Shared by several test targets; not every binary uses the parser.
#[allow(unused_imports)]
pub use krr::core::json::{parse, Json};
