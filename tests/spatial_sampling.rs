//! Integration: spatial sampling preserves MRC shape (§2.4, Table 5.1's
//! "KRR+Spatial Sampling" columns) while touching a small fraction of
//! references.

use krr::prelude::*;
use krr::trace::{msr, ycsb};

fn run(trace: &[Request], k: f64, rate: f64, seed: u64) -> (Mrc, krr::core::ModelStats) {
    let mut m = KrrModel::new(KrrConfig::new(k).sampling(rate).seed(seed));
    for r in trace {
        m.access_key(r.key);
    }
    (m.mrc(), m.stats())
}

#[test]
fn sampled_krr_tracks_full_krr_on_zipf() {
    let objects = 200_000u64;
    let trace = ycsb::WorkloadC::new(objects, 0.99).generate(600_000, 1);
    let (full, _) = run(&trace, 5.0, 1.0, 2);
    let rate = krr::core::sampling::rate_for_working_set(0.05, objects, 8 * 1024);
    let (sampled, stats) = run(&trace, 5.0, rate, 2);
    assert!(
        stats.sampled < stats.processed / 10,
        "sampling should skip most refs"
    );
    let sizes = even_sizes(objects as f64, 25);
    let mae = full.mae(&sampled, &sizes);
    assert!(mae < 0.02, "sampled vs full MAE {mae}");
}

#[test]
fn sampled_krr_tracks_simulation_on_msr() {
    let trace = msr::profile(msr::MsrTrace::Web).generate(500_000, 3, 0.3);
    let (objects, _) = krr::sim::working_set(&trace);
    let caps = even_capacities(objects, 15);
    let sim = simulate_mrc(&trace, Policy::klru(4), Unit::Objects, &caps, 1, 8);
    let rate = krr::core::sampling::rate_for_working_set(0.05, objects, 8 * 1024);
    let (sampled, _) = run(&trace, 4.0, rate, 4);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let mae = sim.mae(&sampled, &sizes);
    assert!(mae < 0.03, "sampled KRR vs simulation MAE {mae}");
}

#[test]
fn rate_guard_keeps_small_working_sets_accurate() {
    // A working set of 5K objects at R=0.001 would sample ~5 objects; the
    // guard must raise the rate to keep >= 8K expected samples (here: 1.0).
    let objects = 5_000u64;
    let rate = krr::core::sampling::rate_for_working_set(0.001, objects, 8 * 1024);
    assert_eq!(rate, 1.0);
}

#[test]
fn sampling_is_by_key_not_by_request() {
    // Every reference to a sampled key must be observed: reuse structure is
    // preserved. With per-request sampling the loop below would show cold
    // misses for re-references.
    let mut m = KrrModel::new(KrrConfig::new(2.0).sampling(0.2).seed(5));
    for _ in 0..3 {
        for key in 0..10_000u64 {
            m.access_key(key);
        }
    }
    let h = m.histogram();
    // Sampled keys: each seen 3 times -> exactly 1/3 of sampled refs are cold.
    let cold_frac = h.cold() as f64 / h.total() as f64;
    assert!(
        (cold_frac - 1.0 / 3.0).abs() < 1e-9,
        "cold fraction {cold_frac}"
    );
}

#[test]
fn scale_expands_x_axis_by_inverse_rate() {
    let mut m = KrrModel::new(KrrConfig::new(2.0).sampling(0.25).seed(6));
    for _ in 0..2 {
        for key in 0..40_000u64 {
            m.access_key(key);
        }
    }
    let mrc = m.mrc();
    // The full working set is 40K objects; the curve must extend to that
    // scale (not the sampled ~10K).
    assert!(mrc.max_size() > 30_000.0, "max size {}", mrc.max_size());
    // Just past the working set only colds miss (half the refs). Sampling
    // error can shift the cliff by a few percent, so evaluate at WSS + 10%.
    assert!(
        (mrc.eval(44_000.0) - 0.5).abs() < 0.05,
        "got {}",
        mrc.eval(44_000.0)
    );
}
