//! Integration: the open-loop load harness end-to-end — deterministic
//! schedule generation through the public facade, and real loopback runs
//! against an in-process mini-Redis server.

use krr::load::{run, Arrival, LoadConfig, Schedule};
use krr::redis::{MiniRedis, Server};
use krr::trace::ycsb;

#[test]
fn seeded_schedules_are_bit_identical_across_runs() {
    for arrival in Arrival::ALL {
        let a = Schedule::generate(arrival, 25_000.0, 10_000, 77);
        let b = Schedule::generate(arrival, 25_000.0, 10_000, 77);
        assert_eq!(a.arrivals, b.arrivals, "{arrival:?} not deterministic");
        assert_eq!(a.phase_of, b.phase_of, "{arrival:?} phases drifted");
    }
    // The seed actually matters for the stochastic process.
    let a = Schedule::generate(Arrival::Poisson, 25_000.0, 10_000, 77);
    let b = Schedule::generate(Arrival::Poisson, 25_000.0, 10_000, 78);
    assert_ne!(a.arrivals, b.arrivals, "poisson ignored its seed");
}

#[test]
fn constant_schedule_is_an_exact_grid() {
    // A test (or an A/B bench) can assert exact arrival timestamps: the
    // constant process puts request i at exactly i/qps seconds.
    let s = Schedule::generate(Arrival::Constant, 1_000.0, 5, 123);
    assert_eq!(
        s.arrivals,
        vec![0, 1_000_000, 2_000_000, 3_000_000, 4_000_000]
    );
    // And the seed is irrelevant to the deterministic processes.
    let t = Schedule::generate(Arrival::Constant, 1_000.0, 5, 456);
    assert_eq!(s.arrivals, t.arrivals);
}

#[test]
fn every_arrival_process_respects_its_target_rate() {
    for arrival in Arrival::ALL {
        let qps = 50_000.0;
        let s = Schedule::generate(arrival, qps, 100_000, 9);
        let measured = s.len() as f64 * 1e9 / s.duration_ns() as f64;
        assert!(
            (measured / qps - 1.0).abs() < 0.05,
            "{arrival:?}: schedule encodes {measured} qps, wanted {qps}"
        );
    }
}

#[test]
fn loopback_smoke_every_arrival_process() {
    // Modest rate so a debug build on a loaded CI box keeps up: the
    // assertion is zero errors and complete histograms, not raw speed.
    let trace = ycsb::WorkloadC::new(500, 0.9).generate(4_000, 21);
    let distinct = trace
        .iter()
        .map(|r| r.key)
        .collect::<std::collections::HashSet<_>>()
        .len() as u64;
    for arrival in Arrival::ALL {
        let mut server = Server::start(MiniRedis::new(8 << 20, 5, 17)).unwrap();
        let written = krr::load::prefill(server.addr(), &trace).unwrap();
        assert_eq!(written, distinct, "{arrival:?}: one SET per distinct key");
        let schedule = Schedule::generate(arrival, 10_000.0, trace.len(), 5);
        let cfg = LoadConfig {
            connections: 2,
            pipeline_depth: 16,
            ..LoadConfig::default()
        };
        let report = run(server.addr(), &schedule, &trace, &cfg).unwrap();
        server.shutdown();

        assert_eq!(report.errors, 0, "{arrival:?}: {report:?}");
        assert_eq!(report.requests, trace.len() as u64, "{arrival:?}");
        assert_eq!(
            report.latency_ns.count,
            trace.len() as u64,
            "{arrival:?}: every dispatched request must be measured"
        );
        assert!(report.latency_ns.max_ns > 0, "{arrival:?}: empty histogram");
        assert!(
            report.latency_ns.p50_ns <= report.latency_ns.p99_ns
                && report.latency_ns.p99_ns <= report.latency_ns.max_ns as f64,
            "{arrival:?}: percentiles out of order: {:?}",
            report.latency_ns
        );
        let phase_reqs: u64 = report.phases.iter().map(|p| p.requests).sum();
        assert_eq!(
            phase_reqs, report.requests,
            "{arrival:?}: phases don't tile"
        );
        let phase_measured: u64 = report.phases.iter().map(|p| p.latency_ns.count).sum();
        assert_eq!(phase_measured, report.latency_ns.count, "{arrival:?}");
        assert_eq!(report.arrival, arrival.name());
    }
}

#[test]
fn achieved_qps_tracks_the_schedule() {
    let trace = ycsb::WorkloadC::new(300, 0.9).generate(5_000, 31);
    let mut server = Server::start(MiniRedis::new(8 << 20, 5, 19)).unwrap();
    krr::load::prefill(server.addr(), &trace).unwrap();
    let schedule = Schedule::generate(Arrival::Constant, 10_000.0, trace.len(), 1);
    let report = run(server.addr(), &schedule, &trace, &LoadConfig::default()).unwrap();
    server.shutdown();
    assert!(
        (report.achieved_qps / report.target_qps - 1.0).abs() < 0.10,
        "target {} vs achieved {}",
        report.target_qps,
        report.achieved_qps
    );
    // Half a second of schedule must take roughly half a second of wall
    // time — the dispatcher paces, it does not blast.
    let nominal = schedule.duration_ns() as f64;
    assert!(
        report.duration_ns as f64 > 0.8 * nominal,
        "run finished implausibly fast: {} vs nominal {}",
        report.duration_ns,
        nominal
    );
}

#[test]
fn unpipelined_runs_work_too() {
    let trace = ycsb::WorkloadC::new(200, 0.9).generate(1_500, 41);
    let mut server = Server::start(MiniRedis::new(8 << 20, 5, 23)).unwrap();
    krr::load::prefill(server.addr(), &trace).unwrap();
    let schedule = Schedule::generate(Arrival::Poisson, 5_000.0, trace.len(), 3);
    let cfg = LoadConfig {
        connections: 1,
        pipeline_depth: 1,
        ..LoadConfig::default()
    };
    let report = run(server.addr(), &schedule, &trace, &cfg).unwrap();
    server.shutdown();
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.latency_ns.count, trace.len() as u64);
    assert_eq!(report.connections, 1);
    assert_eq!(report.pipeline_depth, 1);
}
