//! Integration: byte-level (var-KRR) accuracy on variable-object-size
//! workloads (§4.4.1, §5.4, Table 5.2 / Fig 5.3).

use krr::prelude::*;
use krr::trace::{msr, twitter};

fn var_krr_mrc(trace: &[Request], k: u32, rate: f64, seed: u64) -> Mrc {
    let mut cfg = KrrConfig::new(f64::from(k)).byte_level(2, 1024).seed(seed);
    if rate < 1.0 {
        cfg = cfg.sampling(rate);
    }
    let mut m = KrrModel::new(cfg);
    for r in trace {
        m.access(r.key, r.size);
    }
    m.mrc()
}

fn byte_truth(trace: &[Request], k: u32, caps: &[u64]) -> Mrc {
    simulate_mrc(trace, Policy::klru(k), Unit::Bytes, caps, 1, 8)
}

#[test]
fn var_krr_matches_byte_simulation_msr() {
    let trace = msr::profile(msr::MsrTrace::Rsrch).generate_var_size(300_000, 1, 0.2);
    let (_, bytes) = krr::sim::working_set(&trace);
    let caps = even_capacities(bytes, 15);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    for k in [1u32, 8] {
        let truth = byte_truth(&trace, k, &caps);
        let mae = truth.mae(&var_krr_mrc(&trace, k, 1.0, 3), &sizes);
        assert!(mae < 0.02, "msr_rsrch K={k}: var-KRR MAE {mae}");
    }
}

#[test]
fn var_krr_matches_byte_simulation_twitter() {
    let trace = twitter::profile(twitter::TwitterCluster::C52_7).generate(300_000, 2, 0.2, true);
    let (_, bytes) = krr::sim::working_set(&trace);
    let caps = even_capacities(bytes, 15);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let k = 16u32;
    let truth = byte_truth(&trace, k, &caps);
    let mae = truth.mae(&var_krr_mrc(&trace, k, 1.0, 4), &sizes);
    assert!(mae < 0.02, "tw52.7 K={k}: var-KRR MAE {mae}");
}

#[test]
fn uniform_assumption_is_worse_on_skewed_sizes() {
    // Fig 5.3(A): uni-KRR (object distances scaled by the mean size) can
    // deviate; var-KRR must beat it on a size-skewed workload.
    let trace = twitter::profile(twitter::TwitterCluster::C34_1).generate(300_000, 5, 0.1, true);
    let (objects, bytes) = krr::sim::working_set(&trace);
    let mean = bytes as f64 / objects as f64;
    let caps = even_capacities(bytes, 15);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let k = 8u32;
    let truth = byte_truth(&trace, k, &caps);

    let var_mae = truth.mae(&var_krr_mrc(&trace, k, 1.0, 6), &sizes);
    let mut uni = KrrModel::new(KrrConfig::new(f64::from(k)).seed(6));
    for r in &trace {
        uni.access_key(r.key);
    }
    let uni_scaled = Mrc::from_points(
        uni.mrc()
            .points()
            .iter()
            .map(|&(x, y)| (x * mean, y))
            .collect(),
    );
    let uni_mae = truth.mae(&uni_scaled, &sizes);

    assert!(
        var_mae < uni_mae,
        "var-KRR ({var_mae}) must beat uni-KRR ({uni_mae})"
    );
    assert!(var_mae < 0.02, "var-KRR MAE {var_mae}");
}

#[test]
fn var_krr_with_spatial_sampling() {
    let trace = msr::profile(msr::MsrTrace::Web).generate_var_size(400_000, 7, 0.3);
    let (objects, bytes) = krr::sim::working_set(&trace);
    let caps = even_capacities(bytes, 12);
    let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let k = 4u32;
    let truth = byte_truth(&trace, k, &caps);
    let rate = krr::core::sampling::rate_for_working_set(0.1, objects, 8 * 1024);
    let mae = truth.mae(&var_krr_mrc(&trace, k, rate, 8), &sizes);
    assert!(mae < 0.04, "var-KRR+spatial MAE {mae}");
}

#[test]
fn size_changes_on_set_are_tracked() {
    // Objects that get rewritten with different sizes must keep the model's
    // byte accounting exact (the SizeArray::on_resize path).
    let mut m = KrrModel::new(KrrConfig::new(4.0).byte_level(2, 1));
    for round in 0..5u32 {
        for key in 0..500u64 {
            m.access(key, 100 + round * 50);
        }
    }
    // Total bytes on the stack = 500 * final size.
    let mrc = m.mrc();
    let full = 500.0 * 300.0;
    assert!(mrc.eval(full) < 0.21, "full-size miss {}", mrc.eval(full));
    assert_eq!(mrc.eval(0.0), 1.0);
}
