//! Wire tests for the embedded exposition server.
//!
//! Covers the HTTP surface end to end: status codes and content types per
//! endpoint, method/parse rejection, the `/healthz` drift path, shutdown
//! and same-address rebind, and — the load-bearing one — scraping
//! `/metrics` concurrently with a multi-threaded pipeline run, asserting
//! every scrape is valid OpenMetrics and that being scraped does not
//! perturb the resulting MRC by a single bit.

mod support;

use krr::core::expo::{http_get, ExpoServer, ExpoSources, MrcCell, StatsRing};
use krr::core::fleet::{FleetArena, FleetCell, FleetConfig};
use krr::core::forensics::{Exemplar, ExemplarRing};
use krr::core::obs::FlightRecorder;
use krr::core::sharded::ShardedKrr;
use krr::core::{KrrConfig, MetricsRegistry, Mrc, TenantRow};
use krr::trace::ycsb;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use support::json;
use support::openmetrics;

/// A server with every source wired, plus handles to feed them.
#[allow(clippy::type_complexity)]
fn full_server() -> (
    ExpoServer,
    Arc<MetricsRegistry>,
    Arc<MrcCell>,
    Arc<StatsRing>,
    Arc<FleetCell>,
    Arc<ExemplarRing>,
) {
    let reg = Arc::new(MetricsRegistry::new());
    let mrc = Arc::new(MrcCell::new());
    let stats = Arc::new(StatsRing::new());
    let fleet = Arc::new(FleetCell::new());
    let exemplars = Arc::new(ExemplarRing::new());
    let recorder = Arc::new(FlightRecorder::new());
    let sources = ExpoSources {
        metrics: Some(Arc::clone(&reg)),
        mrc: Some(Arc::clone(&mrc)),
        stats: Some(Arc::clone(&stats)),
        trace: Some(Arc::clone(&recorder)),
        tenants: Some(Arc::clone(&fleet)),
        exemplars: Some(Arc::clone(&exemplars)),
        profiler: Some(Arc::clone(recorder.profiler())),
    };
    let server = ExpoServer::start("127.0.0.1:0", sources).unwrap();
    (server, reg, mrc, stats, fleet, exemplars)
}

/// Sends a raw request (caller includes the blank line) and returns the
/// response status code — for the malformed-request paths `http_get`
/// cannot produce.
fn raw_request(addr: SocketAddr, request: &str) -> u16 {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw).into_owned();
    text.lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line")
}

#[test]
fn endpoints_report_expected_statuses_and_content_types() {
    let (server, reg, mrc, stats, _fleet, _ex) = full_server();
    let addr = server.addr();
    reg.accesses.add(42);

    let (status, ctype, body) = http_get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, krr::core::expo::OPENMETRICS_CONTENT_TYPE);
    openmetrics::validate(&body).expect("/metrics must be valid OpenMetrics");

    // /mrc: 503 until the first publish, then 200 with krr-mrc-v1 JSON.
    let (status, _, _) = http_get(addr, "/mrc").unwrap();
    assert_eq!(status, 503);
    mrc.publish(Mrc::from_points(vec![(0.0, 1.0), (100.0, 0.25)]));
    let (status, ctype, body) = http_get(addr, "/mrc").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, "application/json");
    let doc = json::parse(&body).unwrap();
    assert_eq!(
        doc.get("schema").and_then(json::Json::as_str),
        Some("krr-mrc-v1")
    );

    stats.push("{\"requests\":10}".into());
    stats.push("{\"requests\":20}".into());
    let (status, ctype, body) = http_get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, "application/json");
    assert_eq!(body, "[{\"requests\":10},{\"requests\":20}]");
    json::parse(&body).expect("/stats must be valid JSON");

    let (status, ctype, body) = http_get(addr, "/trace").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, "application/json");
    json::parse(&body).expect("/trace must be valid JSON");

    let (status, ctype, body) = http_get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, "application/json");
    assert!(body.contains("\"status\":\"ok\""));

    let (status, _, _) = http_get(addr, "/no-such-endpoint").unwrap();
    assert_eq!(status, 404);
    // Query strings are ignored, not 404ed.
    let (status, _, _) = http_get(addr, "/metrics?format=openmetrics").unwrap();
    assert_eq!(status, 200);
}

#[test]
fn non_get_and_malformed_requests_are_rejected() {
    let (server, _reg, _mrc, _stats, _fleet, _ex) = full_server();
    let addr = server.addr();
    let status = raw_request(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 405);
    let status = raw_request(addr, "NONSENSE\r\n\r\n");
    assert_eq!(status, 400);
    // The server survives malformed traffic: a normal scrape still works.
    let (status, _, _) = http_get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
}

#[test]
fn healthz_reports_drift_as_503() {
    let (server, reg, _mrc, _stats, _fleet, _ex) = full_server();
    reg.watchdog_drift_events.add(1);
    let (status, _, body) = http_get(server.addr(), "/healthz").unwrap();
    assert_eq!(status, 503);
    assert!(body.contains("\"status\":\"drift\""));
    assert!(body.contains("\"drift_events\":1"));
}

#[test]
fn healthz_details_which_subsystem_is_unhealthy() {
    let (server, reg, _mrc, _stats, _fleet, _ex) = full_server();
    let addr = server.addr();

    // Pipeline stalls are back-pressure, not ill health: surfaced in the
    // body but the status code stays 200.
    reg.pipeline_stalls.add(7);
    let (status, _, body) = http_get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "body: {body}");
    assert!(body.contains("\"pipeline_stalls\":7"), "body: {body}");
    assert!(body.contains("\"pipeline\":\"stalls\""), "body: {body}");
    assert!(body.contains("\"watchdog\":\"ok\""), "body: {body}");
    assert!(body.contains("\"tenants\":\"ok\""), "body: {body}");
    json::parse(&body).expect("/healthz must be valid JSON");

    // A single drifted tenant row flips health to 503 even with zero
    // aggregate watchdog drift — and the body names the subsystem.
    reg.set_tenant_rows(vec![TenantRow {
        id: 4,
        refs: 10,
        resident: 5,
        resident_bytes: 512,
        miss_ratio_ppm: 250_000,
        drift_events: 2,
        mae_ppm: 90_000,
        shadowed: true,
    }]);
    let (status, _, body) = http_get(addr, "/healthz").unwrap();
    assert_eq!(status, 503);
    assert!(body.contains("\"status\":\"drift\""), "body: {body}");
    assert!(body.contains("\"tenants_drifted\":1"), "body: {body}");
    assert!(body.contains("\"tenants\":\"drift\""), "body: {body}");
    assert!(body.contains("\"watchdog\":\"ok\""), "body: {body}");
}

#[test]
fn tenant_endpoints_serve_published_fleet_views() {
    let (server, _reg, _mrc, _stats, fleet, _ex) = full_server();
    let addr = server.addr();

    // Both tenant endpoints answer 503 until the first published view.
    let (status, _, _) = http_get(addr, "/tenants").unwrap();
    assert_eq!(status, 503);
    let (status, _, _) = http_get(addr, "/mrc?tenant=0").unwrap();
    assert_eq!(status, 503);

    let mut arena = FleetArena::new(FleetConfig::new(KrrConfig::new(64.0).seed(9)));
    for i in 0..30_000u64 {
        arena.access(i % 3, i.wrapping_mul(0x9E37_79B9_7F4A_7C15), 1);
    }
    fleet.publish(arena.view());

    let (status, ctype, body) = http_get(addr, "/tenants").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, "application/json");
    let doc = json::parse(&body).unwrap();
    assert_eq!(
        doc.get("schema").and_then(json::Json::as_str),
        Some("krr-tenants-v1")
    );
    assert_eq!(doc.get("count").and_then(json::Json::as_num), Some(3.0));

    // CSV: fixed header, one row per tenant; ?top=1 keeps only the
    // hottest.
    let (status, ctype, csv) = http_get(addr, "/tenants?format=csv").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, "text/csv");
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("id,refs,resident,resident_bytes,miss_ratio_ppm,drift_events,mae_ppm,shadowed")
    );
    assert_eq!(lines.count(), 3, "one CSV row per tenant");
    let (_, _, top1) = http_get(addr, "/tenants?format=csv&top=1").unwrap();
    assert_eq!(
        top1.lines().count(),
        2,
        "header plus the single hottest row"
    );

    // Per-tenant MRC as JSON…
    let (status, ctype, body) = http_get(addr, "/mrc?tenant=1").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, "application/json");
    let doc = json::parse(&body).unwrap();
    assert_eq!(
        doc.get("schema").and_then(json::Json::as_str),
        Some("krr-mrc-v1")
    );

    // …and as CSV that is byte-identical to `persist::write_mrc` output,
    // so `krr partition --live` parses it with the existing reader.
    let (status, ctype, csv) = http_get(addr, "/mrc?tenant=1&format=csv").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, "text/csv");
    let direct = arena.tenant_mrc(1).expect("tenant 1 exists");
    let mut expected = Vec::new();
    krr::core::persist::write_mrc(&mut expected, &direct).unwrap();
    assert_eq!(
        csv.as_bytes(),
        &expected[..],
        "served CSV must match persist::write_mrc bytes exactly"
    );
    let served = krr::core::persist::read_mrc(csv.as_bytes()).expect("round-trip");
    assert_eq!(served.points().len(), direct.points().len());

    // Unknown tenants 404; junk ids 400.
    let (status, _, _) = http_get(addr, "/mrc?tenant=999").unwrap();
    assert_eq!(status, 404);
    let (status, _, _) = http_get(addr, "/mrc?tenant=bogus").unwrap();
    assert_eq!(status, 400);
}

#[test]
fn endpoints_without_sources_answer_404() {
    let server = ExpoServer::start("127.0.0.1:0", ExpoSources::default()).unwrap();
    for path in [
        "/metrics",
        "/mrc",
        "/stats",
        "/trace",
        "/tenants",
        "/exemplars",
        "/profile",
    ] {
        let (status, _, _) = http_get(server.addr(), path).unwrap();
        assert_eq!(status, 404, "{path} without a source");
    }
    // /healthz always answers, even with nothing wired.
    let (status, _, _) = http_get(server.addr(), "/healthz").unwrap();
    assert_eq!(status, 200);
}

#[test]
fn forensics_endpoints_serve_exemplars_and_profile() {
    let (server, _reg, _mrc, _stats, _fleet, exemplars) = full_server();
    let addr = server.addr();

    // The profiler source is wired but empty: /profile answers 200 with
    // an empty folded document until a registered thread samples.
    let (status, ctype, body) = http_get(addr, "/profile").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, "text/plain");
    assert!(body.is_empty(), "unexpected folded lines: {body:?}");

    // Feed the exemplar ring the way the RESP server does: observe every
    // latency, capture the ones the threshold flags.
    for i in 0..200u64 {
        let id = exemplars.next_request_id();
        let latency = if i % 50 == 49 { 900_000 } else { 700 };
        if exemplars.observe(latency) {
            exemplars.capture(&Exemplar {
                request_id: id,
                tenant: Some(i % 3),
                latency_ns: latency,
                start_ns: i,
                command_tag: 2,
                ..Exemplar::default()
            });
        }
    }
    assert!(exemplars.captured() > 0, "no exemplars captured");

    // /metrics carries the latency histogram with exemplar suffixes that
    // the extended validator both accepts and bound-checks.
    let (status, _, body) = http_get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let doc = openmetrics::validate(&body).expect("exemplars must validate");
    let with_exemplar: Vec<_> = doc
        .series("krr_command_latency_ns_bucket")
        .into_iter()
        .filter(|s| s.exemplar.is_some())
        .collect();
    assert!(!with_exemplar.is_empty(), "no exemplar suffix rendered");
    let (labels, value) = with_exemplar[0].exemplar.as_ref().unwrap();
    assert!(labels.iter().any(|(k, _)| k == "request_id"));
    assert!(*value > 0.0);

    // /exemplars: the krr-exemplars-v1 dump, newest state of the ring.
    let (status, ctype, body) = http_get(addr, "/exemplars").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, "application/json");
    let doc = json::parse(&body).unwrap();
    assert_eq!(
        doc.get("schema").and_then(json::Json::as_str),
        Some("krr-exemplars-v1")
    );
    assert!(
        doc.get("exemplars")
            .and_then(json::Json::as_arr)
            .is_some_and(|a| !a.is_empty()),
        "{body}"
    );

    // /metrics?format=json serves the krr-metrics-v1 snapshot (the
    // `krr doctor --live` input).
    let (status, ctype, body) = http_get(addr, "/metrics?format=json").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, "application/json");
    let doc = json::parse(&body).unwrap();
    assert_eq!(
        doc.get("schema").and_then(json::Json::as_str),
        Some("krr-metrics-v1")
    );

    // /healthz surfaces forensic ring losses without flipping health.
    let (status, _, body) = http_get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"exemplar_drops\":"), "body: {body}");
    assert!(body.contains("\"profiler_drops\":"), "body: {body}");
    assert!(body.contains("\"forensics\":\"ok\""), "body: {body}");
}

#[test]
fn shutdown_releases_port_for_rebind() {
    // Checkpoint/restore composition: a restored run must be able to
    // rebind the address its predecessor served on. Cycle several times
    // to also catch leaked listener threads holding the port.
    let mut server = ExpoServer::start("127.0.0.1:0", ExpoSources::default()).unwrap();
    let addr = server.addr();
    for round in 0..4 {
        server.shutdown();
        server = ExpoServer::start(addr, ExpoSources::default())
            .unwrap_or_else(|e| panic!("rebind round {round}: {e}"));
        assert_eq!(server.addr(), addr);
        let (status, _, _) = http_get(addr, "/healthz").unwrap();
        assert_eq!(status, 200, "round {round}");
    }
}

/// One sharded run over a fixed trace; scraped == whether an ExpoServer
/// is attached and hammered during the run.
fn pipeline_run(scraped: bool) -> Mrc {
    let trace = ycsb::WorkloadC::new(2_000, 0.9).generate(150_000, 7);
    let reg = Arc::new(MetricsRegistry::new());
    let mut bank = ShardedKrr::new(&KrrConfig::new(5.0).seed(11), 4);
    bank.set_metrics(Arc::clone(&reg));

    let mut server_and_scraper = None;
    if scraped {
        let sources = ExpoSources {
            metrics: Some(Arc::clone(&reg)),
            ..ExpoSources::default()
        };
        let server = ExpoServer::start("127.0.0.1:0", sources).unwrap();
        let addr = server.addr();
        let done = Arc::new(AtomicBool::new(false));
        let scraper_done = Arc::clone(&done);
        let scraper = std::thread::spawn(move || {
            let mut scrapes = 0u32;
            loop {
                let (status, ctype, body) = http_get(addr, "/metrics").expect("scrape");
                assert_eq!(status, 200);
                assert!(ctype.starts_with("application/openmetrics-text"));
                if let Err(e) = openmetrics::validate(&body) {
                    panic!("scrape {scrapes} produced invalid OpenMetrics: {e}");
                }
                scrapes += 1;
                if scraper_done.load(Ordering::Acquire) {
                    return scrapes;
                }
            }
        });
        server_and_scraper = Some((server, done, scraper));
    }

    bank.process_stream(trace.iter().map(|r| (r.key, r.size)), 3);

    if let Some((mut server, done, scraper)) = server_and_scraper {
        done.store(true, Ordering::Release);
        let scrapes = scraper.join().expect("scraper thread");
        assert!(scrapes >= 2, "expected repeated scrapes, got {scrapes}");
        server.shutdown();
    }
    bank.mrc()
}

#[test]
fn concurrent_scraping_is_valid_and_preserves_bit_identity() {
    let quiet = pipeline_run(false);
    let scraped = pipeline_run(true);
    assert_eq!(
        quiet.points().len(),
        scraped.points().len(),
        "scraping changed the MRC point count"
    );
    for (i, (a, b)) in quiet.points().iter().zip(scraped.points()).enumerate() {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "x diverged at point {i}");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "y diverged at point {i}");
    }
}

#[test]
fn openmetrics_validator_rejects_malformed_documents() {
    let cases: &[(&str, &str)] = &[
        ("# TYPE a counter\na_total 1\n", "missing # EOF"),
        ("orphan 1\n# EOF\n", "sample without TYPE"),
        ("# TYPE a counter\na_total -1\n# EOF\n", "negative counter"),
        ("# TYPE a counter\na_total nope\n# EOF\n", "non-numeric value"),
        (
            "# TYPE a gauge\na{le=unquoted} 1\n# EOF\n",
            "unquoted label value",
        ),
        (
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 9\n# EOF\n",
            "non-cumulative buckets",
        ),
        (
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\nh_sum 9\n# EOF\n",
            "+Inf bucket != _count",
        ),
        ("# TYPE a counter\n# EOF\nafter 1\n", "content after EOF"),
    ];
    for (doc, why) in cases {
        assert!(
            openmetrics::validate(doc).is_err(),
            "validator accepted a bad document ({why}): {doc:?}"
        );
    }
    // And the shape it must accept: the real renderer output.
    let reg = MetricsRegistry::new();
    reg.accesses.add(3);
    reg.chain_len.record(2);
    reg.chain_len.record(9);
    reg.init_shards(2);
    reg.shard_access_n(0, 2);
    let text = krr::core::expo::render_openmetrics(&reg.snapshot());
    let doc = openmetrics::validate(&text).expect("renderer output must validate");
    assert_eq!(doc.value("krr_accesses_total"), Some(3.0));
    assert_eq!(doc.series("krr_shard_accesses_total").len(), 2);
}
