//! Integration: the RESP wire path end-to-end — profile a workload through
//! a TCP client against the mini-Redis server and validate the KRR
//! prediction against the wire-measured miss ratio (§5.7, but over an
//! actual protocol instead of an embedded store).

use krr::prelude::*;
use krr::redis::client::Client;
use krr::redis::server::Server;
use krr::redis::MiniRedis;
use krr::trace::ycsb;

const OBJ: u32 = 200;

#[test]
fn wire_miss_ratio_matches_embedded_store() {
    let trace = ycsb::WorkloadC::new(2_000, 0.9).generate(20_000, 1);
    let memory = 1_000 * u64::from(OBJ);

    // Over the wire.
    let mut server = Server::start(MiniRedis::new(memory, 5, 7)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let mut wire_hits = 0u64;
    for r in &trace {
        if client.access(r.key, OBJ).unwrap() {
            wire_hits += 1;
        }
    }
    let wire_miss = 1.0 - wire_hits as f64 / trace.len() as f64;
    server.shutdown();

    // Embedded.
    let mut store = MiniRedis::new(memory, 5, 7);
    let mut local_hits = 0u64;
    for r in &trace {
        if store.access(&Request::get(r.key, OBJ)) {
            local_hits += 1;
        }
    }
    let local_miss = 1.0 - local_hits as f64 / trace.len() as f64;

    // Same store, same seed, same request stream -> identical decisions.
    assert!(
        (wire_miss - local_miss).abs() < 1e-9,
        "wire {wire_miss} vs embedded {local_miss}"
    );
}

#[test]
fn krr_predicts_wire_measured_miss_ratio() {
    let objects = 3_000u64;
    let trace = ycsb::WorkloadC::new(objects, 0.99).generate(30_000, 2);
    let memory = objects * u64::from(OBJ) / 2;

    let mut server = Server::start(MiniRedis::new(memory, 5, 3)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let mut hits = 0u64;
    for r in &trace {
        if client.access(r.key, OBJ).unwrap() {
            hits += 1;
        }
    }
    let wire_miss = 1.0 - hits as f64 / trace.len() as f64;
    server.shutdown();

    let mut model = KrrModel::new(KrrConfig::new(5.0).seed(4));
    for r in &trace {
        model.access_key(r.key);
    }
    let predicted = model.mrc().eval(memory as f64 / f64::from(OBJ));
    assert!(
        (predicted - wire_miss).abs() < 0.05,
        "KRR {predicted} vs wire-measured {wire_miss}"
    );
}

#[test]
fn info_counters_match_client_observations() {
    let mut server = Server::start(MiniRedis::new(100_000, 5, 5)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let mut hits = 0u64;
    let mut misses = 0u64;
    for i in 0..500u64 {
        if client.access(i % 100, 50).unwrap() {
            hits += 1;
        } else {
            misses += 1;
        }
    }
    let info = client.info().unwrap();
    assert!(info.contains(&format!("hits:{hits}")), "{info}");
    assert!(info.contains(&format!("misses:{misses}")), "{info}");
    server.shutdown();
}

/// First `name:<u64>` field in a Redis-INFO-style body.
fn info_field(body: &str, name: &str) -> u64 {
    body.lines()
        .filter_map(|l| l.trim_end().strip_prefix(&format!("{name}:")))
        .find_map(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("field {name} missing from\n{body}"))
}

/// `"name":<u64>` field in the METRICS JSON payload.
fn json_field(json: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("field {name} missing from {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn info_exposes_metrics_sections() {
    let mut server = Server::start(MiniRedis::new(4_000, 5, 9)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // Working set larger than memory, so evictions happen too.
    for i in 0..400u64 {
        client.access(i % 120, 50).unwrap();
    }
    let info = client.info().unwrap();
    for section in [
        "# model",
        "# updater",
        "# latency",
        "# shards",
        "# pipeline",
        "# eviction",
    ] {
        assert!(info.contains(section), "{section} missing from\n{info}");
    }
    assert_eq!(info_field(&info, "accesses"), 400);
    assert!(info_field(&info, "evictions") > 0, "{info}");
    server.shutdown();
}

#[test]
fn pipeline_metrics_exposed_over_the_wire() {
    // A store with online MRC profiling exposes the profiler's shard and
    // pipeline counters through the same INFO/METRICS endpoints.
    let mut store = MiniRedis::new(100_000, 5, 13);
    store.enable_mrc_profiling(&KrrConfig::new(5.0).seed(2), 4);
    let mut server = Server::start(store).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..300u64 {
        client.access(i % 90, 50).unwrap();
    }
    let info = client.info().unwrap();
    assert!(info.contains("# pipeline"), "{info}");
    for field in [
        "batches",
        "stalls",
        "keys_hashed",
        "router_busy_ns",
        "worker_busy_ns",
    ] {
        let _ = info_field(&info, field);
    }
    assert!(info.contains("queue_depth_hwm:"), "{info}");
    // The profiler feeds through the sequential path here, so the shard
    // counters are live while the pipeline counters stay zero.
    let json = client.metrics().unwrap();
    assert!(json.contains("\"pipeline\":{\"batches\":"), "{json}");
    assert!(json.contains("\"queue_depth_hwm\":["), "{json}");
    let shard_total: u64 = {
        // The model section's "accesses" is scalar; only the shards
        // section carries "accesses":[...].
        let pat = "\"accesses\":[";
        let at = json.find(pat).map(|i| i + pat.len());
        at.map_or(0, |i| {
            json[i..]
                .split(']')
                .next()
                .unwrap_or("")
                .split(',')
                .filter_map(|v| v.parse::<u64>().ok())
                .sum()
        })
    };
    assert_eq!(shard_total, 300, "{json}");
    server.shutdown();
}

#[test]
fn metrics_command_counters_monotone_and_match_info() {
    let mut server = Server::start(MiniRedis::new(4_000, 5, 11)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..200u64 {
        client.access(i % 60, 50).unwrap();
    }
    let first = client.metrics().unwrap();
    assert!(first.contains("\"schema\":\"krr-metrics-v1\""), "{first}");
    for i in 0..200u64 {
        client.access(i % 60, 50).unwrap();
    }
    let second = client.metrics().unwrap();
    for name in ["accesses", "hits", "evictions"] {
        let (a, b) = (json_field(&first, name), json_field(&second, name));
        assert!(b >= a, "{name} went backwards: {a} -> {b}");
    }
    assert_eq!(json_field(&second, "accesses"), 400);
    // One sequential client, so INFO and METRICS see the same quiesced
    // counters.
    let info = client.info().unwrap();
    for name in ["accesses", "hits", "cold_misses", "evictions"] {
        assert_eq!(
            info_field(&info, name),
            json_field(&second, name),
            "INFO and METRICS disagree on {name}"
        );
    }
    server.shutdown();
}

mod support;

// ---------------------------------------------------------------------------
// Adversarial wire cases: hostile framing against a live server socket.
// Exhaustive per-byte-boundary coverage lives in the codec's unit tests
// (`resp::tests`); these exercise the same paths through real TCP,
// including the server's 50ms socket read timeout.
// ---------------------------------------------------------------------------

use krr::redis::resp::{self, Value};
use std::io::{BufReader, Write};
use std::net::TcpStream;

/// Raw socket + buffered reader pair, bypassing the `Client` wrapper so a
/// test controls exactly which bytes hit the wire and when.
fn raw_conn(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

#[test]
fn pipelined_burst_in_one_tcp_segment() {
    let mut server = Server::start(MiniRedis::new(100_000, 5, 29)).unwrap();
    let (mut stream, mut reader) = raw_conn(server.addr());
    // 100 SET+GET pairs encoded into one buffer and one write call: the
    // server must frame every command itself instead of relying on
    // message-per-read.
    let mut wire = Vec::new();
    for key in 0..100u64 {
        let k = key.to_string();
        resp::write_value(
            &mut wire,
            &Value::command(&[b"SET", k.as_bytes(), b"xxxxxxxx"]),
        )
        .unwrap();
        resp::write_value(&mut wire, &Value::command(&[b"GET", k.as_bytes()])).unwrap();
    }
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();
    for key in 0..100u64 {
        let set_reply = resp::read_value(&mut reader).unwrap();
        assert!(
            matches!(&set_reply, Value::Simple(s) if s == "OK"),
            "SET {key}: {set_reply:?}"
        );
        let get_reply = resp::read_value(&mut reader).unwrap();
        assert_eq!(get_reply, Value::bulk(b"1".to_vec()), "GET {key}");
    }
    server.shutdown();
}

#[test]
fn command_split_across_reads_survives_socket_timeouts() {
    let mut server = Server::start(MiniRedis::new(10_000, 5, 31)).unwrap();
    let (mut stream, mut reader) = raw_conn(server.addr());
    // One byte per write, with a pause longer than the server's 50ms read
    // timeout between each: every byte boundary of the command doubles as
    // a timeout boundary. The old line reader lost its partial state on
    // the first timeout and desynced the stream.
    let cmd = b"*1\r\n$4\r\nPING\r\n";
    for &b in cmd.iter() {
        stream.write_all(&[b]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
    }
    let reply = resp::read_value(&mut reader).unwrap();
    assert!(
        matches!(&reply, Value::Simple(s) if s == "PONG"),
        "{reply:?}"
    );
    // Same split mid-bulk-payload: the value "hello" arrives in two
    // fragments with a >timeout gap, then the connection keeps working.
    let (head, tail) = (
        b"*3\r\n$3\r\nSET\r\n$2\r\n77\r\n$5\r\nhel" as &[u8],
        b"lo\r\n" as &[u8],
    );
    stream.write_all(head).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(120));
    stream.write_all(tail).unwrap();
    stream.flush().unwrap();
    let reply = resp::read_value(&mut reader).unwrap();
    assert!(matches!(&reply, Value::Simple(s) if s == "OK"), "{reply:?}");
    stream
        .write_all(b"*2\r\n$3\r\nGET\r\n$2\r\n77\r\n")
        .unwrap();
    stream.flush().unwrap();
    assert_eq!(
        resp::read_value(&mut reader).unwrap(),
        Value::bulk(b"1".to_vec())
    );
    server.shutdown();
}

#[test]
fn oversized_and_zero_length_bulk_strings() {
    let mut server = Server::start(MiniRedis::new(10_000, 5, 37)).unwrap();

    // A 600MB bulk claim must be refused before allocation: the server
    // answers with a protocol error and hangs up instead of reserving
    // attacker-chosen memory.
    let (mut stream, mut reader) = raw_conn(server.addr());
    stream
        .write_all(format!("*2\r\n$3\r\nGET\r\n${}\r\n", 600u64 << 20).as_bytes())
        .unwrap();
    stream.flush().unwrap();
    let reply = resp::read_value(&mut reader).unwrap();
    assert!(
        matches!(&reply, Value::Error(e) if e.contains("Protocol error")),
        "{reply:?}"
    );
    assert!(
        resp::read_value(&mut reader).is_err(),
        "connection must close after a protocol error"
    );

    // Same for a hostile array arity claim.
    let (mut stream, mut reader) = raw_conn(server.addr());
    stream.write_all(b"*999999999\r\n").unwrap();
    stream.flush().unwrap();
    let reply = resp::read_value(&mut reader).unwrap();
    assert!(
        matches!(&reply, Value::Error(e) if e.contains("Protocol error")),
        "{reply:?}"
    );

    // Zero-length bulks are *valid* RESP: an empty SET value stores a
    // zero-byte object, and an empty key is merely a command-level error
    // (keys are u64 here), never a hangup.
    let (mut stream, mut reader) = raw_conn(server.addr());
    stream
        .write_all(b"*3\r\n$3\r\nSET\r\n$1\r\n5\r\n$0\r\n\r\n")
        .unwrap();
    stream.write_all(b"*2\r\n$3\r\nGET\r\n$0\r\n\r\n").unwrap();
    stream.write_all(b"*1\r\n$4\r\nPING\r\n").unwrap();
    stream.flush().unwrap();
    assert!(matches!(
        resp::read_value(&mut reader).unwrap(),
        Value::Simple(_)
    ));
    assert!(matches!(
        resp::read_value(&mut reader).unwrap(),
        Value::Error(_)
    ));
    assert!(
        matches!(&resp::read_value(&mut reader).unwrap(), Value::Simple(s) if s == "PONG"),
        "connection must survive command-level errors"
    );
    server.shutdown();
}

#[test]
fn abrupt_mid_command_disconnect_leaves_server_healthy() {
    let mut server = Server::start(MiniRedis::new(10_000, 5, 41)).unwrap();
    // Sever connections at several cut points inside a command; each
    // abandoned fragment must be contained to its own connection.
    for cut in [
        b"*3\r\n" as &[u8],
        b"*3\r\n$3\r\nSE",
        b"*3\r\n$3\r\nSET\r\n$2\r\n10\r\n$5\r\nhe",
        b"$12\r\nnever-arrive",
    ] {
        let (mut stream, _reader) = raw_conn(server.addr());
        stream.write_all(cut).unwrap();
        stream.flush().unwrap();
        drop(stream); // RST/FIN mid-command
    }
    // The accept loop and store are unaffected.
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.ping().unwrap());
    for i in 0..50u64 {
        client.access(i, 50).unwrap();
    }
    assert_eq!(client.dbsize().unwrap(), 50);
    server.shutdown();
}

#[test]
fn slowlog_over_the_wire() {
    let mut server = Server::start(MiniRedis::new(100_000, 5, 17)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // Default threshold is 10ms, so the in-memory fast path logs nothing.
    for i in 0..50u64 {
        client.access(i, 50).unwrap();
    }
    assert_eq!(
        client.slowlog_len().unwrap(),
        0,
        "fast commands were logged"
    );
    // Threshold 0 logs every command that follows.
    client.set_slowlog_threshold_us(0).unwrap();
    client.set(1, 64).unwrap();
    assert!(client.get(1).unwrap());
    client.dbsize().unwrap();
    let entries = client.slowlog_get().unwrap();
    // Newest first, unique ascending ids, command argv preserved verbatim.
    let ids: Vec<i64> = entries.iter().map(|e| e.0).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(ids, sorted, "entries not newest-first: {ids:?}");
    let argv0: Vec<&[u8]> = entries.iter().map(|e| e.3[0].as_slice()).collect();
    // The newest logged entry is the SLOWLOG LEN probe... no: LEN ran
    // before threshold 0 in this sequence, so the tail here is
    // [DBSIZE, GET, SET, CONFIG] oldest-last.
    assert_eq!(
        argv0,
        [b"DBSIZE" as &[u8], b"GET", b"SET", b"CONFIG"],
        "unexpected slowlog commands"
    );
    let get_entry = entries.iter().find(|e| e.3[0] == b"GET").unwrap();
    assert_eq!(get_entry.3[1], b"1", "GET argument not preserved");
    assert!(get_entry.1 >= 0 && get_entry.2 >= 0, "negative timestamps");
    // No TENANT was selected on this connection, so every entry is
    // unattributed (RESP nil in the 5th field).
    assert!(entries.iter().all(|e| e.4.is_none()), "{entries:?}");
    // RESET clears history; with threshold 0 the RESET itself is the
    // only survivor when LEN next looks.
    client.slowlog_reset().unwrap();
    assert_eq!(client.slowlog_len().unwrap(), 1);
    server.shutdown();
}

#[test]
fn slowlog_config_roundtrip_over_the_wire() {
    let mut server = Server::start(MiniRedis::new(10_000, 5, 19)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.set_slowlog_threshold_us(250).unwrap();
    let reply = client
        .raw(&[b"CONFIG", b"GET", b"slowlog-log-slower-than"])
        .unwrap();
    let krr::redis::resp::Value::Array(items) = reply else {
        panic!("CONFIG GET: expected array, got {reply:?}");
    };
    assert_eq!(
        items,
        vec![
            krr::redis::resp::Value::Bulk(Some(b"slowlog-log-slower-than".to_vec())),
            krr::redis::resp::Value::Bulk(Some(b"250".to_vec())),
        ]
    );
    server.shutdown();
}

#[test]
fn trace_dump_returns_chrome_trace_with_command_spans() {
    use support::json::{parse, Json};
    let mut server = Server::start(MiniRedis::new(100_000, 5, 23)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..200u64 {
        client.access(i % 40, 50).unwrap();
    }
    let dump = client.trace_dump().unwrap();
    let doc = parse(&dump).expect("TRACE DUMP must return valid JSON");
    assert_eq!(
        doc.get("otherData")
            .and_then(|d| d.get("schema"))
            .and_then(Json::as_str),
        Some("krr-trace-v1")
    );
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let mut conn_ring = false;
    let mut command_spans = 0u64;
    for ev in events {
        match ev.get("ph").and_then(Json::as_str) {
            Some("M") => {
                let name = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap_or("");
                conn_ring |= name.starts_with("conn-");
            }
            Some("X") => {
                assert!(ev.get("ts").and_then(Json::as_num).is_some());
                assert!(ev.get("dur").and_then(Json::as_num).is_some());
                if ev.get("name").and_then(Json::as_str) == Some("command") {
                    command_spans += 1;
                }
            }
            other => panic!("unexpected ph {other:?}"),
        }
    }
    assert!(conn_ring, "no conn-* thread registered in the trace");
    // 200 GETs plus one SET per cold miss (40 distinct keys, all fit),
    // and the default ring keeps the newest 8192 events, so every
    // command span is still present.
    assert_eq!(
        command_spans, 240,
        "expected 200 GET + 40 SET command spans"
    );
    server.shutdown();
}
