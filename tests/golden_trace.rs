//! Golden-trace regression tests: a seeded synthetic trace with committed
//! expected miss ratios for KRR (K ∈ {1, 5, 10}) against Olken exact-LRU,
//! plus bit-identity of `ShardedKrr` merges across 1/2/8 shards.
//!
//! The trace is built from pure IEEE arithmetic (no libm calls), so it is
//! identical on every platform. Olken's stack distances are integers and
//! its goldens are compared *exactly*. KRR's updaters call `powf` (libm,
//! platform-dependent in the last ulps), so its goldens carry a small
//! tolerance. Regenerate with:
//!
//! ```text
//! cargo test --test golden_trace -- --ignored --nocapture
//! ```

use krr::baselines::OlkenLru;
use krr::core::rng::Xoshiro256;
use krr::core::sharded::ShardedKrr;
use krr::core::{KrrConfig, KrrModel};

/// 100k skewed accesses over ~10k keys. `u*u*keys` uses only IEEE add/mul
/// (exactly rounded, bit-stable everywhere), never libm.
fn golden_trace() -> Vec<u64> {
    let mut rng = Xoshiro256::seed_from_u64(0x601D);
    (0..100_000)
        .map(|_| {
            let u = rng.unit();
            (u * u * 10_000.0) as u64
        })
        .collect()
}

const CAPACITIES: [u64; 5] = [100, 500, 1_000, 2_000, 5_000];

/// Exact-LRU golden: misses = accesses with stack distance > C, plus
/// colds. Integer arithmetic end to end — compared exactly.
const OLKEN_MISSES: [u64; 5] = [97_109, 89_186, 81_211, 68_316, 39_399];

/// KRR golden mean miss ratios per K (same capacities), default config
/// (backward updater, K′ = K^1.4 correction), seed 1.
const KRR_GOLDENS: [(f64, [f64; 5]); 3] = [
    (1.0, [0.97340, 0.89899, 0.82604, 0.70581, 0.42168]),
    (5.0, [0.97180, 0.89196, 0.81493, 0.68653, 0.39770]),
    (10.0, [0.97141, 0.89235, 0.81322, 0.68503, 0.39560]),
];

/// `powf` differs across libms only in final ulps; its effect on a 100k-
/// access miss ratio stays far below this.
const KRR_TOL: f64 = 2e-3;

fn olken_misses(trace: &[u64]) -> [u64; 5] {
    let mut o = OlkenLru::new();
    let mut misses = [0u64; 5];
    for &key in trace {
        let d = o.access_key(key);
        for (slot, &c) in misses.iter_mut().zip(CAPACITIES.iter()) {
            match d {
                Some(d) if d <= c => {}
                _ => *slot += 1, // reuse distance beyond C, or cold
            }
        }
    }
    misses
}

#[test]
fn olken_exact_lru_matches_golden() {
    assert_eq!(olken_misses(&golden_trace()), OLKEN_MISSES);
}

#[test]
fn krr_matches_goldens_and_tracks_olken() {
    let trace = golden_trace();
    for &(k, goldens) in &KRR_GOLDENS {
        let mut m = KrrModel::new(KrrConfig::new(k).seed(1));
        for &key in &trace {
            m.access_key(key);
        }
        let mrc = m.mrc();
        for (i, &c) in CAPACITIES.iter().enumerate() {
            let got = mrc.eval(c as f64);
            let want = goldens[i];
            assert!(
                (got - want).abs() <= KRR_TOL,
                "K={k} C={c}: modeled {got:.5} vs golden {want:.5}"
            );
            // And the model must track the exact-LRU ground truth. K-LRU
            // converges to LRU as K grows; K=1 (pure random eviction)
            // genuinely strays the furthest, so the band is loose.
            let lru = OLKEN_MISSES[i] as f64 / trace.len() as f64;
            assert!(
                (got - lru).abs() < 0.05,
                "K={k} C={c}: modeled {got:.5} strays from exact LRU {lru:.5}"
            );
        }
    }
}

/// `ShardedKrr` must be deterministic: for each shard count the merged
/// curve is bit-identical whether shards run sequentially or on any
/// number of threads, and merging twice yields the same bits.
#[test]
fn sharded_merge_bit_identical_across_1_2_8_shards() {
    let trace = golden_trace();
    let refs: Vec<(u64, u32)> = trace.iter().map(|&k| (k, 1)).collect();
    let cfg = KrrConfig::new(5.0).seed(1);
    for shards in [1usize, 2, 8] {
        let mut seq = ShardedKrr::new(&cfg, shards);
        for &(k, s) in &refs {
            seq.access(k, s);
        }
        let golden = seq.mrc().points().to_vec();
        assert_eq!(seq.mrc().points(), &golden[..], "merge must be idempotent");
        for threads in [1usize, 2, 8] {
            let mut par = ShardedKrr::new(&cfg, shards);
            par.process_parallel(&refs, threads);
            assert_eq!(
                par.mrc().points(),
                &golden[..],
                "shards={shards} threads={threads}: merged MRC must be bit-identical"
            );
        }
    }
}

/// Regenerates the golden constants above (run with `--ignored`).
#[test]
#[ignore = "golden regeneration helper, not a check"]
fn print_goldens() {
    let trace = golden_trace();
    println!("const OLKEN_MISSES: [u64; 5] = {:?};", olken_misses(&trace));
    for &k in &[1.0f64, 5.0, 10.0] {
        let mut m = KrrModel::new(KrrConfig::new(k).seed(1));
        for &key in &trace {
            m.access_key(key);
        }
        let mrc = m.mrc();
        let vals: Vec<String> = CAPACITIES
            .iter()
            .map(|&c| format!("{:.5}", mrc.eval(c as f64)))
            .collect();
        println!("    ({k:?}, [{}]),", vals.join(", "));
    }
}
