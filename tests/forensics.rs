//! Integration: tail-latency forensics end to end.
//!
//! Covers the three legs of the forensics stack working together:
//!
//! * `krr doctor`'s counter-signature rules reproduce the
//!   `docs/PERFORMANCE.md` playbook diagnoses from fixture
//!   `krr-metrics-v1` documents (parsed by the real JSON parser, so the
//!   whole offline path is exercised, not just the rule engine),
//! * the phase profiler attributes real work during a multi-threaded
//!   pipeline run and `/profile` serves non-empty collapsed-stack text,
//! * and — the hard invariant — the MRC a profiled mini-Redis computes
//!   is bit-identical whether forensics (exemplars + profiler) is on or
//!   off, at any thread count: observability must never touch the model.

mod support;

use krr::core::doctor::{diagnose, DoctorCounters};
use krr::core::expo::{http_get, ExpoServer, ExpoSources};
use krr::core::obs::FlightRecorder;
use krr::core::sharded::ShardedKrr;
use krr::core::KrrConfig;
use krr::redis::resp::Value;
use krr::redis::{Client, MiniRedis, Server};
use krr::trace::ycsb;
use std::sync::Arc;
use support::json;

/// Parses a fixture document and runs the doctor over it, returning the
/// finding ids in order.
fn diagnose_fixture(metrics_json: &str) -> Vec<String> {
    let doc = json::parse(metrics_json).expect("fixture must be valid JSON");
    let report = diagnose(&DoctorCounters::from_metrics_json(&doc));
    report.findings.iter().map(|f| f.id.to_string()).collect()
}

#[test]
fn doctor_reproduces_playbook_diagnoses_from_fixtures() {
    // Playbook row: stalls with the router parking on full rings —
    // workers can't keep up, throughput is model-bound.
    let model_bound = r#"{
        "schema": "krr-metrics-v1",
        "pipeline": {"stalls": 120, "batches": 1000,
                     "ring": {"router_parks": 90, "worker_parks": 3,
                              "depth_hwm": [8, 8, 7, 8]}},
        "shards": {"accesses": [1000, 1010, 990, 1005]},
        "watchdog": {"drift_events": 0, "mae_ppm": 900}
    }"#;
    assert!(
        diagnose_fixture(model_bound).contains(&"model_bound".to_string()),
        "model-bound fixture missed"
    );

    // Playbook row: workers park far more often than batches arrive and
    // the rings never fill — the router (trace source) is the bottleneck.
    let router_bound = r#"{
        "schema": "krr-metrics-v1",
        "pipeline": {"stalls": 0, "batches": 500,
                     "ring": {"router_parks": 0, "worker_parks": 4000,
                              "depth_hwm": [1, 1, 0, 1]}},
        "shards": {"accesses": [1000, 1010, 990, 1005]},
        "watchdog": {"drift_events": 0, "mae_ppm": 900}
    }"#;
    assert!(
        diagnose_fixture(router_bound).contains(&"router_bound".to_string()),
        "router-bound fixture missed"
    );

    // Playbook row: one shard owns a hot key and everything queues there.
    let key_skew = r#"{
        "schema": "krr-metrics-v1",
        "pipeline": {"stalls": 0, "batches": 1000,
                     "ring": {"router_parks": 0, "worker_parks": 10,
                              "depth_hwm": [2, 2, 2, 2]}},
        "shards": {"accesses": [90000, 1000, 1100, 950]},
        "watchdog": {"drift_events": 0, "mae_ppm": 900}
    }"#;
    assert!(
        diagnose_fixture(key_skew).contains(&"key_skew".to_string()),
        "key-skew fixture missed"
    );

    // Accuracy, not throughput: the shadow watchdog flagged drift.
    let drift = r#"{
        "schema": "krr-metrics-v1",
        "pipeline": {"stalls": 0, "batches": 10,
                     "ring": {"router_parks": 0, "worker_parks": 1,
                              "depth_hwm": [1]}},
        "shards": {"accesses": [100]},
        "watchdog": {"drift_events": 3, "mae_ppm": 140000}
    }"#;
    assert!(
        diagnose_fixture(drift).contains(&"watchdog_drift".to_string()),
        "watchdog-drift fixture missed"
    );

    // And the quiet case reports exactly one healthy finding up front.
    let healthy = r#"{
        "schema": "krr-metrics-v1",
        "pipeline": {"stalls": 0, "batches": 1000,
                     "ring": {"router_parks": 0, "worker_parks": 40,
                              "depth_hwm": [2, 3, 2, 2]}},
        "shards": {"accesses": [1000, 1010, 990, 1005]},
        "watchdog": {"drift_events": 0, "mae_ppm": 900}
    }"#;
    assert_eq!(diagnose_fixture(healthy)[0], "healthy");
}

#[test]
fn doctor_flags_scrape_coincident_tails_from_exemplar_dump() {
    let metrics = r#"{
        "schema": "krr-metrics-v1",
        "pipeline": {"stalls": 0, "batches": 100,
                     "ring": {"router_parks": 0, "worker_parks": 5,
                              "depth_hwm": [1, 1]}},
        "shards": {"accesses": [500, 510]},
        "watchdog": {"drift_events": 0, "mae_ppm": 900}
    }"#;
    // 4 of 5 captured tail requests overlapped a /metrics scrape: the
    // exposition path itself is the tail amplifier.
    let exemplars = r#"{
        "schema": "krr-exemplars-v1",
        "capacity": 256, "captured": 5, "dropped": 0, "threshold_ns": 4096,
        "exemplars": [
            {"request_id": 1, "scrape_in_progress": true},
            {"request_id": 2, "scrape_in_progress": true},
            {"request_id": 3, "scrape_in_progress": true},
            {"request_id": 4, "scrape_in_progress": true},
            {"request_id": 5, "scrape_in_progress": false}
        ]
    }"#;
    let mut counters =
        DoctorCounters::from_metrics_json(&json::parse(metrics).expect("metrics fixture"));
    counters.join_exemplars(&json::parse(exemplars).expect("exemplars fixture"));
    let report = diagnose(&counters);
    assert!(
        report.findings.iter().any(|f| f.id == "scrape_tail"),
        "scrape-tail fixture missed: {:?}",
        report.findings.iter().map(|f| f.id).collect::<Vec<_>>()
    );
}

#[test]
fn profile_endpoint_is_nonempty_after_an_8_thread_run() {
    let trace = ycsb::WorkloadC::new(2_000, 0.9).generate(120_000, 5);
    let recorder = Arc::new(FlightRecorder::new());
    let mut bank = ShardedKrr::new(&KrrConfig::new(5.0).seed(3), 8);
    bank.set_recorder(Arc::clone(&recorder));
    bank.process_stream(trace.iter().map(|r| (r.key, r.size)), 8);

    // The profiler piggybacks on flight-recorder spans: a run that
    // recorded spans has per-thread phase attributions.
    let profiler = recorder.profiler();
    assert!(profiler.samples_total() > 0, "profiler saw no samples");

    let sources = ExpoSources {
        profiler: Some(Arc::clone(profiler)),
        ..ExpoSources::default()
    };
    let server = ExpoServer::start("127.0.0.1:0", sources).unwrap();
    let (status, ctype, body) = http_get(server.addr(), "/profile").unwrap();
    assert_eq!(status, 200);
    assert_eq!(ctype, "text/plain");
    assert!(!body.is_empty(), "folded profile is empty");
    // Collapsed-stack shape: `krr;<thread>;<phase> <ns>` lines, with the
    // pipeline's signature phases attributed somewhere.
    for line in body.lines() {
        let (stack, ns) = line.rsplit_once(' ').expect("folded line shape");
        assert!(stack.starts_with("krr;"), "bad stack {line:?}");
        assert_eq!(stack.split(';').count(), 3, "bad stack depth {line:?}");
        ns.parse::<u64>().expect("folded value is integer ns");
    }
    assert!(body.contains(";update "), "no update attribution: {body}");
    assert!(
        body.contains(";ring_wait ") || body.contains(";filter "),
        "no router/ring attribution: {body}"
    );
}

/// Runs the same client workload against a fresh profiled server and
/// returns the resulting MRC CSV.
fn mrc_over_resp(forensics_on: bool) -> String {
    let mut store = MiniRedis::new(1_000_000, 5, 11);
    store.enable_mrc_profiling(&KrrConfig::new(5.0).seed(7), 2);
    let mut server = Server::start(store).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    if !forensics_on {
        let reply = client
            .raw(&[b"CONFIG", b"SET", b"forensics", b"off"])
            .unwrap();
        assert!(matches!(&reply, Value::Simple(s) if s == "OK"));
    }
    let trace = ycsb::WorkloadC::new(800, 0.9).generate(30_000, 13);
    for r in &trace {
        let _ = client.access(r.key, r.size.max(1)).unwrap();
    }
    let csv = client.mrc().unwrap();
    server.shutdown();
    csv
}

#[test]
fn mrc_is_bit_identical_with_forensics_on_and_off() {
    let on = mrc_over_resp(true);
    let off = mrc_over_resp(false);
    assert!(on.lines().count() > 1, "curve has data: {on}");
    assert_eq!(on, off, "forensics changed the model's MRC");
}
