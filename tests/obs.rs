//! Integration: the observability layer end-to-end — flight-recorder
//! Chrome traces (via the library and the `krr` binary), the windowed
//! stats timeline, and the accuracy watchdog. The load-bearing invariant
//! throughout: observability must never perturb the model, so MRCs are
//! bit-identical with tracing on or off at every thread count.

mod support;

use krr::core::sharded::ShardedKrr;
use krr::core::{FlightRecorder, KrrConfig, KrrModel, MetricsRegistry, StatsTimeline};
use krr::prelude::*;
use krr::trace::ycsb;
use std::process::Command;
use std::sync::Arc;
use support::json::{parse, Json};

fn workload(refs: usize, seed: u64) -> Trace {
    ycsb::WorkloadC::new(2_000, 0.9).generate(refs, seed)
}

/// Every trace event must carry the Chrome trace-event required fields:
/// metadata rows (`ph:"M"`) name threads, complete spans (`ph:"X"`) have
/// numeric `ts`/`dur`/`tid`.
fn assert_valid_chrome_trace(json: &str) -> usize {
    let doc = parse(json).expect("trace output must be valid JSON");
    assert_eq!(
        doc.get("otherData")
            .and_then(|d| d.get("schema"))
            .and_then(Json::as_str),
        Some("krr-trace-v1"),
        "schema marker missing"
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");
    let mut spans = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
        let tid = ev.get("tid").and_then(Json::as_num).expect("tid field");
        assert!(tid >= 0.0);
        assert_eq!(ev.get("pid").and_then(Json::as_num), Some(1.0));
        match ph {
            "M" => {
                assert_eq!(ev.get("name").and_then(Json::as_str), Some("thread_name"));
                assert!(
                    ev.get("args").and_then(|a| a.get("name")).is_some(),
                    "metadata event without a thread name"
                );
            }
            "X" => {
                spans += 1;
                let ts = ev.get("ts").and_then(Json::as_num).expect("ts field");
                let dur = ev.get("dur").and_then(Json::as_num).expect("dur field");
                assert!(ts >= 0.0, "negative ts {ts}");
                assert!(dur >= 0.0, "negative dur {dur}");
                assert!(ev.get("name").and_then(Json::as_str).is_some());
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(spans > 0, "no complete (ph:X) spans recorded");
    spans
}

#[test]
fn sharded_run_emits_valid_chrome_trace() {
    let trace = workload(30_000, 1);
    let recorder = Arc::new(FlightRecorder::new());
    let mut bank = ShardedKrr::new(&KrrConfig::new(5.0).seed(1), 4);
    bank.set_recorder(Arc::clone(&recorder));
    bank.process_stream(trace.iter().map(|r| (r.key, r.size)), 2);
    let _ = bank.mrc(); // records the merge span
    let json = recorder.chrome_trace_json();
    assert_valid_chrome_trace(&json);
    // Thread names from every layer: shard rings, the pipeline's router
    // and workers, and the merge ring.
    for label in ["shard-0", "shard-3", "router", "worker-0", "merge"] {
        assert!(json.contains(label), "{label} ring missing from trace");
    }
}

#[test]
fn mrc_bit_identical_with_tracing_on_and_off_at_every_thread_count() {
    let trace = workload(40_000, 2);
    let refs: Vec<(u64, u32)> = trace.iter().map(|r| (r.key, r.size)).collect();
    for threads in [1usize, 2, 4, 8] {
        let mut plain = ShardedKrr::new(&KrrConfig::new(5.0).seed(7), 4);
        plain.process_stream(refs.iter().copied(), threads);

        let mut traced = ShardedKrr::new(&KrrConfig::new(5.0).seed(7), 4);
        traced.set_recorder(Arc::new(FlightRecorder::new()));
        traced.process_stream(refs.iter().copied(), threads);

        assert_eq!(
            plain.mrc().points(),
            traced.mrc().points(),
            "MRC diverged with tracing on at {threads} threads"
        );
    }
}

#[test]
fn single_model_mrc_unchanged_by_recorder() {
    let trace = workload(30_000, 3);
    let mut plain = KrrModel::new(KrrConfig::new(5.0).seed(9));
    let mut traced = KrrModel::new(KrrConfig::new(5.0).seed(9));
    let recorder = FlightRecorder::new();
    traced.set_recorder(recorder.register("model"));
    for r in &trace {
        plain.access(r.key, r.size);
        traced.access(r.key, r.size);
    }
    assert_eq!(plain.mrc().points(), traced.mrc().points());
    let (events, _) = recorder.collect_events();
    assert!(!events.is_empty(), "recorder saw no stack-update spans");
}

#[test]
fn ring_overflow_counts_dropped_events() {
    let recorder = FlightRecorder::with_capacity(16);
    let rec = recorder.register("writer");
    for i in 0..100u64 {
        rec.mark(krr::core::Phase::Command, i);
    }
    let (events, dropped) = recorder.collect_events();
    assert_eq!(events.len(), 16, "ring should retain exactly its capacity");
    assert_eq!(dropped, 84);
    // Overwrite-oldest: the survivors are the newest 16 marks.
    let args: Vec<u64> = events.iter().map(|e| e.arg).collect();
    assert_eq!(args, (84..100).collect::<Vec<u64>>());
}

#[test]
fn stats_timeline_rows_are_windowed_and_parse() {
    let reg = Arc::new(MetricsRegistry::new());
    let mut model = KrrModel::new(KrrConfig::new(5.0).seed(4));
    model.set_metrics(Arc::clone(&reg));
    let mut timeline = StatsTimeline::new(Arc::clone(&reg), Vec::new(), 10_000);
    let trace = workload(35_000, 4);
    let mut seen = 0u64;
    for r in &trace {
        model.access(r.key, r.size);
        seen += 1;
        timeline.offer(seen).unwrap();
    }
    timeline.finish(seen).unwrap();
    assert_eq!(timeline.rows(), 4, "3 full windows + 1 partial tail");
    let body = String::from_utf8(timeline.into_inner().unwrap()).unwrap();
    let mut total_delta_refs = 0.0;
    for (i, line) in body.lines().enumerate() {
        let row = parse(line).unwrap_or_else(|e| panic!("row {i} is not JSON: {e}\n{line}"));
        assert_eq!(
            row.get("schema").and_then(Json::as_str),
            Some("krr-stats-v1")
        );
        assert_eq!(row.get("row").and_then(Json::as_num), Some(i as f64));
        let delta = row.get("delta").expect("delta object");
        total_delta_refs += delta.get("refs").and_then(Json::as_num).unwrap();
        assert!(row.get("watchdog").is_some(), "watchdog block missing");
        assert!(row.get("wall_ms").and_then(Json::as_num).unwrap() >= 0.0);
    }
    // Windows are deltas, so they partition the reference stream exactly.
    assert_eq!(total_delta_refs, 35_000.0);
}

#[test]
fn watchdog_shadow_agrees_with_krr_on_stationary_workload() {
    use krr::baselines::{AccuracyWatchdog, WatchdogConfig};
    let reg = Arc::new(MetricsRegistry::new());
    let mut model = KrrModel::new(KrrConfig::new(64.0).seed(5));
    let mut dog = AccuracyWatchdog::new(WatchdogConfig {
        rate: 0.5,
        check_every: 10_000,
        mae_threshold: 0.08,
        eval_points: 32,
    });
    dog.set_metrics(Arc::clone(&reg));
    let trace = workload(60_000, 5);
    let mut last = None;
    for r in &trace {
        model.access_key(r.key);
        dog.observe(r.key);
        if dog.check_due() {
            last = Some(dog.check(&model.mrc()));
        }
    }
    let report = last.expect("watchdog never fired");
    assert!(!report.drifted, "stationary workload flagged: {report:?}");
    assert!(report.mae < 0.08, "MAE {:.4} too high", report.mae);
    let snap = reg.snapshot();
    assert_eq!(snap.watchdog_checks, report.checks);
    assert_eq!(snap.watchdog_mae_ppm, (report.mae * 1e6).round() as u64);
}

/// The acceptance-criteria test: `krr model --trace-out` must emit a
/// Chrome trace-event file that a JSON parser accepts and that carries
/// the required `ph`/`ts`/`dur`/`tid` fields; `--stats-out` must emit
/// parseable `krr-stats-v1` JSONL.
#[test]
fn cli_trace_out_and_stats_out_emit_valid_artifacts() {
    let dir = std::env::temp_dir().join(format!("krr-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let stats_path = dir.join("stats.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_krr"))
        .args([
            "model",
            "--workload",
            "zipf:0.9:2000",
            "--requests",
            "40000",
            "--shards",
            "2",
            "--threads",
            "2",
            "--trace-out",
            trace_path.to_str().unwrap(),
            "--stats-every",
            "10000",
            "--stats-out",
            stats_path.to_str().unwrap(),
        ])
        .output()
        .expect("failed to run the krr binary");
    assert!(
        out.status.success(),
        "krr model failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace_json = std::fs::read_to_string(&trace_path).unwrap();
    assert_valid_chrome_trace(&trace_json);
    let stats = std::fs::read_to_string(&stats_path).unwrap();
    assert_eq!(stats.lines().count(), 4);
    for line in stats.lines() {
        let row = parse(line).expect("stats row must be valid JSON");
        assert_eq!(
            row.get("schema").and_then(Json::as_str),
            Some("krr-stats-v1")
        );
        assert!(row.get("throughput_rps").and_then(Json::as_num).is_some());
    }
    std::fs::remove_dir_all(&dir).ok();
}
