//! From-scratch YCSB core workloads C and E (§5.2).
//!
//! * **Workload C** — read-only; keys drawn from a scrambled Zipfian over
//!   the record space.
//! * **Workload E** — scan-dominant; each operation picks a scan *start*
//!   key from a scrambled Zipfian and a scan *length* uniformly in
//!   `[1, max_scan_len]`, then touches that many consecutive records. The
//!   paper configures `max_scan_len` equal to the record count.
//!
//! Both emit one [`Request`] per touched record, matching how a trace-driven
//! cache sees the workload.

use crate::request::{Request, Trace};
use crate::zipf::{ScrambledZipf, Zipf};
use krr_core::rng::Xoshiro256;

/// YCSB Workload C: 100% reads, Zipfian key popularity.
#[derive(Debug, Clone)]
pub struct WorkloadC {
    records: u64,
    theta: f64,
    /// Scramble ranks across the keyspace (YCSB default). Disable to get a
    /// plain Zipfian where key 0 is hottest.
    pub scrambled: bool,
}

impl WorkloadC {
    /// Creates Workload C over `records` keys with Zipf exponent `theta`.
    #[must_use]
    pub fn new(records: u64, theta: f64) -> Self {
        assert!(records >= 1);
        Self {
            records,
            theta,
            scrambled: true,
        }
    }

    /// Number of records.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Generates `n` requests.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> Trace {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        if self.scrambled {
            let z = ScrambledZipf::new(self.records, self.theta);
            out.extend((0..n).map(|_| Request::unit(z.sample(&mut rng))));
        } else {
            let z = Zipf::new(self.records, self.theta);
            out.extend((0..n).map(|_| Request::unit(z.sample(&mut rng))));
        }
        out
    }
}

/// YCSB Workload E: scan-dominant.
#[derive(Debug, Clone)]
pub struct WorkloadE {
    records: u64,
    theta: f64,
    max_scan_len: u64,
}

impl WorkloadE {
    /// Creates Workload E with the paper's configuration:
    /// `max_scan_len = records`.
    #[must_use]
    pub fn new(records: u64, theta: f64) -> Self {
        Self::with_max_scan(records, theta, records)
    }

    /// Creates Workload E with an explicit maximum scan length.
    #[must_use]
    pub fn with_max_scan(records: u64, theta: f64, max_scan_len: u64) -> Self {
        assert!(records >= 1 && max_scan_len >= 1);
        Self {
            records,
            theta,
            max_scan_len,
        }
    }

    /// Number of records.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Generates *at least* `n` requests (the final scan runs to
    /// completion, as a real scan would).
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> Trace {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let start_gen = ScrambledZipf::new(self.records, self.theta);
        let mut out = Vec::with_capacity(n + self.max_scan_len as usize);
        while out.len() < n {
            let start = start_gen.sample(&mut rng);
            let len = 1 + rng.below(self.max_scan_len);
            for i in 0..len {
                // Scans run forward and stop at the end of the keyspace,
                // like a range scan over an ordered store.
                let key = start + i;
                if key >= self.records {
                    break;
                }
                out.push(Request::unit(key));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_c_generates_exactly_n() {
        let w = WorkloadC::new(10_000, 0.99);
        let t = w.generate(5000, 1);
        assert_eq!(t.len(), 5000);
        assert!(t.iter().all(|r| r.key < 10_000 && r.size == 1));
    }

    #[test]
    fn workload_c_is_skewed() {
        let w = WorkloadC::new(10_000, 0.99);
        let t = w.generate(100_000, 2);
        let mut counts = std::collections::HashMap::new();
        for r in &t {
            *counts.entry(r.key).or_insert(0u64) += 1;
        }
        let max = *counts.values().max().unwrap();
        // Zipf(0.99) head over 10K items carries a few percent of the mass.
        assert!(max > 1_000, "hottest key only {max} hits");
        // But the workload must still touch a large key population.
        assert!(counts.len() > 3_000, "only {} distinct keys", counts.len());
    }

    #[test]
    fn workload_e_scans_are_sequential() {
        let w = WorkloadE::with_max_scan(1000, 0.99, 50);
        let t = w.generate(10_000, 3);
        assert!(t.len() >= 10_000);
        // Count ascending-by-one adjacencies; scans dominate, so most
        // consecutive pairs are sequential.
        let seq = t.windows(2).filter(|w| w[1].key == w[0].key + 1).count();
        assert!(
            seq as f64 / t.len() as f64 > 0.8,
            "sequential fraction too low"
        );
    }

    #[test]
    fn workload_e_paper_config_uses_full_scan_range() {
        let w = WorkloadE::new(500, 1.5);
        let t = w.generate(50_000, 4);
        let distinct: std::collections::HashSet<u64> = t.iter().map(|r| r.key).collect();
        // Full-range scans touch essentially the whole keyspace.
        assert!(distinct.len() > 450);
    }

    #[test]
    fn deterministic_per_seed() {
        let w = WorkloadE::new(200, 0.5);
        assert_eq!(w.generate(1000, 9), w.generate(1000, 9));
        assert_ne!(w.generate(1000, 9), w.generate(1000, 10));
    }
}
