//! Plain-text trace persistence: one request per line, `op,key,size`.
//!
//! Keeps generated workloads inspectable and lets the bench harness reuse
//! expensive traces across runs without extra dependencies.
//!
//! [`CsvStream`] is the streaming reader: an iterator of requests over any
//! [`BufRead`] source that reuses one line buffer, so arbitrarily large
//! trace files can feed the profiling pipeline in constant memory.
//! [`read_csv`] is the convenience wrapper that collects the stream into a
//! [`Trace`].

use crate::request::{Op, Request, Trace};
use krr_core::obs::{Phase, ThreadRecorder};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::Path;

/// Default [`CsvStream::with_recorder`] stall threshold: a buffered
/// `read_line` normally costs tens of nanoseconds, so anything past 100 µs
/// means the reader actually waited on the underlying source (disk seek,
/// page-cache miss, slow pipe) and earns a [`Phase::CsvRead`] span.
pub const CSV_STALL_THRESHOLD_NS: u64 = 100_000;

/// Writes a trace in CSV form (`get|set,key,size` per line).
pub fn write_csv<W: Write>(mut w: W, trace: &[Request]) -> io::Result<()> {
    for r in trace {
        let op = match r.op {
            Op::Get => "get",
            Op::Set => "set",
        };
        writeln!(w, "{op},{},{}", r.key, r.size)?;
    }
    Ok(())
}

/// Streaming CSV trace reader: yields one [`Request`] per data line without
/// materializing the trace. Blank lines and `#` comments are skipped;
/// malformed lines yield an error naming the line number, after which the
/// stream is fused (no further items).
#[derive(Debug)]
pub struct CsvStream<R: BufRead> {
    reader: R,
    line: String,
    lineno: usize,
    byte_offset: u64,
    done: bool,
    recorder: Option<(ThreadRecorder, u64)>,
}

impl CsvStream<BufReader<File>> {
    /// Opens a trace file for streaming.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(BufReader::new(File::open(path)?)))
    }

    /// Reopens a trace file at a position previously recorded by
    /// [`CsvStream::byte_offset`] / [`CsvStream::lineno`] — the
    /// checkpoint/resume path: `krr model --resume` seeks straight to the
    /// first unprocessed line instead of replaying the prefix. Error
    /// messages keep naming the original one-based line numbers because
    /// `lineno` is restored alongside the offset.
    pub fn open_at<P: AsRef<Path>>(path: P, byte_offset: u64, lineno: usize) -> io::Result<Self> {
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(byte_offset))?;
        let mut s = Self::new(BufReader::new(file));
        s.byte_offset = byte_offset;
        s.lineno = lineno;
        Ok(s)
    }
}

impl<R: BufRead> CsvStream<R> {
    /// Streams requests from any buffered reader.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            line: String::new(),
            lineno: 0,
            byte_offset: 0,
            done: false,
            recorder: None,
        }
    }

    /// Bytes consumed from the underlying reader so far — always a line
    /// boundary (blank/comment lines count), so the value can be handed to
    /// [`CsvStream::open_at`] to resume exactly after the last yielded
    /// request.
    #[must_use]
    pub fn byte_offset(&self) -> u64 {
        self.byte_offset
    }

    /// Lines consumed so far (companion to [`CsvStream::byte_offset`];
    /// restoring it keeps error messages' line numbers accurate after a
    /// resume).
    #[must_use]
    pub fn lineno(&self) -> usize {
        self.lineno
    }

    /// Attaches a flight-recorder handle: any `read_line` call that takes
    /// at least `stall_threshold_ns` (0 ⇒ [`CSV_STALL_THRESHOLD_NS`]) is
    /// recorded as a [`Phase::CsvRead`] span whose argument is the number
    /// of bytes the slow call returned. Fast buffered reads stay silent,
    /// so a healthy trace shows input stalls only when the source itself
    /// stalls.
    #[must_use]
    pub fn with_recorder(mut self, recorder: ThreadRecorder, stall_threshold_ns: u64) -> Self {
        let t = if stall_threshold_ns == 0 {
            CSV_STALL_THRESHOLD_NS
        } else {
            stall_threshold_ns
        };
        self.recorder = Some((recorder, t));
        self
    }
}

fn parse_line(line: &str, lineno: usize) -> io::Result<Request> {
    let mut parts = line.split(',');
    fn field<'a>(s: Option<&'a str>, what: &str, lineno: usize) -> io::Result<&'a str> {
        s.map(str::trim).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: missing {what}", lineno + 1),
            )
        })
    }
    let op = match field(parts.next(), "op", lineno)? {
        "get" | "GET" => Op::Get,
        "set" | "SET" => Op::Set,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: unknown op {other:?}", lineno + 1),
            ))
        }
    };
    let key = field(parts.next(), "key", lineno)?
        .parse::<u64>()
        .map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
    let size = field(parts.next(), "size", lineno)?
        .parse::<u32>()
        .map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
    Ok(Request { key, size, op })
}

impl<R: BufRead> Iterator for CsvStream<R> {
    type Item = io::Result<Request>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.line.clear();
            let r0 = self.recorder.as_ref().map(|(r, _)| r.now_ns());
            let read = self.reader.read_line(&mut self.line);
            if let (Some((rec, threshold)), Some(r0)) = (self.recorder.as_ref(), r0) {
                let dur = rec.now_ns() - r0;
                if dur >= *threshold {
                    let bytes = read.as_ref().map_or(0, |&n| n as u64);
                    rec.record(Phase::CsvRead, r0, dur, bytes);
                }
            }
            match read {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(n) => self.byte_offset += n as u64,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
            let lineno = self.lineno;
            self.lineno += 1;
            let line = self.line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parsed = parse_line(line, lineno);
            if parsed.is_err() {
                self.done = true;
            }
            return Some(parsed);
        }
    }
}

/// Reads a trace written by [`write_csv`], collecting the whole file in
/// memory. Blank lines and `#` comments are skipped; malformed lines
/// produce an error naming the line number. For large files prefer
/// [`CsvStream`] and feed the iterator straight into the profiler.
pub fn read_csv<R: BufRead>(r: R) -> io::Result<Trace> {
    CsvStream::new(r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let trace = vec![Request::get(1, 100), Request::set(42, 7), Request::unit(9)];
        let mut buf = Vec::new();
        write_csv(&mut buf, &trace).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\nget,5,1\n";
        let t = read_csv(text.as_bytes()).unwrap();
        assert_eq!(t, vec![Request::unit(5)]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_csv("frob,1,2\n".as_bytes()).is_err());
        assert!(read_csv("get,notanumber,2\n".as_bytes()).is_err());
        assert!(read_csv("get,1\n".as_bytes()).is_err());
    }

    #[test]
    fn stream_yields_incrementally_and_matches_collect() {
        let text = "get,1,10\n# note\nset,2,20\n\nget,3,30\n";
        let items: Vec<Request> = CsvStream::new(text.as_bytes())
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(items, read_csv(text.as_bytes()).unwrap());
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn stream_is_fused_after_error() {
        let mut s = CsvStream::new("get,1,1\nbogus,2,2\nget,3,3\n".as_bytes());
        assert!(s.next().unwrap().is_ok());
        assert!(s.next().unwrap().is_err());
        assert!(s.next().is_none());
        assert!(s.next().is_none());
    }

    #[test]
    fn recorder_captures_slow_reads_and_leaves_data_unchanged() {
        use krr_core::obs::FlightRecorder;
        let text = "get,1,10\nset,2,20\nget,3,30\n";
        let rec = FlightRecorder::with_capacity(64);
        // Threshold 1 ns: every read counts as a "stall" so the test is
        // timing-independent.
        let stream = CsvStream::new(text.as_bytes()).with_recorder(rec.register("csv"), 1);
        let items: Vec<Request> = stream.collect::<io::Result<Vec<_>>>().unwrap();
        assert_eq!(items, read_csv(text.as_bytes()).unwrap());
        let (events, _) = rec.collect_events();
        // 3 data lines + the EOF probe.
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.phase == Phase::CsvRead));
        assert_eq!(events[0].arg, "get,1,10\n".len() as u64);
        assert_eq!(events.last().unwrap().arg, 0, "EOF read returns 0 bytes");
    }

    #[test]
    fn error_names_one_based_line_number() {
        let err = read_csv("get,1,1\n\nget,zzz,3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "got: {err}");
    }

    #[test]
    fn byte_offset_tracks_consumed_lines() {
        let text = "get,1,10\n# note\nset,2,20\nget,3,30\n";
        let mut s = CsvStream::new(text.as_bytes());
        assert_eq!(s.byte_offset(), 0);
        s.next().unwrap().unwrap();
        assert_eq!(s.byte_offset(), "get,1,10\n".len() as u64);
        assert_eq!(s.lineno(), 1);
        // The comment line is consumed along with the next data line.
        s.next().unwrap().unwrap();
        assert_eq!(s.byte_offset(), "get,1,10\n# note\nset,2,20\n".len() as u64);
        assert_eq!(s.lineno(), 3);
        s.next().unwrap().unwrap();
        assert_eq!(s.byte_offset(), text.len() as u64);
        assert!(s.next().is_none());
        assert_eq!(s.byte_offset(), text.len() as u64, "EOF adds nothing");
    }

    #[test]
    fn open_at_resumes_exactly_after_prefix() {
        let dir = std::env::temp_dir().join(format!("krr-csv-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let trace = vec![Request::get(1, 10), Request::set(2, 20), Request::unit(3)];
        let mut buf = Vec::new();
        write_csv(&mut buf, &trace).unwrap();
        std::fs::write(&path, &buf).unwrap();

        let mut s = CsvStream::open(&path).unwrap();
        assert_eq!(s.next().unwrap().unwrap(), trace[0]);
        let (off, line) = (s.byte_offset(), s.lineno());
        drop(s);

        let rest: Vec<Request> = CsvStream::open_at(&path, off, line)
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(rest, trace[1..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
