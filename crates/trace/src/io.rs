//! Plain-text trace persistence: one request per line, `op,key,size`.
//!
//! Keeps generated workloads inspectable and lets the bench harness reuse
//! expensive traces across runs without extra dependencies.

use crate::request::{Op, Request, Trace};
use std::io::{self, BufRead, Write};

/// Writes a trace in CSV form (`get|set,key,size` per line).
pub fn write_csv<W: Write>(mut w: W, trace: &[Request]) -> io::Result<()> {
    for r in trace {
        let op = match r.op {
            Op::Get => "get",
            Op::Set => "set",
        };
        writeln!(w, "{op},{},{}", r.key, r.size)?;
    }
    Ok(())
}

/// Reads a trace written by [`write_csv`]. Blank lines and `#` comments are
/// skipped; malformed lines produce an error naming the line number.
pub fn read_csv<R: BufRead>(r: R) -> io::Result<Trace> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        fn parse<'a>(s: Option<&'a str>, what: &str, lineno: usize) -> io::Result<&'a str> {
            s.map(str::trim).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing {what}", lineno + 1),
                )
            })
        }
        let op = match parse(parts.next(), "op", lineno)? {
            "get" | "GET" => Op::Get,
            "set" | "SET" => Op::Set,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: unknown op {other:?}", lineno + 1),
                ))
            }
        };
        let key = parse(parts.next(), "key", lineno)?
            .parse::<u64>()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                )
            })?;
        let size = parse(parts.next(), "size", lineno)?
            .parse::<u32>()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                )
            })?;
        out.push(Request { key, size, op });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let trace = vec![Request::get(1, 100), Request::set(42, 7), Request::unit(9)];
        let mut buf = Vec::new();
        write_csv(&mut buf, &trace).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\nget,5,1\n";
        let t = read_csv(text.as_bytes()).unwrap();
        assert_eq!(t, vec![Request::unit(5)]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_csv("frob,1,2\n".as_bytes()).is_err());
        assert!(read_csv("get,notanumber,2\n".as_bytes()).is_err());
        assert!(read_csv("get,1\n".as_bytes()).is_err());
    }
}
