//! Elementary access patterns: the analytical corner cases of §4.2.
//!
//! The paper identifies the cyclic loop ("repeatedly access objects with
//! same recency order") as KRR's worst case, motivating the K′ correction.
//! These generators make that case — and other classical patterns —
//! available to tests and ablation benches.

use crate::request::{Request, Trace};
use krr_core::rng::Xoshiro256;

/// Cyclic loop: `0, 1, …, m-1, 0, 1, …` — every access has stack distance
/// exactly `m` under LRU.
#[must_use]
pub fn loop_trace(m: u64, n: usize) -> Trace {
    assert!(m >= 1);
    (0..n).map(|i| Request::unit(i as u64 % m)).collect()
}

/// Single sequential pass over `n` distinct keys (all cold misses).
#[must_use]
pub fn sequential(n: usize) -> Trace {
    (0..n).map(|i| Request::unit(i as u64)).collect()
}

/// Uniform random accesses over `m` keys.
#[must_use]
pub fn uniform_random(m: u64, n: usize, seed: u64) -> Trace {
    assert!(m >= 1);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n).map(|_| Request::unit(rng.below(m))).collect()
}

/// Stack-depth-`d` reuse: repeatedly touches a window of `d` keys then
/// slides by `stride`, exercising a specific stack-distance band.
#[must_use]
pub fn sliding_window(d: u64, stride: u64, n: usize) -> Trace {
    assert!(d >= 1);
    let mut out = Vec::with_capacity(n);
    let mut base = 0u64;
    'outer: loop {
        for i in 0..d {
            if out.len() >= n {
                break 'outer;
            }
            out.push(Request::unit(base + i));
        }
        base += stride;
    }
    out
}

/// Interleaves multiple traces round-robin with disjoint keyspaces
/// (sub-trace `i` gets keys offset by `(i+1) << 40`).
#[must_use]
pub fn interleave(traces: &[Trace], n: usize) -> Trace {
    let mut out = Vec::with_capacity(n);
    let mut idx = 0usize;
    'outer: loop {
        let mut any = false;
        for (i, t) in traces.iter().enumerate() {
            if out.len() >= n {
                break 'outer;
            }
            if let Some(&r) = t.get(idx) {
                out.push(Request {
                    key: r.key + ((i as u64 + 1) << 40),
                    ..r
                });
                any = true;
            }
        }
        if !any {
            break;
        }
        idx += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::stats;

    #[test]
    fn loop_trace_cycles() {
        let t = loop_trace(5, 12);
        let keys: Vec<u64> = t.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]);
    }

    #[test]
    fn sequential_is_all_distinct() {
        let t = sequential(100);
        assert_eq!(stats(&t).distinct, 100);
    }

    #[test]
    fn uniform_random_covers_keyspace() {
        let t = uniform_random(50, 10_000, 1);
        assert_eq!(stats(&t).distinct, 50);
    }

    #[test]
    fn sliding_window_reuses_within_window() {
        let t = sliding_window(4, 2, 10);
        let keys: Vec<u64> = t.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 2, 3, 4, 5, 4, 5]);
    }

    #[test]
    fn interleave_keeps_subspaces_disjoint() {
        let a = loop_trace(3, 6);
        let b = sequential(6);
        let t = interleave(&[a, b], 12);
        assert_eq!(t.len(), 12);
        let spaces: std::collections::HashSet<u64> = t.iter().map(|r| r.key >> 40).collect();
        assert_eq!(spaces.len(), 2);
    }

    #[test]
    fn interleave_stops_when_sources_exhaust() {
        let t = interleave(&[sequential(2), sequential(3)], 100);
        assert_eq!(t.len(), 5);
    }
}
