//! # krr-trace
//!
//! Workload substrate for the KRR reproduction: the request/trace model and
//! from-scratch synthetic generators standing in for the paper's MSR, YCSB
//! and Twitter traces (see DESIGN.md §2 for the substitution rationale).
//!
//! ```
//! use krr_trace::ycsb::WorkloadC;
//!
//! let trace = WorkloadC::new(10_000, 0.99).generate(1_000, 42);
//! assert_eq!(trace.len(), 1_000);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analyze;
pub mod dist;
pub mod io;
pub mod msr;
pub mod patterns;
pub mod real_traces;
pub mod request;
pub mod twitter;
pub mod ycsb;
pub mod zipf;

pub use io::CsvStream;
pub use request::{stats, Op, Request, Trace, TraceStats};
pub use zipf::{ScrambledZipf, Zipf};
