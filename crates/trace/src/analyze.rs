//! Workload characterization: the statistics the paper's §5.2-§5.3
//! reasoning rests on, computed from any trace.
//!
//! * reuse-time distribution summaries (how recency-friendly a trace is),
//! * popularity skew via a maximum-likelihood-ish Zipf exponent fit over
//!   the rank-frequency curve,
//! * working-set growth (cold-miss curve),
//! * a Type A/B indicator: the mass of near-constant reuse times (loop
//!   signature) — traces with a strong loop signature are the ones where
//!   the K-LRU sampling size matters (Fig 5.2).

use crate::request::Request;
use krr_core::hashing::KeyMap;

/// Summary statistics of a trace's reuse structure.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    /// Total requests.
    pub requests: u64,
    /// Distinct keys.
    pub distinct: u64,
    /// Cold-miss (compulsory) fraction.
    pub cold_fraction: f64,
    /// Median reuse time (references), if any re-references exist.
    pub median_reuse: Option<u64>,
    /// 90th-percentile reuse time.
    pub p90_reuse: Option<u64>,
    /// Fitted Zipf exponent of the key popularity distribution.
    pub zipf_exponent: f64,
    /// Fraction of re-references whose reuse time falls in the modal
    /// quarter-octave bucket (±1) — near 1.0 for pure loops, near 0 for
    /// recency/frequency traffic.
    pub loop_signature: f64,
}

impl Characterization {
    /// Heuristic Type A/B classification (Fig 5.2): loop-dominated traces
    /// are the K-sensitive ones.
    #[must_use]
    pub fn is_type_a(&self) -> bool {
        self.loop_signature > 0.2
    }
}

/// Characterizes a trace in two passes (reuse times, then rank-frequency).
#[must_use]
pub fn characterize(trace: &[Request]) -> Characterization {
    let mut last: KeyMap<u64> = KeyMap::default();
    let mut freq: KeyMap<u64> = KeyMap::default();
    let mut reuse_times: Vec<u64> = Vec::new();
    for (t, r) in trace.iter().enumerate() {
        let now = t as u64 + 1;
        if let Some(prev) = last.insert(r.key, now) {
            reuse_times.push(now - prev);
        }
        *freq.entry(r.key).or_insert(0) += 1;
    }
    let requests = trace.len() as u64;
    let distinct = last.len() as u64;
    let cold_fraction = if requests == 0 {
        0.0
    } else {
        distinct as f64 / requests as f64
    };

    reuse_times.sort_unstable();
    let pct = |p: f64| -> Option<u64> {
        if reuse_times.is_empty() {
            None
        } else {
            let idx = ((reuse_times.len() - 1) as f64 * p).round() as usize;
            Some(reuse_times[idx])
        }
    };
    let median_reuse = pct(0.5);
    let p90_reuse = pct(0.9);

    Characterization {
        requests,
        distinct,
        cold_fraction,
        median_reuse,
        p90_reuse,
        zipf_exponent: fit_zipf(&freq),
        loop_signature: loop_signature(&reuse_times),
    }
}

/// Least-squares slope of log(frequency) vs log(rank) over the top ranks —
/// the standard quick Zipf-exponent estimate.
fn fit_zipf(freq: &KeyMap<u64>) -> f64 {
    let mut counts: Vec<u64> = freq.values().copied().collect();
    if counts.is_empty() {
        return 0.0;
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    // Head-of-distribution fit: tail ranks are noise-dominated.
    let take = counts.len().clamp(1, 1_000);
    let pts: Vec<(f64, f64)> = counts[..take]
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 2 {
        return 0.0;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    // Slope is negative for Zipf; report the positive exponent.
    (-(n * sxy - sx * sy) / denom).max(0.0)
}

/// Fraction of re-references in the modal log-scale reuse-time bucket and
/// its two neighbours.
fn loop_signature(sorted_reuse: &[u64]) -> f64 {
    if sorted_reuse.is_empty() {
        return 0.0;
    }
    // Log-scale buckets (quarter-octave) over reuse times.
    let bucket = |r: u64| ((r.max(1) as f64).log2() * 4.0).floor() as i64;
    let mut counts: std::collections::HashMap<i64, u64> = std::collections::HashMap::new();
    for &r in sorted_reuse {
        *counts.entry(bucket(r)).or_insert(0) += 1;
    }
    let (&modal, _) = counts.iter().max_by_key(|(_, &c)| c).expect("non-empty");
    let near: u64 = (modal - 1..=modal + 1)
        .map(|b| counts.get(&b).copied().unwrap_or(0))
        .sum();
    near as f64 / sorted_reuse.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use crate::ycsb::WorkloadC;

    #[test]
    fn loop_trace_has_strong_loop_signature() {
        let c = characterize(&patterns::loop_trace(1_000, 50_000));
        assert!(c.loop_signature > 0.95, "signature {}", c.loop_signature);
        assert!(c.is_type_a());
        assert_eq!(c.median_reuse, Some(1_000));
        assert_eq!(c.distinct, 1_000);
    }

    #[test]
    fn zipf_trace_exponent_is_recovered() {
        for theta in [0.6f64, 0.99] {
            let mut w = WorkloadC::new(20_000, theta);
            w.scrambled = false;
            let trace = w.generate(400_000, 1);
            let c = characterize(&trace);
            assert!(
                (c.zipf_exponent - theta).abs() < 0.15,
                "theta {theta}: fitted {}",
                c.zipf_exponent
            );
            assert!(
                !c.is_type_a(),
                "Zipf is Type B (signature {})",
                c.loop_signature
            );
        }
    }

    #[test]
    fn sequential_trace_is_all_cold() {
        let c = characterize(&patterns::sequential(10_000));
        assert_eq!(c.cold_fraction, 1.0);
        assert_eq!(c.median_reuse, None);
        assert_eq!(c.loop_signature, 0.0);
    }

    #[test]
    fn msr_type_a_vs_type_b_classification() {
        use crate::msr;
        let a = characterize(&msr::profile(msr::MsrTrace::Src2).generate(200_000, 2, 0.05));
        let b = characterize(&msr::profile(msr::MsrTrace::Prxy).generate(200_000, 3, 0.05));
        assert!(
            a.loop_signature > b.loop_signature,
            "{} vs {}",
            a.loop_signature,
            b.loop_signature
        );
        assert!(a.is_type_a());
        assert!(!b.is_type_a());
    }

    #[test]
    fn empty_trace() {
        let c = characterize(&[]);
        assert_eq!(c.requests, 0);
        assert_eq!(c.cold_fraction, 0.0);
        assert_eq!(c.zipf_exponent, 0.0);
    }
}
