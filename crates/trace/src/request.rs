//! The trace request model shared by every workload and consumer.

/// Operation type of a cache request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Read. A miss brings the object into the cache.
    Get,
    /// Write/insert. Always installs the (possibly resized) object.
    Set,
}

/// One cache reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Object key.
    pub key: u64,
    /// Object size in bytes (1 in uniform-size experiments).
    pub size: u32,
    /// Operation type.
    pub op: Op,
}

impl Request {
    /// A GET with explicit size.
    #[must_use]
    pub fn get(key: u64, size: u32) -> Self {
        Self {
            key,
            size,
            op: Op::Get,
        }
    }

    /// A SET with explicit size.
    #[must_use]
    pub fn set(key: u64, size: u32) -> Self {
        Self {
            key,
            size,
            op: Op::Set,
        }
    }

    /// A uniform-size (1 unit) GET, the paper's standard conversion
    /// ("we convert every request to a standard get/set operation with
    /// uniform object size").
    #[must_use]
    pub fn unit(key: u64) -> Self {
        Self::get(key, 1)
    }
}

/// A materialized trace.
pub type Trace = Vec<Request>;

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Total requests.
    pub requests: u64,
    /// Distinct keys (the working set size `M`).
    pub distinct: u64,
    /// Total bytes across distinct keys, using each key's *first* size
    /// (the paper's MSR convention).
    pub working_set_bytes: u64,
    /// Fraction of SET operations.
    pub set_fraction: f64,
}

/// Computes [`TraceStats`] in one pass.
#[must_use]
pub fn stats(trace: &[Request]) -> TraceStats {
    use krr_core::hashing::KeyMap;
    let mut first_sizes: KeyMap<u32> = KeyMap::default();
    let mut sets = 0u64;
    for r in trace {
        first_sizes.entry(r.key).or_insert(r.size.max(1));
        if r.op == Op::Set {
            sets += 1;
        }
    }
    TraceStats {
        requests: trace.len() as u64,
        distinct: first_sizes.len() as u64,
        working_set_bytes: first_sizes.values().map(|&s| u64::from(s)).sum(),
        set_fraction: if trace.is_empty() {
            0.0
        } else {
            sets as f64 / trace.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_counts_distinct_and_bytes() {
        let trace = vec![
            Request::get(1, 100),
            Request::set(2, 50),
            Request::get(1, 100),
            Request::get(3, 25),
        ];
        let s = stats(&trace);
        assert_eq!(s.requests, 4);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.working_set_bytes, 175);
        assert!((s.set_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn first_size_wins() {
        let trace = vec![Request::get(9, 10), Request::set(9, 999)];
        assert_eq!(stats(&trace).working_set_bytes, 10);
    }

    #[test]
    fn empty_trace() {
        let s = stats(&[]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.distinct, 0);
        assert_eq!(s.set_fraction, 0.0);
    }
}
