//! Zipfian sampling over `{0, …, n-1}` for any exponent, plus YCSB's
//! scrambled variant.
//!
//! Implements rejection-inversion sampling (Hörmann & Derflinger,
//! "Rejection-inversion to generate variates from monotone discrete
//! distributions", 1996) — exact for every exponent `s ≥ 0`, including the
//! paper's α = 1.5 where YCSB's Gray-style approximation breaks down. This
//! is the same construction used by Apache Commons'
//! `RejectionInversionZipfSampler`.

use krr_core::hashing::hash_key;
use krr_core::rng::Xoshiro256;

/// Zipfian distribution over ranks `1..=n` with `P(k) ∝ k^{-s}`, exposed
/// 0-based as items `0..n` (item 0 is the hottest).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Creates a sampler over `n >= 1` items with exponent `s >= 0`.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "need at least one item");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let h_integral_x1 = h_integral(1.5, s) - 1.0;
        let h_integral_n = h_integral(n as f64 + 0.5, s);
        let threshold = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Self {
            n,
            s,
            h_integral_x1,
            h_integral_n,
            threshold,
        }
    }

    /// Number of items.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent `s`.
    #[must_use]
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draws one item in `[0, n)`; item 0 is the most popular.
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        if self.n == 1 {
            return 0;
        }
        loop {
            let u = self.h_integral_n + rng.unit() * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inverse(u, self.s);
            // Candidate rank, clamped into [1, n].
            let k64 = (x + 0.5).floor();
            let k = if k64 < 1.0 {
                1u64
            } else if k64 >= self.n as f64 {
                self.n
            } else {
                k64 as u64
            };
            let kf = k as f64;
            if kf - x <= self.threshold || u >= h_integral(kf + 0.5, self.s) - h(kf, self.s) {
                return k - 1;
            }
        }
    }

    /// Exact probability of item `k` (0-based); O(n) normalization on first
    /// use is avoided by computing the unnormalized weight — callers that
    /// need the pmf should use [`Zipf::pmf_table`].
    #[must_use]
    pub fn weight(&self, item: u64) -> f64 {
        assert!(item < self.n);
        ((item + 1) as f64).powf(-self.s)
    }

    /// Full normalized pmf (O(n); test/analysis use).
    #[must_use]
    pub fn pmf_table(&self) -> Vec<f64> {
        let mut w: Vec<f64> = (0..self.n).map(|i| self.weight(i)).collect();
        let z: f64 = w.iter().sum();
        for p in &mut w {
            *p /= z;
        }
        w
    }
}

/// `H(x) = ∫ x^{-s} dx = (x^{1-s} - 1)/(1-s)`, continuous at `s = 1` where
/// it equals `ln(x)`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^{-s}`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // Numerical guard from the reference implementation.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `ln(1+x)/x`, stable near 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `(e^x - 1)/x`, stable near 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

/// YCSB's scrambled Zipfian: Zipfian rank popularity, but ranks are hashed
/// across the item space so the hot items are scattered rather than
/// clustered at low keys.
#[derive(Debug, Clone)]
pub struct ScrambledZipf {
    inner: Zipf,
}

impl ScrambledZipf {
    /// Creates a scrambled sampler over `n` items with exponent `s`.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        Self {
            inner: Zipf::new(n, s),
        }
    }

    /// Number of items.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.inner.n()
    }

    /// Draws one item in `[0, n)`.
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        let rank = self.inner.sample(rng);
        hash_key(rank) % self.inner.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_pmf(z: &Zipf, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut counts = vec![0u64; z.n() as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_exact_pmf_for_all_paper_exponents() {
        for &s in &[0.5f64, 0.99, 1.5] {
            let z = Zipf::new(100, s);
            let exact = z.pmf_table();
            let got = empirical_pmf(&z, 400_000, 42);
            for i in 0..100 {
                if exact[i] > 0.005 {
                    let dev = (got[i] - exact[i]).abs() / exact[i];
                    assert!(dev < 0.05, "s={s} item={i}: {} vs {}", got[i], exact[i]);
                }
            }
        }
    }

    #[test]
    fn s_zero_is_uniform() {
        let z = Zipf::new(50, 0.0);
        let got = empirical_pmf(&z, 500_000, 7);
        for (i, &p) in got.iter().enumerate() {
            assert!((p - 0.02).abs() < 0.002, "item {i}: {p}");
        }
    }

    #[test]
    fn s_one_is_handled() {
        let z = Zipf::new(1000, 1.0);
        let exact = z.pmf_table();
        let got = empirical_pmf(&z, 300_000, 9);
        assert!((got[0] - exact[0]).abs() / exact[0] < 0.05);
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipf::new(1, 1.2);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10_000_000, 0.99);
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..100_000 {
            assert!(z.sample(&mut rng) < 10_000_000);
        }
    }

    #[test]
    fn scrambled_preserves_popularity_mass_but_scatters_items() {
        let n = 1000u64;
        let sz = ScrambledZipf::new(n, 1.0);
        let mut rng = Xoshiro256::seed_from_u64(11);
        let draws = 200_000;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[sz.sample(&mut rng) as usize] += 1;
        }
        // The hottest item should no longer be item 0 (with overwhelming
        // probability), but the max popularity must match the Zipf head.
        let (hot_item, &hot_count) = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        let z = Zipf::new(n, 1.0);
        let head = z.pmf_table()[0];
        assert!((hot_count as f64 / draws as f64 - head).abs() / head < 0.1);
        assert_eq!(hash_key(0) % n, hot_item as u64);
    }

    #[test]
    fn deterministic_per_seed() {
        let z = Zipf::new(500, 0.8);
        let a: Vec<u64> = {
            let mut rng = Xoshiro256::seed_from_u64(5);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = Xoshiro256::seed_from_u64(5);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
