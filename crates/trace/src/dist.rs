//! Object-size distributions for variable-size workloads (§4.4.1, §5.4).
//!
//! The Twitter characterization (Yang et al., OSDI '20) reports heavily
//! skewed value sizes; we provide lognormal and bounded-Pareto samplers
//! (implemented from scratch — inverse CDF for Pareto, Box–Muller for the
//! normal underlying the lognormal) plus the simple shapes used in tests.
//! Sizes are *stable per key*: the same key always gets the same size,
//! derived from a hash-seeded draw, mirroring real objects.

use krr_core::hashing::hash_key;
use krr_core::rng::Xoshiro256;

/// A distribution over object sizes in bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Every object has the same size.
    Fixed(u32),
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Smallest size.
        lo: u32,
        /// Largest size.
        hi: u32,
    },
    /// Bounded Pareto with minimum `scale`, tail index `shape`, truncated
    /// at `cap`.
    Pareto {
        /// Minimum size (the Pareto scale parameter).
        scale: f64,
        /// Tail index (smaller = heavier tail).
        shape: f64,
        /// Upper truncation in bytes.
        cap: u32,
    },
    /// Lognormal with the given parameters of the underlying normal,
    /// truncated at `cap`.
    LogNormal {
        /// Mean of `ln(size)`.
        mu: f64,
        /// Std-dev of `ln(size)`.
        sigma: f64,
        /// Upper truncation in bytes.
        cap: u32,
    },
}

impl SizeDist {
    /// Draws a size using `rng`. Results are clamped to `[1, cap]` where a
    /// cap applies.
    pub fn sample(&self, rng: &mut Xoshiro256) -> u32 {
        match *self {
            SizeDist::Fixed(s) => s.max(1),
            SizeDist::Uniform { lo, hi } => {
                assert!(lo <= hi);
                let lo = lo.max(1);
                lo + rng.below(u64::from(hi - lo) + 1) as u32
            }
            SizeDist::Pareto { scale, shape, cap } => {
                // Inverse CDF: x = scale / U^{1/shape}.
                let u = rng.unit_open_low();
                let x = scale / u.powf(1.0 / shape);
                (x.round() as u64).clamp(1, u64::from(cap.max(1))) as u32
            }
            SizeDist::LogNormal { mu, sigma, cap } => {
                // Box–Muller transform.
                let u1 = rng.unit_open_low();
                let u2 = rng.unit();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let x = (mu + sigma * z).exp();
                (x.round() as u64).clamp(1, u64::from(cap.max(1))) as u32
            }
        }
    }

    /// The stable size of `key`: a single draw from a generator seeded by
    /// `hash(key) ^ seed`, so it is reproducible and independent across keys.
    #[must_use]
    pub fn size_for_key(&self, key: u64, seed: u64) -> u32 {
        match *self {
            SizeDist::Fixed(s) => s.max(1),
            _ => {
                let mut rng = Xoshiro256::seed_from_u64(hash_key(key) ^ seed);
                self.sample(&mut rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_fixed() {
        let d = SizeDist::Fixed(200);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 200);
        }
        assert_eq!(SizeDist::Fixed(0).sample(&mut rng), 1, "zero clamps to 1");
    }

    #[test]
    fn uniform_covers_range() {
        let d = SizeDist::Uniform { lo: 10, hi: 20 };
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let s = d.sample(&mut rng);
            assert!((10..=20).contains(&s));
            seen.insert(s);
        }
        assert_eq!(seen.len(), 11);
    }

    #[test]
    fn pareto_mean_matches_theory() {
        // Untruncated Pareto mean = scale*shape/(shape-1); use a huge cap.
        let d = SizeDist::Pareto {
            scale: 100.0,
            shape: 3.0,
            cap: u32::MAX,
        };
        let mut rng = Xoshiro256::seed_from_u64(3);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| f64::from(d.sample(&mut rng))).sum::<f64>() / n as f64;
        let expect = 100.0 * 3.0 / 2.0;
        assert!(
            (mean - expect).abs() / expect < 0.03,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let d = SizeDist::Pareto {
            scale: 64.0,
            shape: 1.2,
            cap: 4096,
        };
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((64..=4096).contains(&s));
        }
    }

    #[test]
    fn lognormal_median_matches_theory() {
        let d = SizeDist::LogNormal {
            mu: 6.0,
            sigma: 1.0,
            cap: u32::MAX,
        };
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        v.sort_unstable();
        let median = f64::from(v[50_000]);
        let expect = 6.0f64.exp();
        assert!(
            (median - expect).abs() / expect < 0.05,
            "median {median} vs {expect}"
        );
    }

    #[test]
    fn size_for_key_is_stable_and_diverse() {
        let d = SizeDist::LogNormal {
            mu: 5.0,
            sigma: 1.5,
            cap: 1 << 20,
        };
        let mut distinct = std::collections::HashSet::new();
        for key in 0..1000u64 {
            let a = d.size_for_key(key, 99);
            assert_eq!(a, d.size_for_key(key, 99), "must be stable per key");
            distinct.insert(a);
        }
        assert!(
            distinct.len() > 500,
            "sizes should be diverse, got {}",
            distinct.len()
        );
        assert_ne!(
            d.size_for_key(1, 99),
            d.size_for_key(1, 100),
            "seed changes sizes"
        );
    }
}
