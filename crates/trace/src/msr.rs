//! Synthetic MSR-Cambridge-like block I/O traces (§5.2 substitution).
//!
//! The real MSR suite is 13 week-long enterprise server traces. What the
//! paper's evaluation actually consumes is their *reuse structure*:
//!
//! * **Type A** traces (src1, src2, web, proj, …) show a large gap between
//!   the exact-LRU MRC and the random-replacement (K=1) MRC, with miss
//!   ratio improving as K grows (Fig 1.1) — the regime where modeling K
//!   matters (Fig 5.2a).
//! * **Type B** traces (usr, …) are dominated by concave Zipf-like reuse
//!   where all K yield nearly the same MRC (Fig 5.2b).
//!
//! This generator synthesizes both families from a four-component mixture,
//! each component in its own key subspace so their reuse structures don't
//! dilute one another:
//!
//! 1. *Static Zipf hotspot* — frequency-driven reuse (K-insensitive; the
//!    Type B backbone).
//! 2. *Two cyclic loops of different lengths* — scan-like cyclic reuse.
//!    Each loop puts a cliff in the exact-LRU MRC; K-LRU smooths the cliff,
//!    so the K curves fan out and *cross* the LRU curve (small K wins below
//!    a cliff, large K above) — the Fig 1.1 spread.
//! 3. *Sequential runs* — one-off scans over the Zipf space (cold traffic
//!    and cache pollution).
//!
//! Each named profile also carries a block-size distribution for the
//! variable-size experiments (§5.4), sizes stable per key as in the paper's
//! "first request size" convention.

use crate::dist::SizeDist;
use crate::request::{Request, Trace};
use crate::zipf::Zipf;
use krr_core::rng::Xoshiro256;

/// The 13 MSR server identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MsrTrace {
    Hm,
    Mds,
    Prn,
    Proj,
    Prxy,
    Rsrch,
    Src1,
    Src2,
    Stg,
    Ts,
    Usr,
    Wdev,
    Web,
}

impl MsrTrace {
    /// All 13 server traces.
    pub const ALL: [MsrTrace; 13] = [
        MsrTrace::Hm,
        MsrTrace::Mds,
        MsrTrace::Prn,
        MsrTrace::Proj,
        MsrTrace::Prxy,
        MsrTrace::Rsrch,
        MsrTrace::Src1,
        MsrTrace::Src2,
        MsrTrace::Stg,
        MsrTrace::Ts,
        MsrTrace::Usr,
        MsrTrace::Wdev,
        MsrTrace::Web,
    ];

    /// Short lowercase name as used in the paper's figures (`msr_web` etc.).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            MsrTrace::Hm => "hm",
            MsrTrace::Mds => "mds",
            MsrTrace::Prn => "prn",
            MsrTrace::Proj => "proj",
            MsrTrace::Prxy => "prxy",
            MsrTrace::Rsrch => "rsrch",
            MsrTrace::Src1 => "src1",
            MsrTrace::Src2 => "src2",
            MsrTrace::Stg => "stg",
            MsrTrace::Ts => "ts",
            MsrTrace::Usr => "usr",
            MsrTrace::Wdev => "wdev",
            MsrTrace::Web => "web",
        }
    }
}

/// Parameterization of one synthetic server trace. Component probabilities
/// (`p_loop1`, `p_loop2`, `p_seq`) need not sum to 1; the remainder goes to
/// the static Zipf hotspot.
#[derive(Debug, Clone)]
pub struct MsrProfile {
    /// Trace name.
    pub name: &'static str,
    /// Zipf-hotspot keyspace in blocks at scale 1.0 (other components get
    /// proportional disjoint subspaces).
    pub blocks: u64,
    /// Zipf exponent of the static hotspot.
    pub theta: f64,
    /// Probability of an access to the short loop.
    pub p_loop1: f64,
    /// Short-loop length as a fraction of `blocks`.
    pub loop1_frac: f64,
    /// Probability of an access to the long loop.
    pub p_loop2: f64,
    /// Long-loop length as a fraction of `blocks`.
    pub loop2_frac: f64,
    /// Fraction of requests that are sequential-scan traffic.
    pub p_seq: f64,
    /// Mean sequential run length (geometric).
    pub seq_len: u64,
    /// Block-size distribution for variable-size mode.
    pub block_size: SizeDist,
}

/// Returns the tuned profile for a named trace.
#[must_use]
pub fn profile(trace: MsrTrace) -> MsrProfile {
    // I/O sizes are 512B-aligned-ish and heavy-tailed.
    let small_io = SizeDist::Pareto {
        scale: 4096.0,
        shape: 1.8,
        cap: 65_536,
    };
    let large_io = SizeDist::Pareto {
        scale: 8192.0,
        shape: 1.3,
        cap: 262_144,
    };
    // (name, blocks, theta, p_loop1, loop1_frac, p_loop2, loop2_frac,
    //  p_seq, seq_len, sizes)
    let p = match trace {
        // --- Type A: loop/scan dominated, K curves fan out & cross -----
        MsrTrace::Src1 => (
            "src1",
            400_000,
            0.8,
            0.30,
            0.35,
            0.25,
            1.30,
            0.10,
            2_000,
            large_io.clone(),
        ),
        MsrTrace::Src2 => (
            "src2",
            120_000,
            0.7,
            0.35,
            0.40,
            0.25,
            1.40,
            0.05,
            400,
            small_io.clone(),
        ),
        MsrTrace::Web => (
            "web",
            250_000,
            0.9,
            0.35,
            0.40,
            0.30,
            1.40,
            0.05,
            800,
            small_io.clone(),
        ),
        MsrTrace::Proj => (
            "proj",
            600_000,
            0.8,
            0.30,
            0.30,
            0.30,
            1.50,
            0.10,
            3_000,
            large_io.clone(),
        ),
        MsrTrace::Rsrch => (
            "rsrch",
            60_000,
            0.8,
            0.40,
            0.35,
            0.20,
            1.20,
            0.05,
            200,
            small_io.clone(),
        ),
        MsrTrace::Hm => (
            "hm",
            90_000,
            0.9,
            0.30,
            0.30,
            0.20,
            1.10,
            0.05,
            300,
            small_io.clone(),
        ),
        MsrTrace::Stg => (
            "stg",
            150_000,
            0.7,
            0.25,
            0.30,
            0.20,
            1.20,
            0.20,
            1_500,
            large_io.clone(),
        ),
        MsrTrace::Ts => (
            "ts",
            70_000,
            0.8,
            0.35,
            0.35,
            0.20,
            1.30,
            0.08,
            500,
            small_io.clone(),
        ),
        // --- Type B: Zipf-dominated, K-insensitive --------------------
        MsrTrace::Usr => (
            "usr",
            500_000,
            1.05,
            0.00,
            0.0,
            0.00,
            0.0,
            0.05,
            100,
            large_io.clone(),
        ),
        MsrTrace::Prxy => (
            "prxy",
            200_000,
            1.1,
            0.00,
            0.0,
            0.00,
            0.0,
            0.03,
            50,
            small_io.clone(),
        ),
        MsrTrace::Mds => (
            "mds",
            120_000,
            0.95,
            0.05,
            0.10,
            0.03,
            0.50,
            0.08,
            200,
            small_io.clone(),
        ),
        MsrTrace::Prn => (
            "prn",
            180_000,
            1.0,
            0.06,
            0.10,
            0.04,
            0.60,
            0.08,
            300,
            small_io.clone(),
        ),
        MsrTrace::Wdev => (
            "wdev", 50_000, 1.0, 0.05, 0.10, 0.03, 0.50, 0.05, 100, small_io,
        ),
    };
    MsrProfile {
        name: p.0,
        blocks: p.1,
        theta: p.2,
        p_loop1: p.3,
        loop1_frac: p.4,
        p_loop2: p.5,
        loop2_frac: p.6,
        p_seq: p.7,
        seq_len: p.8,
        block_size: p.9,
    }
}

impl MsrProfile {
    /// Generates `n` uniform-size requests with the working set scaled by
    /// `scale` (e.g. 0.1 shrinks the trace for fast experiments).
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64, scale: f64) -> Trace {
        self.generate_inner(n, seed, scale, false)
    }

    /// Generates `n` variable-size requests; block sizes come from the
    /// profile's distribution and are stable per key.
    #[must_use]
    pub fn generate_var_size(&self, n: usize, seed: u64, scale: f64) -> Trace {
        self.generate_inner(n, seed, scale, true)
    }

    fn generate_inner(&self, n: usize, seed: u64, scale: f64, var: bool) -> Trace {
        assert!(scale > 0.0);
        let blocks = ((self.blocks as f64 * scale) as u64).max(16);
        let loop1 = ((blocks as f64 * self.loop1_frac) as u64).max(1);
        let loop2 = ((blocks as f64 * self.loop2_frac) as u64).max(1);
        // Disjoint subspaces so component reuse structures stay intact.
        let loop1_base = blocks;
        let loop2_base = blocks + loop1;

        let zipf = Zipf::new(blocks, self.theta);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);

        // Persistent state: loop pointers survive between bursts, which is
        // what makes each pattern a true cycle.
        let mut pos1 = 0u64;
        let mut pos2 = 0u64;
        let mut seq_remaining = 0u64;
        let mut seq_next = 0u64;

        for _ in 0..n {
            let key = if seq_remaining > 0 {
                seq_remaining -= 1;
                let k = seq_next;
                seq_next = (seq_next + 1) % blocks;
                k
            } else {
                let r = rng.unit();
                if r < self.p_loop1 {
                    let k = loop1_base + pos1;
                    pos1 = (pos1 + 1) % loop1;
                    k
                } else if r < self.p_loop1 + self.p_loop2 {
                    let k = loop2_base + pos2;
                    pos2 = (pos2 + 1) % loop2;
                    k
                } else if r < self.p_loop1 + self.p_loop2 + self.p_seq / self.seq_len as f64 {
                    // Start a geometric-length sequential run at a random
                    // offset. Each run emits ~seq_len requests, so the
                    // *start* probability is p_seq / seq_len, making p_seq
                    // the overall fraction of sequential requests.
                    seq_next = rng.below(blocks);
                    seq_remaining = 1 + (-(rng.unit_open_low().ln()) * self.seq_len as f64) as u64;
                    let k = seq_next;
                    seq_next = (seq_next + 1) % blocks;
                    k
                } else {
                    zipf.sample(&mut rng)
                }
            };
            let size = if var {
                // Sizes correlate with the component: loop/scan regions
                // carry larger blocks than the hot random region (cold
                // streamed data is big, hot metadata small). This is what
                // makes the uniform-size assumption visibly wrong
                // (Fig 5.3a / Pan et al. [18]).
                let s = self.block_size.size_for_key(key, seed ^ 0xB10C);
                if key >= loop2_base {
                    s.saturating_mul(6)
                } else if key >= loop1_base {
                    s.saturating_mul(3)
                } else {
                    s
                }
            } else {
                1
            };
            out.push(Request::get(key, size));
        }
        out
    }
}

/// The merged "master" MSR trace used in Table 5.4: all 13 server traces
/// interleaved round-robin with disjoint keyspaces.
#[must_use]
pub fn master_trace(n: usize, seed: u64, scale: f64) -> Trace {
    let per = n / MsrTrace::ALL.len() + 1;
    let subs: Vec<Trace> = MsrTrace::ALL
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let mut sub = profile(t).generate(per, seed.wrapping_add(i as u64), scale);
            let offset = (i as u64 + 1) << 40;
            for r in &mut sub {
                r.key += offset;
            }
            sub
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    let mut idx = 0usize;
    'outer: loop {
        for sub in &subs {
            if out.len() >= n {
                break 'outer;
            }
            if let Some(&r) = sub.get(idx) {
                out.push(r);
            }
        }
        idx += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::stats;

    #[test]
    fn all_profiles_generate() {
        for t in MsrTrace::ALL {
            let p = profile(t);
            let trace = p.generate(20_000, 1, 0.1);
            assert_eq!(trace.len(), 20_000);
            let s = stats(&trace);
            assert!(s.distinct > 100, "{}: distinct {}", p.name, s.distinct);
        }
    }

    #[test]
    fn loop_components_live_in_their_own_subspaces() {
        let p = profile(MsrTrace::Src2);
        let scale = 0.05;
        let blocks = (p.blocks as f64 * scale) as u64;
        let loop1 = ((blocks as f64) * p.loop1_frac) as u64;
        let loop2 = ((blocks as f64) * p.loop2_frac) as u64;
        let trace = p.generate(100_000, 2, scale);
        let in1 = trace
            .iter()
            .filter(|r| r.key >= blocks && r.key < blocks + loop1)
            .count();
        let in2 = trace
            .iter()
            .filter(|r| r.key >= blocks + loop1 && r.key < blocks + loop1 + loop2)
            .count();
        let f1 = in1 as f64 / trace.len() as f64;
        let f2 = in2 as f64 / trace.len() as f64;
        assert!((f1 - p.p_loop1).abs() < 0.02, "short loop fraction {f1}");
        assert!((f2 - p.p_loop2).abs() < 0.02, "long loop fraction {f2}");
    }

    #[test]
    fn loops_are_cyclic() {
        let p = profile(MsrTrace::Web);
        let scale = 0.05;
        let blocks = (p.blocks as f64 * scale) as u64;
        let loop1 = ((blocks as f64) * p.loop1_frac) as u64;
        let trace = p.generate(200_000, 3, scale);
        // Consecutive accesses within the short loop advance by exactly 1
        // (mod loop length).
        let hits: Vec<u64> = trace
            .iter()
            .filter(|r| r.key >= blocks && r.key < blocks + loop1)
            .map(|r| r.key - blocks)
            .collect();
        assert!(hits.len() > 1000);
        for w in hits.windows(2) {
            assert_eq!(w[1], (w[0] + 1) % loop1, "loop must cycle in order");
        }
    }

    #[test]
    fn type_b_traces_are_zipf_dominated() {
        let p = profile(MsrTrace::Prxy);
        let trace = p.generate(100_000, 3, 0.1);
        let mut counts = std::collections::HashMap::new();
        for r in &trace {
            *counts.entry(r.key).or_insert(0u64) += 1;
        }
        let max = *counts.values().max().unwrap();
        assert!(max > 2_000, "Zipf head should be hot, got {max}");
    }

    #[test]
    fn var_size_is_stable_per_key() {
        let p = profile(MsrTrace::Web);
        let trace = p.generate_var_size(50_000, 4, 0.05);
        let mut sizes = std::collections::HashMap::new();
        for r in &trace {
            let prev = sizes.insert(r.key, r.size);
            if let Some(prev) = prev {
                assert_eq!(prev, r.size, "key {} size changed", r.key);
            }
            assert!(r.size >= 1);
        }
        let distinct_sizes: std::collections::HashSet<u32> = sizes.values().copied().collect();
        assert!(distinct_sizes.len() > 50, "sizes should be diverse");
    }

    #[test]
    fn master_trace_has_disjoint_subspaces() {
        let t = master_trace(13_000, 5, 0.02);
        assert_eq!(t.len(), 13_000);
        let spaces: std::collections::HashSet<u64> = t.iter().map(|r| r.key >> 40).collect();
        assert_eq!(spaces.len(), 13, "all 13 keyspaces should appear");
    }

    #[test]
    fn scale_shrinks_working_set() {
        let p = profile(MsrTrace::Web);
        let small = stats(&p.generate(50_000, 6, 0.01)).distinct;
        let large = stats(&p.generate(50_000, 6, 0.2)).distinct;
        assert!(large > small * 2);
    }
}
