//! Twitter-production-like KV cache traces (§5.2 substitution).
//!
//! Modeled on the OSDI '20 characterization of Twitter's in-memory cache
//! clusters: Zipfian key popularity with cluster-specific skew, a get/set
//! mix, and heavily skewed value sizes (lognormal body). The four cluster
//! profiles mirror the sub-traces the paper evaluates (26.0, 34.1, 45.0,
//! 52.7): cluster 34.1 carries a scan/loop component making it Type A in
//! Fig 5.2, while 45.0 is Zipf-dominated Type B.

use crate::dist::SizeDist;
use crate::request::{Op, Request, Trace};
use crate::zipf::ScrambledZipf;
use krr_core::rng::Xoshiro256;

/// The four Twitter cluster sub-traces used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TwitterCluster {
    C26_0,
    C34_1,
    C45_0,
    C52_7,
}

impl TwitterCluster {
    /// All four clusters.
    pub const ALL: [TwitterCluster; 4] = [
        TwitterCluster::C26_0,
        TwitterCluster::C34_1,
        TwitterCluster::C45_0,
        TwitterCluster::C52_7,
    ];

    /// Name as used in the paper's figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TwitterCluster::C26_0 => "cluster26.0",
            TwitterCluster::C34_1 => "cluster34.1",
            TwitterCluster::C45_0 => "cluster45.0",
            TwitterCluster::C52_7 => "cluster52.7",
        }
    }
}

/// Parameterization of one cluster's trace.
#[derive(Debug, Clone)]
pub struct TwitterProfile {
    /// Cluster name.
    pub name: &'static str,
    /// Key population at scale 1.0.
    pub keys: u64,
    /// Zipf exponent of key popularity.
    pub theta: f64,
    /// Fraction of SET operations.
    pub set_ratio: f64,
    /// Probability a request advances a persistent cyclic re-read pattern
    /// (feed regeneration); gives the cluster a Type A component.
    pub p_loop: f64,
    /// Loop region as a fraction of the key population.
    pub loop_frac: f64,
    /// Value-size distribution (stable per key).
    pub value_size: SizeDist,
}

/// Returns the tuned profile for a cluster.
#[must_use]
pub fn profile(cluster: TwitterCluster) -> TwitterProfile {
    let small_vals = SizeDist::LogNormal {
        mu: 5.0,
        sigma: 1.2,
        cap: 65_536,
    };
    let medium_vals = SizeDist::LogNormal {
        mu: 6.2,
        sigma: 1.5,
        cap: 262_144,
    };
    let p = match cluster {
        TwitterCluster::C26_0 => ("cluster26.0", 300_000, 0.95, 0.02, 0.20, 0.40, small_vals),
        // Type A: strong cyclic component.
        TwitterCluster::C34_1 => ("cluster34.1", 150_000, 0.80, 0.05, 0.50, 0.60, medium_vals),
        // Type B: pure skewed reuse.
        TwitterCluster::C45_0 => (
            "cluster45.0",
            400_000,
            1.00,
            0.30,
            0.00,
            0.0,
            small_vals.clone(),
        ),
        TwitterCluster::C52_7 => ("cluster52.7", 80_000, 1.10, 0.10, 0.15, 0.30, small_vals),
    };
    TwitterProfile {
        name: p.0,
        keys: p.1,
        theta: p.2,
        set_ratio: p.3,
        p_loop: p.4,
        loop_frac: p.5,
        value_size: p.6,
    }
}

impl TwitterProfile {
    /// Generates `n` requests. `var_size` selects per-key lognormal value
    /// sizes; otherwise every object is 1 unit.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64, scale: f64, var_size: bool) -> Trace {
        assert!(scale > 0.0);
        let keys = ((self.keys as f64 * scale) as u64).max(16);
        let loop_len = ((keys as f64 * self.loop_frac) as u64).max(1);
        let zipf = ScrambledZipf::new(keys, self.theta);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut loop_pos = 0u64;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let key = if rng.unit() < self.p_loop {
                let k = loop_pos;
                loop_pos = (loop_pos + 1) % loop_len;
                // Loop keys live in their own subspace above the Zipf keys.
                keys + k
            } else {
                zipf.sample(&mut rng)
            };
            let size = if var_size {
                self.value_size.size_for_key(key, seed ^ 0x7017)
            } else {
                1
            };
            let op = if rng.unit() < self.set_ratio {
                Op::Set
            } else {
                Op::Get
            };
            out.push(Request { key, size, op });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::stats;

    #[test]
    fn all_clusters_generate() {
        for c in TwitterCluster::ALL {
            let p = profile(c);
            let t = p.generate(30_000, 1, 0.1, true);
            assert_eq!(t.len(), 30_000);
            let s = stats(&t);
            assert!(s.distinct > 100, "{}", p.name);
            let expected_sets = p.set_ratio;
            assert!(
                (s.set_fraction - expected_sets).abs() < 0.02,
                "{}: set fraction {} vs {}",
                p.name,
                s.set_fraction,
                expected_sets
            );
        }
    }

    #[test]
    fn var_sizes_are_skewed_and_stable() {
        let p = profile(TwitterCluster::C26_0);
        let t = p.generate(50_000, 2, 0.1, true);
        let mut per_key = std::collections::HashMap::new();
        for r in &t {
            let prev = per_key.insert(r.key, r.size);
            if let Some(prev) = prev {
                assert_eq!(prev, r.size);
            }
        }
        let sizes: Vec<u32> = per_key.values().copied().collect();
        let mean = sizes.iter().map(|&s| f64::from(s)).sum::<f64>() / sizes.len() as f64;
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = f64::from(sorted[sorted.len() / 2]);
        assert!(
            mean > 1.3 * median,
            "lognormal sizes should be right-skewed"
        );
    }

    #[test]
    fn uniform_mode_emits_unit_sizes() {
        let t = profile(TwitterCluster::C45_0).generate(1000, 3, 0.1, false);
        assert!(t.iter().all(|r| r.size == 1));
    }

    #[test]
    fn type_a_cluster_has_loop_component() {
        let p = profile(TwitterCluster::C34_1);
        let keys = ((p.keys as f64) * 0.05) as u64;
        let t = p.generate(100_000, 4, 0.05, false);
        let loop_accesses = t.iter().filter(|r| r.key >= keys).count();
        assert!(
            (loop_accesses as f64 / t.len() as f64 - p.p_loop).abs() < 0.02,
            "loop fraction off: {}",
            loop_accesses as f64 / t.len() as f64
        );
    }
}
