//! Readers for the *real* trace formats the paper evaluates, so anyone
//! holding the original data can drop it straight into this toolkit:
//!
//! * **MSR Cambridge** (SNIA IOTTA, `*.csv`):
//!   `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime` —
//!   converted to 4 KiB-aligned block GETs, one request per touched block,
//!   with the paper's "first-request size" convention available through
//!   byte mode.
//! * **Twitter production cache traces** (`cluster*.sort`):
//!   `timestamp,anonymized key,key size,value size,client id,operation,TTL`
//!   — keys are hashed to u64, sizes are key+value bytes, operations map
//!   onto GET/SET.

use crate::request::{Op, Request, Trace};
use krr_core::hashing::hash_key;
use std::io::{self, BufRead};

const MSR_BLOCK: u64 = 4096;

fn bad(line: usize, msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("line {}: {msg}", line + 1),
    )
}

/// Parses an MSR Cambridge CSV stream into block-granularity requests.
///
/// Each I/O of `Size` bytes at `Offset` touches
/// `ceil((offset%4K + size) / 4K)` consecutive 4 KiB blocks; one request is
/// emitted per block, keyed by `(disk << 40) | block_number`, sized 4 KiB.
/// Reads and writes both become GETs (the paper converts every request to
/// a standard get/set with the caching layer below the write path).
pub fn read_msr_csv<R: BufRead>(r: R) -> io::Result<Trace> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split(',');
        let _timestamp = f.next().ok_or_else(|| bad(i, "missing timestamp"))?;
        let _hostname = f.next().ok_or_else(|| bad(i, "missing hostname"))?;
        let disk: u64 = f
            .next()
            .ok_or_else(|| bad(i, "missing disk"))?
            .trim()
            .parse()
            .map_err(|e| bad(i, e))?;
        let _type = f.next().ok_or_else(|| bad(i, "missing type"))?;
        let offset: u64 = f
            .next()
            .ok_or_else(|| bad(i, "missing offset"))?
            .trim()
            .parse()
            .map_err(|e| bad(i, e))?;
        let size: u64 = f
            .next()
            .ok_or_else(|| bad(i, "missing size"))?
            .trim()
            .parse()
            .map_err(|e| bad(i, e))?;
        let first = offset / MSR_BLOCK;
        let last = if size == 0 {
            first
        } else {
            (offset + size - 1) / MSR_BLOCK
        };
        for block in first..=last {
            out.push(Request::get((disk << 40) | block, MSR_BLOCK as u32));
        }
    }
    Ok(out)
}

/// Parses a Twitter production cache trace
/// (`timestamp,key,key_size,value_size,client,op[,ttl]`).
///
/// Keys are hashed to u64 (the originals are anonymized strings); object
/// size is `key_size + value_size`; `get`-family ops map to GET, mutating
/// ops to SET. Unknown ops are skipped rather than failing the whole file.
pub fn read_twitter_trace<R: BufRead>(r: R) -> io::Result<Trace> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() < 6 {
            return Err(bad(i, format!("expected >=6 fields, got {}", f.len())));
        }
        let key = hash_key_bytes(f[1].as_bytes());
        let key_size: u64 = f[2].trim().parse().map_err(|e| bad(i, e))?;
        let value_size: u64 = f[3].trim().parse().map_err(|e| bad(i, e))?;
        let size = (key_size + value_size).min(u64::from(u32::MAX)) as u32;
        let op = match f[5].trim() {
            "get" | "gets" | "getrange" => Op::Get,
            "set" | "add" | "replace" | "cas" | "append" | "prepend" | "incr" | "decr" => Op::Set,
            _ => continue,
        };
        out.push(Request {
            key,
            size: size.max(1),
            op,
        });
    }
    Ok(out)
}

/// Stable 64-bit hash of an anonymized string key.
fn hash_key_bytes(bytes: &[u8]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis as the seed
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = hash_key(acc ^ u64::from_le_bytes(word));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msr_single_block_io() {
        let text = "128166372003061629,hm,1,Read,383496192,512,58000\n";
        let t = read_msr_csv(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].key, (1 << 40) | (383496192 / 4096));
        assert_eq!(t[0].size, 4096);
    }

    #[test]
    fn msr_io_spanning_blocks() {
        // 10000 bytes starting 100 bytes before a block boundary.
        let offset = 3 * 4096 - 100;
        let text = format!("1,web,0,Write,{offset},10000,0\n");
        let t = read_msr_csv(text.as_bytes()).unwrap();
        // Touches blocks 2..=(offset+9999)/4096 = 2,3,4,5
        let blocks: Vec<u64> = t.iter().map(|r| r.key).collect();
        assert_eq!(blocks, vec![2, 3, 4, 5]);
    }

    #[test]
    fn msr_zero_size_touches_one_block() {
        let t = read_msr_csv("1,a,0,Read,8192,0,0\n".as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].key, 2);
    }

    #[test]
    fn msr_disks_are_disjoint() {
        let text = "1,a,0,Read,0,512,0\n1,a,1,Read,0,512,0\n";
        let t = read_msr_csv(text.as_bytes()).unwrap();
        assert_ne!(t[0].key, t[1].key);
    }

    #[test]
    fn msr_rejects_garbage() {
        assert!(read_msr_csv("1,a,x,Read,0,512,0\n".as_bytes()).is_err());
        assert!(read_msr_csv("1,a,0,Read\n".as_bytes()).is_err());
    }

    #[test]
    fn twitter_roundtrip() {
        let text = "\
0,q2bJ0Ajfks,14,217,33,get,0
1,q2bJ0Ajfks,14,217,33,set,7200
2,other_key__,11,100,2,gets,0
3,skipme_____,11,100,2,weirdop,0
";
        let t = read_twitter_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 3, "unknown ops are skipped");
        assert_eq!(t[0].key, t[1].key, "same anonymized key hashes identically");
        assert_ne!(t[0].key, t[2].key);
        assert_eq!(t[0].size, 231);
        assert_eq!(t[0].op, Op::Get);
        assert_eq!(t[1].op, Op::Set);
    }

    #[test]
    fn twitter_rejects_short_lines() {
        assert!(read_twitter_trace("1,k,1,2\n".as_bytes()).is_err());
    }
}
