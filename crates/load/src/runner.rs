//! The open-loop dispatcher: N real RESP connections driven by a timed
//! schedule.
//!
//! Each connection gets two threads. The *sender* walks its slice of the
//! schedule (round-robin striped, so every connection sees every phase),
//! sleeps/spins until each arrival time, writes the RESP command, and
//! moves on — it never waits for a response, so a slow server cannot
//! throttle the offered load. The *receiver* drains replies in order and
//! records `reply_time − scheduled_time` into log2 histograms: when the
//! sender falls behind schedule, the lag lands in the measured latency
//! instead of disappearing (the coordinated-omission correction that
//! motivates open-loop harnesses).
//!
//! Writes are pipelined: the sender flushes after
//! [`LoadConfig::pipeline_depth`] buffered commands, or earlier whenever
//! the next arrival is still in the future (never holding a command
//! hostage to batching while the wire is idle).

use crate::report::{AbReport, LatencySummary, LoadReport, PhaseReport};
use crate::schedule::Schedule;
use krr_core::metrics::LogHistogram;
use krr_redis::resp::{read_value, write_value, Value};
use krr_trace::{Op, Request};
use std::collections::HashSet;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Barrier, OnceLock};
use std::time::{Duration, Instant};

/// Tuning knobs for one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Real TCP connections to open (each gets a sender + receiver
    /// thread).
    pub connections: usize,
    /// Maximum commands buffered before a flush. 1 disables pipelining;
    /// the sender always flushes early when it is ahead of schedule.
    pub pipeline_depth: usize,
    /// Multi-tenant mode: when > 0, connection `c` issues `TENANT c % N`
    /// during setup (before the start barrier, so the round-trip stays off
    /// the clock) and the server attributes its GETs to that tenant for
    /// fleet profiling. 0 leaves connections unscoped.
    pub tenants: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            pipeline_depth: 32,
            tenants: 0,
        }
    }
}

/// Per-phase shared aggregation, written by receivers and senders.
struct PhaseAgg {
    hist: LogHistogram,
    resp_errors: AtomicU64,
    sent: AtomicU64,
    first_send_ns: AtomicU64,
    last_send_ns: AtomicU64,
}

impl PhaseAgg {
    fn new() -> Self {
        Self {
            hist: LogHistogram::new(),
            resp_errors: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            first_send_ns: AtomicU64::new(u64::MAX),
            last_send_ns: AtomicU64::new(0),
        }
    }
}

/// Sleeps (coarsely) then yields/spins until `target_ns` on the shared
/// run clock.
fn wait_until(t0: Instant, target_ns: u64) {
    loop {
        let now = t0.elapsed().as_nanos() as u64;
        if now >= target_ns {
            return;
        }
        let rem = target_ns - now;
        if rem > 1_500_000 {
            // Leave ~0.5ms of slack for sleep overshoot.
            std::thread::sleep(Duration::from_nanos(rem - 500_000));
        } else if rem > 100_000 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Blocks until the shared start instant is published.
fn shared_t0(start: &OnceLock<Instant>) -> Instant {
    loop {
        if let Some(t) = start.get() {
            return *t;
        }
        std::hint::spin_loop();
    }
}

/// Drives `schedule` against the RESP server at `addr`, replaying `reqs`
/// (cycled if shorter than the schedule). Returns the per-run report;
/// I/O errors during the run are folded into its error counts, while
/// connection-setup failures are returned directly.
pub fn run(
    addr: SocketAddr,
    schedule: &Schedule,
    reqs: &[Request],
    cfg: &LoadConfig,
) -> io::Result<LoadReport> {
    let n = schedule.len();
    let conns = cfg.connections.max(1);
    let depth = cfg.pipeline_depth.max(1);
    let phases: Vec<PhaseAgg> = schedule.phases.iter().map(|_| PhaseAgg::new()).collect();
    let mut scheduled_per_phase = vec![0u64; schedule.phases.len()];
    for &p in &schedule.phase_of {
        scheduled_per_phase[p as usize] += 1;
    }
    let last_event_ns = AtomicU64::new(0);

    if n > 0 {
        assert!(!reqs.is_empty(), "a non-empty schedule needs requests");
        // Connect everything up front so setup cost stays off the clock.
        let mut streams = Vec::with_capacity(conns);
        for c in 0..conns {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true)?;
            if cfg.tenants > 0 {
                // Tenant selection is per-connection server state; do the
                // round-trip here so it never lands in measured latency.
                let mut r = BufReader::new(s.try_clone()?);
                let mut w = BufWriter::new(s.try_clone()?);
                let id = (c % cfg.tenants).to_string();
                write_value(&mut w, &Value::command(&[b"TENANT", id.as_bytes()]))?;
                w.flush()?;
                match read_value(&mut r)? {
                    Value::Simple(ref ok) if ok == "OK" => {}
                    other => {
                        return Err(io::Error::other(format!(
                            "TENANT {id} rejected by server: {other:?}"
                        )))
                    }
                }
            }
            streams.push(s);
        }
        let barrier = Barrier::new(2 * conns + 1);
        let start: OnceLock<Instant> = OnceLock::new();
        // Largest SET payload in the workload, shared by every sender.
        let payload = vec![
            b'x';
            reqs.iter()
                .filter(|r| r.op == Op::Set)
                .map(|r| r.size as usize)
                .max()
                .unwrap_or(0)
        ];

        std::thread::scope(|scope| {
            for (c, stream) in streams.into_iter().enumerate() {
                let reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let writer = BufWriter::new(stream);
                let (tx, rx) = mpsc::channel::<(u64, u8)>();
                let (barrier, start) = (&barrier, &start);
                let (phases, last_event_ns, payload) = (&phases, &last_event_ns, &payload);

                scope.spawn(move || {
                    let mut w = writer;
                    barrier.wait();
                    let t0 = shared_t0(start);
                    let mut pending = 0usize;
                    let mut i = c;
                    while i < n {
                        let t_sched = schedule.arrivals[i];
                        let p = schedule.phase_of[i] as usize;
                        let r = &reqs[i % reqs.len()];
                        wait_until(t0, t_sched);
                        let key = r.key.to_string();
                        let cmd = match r.op {
                            Op::Get => Value::command(&[b"GET", key.as_bytes()]),
                            Op::Set => Value::command(&[
                                b"SET",
                                key.as_bytes(),
                                &payload[..r.size as usize],
                            ]),
                        };
                        if write_value(&mut w, &cmd).is_err() {
                            break; // connection died; the missing replies count as errors
                        }
                        let now = t0.elapsed().as_nanos() as u64;
                        let agg = &phases[p];
                        agg.sent.fetch_add(1, Ordering::Relaxed);
                        agg.first_send_ns.fetch_min(now, Ordering::Relaxed);
                        agg.last_send_ns.fetch_max(now, Ordering::Relaxed);
                        last_event_ns.fetch_max(now, Ordering::Relaxed);
                        if tx.send((t_sched, schedule.phase_of[i])).is_err() {
                            break;
                        }
                        pending += 1;
                        i += conns;
                        // Flush on a full pipeline, at the end, or whenever
                        // the wire would otherwise sit idle.
                        if pending >= depth || i >= n || schedule.arrivals[i] > now {
                            if w.flush().is_err() {
                                break;
                            }
                            pending = 0;
                        }
                    }
                    let _ = w.flush();
                    // tx drops here: the receiver drains and exits.
                });

                scope.spawn(move || {
                    let mut r = reader;
                    barrier.wait();
                    let t0 = shared_t0(start);
                    for (t_sched, p) in &rx {
                        match read_value(&mut r) {
                            Ok(v) => {
                                let now = t0.elapsed().as_nanos() as u64;
                                let agg = &phases[p as usize];
                                agg.hist.record(now.saturating_sub(t_sched));
                                if matches!(v, Value::Error(_)) {
                                    agg.resp_errors.fetch_add(1, Ordering::Relaxed);
                                }
                                last_event_ns.fetch_max(now, Ordering::Relaxed);
                            }
                            // Reply stream broke: every outstanding and
                            // future token on this connection is lost,
                            // which the sent-vs-replies balance reports.
                            Err(_) => break,
                        }
                    }
                });
            }
            barrier.wait();
            start.set(Instant::now()).expect("start published once");
        });
    }

    // ---- Aggregate ----
    let total_hist = LogHistogram::new();
    let mut phase_reports = Vec::with_capacity(phases.len());
    let mut total_errors = 0u64;
    let (mut first_send, mut last_send, mut total_sent) = (u64::MAX, 0u64, 0u64);
    for (i, agg) in phases.iter().enumerate() {
        let snap = agg.hist.snapshot();
        total_hist.absorb(&snap);
        let sent = agg.sent.load(Ordering::Relaxed);
        let errors = agg.resp_errors.load(Ordering::Relaxed)
            + scheduled_per_phase[i].saturating_sub(snap.count);
        total_errors += errors;
        total_sent += sent;
        let (f, l) = (
            agg.first_send_ns.load(Ordering::Relaxed),
            agg.last_send_ns.load(Ordering::Relaxed),
        );
        first_send = first_send.min(f);
        last_send = last_send.max(l);
        let span_ns = l.saturating_sub(f).max(1);
        phase_reports.push(PhaseReport {
            name: schedule.phases[i].name.clone(),
            target_qps: schedule.phases[i].target_qps,
            achieved_qps: if sent > 1 {
                (sent - 1) as f64 * 1e9 / span_ns as f64
            } else {
                0.0
            },
            requests: scheduled_per_phase[i],
            errors,
            latency_ns: LatencySummary::from_snapshot(&snap),
        });
    }
    let send_span_ns = last_send.saturating_sub(first_send.min(last_send)).max(1);
    Ok(LoadReport {
        arrival: schedule.arrival.name().to_string(),
        target_qps: schedule.target_qps,
        achieved_qps: if total_sent > 1 {
            (total_sent - 1) as f64 * 1e9 / send_span_ns as f64
        } else {
            0.0
        },
        requests: n as u64,
        connections: conns as u64,
        pipeline_depth: depth as u64,
        duration_ns: last_event_ns.load(Ordering::Relaxed),
        errors: total_errors,
        latency_ns: LatencySummary::from_snapshot(&total_hist.snapshot()),
        phases: phase_reports,
        ab: AbReport::disabled(),
    })
}

/// Populates the store with every distinct key of `reqs` (first-seen
/// order, one `SET` each) over a single deeply pipelined connection, so a
/// measured run starts from a warm cache instead of a cold-miss wall.
/// Returns the number of keys written.
pub fn prefill(addr: SocketAddr, reqs: &[Request]) -> io::Result<u64> {
    const CHUNK: usize = 512;
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut seen = HashSet::new();
    let mut written = 0u64;
    let mut chunk = Vec::with_capacity(CHUNK);
    let mut payload: Vec<u8> = Vec::new();
    let flush_chunk = |chunk: &mut Vec<(u64, u32)>,
                       writer: &mut BufWriter<TcpStream>,
                       reader: &mut BufReader<TcpStream>,
                       payload: &mut Vec<u8>|
     -> io::Result<u64> {
        // Write the whole chunk, then read its replies: bounding the
        // outstanding window keeps both socket buffers from filling up
        // and deadlocking writer against writer.
        for &(key, size) in chunk.iter() {
            let size = size as usize;
            if payload.len() < size {
                payload.resize(size, b'x');
            }
            let key = key.to_string();
            write_value(
                writer,
                &Value::command(&[b"SET", key.as_bytes(), &payload[..size]]),
            )?;
        }
        writer.flush()?;
        let mut ok = 0u64;
        for _ in 0..chunk.len() {
            if !matches!(read_value(reader)?, Value::Error(_)) {
                ok += 1;
            }
        }
        chunk.clear();
        Ok(ok)
    };
    for r in reqs {
        if seen.insert(r.key) {
            chunk.push((r.key, r.size.max(1)));
            if chunk.len() == CHUNK {
                written += flush_chunk(&mut chunk, &mut writer, &mut reader, &mut payload)?;
            }
        }
    }
    written += flush_chunk(&mut chunk, &mut writer, &mut reader, &mut payload)?;
    Ok(written)
}
