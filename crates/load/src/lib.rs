//! # krr-load
//!
//! An open-loop RESP load harness for mini-Redis. The harness separates
//! *when* requests are sent from *how the server responds*: a
//! [`Schedule`] materializes every arrival timestamp up front from a
//! target rate, an inter-arrival process ([`Arrival`]), and a seed; the
//! [`runner`] then dispatches each request at its scheduled instant over
//! real TCP connections, fire-and-forget. Latency is measured from the
//! *scheduled* time to the reply, so a lagging sender or a stalled server
//! inflates the recorded tail instead of silently thinning the load —
//! the open-loop discipline that avoids coordinated omission.
//!
//! Results come back as a [`LoadReport`] (`krr-load-v1` JSON): achieved
//! vs target QPS, interpolated log2-histogram percentiles, error counts,
//! and a per-phase breakdown. [`run_ab`] layers a paired experiment on
//! top: the same seeded schedule against a plain server and against one
//! with MRC profiling plus live `/metrics` scraping, reporting the p99
//! delta the repo's tail-latency gate enforces.
//!
//! ```
//! use krr_load::{Arrival, Schedule};
//!
//! // Bit-identical across runs and machines: same inputs, same arrivals.
//! let a = Schedule::generate(Arrival::Poisson, 50_000.0, 1_000, 7);
//! let b = Schedule::generate(Arrival::Poisson, 50_000.0, 1_000, 7);
//! assert_eq!(a.arrivals, b.arrivals);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ab;
pub mod report;
pub mod runner;
pub mod schedule;

pub use ab::{run_ab, run_ab_forensics, AbConfig};
pub use report::{AbReport, LatencySummary, LoadReport, PhaseReport};
pub use runner::{prefill, run, LoadConfig};
pub use schedule::{Arrival, Phase, Schedule};
