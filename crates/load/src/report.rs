//! The `krr-load-v1` result document.
//!
//! One load run produces one [`LoadReport`]: achieved vs target QPS,
//! latency percentiles from the harness's log2 histograms, error counts,
//! and a per-phase breakdown (one row per schedule phase, so ramp and
//! flash-crowd runs expose how each rate segment fared). The A/B section
//! carries the profiling-on vs profiling-off tail-latency comparison when
//! the run was a paired experiment.
//!
//! Like `krr-metrics-v1`, the JSON schema may only grow: the golden key
//! set is locked in `tests/load_schema.rs`.

use krr_core::metrics::HistogramSnapshot;
use std::fmt::Write as _;

/// Latency summary of one histogram, in nanoseconds. Percentiles are
/// bucket estimates with in-bucket interpolation
/// ([`HistogramSnapshot::percentile_interp`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: f64,
    /// 99th percentile.
    pub p99_ns: f64,
    /// 99.9th percentile.
    pub p999_ns: f64,
    /// Largest observed latency (exact, not a bucket bound).
    pub max_ns: u64,
    /// Number of recorded latencies.
    pub count: u64,
}

impl LatencySummary {
    /// Summarizes a histogram snapshot.
    #[must_use]
    pub fn from_snapshot(s: &HistogramSnapshot) -> Self {
        Self {
            mean_ns: s.mean(),
            p50_ns: s.percentile_interp(0.50),
            p99_ns: s.percentile_interp(0.99),
            p999_ns: s.percentile_interp(0.999),
            max_ns: s.max,
            count: s.count,
        }
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"mean\":{:.1},\"p50\":{:.1},\"p99\":{:.1},\"p999\":{:.1},\"max\":{},\"count\":{}}}",
            self.mean_ns, self.p50_ns, self.p99_ns, self.p999_ns, self.max_ns, self.count
        );
    }
}

/// Per-phase slice of a load run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase label from the schedule (`steady`, `burst`, `ramp-1.3x`, ...).
    pub name: String,
    /// The rate this phase aimed for.
    pub target_qps: f64,
    /// The rate the dispatcher achieved inside the phase.
    pub achieved_qps: f64,
    /// Requests dispatched in this phase.
    pub requests: u64,
    /// RESP-level error replies plus I/O failures in this phase.
    pub errors: u64,
    /// Latency summary of this phase.
    pub latency_ns: LatencySummary,
}

/// The A/B tail-latency comparison: the same seeded schedule driven
/// against a server with MRC profiling + live scraping off vs on.
#[derive(Debug, Clone, PartialEq)]
pub struct AbReport {
    /// False when the run was not an A/B experiment (all other fields 0).
    pub enabled: bool,
    /// p99 with profiling and scraping off.
    pub off_p99_ns: f64,
    /// p99 with profiling and scraping on.
    pub on_p99_ns: f64,
    /// `(on/off - 1) · 100`.
    pub delta_pct: f64,
    /// The regression budget the benchmark gates on.
    pub limit_pct: f64,
}

impl AbReport {
    /// An empty section for single-sided runs.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            off_p99_ns: 0.0,
            on_p99_ns: 0.0,
            delta_pct: 0.0,
            limit_pct: 0.0,
        }
    }

    /// Builds the comparison from the two runs' overall p99s.
    #[must_use]
    pub fn compare(off_p99_ns: f64, on_p99_ns: f64, limit_pct: f64) -> Self {
        let delta_pct = if off_p99_ns > 0.0 {
            (on_p99_ns / off_p99_ns - 1.0) * 100.0
        } else {
            0.0
        };
        Self {
            enabled: true,
            off_p99_ns,
            on_p99_ns,
            delta_pct,
            limit_pct,
        }
    }
}

/// The full `krr-load-v1` document for one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Arrival process name (`constant|poisson|ramp|burst`).
    pub arrival: String,
    /// Overall target rate.
    pub target_qps: f64,
    /// Overall dispatch rate actually achieved (requests over the span
    /// from first to last send).
    pub achieved_qps: f64,
    /// Requests dispatched.
    pub requests: u64,
    /// RESP connections used.
    pub connections: u64,
    /// Pipelining depth (writes per flush ceiling; 1 = none).
    pub pipeline_depth: u64,
    /// Wall time from first dispatch to last reply, ns.
    pub duration_ns: u64,
    /// Error replies plus I/O failures across the run.
    pub errors: u64,
    /// Overall latency summary (scheduled-dispatch to reply, so queueing
    /// delay from a lagging sender is included — no coordinated omission).
    pub latency_ns: LatencySummary,
    /// One row per schedule phase.
    pub phases: Vec<PhaseReport>,
    /// A/B comparison section ([`AbReport::disabled`] for plain runs).
    pub ab: AbReport,
}

impl LoadReport {
    /// Renders the document as one-line `krr-load-v1` JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"schema\":\"krr-load-v1\",\"arrival\":\"{}\",\
             \"target_qps\":{:.1},\"achieved_qps\":{:.1},\"requests\":{},\
             \"connections\":{},\"pipeline_depth\":{},\"duration_ns\":{},\
             \"errors\":{},\"latency_ns\":",
            self.arrival,
            self.target_qps,
            self.achieved_qps,
            self.requests,
            self.connections,
            self.pipeline_depth,
            self.duration_ns,
            self.errors,
        );
        self.latency_ns.write_json(&mut out);
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"target_qps\":{:.1},\"achieved_qps\":{:.1},\
                 \"requests\":{},\"errors\":{},\"latency_ns\":",
                p.name, p.target_qps, p.achieved_qps, p.requests, p.errors
            );
            p.latency_ns.write_json(&mut out);
            out.push('}');
        }
        let _ = write!(
            out,
            "],\"ab\":{{\"enabled\":{},\"off_p99_ns\":{:.1},\"on_p99_ns\":{:.1},\
             \"delta_pct\":{:.3},\"limit_pct\":{:.1}}}}}",
            self.ab.enabled,
            self.ab.off_p99_ns,
            self.ab.on_p99_ns,
            self.ab.delta_pct,
            self.ab.limit_pct
        );
        out
    }

    /// Human-readable multi-line summary for terminals.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} arrivals: {} requests over {} connections (pipeline {})",
            self.arrival, self.requests, self.connections, self.pipeline_depth
        );
        let _ = writeln!(
            out,
            "qps: target {:.0}, achieved {:.0} ({:+.1}%)",
            self.target_qps,
            self.achieved_qps,
            (self.achieved_qps / self.target_qps - 1.0) * 100.0
        );
        let _ = writeln!(
            out,
            "latency: p50 {:.0}µs  p99 {:.0}µs  p999 {:.0}µs  max {:.0}µs  errors {}",
            self.latency_ns.p50_ns / 1e3,
            self.latency_ns.p99_ns / 1e3,
            self.latency_ns.p999_ns / 1e3,
            self.latency_ns.max_ns as f64 / 1e3,
            self.errors
        );
        if self.phases.len() > 1 {
            for p in &self.phases {
                let _ = writeln!(
                    out,
                    "  phase {:<10} target {:>8.0} qps, achieved {:>8.0}, p99 {:>7.0}µs, {} reqs",
                    p.name,
                    p.target_qps,
                    p.achieved_qps,
                    p.latency_ns.p99_ns / 1e3,
                    p.requests
                );
            }
        }
        if self.ab.enabled {
            let _ = writeln!(
                out,
                "A/B: p99 off {:.0}µs -> on {:.0}µs ({:+.2}%, budget {:.0}%)",
                self.ab.off_p99_ns / 1e3,
                self.ab.on_p99_ns / 1e3,
                self.ab.delta_pct,
                self.ab.limit_pct
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krr_core::metrics::LogHistogram;

    fn sample_report() -> LoadReport {
        let h = LogHistogram::new();
        for v in [100, 200, 400, 800, 100_000] {
            h.record(v);
        }
        let lat = LatencySummary::from_snapshot(&h.snapshot());
        LoadReport {
            arrival: "burst".into(),
            target_qps: 10_000.0,
            achieved_qps: 9_900.0,
            requests: 5,
            connections: 2,
            pipeline_depth: 8,
            duration_ns: 500_000,
            errors: 0,
            latency_ns: lat.clone(),
            phases: vec![
                PhaseReport {
                    name: "base".into(),
                    target_qps: 5_000.0,
                    achieved_qps: 5_100.0,
                    requests: 3,
                    errors: 0,
                    latency_ns: lat.clone(),
                },
                PhaseReport {
                    name: "burst".into(),
                    target_qps: 55_000.0,
                    achieved_qps: 54_000.0,
                    requests: 2,
                    errors: 0,
                    latency_ns: lat,
                },
            ],
            ab: AbReport::compare(1000.0, 1050.0, 10.0),
        }
    }

    #[test]
    fn json_is_balanced_and_tagged() {
        let json = sample_report().to_json();
        assert!(json.starts_with("{\"schema\":\"krr-load-v1\""));
        assert_eq!(
            json.matches(['{', '[']).count(),
            json.matches(['}', ']']).count()
        );
        assert!(json.contains("\"ab\":{\"enabled\":true"));
    }

    #[test]
    fn ab_delta_math() {
        let ab = AbReport::compare(1000.0, 1100.0, 10.0);
        assert!((ab.delta_pct - 10.0).abs() < 1e-9);
        let ab = AbReport::compare(0.0, 1.0, 10.0);
        assert_eq!(ab.delta_pct, 0.0);
        assert!(!AbReport::disabled().enabled);
    }

    #[test]
    fn text_render_mentions_phases_and_ab() {
        let text = sample_report().render_text();
        assert!(text.contains("phase base"));
        assert!(text.contains("A/B: p99"));
    }
}
