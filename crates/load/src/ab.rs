//! Paired A/B load experiments: observability off vs on.
//!
//! Both sides replay the *same* seeded schedule and request stream over
//! fresh mini-Redis servers, so the only variable is the observability
//! stack: the "on" side enables in-band MRC profiling on the GET path and
//! runs a live `/metrics` scraper against the embedded exposition server
//! for the whole run. The resulting report is the "on" side's, with its
//! [`AbReport`] section carrying both p99s and
//! the relative delta — the number the tail-latency gate in
//! `benches/load.rs` checks against its budget.

use crate::report::{AbReport, LoadReport};
use crate::runner::{self, LoadConfig};
use crate::schedule::Schedule;
use krr_core::KrrConfig;
use krr_redis::resp::Value;
use krr_redis::{Client, MiniRedis, Server};
use krr_trace::Request;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server and experiment knobs shared by both sides of an A/B run.
#[derive(Debug, Clone)]
pub struct AbConfig {
    /// `maxmemory` of each fresh store, in bytes.
    pub maxmemory: u64,
    /// `maxmemory-samples` of each store.
    pub samples: usize,
    /// Store RNG seed (shared so eviction behaves identically).
    pub seed: u64,
    /// KRR model configuration for the profiled side.
    pub krr: KrrConfig,
    /// Shards of the profiled side's KRR bank.
    pub shards: usize,
    /// Gap between `/metrics` scrapes on the profiled side.
    pub scrape_every: Duration,
    /// Warm the store with one `SET` per distinct key before measuring.
    pub prefill: bool,
    /// p99 regression budget recorded in the report, percent.
    pub limit_pct: f64,
}

impl Default for AbConfig {
    fn default() -> Self {
        Self {
            maxmemory: 64 << 20,
            samples: 5,
            seed: 42,
            krr: KrrConfig::new(5.0),
            shards: 2,
            scrape_every: Duration::from_millis(20),
            prefill: true,
            limit_pct: 10.0,
        }
    }
}

/// Runs one side of the experiment against a fresh server and returns its
/// report, plus the profiled side's end-of-run `/metrics?format=json`
/// snapshot (the input `krr doctor` wants).
fn run_side(
    profiled: bool,
    schedule: &Schedule,
    reqs: &[Request],
    load: &LoadConfig,
    ab: &AbConfig,
) -> io::Result<(LoadReport, Option<String>)> {
    let mut store = MiniRedis::new(ab.maxmemory, ab.samples, ab.seed);
    if profiled {
        store.enable_mrc_profiling(&ab.krr, ab.shards.max(1));
        if load.tenants > 0 {
            // Multi-tenant mode: the runner TENANT-selects each
            // connection, so the profiled side also pays per-tenant fleet
            // accounting — the honest worst case again.
            store.enable_fleet_profiling(krr_core::fleet::FleetConfig::new(ab.krr.clone()));
        }
    }
    let mut server = Server::start(store)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut scraper = None;
    if profiled {
        // Find a free port, hand it to CONFIG SET expo-port, then scrape
        // it continuously so exposition cost lands inside the measured
        // window — the honest worst case for the "on" side.
        let probe = std::net::TcpListener::bind(("127.0.0.1", 0))?;
        let port = probe.local_addr()?.port();
        drop(probe);
        let mut client = Client::connect(server.addr())?;
        let reply = client.raw(&[b"CONFIG", b"SET", b"expo-port", port.to_string().as_bytes()])?;
        if !matches!(&reply, Value::Simple(s) if s == "OK") {
            return Err(io::Error::other(format!("expo-port setup: {reply:?}")));
        }
        let addr = server
            .expo_addr()
            .ok_or_else(|| io::Error::other("expo server did not start"))?;
        let stop = Arc::clone(&stop);
        let every = ab.scrape_every;
        scraper = Some(std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if krr_core::expo::http_get(addr, "/metrics").is_ok() {
                    scrapes += 1;
                }
                std::thread::sleep(every);
            }
            scrapes
        }));
    }
    if ab.prefill {
        runner::prefill(server.addr(), reqs)?;
    }
    let result = runner::run(server.addr(), schedule, reqs, load);
    stop.store(true, Ordering::Relaxed);
    if let Some(t) = scraper {
        let _ = t.join();
    }
    // Grab the final counter snapshot before the server goes away so the
    // caller can run post-mortem diagnosis on the exact run it measured.
    let metrics_json = match (result.is_ok(), server.expo_addr()) {
        (true, Some(addr)) => krr_core::expo::http_get(addr, "/metrics?format=json")
            .ok()
            .filter(|(status, _, _)| *status == 200)
            .map(|(_, _, body)| body),
        _ => None,
    };
    server.shutdown();
    result.map(|r| (r, metrics_json))
}

/// Replays `schedule` twice — profiling + scraping off, then on — and
/// returns the profiled side's report with the A/B comparison filled in.
pub fn run_ab(
    schedule: &Schedule,
    reqs: &[Request],
    load: &LoadConfig,
    ab: &AbConfig,
) -> io::Result<LoadReport> {
    run_ab_forensics(schedule, reqs, load, ab).map(|(report, _)| report)
}

/// Like [`run_ab`], but also returns the profiled side's end-of-run
/// `krr-metrics-v1` JSON snapshot so `krr doctor` can diagnose the run
/// without a second experiment.
pub fn run_ab_forensics(
    schedule: &Schedule,
    reqs: &[Request],
    load: &LoadConfig,
    ab: &AbConfig,
) -> io::Result<(LoadReport, Option<String>)> {
    let (off, _) = run_side(false, schedule, reqs, load, ab)?;
    let (mut on, metrics_json) = run_side(true, schedule, reqs, load, ab)?;
    on.ab = AbReport::compare(off.latency_ns.p99_ns, on.latency_ns.p99_ns, ab.limit_pct);
    Ok((on, metrics_json))
}
