//! Timed arrival schedules for open-loop load generation.
//!
//! An open-loop generator decides *when* each request is sent before the
//! run starts, from a target rate and an inter-arrival process — never
//! from the responses. A slow server therefore cannot throttle the
//! offered load, which is exactly the property that avoids coordinated
//! omission: queueing delay accumulates into the measured latency instead
//! of silently stretching the schedule.
//!
//! Schedules are generated eagerly and deterministically from a `u64`
//! seed, so a test (or an A/B benchmark) can replay bit-identical arrival
//! timestamps across runs and machines.

use krr_core::rng::Xoshiro256;

/// Inter-arrival process of a load schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Fixed gap of `1/qps` between requests.
    Constant,
    /// Memoryless exponential inter-arrivals with mean `1/qps` — the
    /// classic open-loop model of independent clients.
    Poisson,
    /// Diurnal ramp: six equal-duration segments whose rates climb from
    /// `0.5×` to `1.5×` the target (mean exactly `1×`).
    Ramp,
    /// Flash crowd: a steady `0.5×` baseline with a `5.5×` spike in the
    /// middle 10% of the run (mean exactly `1×`).
    Burst,
}

impl Arrival {
    /// Every arrival process, for sweeps.
    pub const ALL: [Arrival; 4] = [
        Arrival::Constant,
        Arrival::Poisson,
        Arrival::Ramp,
        Arrival::Burst,
    ];

    /// Stable lowercase name (the CLI spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Arrival::Constant => "constant",
            Arrival::Poisson => "poisson",
            Arrival::Ramp => "ramp",
            Arrival::Burst => "burst",
        }
    }

    /// Parses a CLI spelling (`constant|poisson|ramp|burst`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "constant" => Ok(Arrival::Constant),
            "poisson" => Ok(Arrival::Poisson),
            "ramp" => Ok(Arrival::Ramp),
            "burst" => Ok(Arrival::Burst),
            other => Err(format!(
                "unknown arrival process {other:?} (constant|poisson|ramp|burst)"
            )),
        }
    }
}

/// One named segment of a schedule with its own target rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Human-readable label (`steady`, `ramp-0.9x`, `burst`, ...).
    pub name: String,
    /// The rate this phase aims for, in requests/second.
    pub target_qps: f64,
}

/// A fully materialized arrival schedule.
///
/// `arrivals[i]` is the nanosecond offset from run start at which request
/// `i` must be dispatched; `phase_of[i]` indexes [`Schedule::phases`].
/// Timestamps are nondecreasing.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The arrival process that generated this schedule.
    pub arrival: Arrival,
    /// Overall target rate in requests/second.
    pub target_qps: f64,
    /// Dispatch time of each request, in ns since run start.
    pub arrivals: Vec<u64>,
    /// Phase index of each request.
    pub phase_of: Vec<u8>,
    /// The schedule's phases, in time order.
    pub phases: Vec<Phase>,
}

/// `(rate multiplier, duration fraction)` per segment of the ramp.
const RAMP_SEGMENTS: [(f64, f64); 6] = [
    (0.5, 1.0 / 6.0),
    (0.7, 1.0 / 6.0),
    (0.9, 1.0 / 6.0),
    (1.1, 1.0 / 6.0),
    (1.3, 1.0 / 6.0),
    (1.5, 1.0 / 6.0),
];

/// `(rate multiplier, duration fraction)` for the flash crowd; the mean
/// is exactly 1.0 (`0.5·0.45 + 5.5·0.10 + 0.5·0.45`).
const BURST_SEGMENTS: [(f64, f64); 3] = [(0.5, 0.45), (5.5, 0.10), (0.5, 0.45)];

impl Schedule {
    /// Generates a schedule of `n` arrivals targeting `target_qps`
    /// requests/second overall. Identical inputs produce bit-identical
    /// schedules.
    ///
    /// # Panics
    ///
    /// Panics if `target_qps` is not strictly positive and finite.
    #[must_use]
    pub fn generate(arrival: Arrival, target_qps: f64, n: usize, seed: u64) -> Schedule {
        assert!(
            target_qps > 0.0 && target_qps.is_finite(),
            "target QPS must be positive and finite"
        );
        match arrival {
            Arrival::Constant => Self::steady(arrival, target_qps, n, None),
            Arrival::Poisson => Self::steady(
                arrival,
                target_qps,
                n,
                Some(Xoshiro256::seed_from_u64(seed)),
            ),
            Arrival::Ramp => {
                let names: Vec<String> = RAMP_SEGMENTS
                    .iter()
                    .map(|(m, _)| format!("ramp-{m:.1}x"))
                    .collect();
                Self::segmented(arrival, target_qps, n, &RAMP_SEGMENTS, &names)
            }
            Arrival::Burst => {
                let names = [
                    "base".to_string(),
                    "burst".to_string(),
                    "recover".to_string(),
                ];
                Self::segmented(arrival, target_qps, n, &BURST_SEGMENTS, &names)
            }
        }
    }

    /// Single-phase schedule: constant spacing, or exponential gaps when
    /// an RNG is supplied.
    fn steady(arrival: Arrival, qps: f64, n: usize, mut rng: Option<Xoshiro256>) -> Schedule {
        let gap_ns = 1e9 / qps;
        let mut arrivals = Vec::with_capacity(n);
        let mut t = 0.0f64;
        for i in 0..n {
            match rng.as_mut() {
                // Deterministic grid: arrival i sits exactly at i·gap.
                None => arrivals.push((i as f64 * gap_ns) as u64),
                Some(rng) => {
                    arrivals.push(t as u64);
                    // unit_open_low() ∈ (0,1] keeps ln() finite.
                    t += -rng.unit_open_low().ln() * gap_ns;
                }
            }
        }
        Schedule {
            arrival,
            target_qps: qps,
            arrivals,
            phase_of: vec![0; n],
            phases: vec![Phase {
                name: "steady".to_string(),
                target_qps: qps,
            }],
        }
    }

    /// Piecewise-constant-rate schedule: each `(multiplier, fraction)`
    /// segment spans `fraction` of the total duration `n/qps` at rate
    /// `multiplier·qps`, with evenly spaced arrivals inside the segment.
    fn segmented(
        arrival: Arrival,
        qps: f64,
        n: usize,
        segments: &[(f64, f64)],
        names: &[String],
    ) -> Schedule {
        let total_ns = n as f64 * 1e9 / qps;
        let mut arrivals = Vec::with_capacity(n);
        let mut phase_of = Vec::with_capacity(n);
        let mut phases = Vec::with_capacity(segments.len());
        let mut start_ns = 0.0f64;
        let mut emitted = 0usize;
        for (p, (&(mult, frac), name)) in segments.iter().zip(names).enumerate() {
            let dur_ns = total_ns * frac;
            let last = p == segments.len() - 1;
            // Request share = rate share; the last segment absorbs
            // rounding so the schedule always holds exactly n arrivals.
            let quota = if last {
                n - emitted
            } else {
                ((mult * frac * n as f64).round() as usize).min(n - emitted)
            };
            let gap = dur_ns / quota.max(1) as f64;
            for k in 0..quota {
                arrivals.push((start_ns + k as f64 * gap) as u64);
                phase_of.push(p as u8);
            }
            phases.push(Phase {
                name: name.clone(),
                target_qps: mult * qps,
            });
            emitted += quota;
            start_ns += dur_ns;
        }
        debug_assert_eq!(arrivals.len(), n);
        Schedule {
            arrival,
            target_qps: qps,
            arrivals,
            phase_of,
            phases,
        }
    }

    /// Number of scheduled arrivals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the schedule holds no arrivals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Nominal span of the schedule in nanoseconds: the last arrival plus
    /// one mean gap (so an empty schedule has duration 0 and a full one
    /// approximates `n/qps`).
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        match self.arrivals.last() {
            None => 0,
            Some(&last) => last + (1e9 / self.target_qps) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_arrivals_sit_on_the_exact_grid() {
        let s = Schedule::generate(Arrival::Constant, 1_000.0, 4, 9);
        assert_eq!(s.arrivals, vec![0, 1_000_000, 2_000_000, 3_000_000]);
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].name, "steady");
    }

    #[test]
    fn all_processes_are_nondecreasing_and_sized() {
        for arrival in Arrival::ALL {
            let s = Schedule::generate(arrival, 10_000.0, 5_000, 7);
            assert_eq!(s.len(), 5_000, "{arrival:?}");
            assert_eq!(s.phase_of.len(), 5_000);
            assert!(
                s.arrivals.windows(2).all(|w| w[0] <= w[1]),
                "{arrival:?} not sorted"
            );
            let max_phase = *s.phase_of.iter().max().unwrap() as usize;
            assert!(max_phase < s.phases.len());
        }
    }

    #[test]
    fn mean_rate_matches_target_for_every_process() {
        for arrival in Arrival::ALL {
            let qps = 20_000.0;
            let s = Schedule::generate(arrival, qps, 40_000, 11);
            let measured = s.len() as f64 * 1e9 / s.duration_ns() as f64;
            let tol = if arrival == Arrival::Poisson {
                0.05
            } else {
                0.01
            };
            assert!(
                (measured / qps - 1.0).abs() < tol,
                "{arrival:?}: measured {measured} vs target {qps}"
            );
        }
    }

    #[test]
    fn burst_middle_phase_is_the_hot_one() {
        let s = Schedule::generate(Arrival::Burst, 10_000.0, 30_000, 3);
        assert_eq!(s.phases.len(), 3);
        assert!(s.phases[1].target_qps > 5.0 * s.phases[0].target_qps);
        let burst_count = s.phase_of.iter().filter(|&&p| p == 1).count();
        // 5.5x rate over 10% of the time = 55% of the requests.
        assert!((burst_count as f64 / s.len() as f64 - 0.55).abs() < 0.01);
    }

    #[test]
    fn ramp_rates_increase_monotonically() {
        let s = Schedule::generate(Arrival::Ramp, 8_000.0, 24_000, 5);
        assert_eq!(s.phases.len(), 6);
        for w in s.phases.windows(2) {
            assert!(w[0].target_qps < w[1].target_qps);
        }
    }

    #[test]
    fn empty_schedule_is_fine() {
        for arrival in Arrival::ALL {
            let s = Schedule::generate(arrival, 1_000.0, 0, 1);
            assert!(s.is_empty());
            assert_eq!(s.duration_ns(), 0);
        }
    }

    #[test]
    fn arrival_names_roundtrip() {
        for arrival in Arrival::ALL {
            assert_eq!(Arrival::parse(arrival.name()), Ok(arrival));
        }
        assert!(Arrival::parse("sinusoid").is_err());
    }
}
