//! MiniRedis: an in-memory KV store reproducing Redis's approximated-LRU
//! eviction machinery (§5.7's validation target).
//!
//! Faithful pieces:
//!
//! * `maxmemory` accounting in bytes with a per-entry overhead,
//! * a 24-bit LRU clock with configurable resolution and wraparound
//!   (`estimateObjectIdleTime` semantics),
//! * the 16-entry **eviction pool** of `evict.c`: on each eviction cycle,
//!   `maxmemory-samples` keys are sampled and merged into a pool kept
//!   sorted by idle time; the best (most idle) live candidate is evicted.
//!   The pool persists across evictions, which is what lets a small sample
//!   size approximate LRU well,
//! * two sampling backends: the default *clustered* bucket walk
//!   (`dictGetSomeKeys`) and the fair `dictGetRandomKey` loop the paper's
//!   footnote 3 discusses.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::dict::Dict;
use krr_baselines::fleet_watchdog::{FleetWatchdog, FleetWatchdogConfig};
use krr_baselines::watchdog::{AccuracyWatchdog, WatchdogConfig, WatchdogReport};
use krr_core::checkpoint::{
    CheckpointReader, CheckpointWriter, Dec, Enc, SECTION_METRICS, SECTION_SHARDED, SECTION_STORE,
    SECTION_WATCHDOG,
};
use krr_core::fleet::{FleetArena, FleetCell, FleetConfig};
use krr_core::hashing::hash_key;
use krr_core::metrics::{MetricsRegistry, MetricsSnapshot};
use krr_core::model::KrrConfig;
use krr_core::mrc::Mrc;
use krr_core::obs::FlightRecorder;
use krr_core::sharded::ShardedKrr;
use krr_trace::{Op, Request};

/// How eviction candidates are sampled from the keyspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// `dictGetSomeKeys`: fast clustered bucket walk (Redis default).
    ClusteredWalk,
    /// Repeated `dictGetRandomKey`: slower, near-uniform sampling.
    UniformRandom,
}

/// Size of Redis's eviction pool (`EVPOOL_SIZE`).
pub const EVICTION_POOL_SIZE: usize = 16;
/// GETs between periodic exposition refreshes (MRC cell + footprint
/// gauges) while an expo consumer is attached.
pub const EXPO_REFRESH_EVERY: u64 = 10_000;
/// Width of the LRU clock in bits (`LRU_BITS`).
pub const LRU_BITS: u32 = 24;
const LRU_CLOCK_MAX: u64 = (1 << LRU_BITS) - 1;

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u32,
    /// Truncated 24-bit LRU timestamp.
    lru: u32,
}

#[derive(Debug, Clone, Copy)]
struct PoolSlot {
    key: u64,
    idle: u64,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// GETs that found the key.
    pub hits: u64,
    /// GETs that did not.
    pub misses: u64,
    /// Keys evicted to stay under `maxmemory`.
    pub evictions: u64,
}

impl StoreStats {
    /// Miss ratio over GETs.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A miniature Redis with `maxmemory-policy allkeys-lru`.
#[derive(Debug)]
pub struct MiniRedis {
    dict: Dict<Entry>,
    maxmemory: u64,
    used_memory: u64,
    samples: usize,
    mode: SamplingMode,
    pool: Vec<PoolSlot>,
    /// Logical request counter driving the LRU clock.
    ticks: u64,
    /// Ticks per LRU clock unit (Redis uses wall-clock seconds; a
    /// trace-driven store uses request counts).
    clock_resolution: u64,
    overhead_per_key: u64,
    stats: StoreStats,
    scratch: Vec<(u64, Entry)>,
    /// Dict hash seed, remembered so a BGSAVE checkpoint can rebuild the
    /// keyspace with the same bucket layout family.
    seed: u64,
    /// Where `BGSAVE` writes its checkpoint, if configured.
    checkpoint_path: Option<PathBuf>,
    metrics: Arc<MetricsRegistry>,
    /// Optional online MRC profiler fed by the GET stream.
    profiler: Option<ShardedKrr>,
    /// Optional shadow-Olken accuracy watchdog fed by the same stream.
    watchdog: Option<AccuracyWatchdog>,
    /// Optional flight recorder shared with the profiler and watchdog.
    recorder: Option<Arc<FlightRecorder>>,
    /// Live-MRC cell for the exposition server; refreshed every
    /// [`EXPO_REFRESH_EVERY`] GETs while profiling is enabled.
    mrc_cell: Option<Arc<krr_core::expo::MrcCell>>,
    /// Optional multi-tenant profiling arena, fed by GETs on connections
    /// that selected a tenant (`TENANT` command).
    fleet: Option<FleetArena>,
    /// Optional top-K fleet watchdog shadowing the hottest tenants.
    fleet_dog: Option<FleetWatchdog>,
    /// Published fleet view for the exposition server's `/tenants` and
    /// `/mrc?tenant=` endpoints; refreshed with the MRC cell.
    fleet_cell: Option<Arc<FleetCell>>,
}

impl MiniRedis {
    /// Creates a store with `maxmemory` bytes, `maxmemory-samples = samples`
    /// (Redis defaults to 5), and the default clustered sampling.
    #[must_use]
    pub fn new(maxmemory: u64, samples: usize, seed: u64) -> Self {
        Self::with_mode(maxmemory, samples, SamplingMode::ClusteredWalk, seed)
    }

    /// Creates a store with an explicit sampling backend.
    #[must_use]
    pub fn with_mode(maxmemory: u64, samples: usize, mode: SamplingMode, seed: u64) -> Self {
        assert!(maxmemory > 0 && samples >= 1);
        Self {
            dict: Dict::new(seed),
            maxmemory,
            used_memory: 0,
            samples,
            mode,
            pool: Vec::with_capacity(EVICTION_POOL_SIZE),
            ticks: 0,
            clock_resolution: 1,
            overhead_per_key: 0,
            stats: StoreStats::default(),
            scratch: Vec::new(),
            seed,
            checkpoint_path: None,
            metrics: Arc::new(MetricsRegistry::new()),
            profiler: None,
            watchdog: None,
            recorder: None,
            mrc_cell: None,
            fleet: None,
            fleet_dog: None,
            fleet_cell: None,
        }
    }

    /// Turns on online MRC profiling: a sharded KRR bank observes every GET
    /// (the read stream a cache's miss ratio is defined over) and shares the
    /// store's metrics registry, so INFO/METRICS expose the profiler's
    /// shard and pipeline counters. `shards` >= 1.
    pub fn enable_mrc_profiling(&mut self, config: &KrrConfig, shards: usize) {
        let mut bank = ShardedKrr::new(config, shards);
        bank.set_metrics(Arc::clone(&self.metrics));
        if let Some(rec) = &self.recorder {
            bank.set_recorder(Arc::clone(rec));
        }
        self.profiler = Some(bank);
    }

    /// Turns on the accuracy watchdog: a spatially-sampled shadow Olken
    /// profiler observes the same GET stream as the MRC profiler and
    /// periodically publishes the KRR-vs-shadow MAE (plus drift events)
    /// into the store's metrics registry (`# watchdog` INFO section).
    /// Checks only run while MRC profiling is enabled — without a KRR
    /// curve there is nothing to compare.
    pub fn enable_accuracy_watchdog(&mut self, config: WatchdogConfig) {
        let mut dog = AccuracyWatchdog::new(config);
        dog.set_metrics(Arc::clone(&self.metrics));
        if let Some(rec) = &self.recorder {
            dog.set_recorder(rec.register("watchdog"));
        }
        self.watchdog = Some(dog);
    }

    /// Turns on multi-tenant fleet profiling: a per-tenant KRR arena
    /// observes GETs issued on connections that selected a tenant with the
    /// `TENANT` command, alongside (not instead of) the aggregate profiler.
    /// Tenants materialize lazily at their first reference; per-tenant rows
    /// land in the shared metrics registry (`# tenant` INFO section,
    /// `krr_tenant_*` series) and, once a [`FleetCell`] is attached, in the
    /// exposition server's `/tenants` and `/mrc?tenant=` endpoints.
    pub fn enable_fleet_profiling(&mut self, config: FleetConfig) {
        let mut arena = FleetArena::new(config);
        arena.set_metrics(Arc::clone(&self.metrics));
        if let Some(rec) = &self.recorder {
            arena.set_recorder(Arc::clone(rec));
        }
        self.fleet = Some(arena);
    }

    /// Turns on the fleet watchdog: shadow Olken profilers beside the
    /// top-K tenants by traffic (re-elected as traffic shifts), writing
    /// MAE/drift verdicts back into the per-tenant rows. Requires
    /// [`MiniRedis::enable_fleet_profiling`] to have been called — without
    /// an arena there are no tenants to shadow.
    pub fn enable_fleet_watchdog(&mut self, config: FleetWatchdogConfig) {
        let mut dog = FleetWatchdog::new(config);
        dog.set_metrics(Arc::clone(&self.metrics));
        self.fleet_dog = Some(dog);
    }

    /// The fleet arena, if fleet profiling is enabled.
    #[must_use]
    pub fn fleet(&self) -> Option<&FleetArena> {
        self.fleet.as_ref()
    }

    /// Attaches a fleet-view cell (the `/tenants` + `/mrc?tenant=` source
    /// of an exposition server). Republished on the same
    /// [`EXPO_REFRESH_EVERY`] cadence as the aggregate MRC cell, plus
    /// immediately if the arena already has tenants.
    pub fn set_fleet_cell(&mut self, cell: Arc<FleetCell>) {
        if let Some(f) = &self.fleet {
            cell.publish(f.view());
        }
        self.fleet_cell = Some(cell);
    }

    /// The watchdog's most recent comparison, if any have run.
    #[must_use]
    pub fn watchdog_report(&self) -> Option<WatchdogReport> {
        self.watchdog
            .as_ref()
            .and_then(AccuracyWatchdog::last_report)
    }

    /// Attaches a flight recorder. The profiler bank (shard/router/worker
    /// rings) and the watchdog pick it up immediately if already enabled;
    /// enabling them later inherits it too.
    pub fn set_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        if let Some(p) = &mut self.profiler {
            p.set_recorder(Arc::clone(&recorder));
        }
        if let Some(d) = &mut self.watchdog {
            d.set_recorder(recorder.register("watchdog"));
        }
        self.recorder = Some(recorder);
    }

    /// The current MRC estimate, or `None` if profiling was never enabled.
    #[must_use]
    pub fn mrc_profile(&self) -> Option<Mrc> {
        self.profiler.as_ref().map(ShardedKrr::mrc)
    }

    /// Attaches a live-MRC cell (the `/mrc` source of an exposition
    /// server). The store republishes the profiler's curve into it every
    /// [`EXPO_REFRESH_EVERY`] GETs, plus immediately if a curve exists.
    pub fn set_mrc_cell(&mut self, cell: Arc<krr_core::expo::MrcCell>) {
        if let Some(p) = &self.profiler {
            cell.publish(p.mrc());
        }
        self.mrc_cell = Some(cell);
    }

    /// Pushes the profiler's current memory-footprint breakdown (and the
    /// watchdog's shadow bytes) into the metrics registry so `INFO`'s
    /// `# memory` section and a scrape of `/metrics` see fresh gauges.
    pub fn publish_footprint(&self) {
        use krr_core::footprint::Footprint as _;
        if let Some(p) = &self.profiler {
            p.publish_footprint();
        }
        if let Some(d) = &self.watchdog {
            self.metrics.publish_footprint(&d.footprint());
        }
    }

    /// Periodic exposition refresh driven by the GET stream.
    fn refresh_expo(&self) {
        self.publish_footprint();
        if let (Some(p), Some(cell)) = (&self.profiler, &self.mrc_cell) {
            cell.publish(p.mrc());
        }
        if let Some(f) = &self.fleet {
            f.publish_metrics();
            if let Some(cell) = &self.fleet_cell {
                cell.publish(f.view());
            }
        }
    }

    /// The store's always-on metrics registry: GET outcomes, evictions,
    /// and sampled-candidate idle ages (in LRU clock units).
    #[must_use]
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Sets the per-key metadata overhead added to every object's size
    /// (Redis entries carry dict/robj overhead; default 0 keeps experiments
    /// in pure value bytes).
    pub fn set_overhead_per_key(&mut self, bytes: u64) {
        self.overhead_per_key = bytes;
    }

    /// Sets how many requests advance the LRU clock by one unit. Larger
    /// values emulate Redis's coarse seconds-resolution clock.
    pub fn set_clock_resolution(&mut self, ticks: u64) {
        assert!(ticks >= 1);
        self.clock_resolution = ticks;
    }

    /// Current truncated LRU clock.
    fn lru_clock(&self) -> u32 {
        ((self.ticks / self.clock_resolution) & LRU_CLOCK_MAX) as u32
    }

    /// Idle time of an entry, handling 24-bit wraparound as
    /// `estimateObjectIdleTime` does.
    fn idle_time(&self, lru: u32) -> u64 {
        let now = u64::from(self.lru_clock());
        let then = u64::from(lru);
        if now >= then {
            now - then
        } else {
            now + (LRU_CLOCK_MAX + 1) - then
        }
    }

    /// Number of resident keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// True if no key is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// Bytes accounted against `maxmemory`.
    #[must_use]
    pub fn used_memory(&self) -> u64 {
        self.used_memory
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// GET: returns true on hit and refreshes the key's LRU stamp.
    pub fn get(&mut self, key: u64) -> bool {
        self.get_for(None, key)
    }

    /// GET attributed to a tenant: the store lookup and aggregate profiler
    /// behave exactly like [`MiniRedis::get`]; additionally, when fleet
    /// profiling is enabled and `tenant` is `Some`, the reference feeds
    /// that tenant's KRR instance (materializing it on first touch) and
    /// its shadow watchdog if the fleet watchdog has elected it. The key is
    /// hashed once and the hash shared by the arena and the shadow filter.
    pub fn get_for(&mut self, tenant: Option<u64>, key: u64) -> bool {
        self.ticks += 1;
        self.metrics.accesses.inc();
        let clock = self.lru_clock();
        let (hit, size) = match self.dict.get_mut(key) {
            Some(e) => {
                e.lru = clock;
                self.stats.hits += 1;
                self.metrics.hits.inc();
                (true, e.size)
            }
            None => {
                self.stats.misses += 1;
                self.metrics.cold_misses.inc();
                (false, 1)
            }
        };
        if let Some(p) = &mut self.profiler {
            p.access(key, size);
            if let Some(dog) = &mut self.watchdog {
                dog.observe(key);
                if dog.check_due() {
                    dog.check(&p.mrc());
                }
            }
        }
        if let (Some(t), Some(fleet)) = (tenant, &mut self.fleet) {
            let h = hash_key(key);
            fleet.access_hashed(t, key, size, h);
            if let Some(dog) = &mut self.fleet_dog {
                dog.observe_hashed(fleet, t, key, h);
            }
        }
        if self.ticks % EXPO_REFRESH_EVERY == 0
            && (self.mrc_cell.is_some() || self.fleet_cell.is_some())
        {
            self.refresh_expo();
        }
        hit
    }

    /// SET: installs/updates `key` with `size` bytes, evicting under
    /// `maxmemory` pressure first (as `freeMemoryIfNeeded` runs before the
    /// write command executes).
    pub fn set(&mut self, key: u64, size: u32) {
        self.ticks += 1;
        let size = u64::from(size.max(1)) + self.overhead_per_key;
        if size > self.maxmemory {
            // Object can never fit; Redis would OOM-error the write.
            return;
        }
        let existing = self.dict.get(key).map(|e| u64::from(e.size));
        let incoming = match existing {
            Some(old) => self.used_memory - old - self.overhead_per_key + size,
            None => self.used_memory + size,
        };
        let mut needed = incoming;
        while needed > self.maxmemory {
            if !self.evict_one(key) {
                break;
            }
            needed = match self.dict.get(key).map(|e| u64::from(e.size)) {
                Some(old) => self.used_memory - old - self.overhead_per_key + size,
                None => self.used_memory + size,
            };
        }
        let clock = self.lru_clock();
        let stored = Entry {
            size: (size - self.overhead_per_key) as u32,
            lru: clock,
        };
        match self.dict.insert(key, stored) {
            Some(old) => {
                self.used_memory =
                    self.used_memory - u64::from(old.size) - self.overhead_per_key + size;
            }
            None => self.used_memory += size,
        }
    }

    /// Cache-aside access used by trace replay: GET, and on miss (or on an
    /// explicit SET request) install the object. Returns true on hit.
    pub fn access(&mut self, req: &Request) -> bool {
        let hit = self.get(req.key);
        if req.op == Op::Set || !hit {
            self.set(req.key, req.size);
        }
        hit
    }

    /// One `performEvictions` cycle: sample, merge into the pool, evict the
    /// best candidate. Returns false if nothing could be evicted.
    /// `protect` is the key currently being written and must survive.
    fn evict_one(&mut self, protect: u64) -> bool {
        if self.dict.is_empty() {
            return false;
        }
        // Fill the pool from a fresh sample.
        let mut scratch = std::mem::take(&mut self.scratch);
        match self.mode {
            SamplingMode::ClusteredWalk => {
                self.dict.get_some_keys(self.samples, &mut scratch);
            }
            SamplingMode::UniformRandom => {
                scratch.clear();
                for _ in 0..self.samples {
                    if let Some(kv) = self.dict.random_key() {
                        scratch.push(kv);
                    }
                }
            }
        }
        for &(key, entry) in scratch.iter() {
            if key == protect {
                continue;
            }
            let idle = self.idle_time(entry.lru);
            self.metrics.candidate_age.record(idle);
            self.pool_insert(key, idle);
        }
        self.scratch = scratch;

        // Evict the most idle live pool entry (pool is sorted ascending).
        while let Some(slot) = self.pool.pop() {
            if let Some(entry) = self.dict.peek(slot.key).copied() {
                // Stale idle values are fine (Redis re-checks existence but
                // not idleness); evict it.
                let _ = entry;
                let removed = self.dict.remove(slot.key).expect("peeked key vanished");
                self.used_memory -= u64::from(removed.size) + self.overhead_per_key;
                self.stats.evictions += 1;
                self.metrics.evictions.inc();
                return true;
            }
            // Key no longer exists; drop the stale slot and continue.
        }
        // Pool exhausted without a live candidate (can happen early);
        // fall back to evicting any sampled key, then any key at all.
        let fallback = self
            .scratch
            .iter()
            .map(|&(k, _)| k)
            .find(|&k| k != protect)
            .or_else(|| self.dict.iter().map(|(k, _)| k).find(|&k| k != protect));
        if let Some(key) = fallback {
            if let Some(removed) = self.dict.remove(key) {
                self.used_memory -= u64::from(removed.size) + self.overhead_per_key;
                self.stats.evictions += 1;
                self.metrics.evictions.inc();
                return true;
            }
        }
        false
    }

    /// Inserts a candidate into the idle-sorted pool, mirroring
    /// `evictionPoolPopulate`: better (more idle) candidates displace worse
    /// ones when the pool is full; duplicates keep the larger idle time.
    fn pool_insert(&mut self, key: u64, idle: u64) {
        if let Some(existing) = self.pool.iter_mut().find(|s| s.key == key) {
            existing.idle = existing.idle.max(idle);
            self.pool.sort_by_key(|s| s.idle);
            return;
        }
        if self.pool.len() < EVICTION_POOL_SIZE {
            let pos = self.pool.partition_point(|s| s.idle < idle);
            self.pool.insert(pos, PoolSlot { key, idle });
        } else if idle > self.pool[0].idle {
            self.pool.remove(0);
            let pos = self.pool.partition_point(|s| s.idle < idle);
            self.pool.insert(pos, PoolSlot { key, idle });
        }
    }

    /// Configures where [`MiniRedis::bgsave`] writes its checkpoint.
    pub fn set_checkpoint_path<P: Into<PathBuf>>(&mut self, path: P) {
        self.checkpoint_path = Some(path.into());
    }

    /// The configured `BGSAVE` target, if any.
    #[must_use]
    pub fn checkpoint_path(&self) -> Option<&Path> {
        self.checkpoint_path.as_deref()
    }

    /// Serializes the store proper into a `krr-ckpt-v1` `STOR` payload:
    /// configuration, memory accounting, hit/miss counters, the eviction
    /// pool, and every resident `(key, size, lru)` entry sorted by key so
    /// identical state always produces identical bytes.
    pub fn save_state(&self, enc: &mut Enc) {
        enc.put_u64(self.maxmemory)
            .put_u64(self.samples as u64)
            .put_u8(match self.mode {
                SamplingMode::ClusteredWalk => 0,
                SamplingMode::UniformRandom => 1,
            })
            .put_u64(self.seed)
            .put_u64(self.clock_resolution)
            .put_u64(self.overhead_per_key)
            .put_u64(self.used_memory)
            .put_u64(self.ticks)
            .put_u64(self.stats.hits)
            .put_u64(self.stats.misses)
            .put_u64(self.stats.evictions);
        enc.put_u64(self.pool.len() as u64);
        for slot in &self.pool {
            enc.put_u64(slot.key).put_u64(slot.idle);
        }
        let mut entries: Vec<(u64, Entry)> = self.dict.iter().map(|(k, e)| (k, *e)).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        enc.put_u64(entries.len() as u64);
        for (k, e) in entries {
            enc.put_u64(k).put_u32(e.size).put_u32(e.lru);
        }
    }

    /// Rebuilds a store from a [`MiniRedis::save_state`] payload. Resident
    /// data, memory accounting, counters, the LRU clock, and the eviction
    /// pool are restored exactly; the dict is re-seeded like the original
    /// but re-inserted key-ascending, so bucket-chain order (and therefore
    /// future eviction *sampling* walks) is statistically, not bitwise,
    /// identical to the pre-crash process.
    pub fn load_state(dec: &mut Dec<'_>) -> std::io::Result<Self> {
        let invalid = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let maxmemory = dec.u64()?;
        let samples = dec.u64()? as usize;
        let mode = match dec.u8()? {
            0 => SamplingMode::ClusteredWalk,
            1 => SamplingMode::UniformRandom,
            _ => return Err(invalid("unknown sampling mode tag in checkpoint")),
        };
        let seed = dec.u64()?;
        if maxmemory == 0 || samples == 0 {
            return Err(invalid("checkpoint has zero maxmemory or samples"));
        }
        let mut store = Self::with_mode(maxmemory, samples, mode, seed);
        store.clock_resolution = dec.u64()?.max(1);
        store.overhead_per_key = dec.u64()?;
        let used_memory = dec.u64()?;
        store.ticks = dec.u64()?;
        store.stats = StoreStats {
            hits: dec.u64()?,
            misses: dec.u64()?,
            evictions: dec.u64()?,
        };
        let pool_len = dec.u64()?;
        for _ in 0..pool_len {
            let key = dec.u64()?;
            let idle = dec.u64()?;
            store.pool.push(PoolSlot { key, idle });
        }
        let n = dec.u64()?;
        for _ in 0..n {
            let key = dec.u64()?;
            let size = dec.u32()?;
            let lru = dec.u32()?;
            if store.dict.insert(key, Entry { size, lru }).is_some() {
                return Err(invalid("duplicate key in store checkpoint"));
            }
        }
        store.used_memory = used_memory;
        Ok(store)
    }

    /// Writes a full `krr-ckpt-v1` checkpoint of the store — keyspace and
    /// counters (`STOR`), metrics registry (`METR`), plus the profiler
    /// (`SHRD`) and watchdog (`WDOG`) when enabled — atomically to `path`.
    pub fn save_checkpoint<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut w = CheckpointWriter::new();
        self.save_state(w.section(SECTION_STORE));
        self.metrics
            .snapshot()
            .save_state(w.section(SECTION_METRICS));
        if let Some(p) = &self.profiler {
            p.save_state(w.section(SECTION_SHARDED));
        }
        if let Some(d) = &self.watchdog {
            d.save_state(w.section(SECTION_WATCHDOG));
        }
        w.write_atomic(path)
    }

    /// `BGSAVE`: writes [`MiniRedis::save_checkpoint`] to the path set with
    /// [`MiniRedis::set_checkpoint_path`], or fails with `InvalidInput` if
    /// none was configured.
    pub fn bgsave(&self) -> std::io::Result<()> {
        match &self.checkpoint_path {
            Some(path) => self.save_checkpoint(path),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "no checkpoint path configured",
            )),
        }
    }

    /// Restore-on-start: rebuilds a store from a
    /// [`MiniRedis::save_checkpoint`] file. The profiler, watchdog, and
    /// metrics counters come back when their sections are present, and the
    /// checkpoint path is set to `path` so later `BGSAVE`s overwrite it.
    pub fn restore_from<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let ckpt = CheckpointReader::open(&path)?;
        let mut store = Self::load_state(&mut ckpt.require(SECTION_STORE)?)?;
        if let Some(mut dec) = ckpt.section(SECTION_METRICS) {
            store
                .metrics
                .absorb(&MetricsSnapshot::load_state(&mut dec)?);
        }
        if let Some(mut dec) = ckpt.section(SECTION_SHARDED) {
            let mut bank = ShardedKrr::load_state(&mut dec)?;
            bank.set_metrics(Arc::clone(&store.metrics));
            store.profiler = Some(bank);
        }
        if let Some(mut dec) = ckpt.section(SECTION_WATCHDOG) {
            let mut dog = AccuracyWatchdog::load_state(&mut dec)?;
            dog.set_metrics(Arc::clone(&store.metrics));
            store.watchdog = Some(dog);
        }
        store.checkpoint_path = Some(path.as_ref().to_path_buf());
        Ok(store)
    }
}

impl krr_core::footprint::Footprint for MiniRedis {
    /// Keyspace (dict slab + buckets), eviction scratch state, and — when
    /// enabled — the profiler bank and watchdog shadow.
    fn footprint(&self) -> krr_core::footprint::FootprintReport {
        let mut r = self.dict.footprint();
        r.add(
            "evict_pool",
            self.pool.capacity() * std::mem::size_of::<PoolSlot>(),
        )
        .add(
            "evict_scratch",
            self.scratch.capacity() * std::mem::size_of::<(u64, Entry)>(),
        );
        if let Some(p) = &self.profiler {
            r.merge(&p.footprint());
        }
        if let Some(d) = &self.watchdog {
            r.merge(&d.footprint());
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut r = MiniRedis::new(10_000, 5, 1);
        r.set(1, 100);
        assert!(r.get(1));
        assert!(!r.get(2));
        assert_eq!(r.used_memory(), 100);
        let s = r.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn overwrite_adjusts_memory() {
        let mut r = MiniRedis::new(10_000, 5, 1);
        r.set(1, 100);
        r.set(1, 250);
        assert_eq!(r.used_memory(), 250);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn maxmemory_is_enforced() {
        let mut r = MiniRedis::new(1_000, 5, 2);
        for k in 0..100u64 {
            r.set(k, 100);
            assert!(r.used_memory() <= 1_000, "over budget at key {k}");
        }
        assert_eq!(r.len(), 10);
        assert!(r.stats().evictions >= 90);
    }

    #[test]
    fn eviction_prefers_idle_keys() {
        let mut r = MiniRedis::new(1_000, 10, 3);
        for k in 0..10u64 {
            r.set(k, 100);
        }
        // Touch keys 1..10 repeatedly; key 0 goes stale.
        for _ in 0..50 {
            for k in 1..10u64 {
                r.get(k);
            }
        }
        // Insert new keys, forcing evictions; key 0 should die early.
        for k in 100..105u64 {
            r.set(k, 100);
        }
        let zero_alive = r.get(0);
        let hot_alive = (1..10u64).filter(|&k| r.get(k)).count();
        assert!(!zero_alive, "stale key should have been evicted");
        assert!(hot_alive >= 5, "hot keys mostly survive, {hot_alive} alive");
    }

    #[test]
    fn oversized_value_rejected() {
        let mut r = MiniRedis::new(100, 5, 4);
        r.set(1, 1_000);
        assert!(!r.get(1));
        assert_eq!(r.used_memory(), 0);
    }

    #[test]
    fn per_key_overhead_counts() {
        let mut r = MiniRedis::new(1_000, 5, 5);
        r.set_overhead_per_key(50);
        r.set(1, 100);
        assert_eq!(r.used_memory(), 150);
    }

    #[test]
    fn lru_clock_wraparound_idle() {
        let mut r = MiniRedis::new(1_000, 5, 6);
        // Force the clock near the 24-bit boundary.
        r.ticks = LRU_CLOCK_MAX - 1;
        r.set(1, 10);
        let lru_at_set = r.dict.peek(1).unwrap().lru;
        r.ticks += 10; // wraps past 2^24
        let idle = r.idle_time(lru_at_set);
        assert_eq!(idle, 10);
    }

    #[test]
    fn both_sampling_modes_enforce_memory() {
        for mode in [SamplingMode::ClusteredWalk, SamplingMode::UniformRandom] {
            let mut r = MiniRedis::with_mode(5_000, 5, mode, 7);
            for i in 0..20_000u64 {
                r.access(&Request::get(i % 200, 100));
            }
            assert!(r.used_memory() <= 5_000);
            assert_eq!(r.len(), 50);
            // With a loop of 200 keys and room for 50, most GETs miss.
            assert!(r.stats().miss_ratio() > 0.5);
        }
    }

    #[test]
    fn mrc_profiling_observes_the_get_stream() {
        let mut r = MiniRedis::new(1_000_000, 5, 10);
        assert!(r.mrc_profile().is_none());
        r.enable_mrc_profiling(&KrrConfig::new(5.0).seed(1), 2);
        for _ in 0..3 {
            for k in 0..2_000u64 {
                r.access(&Request::get(k, 100));
            }
        }
        let mrc = r.mrc_profile().expect("profiling enabled");
        // The trace has reuse, so a large cache must miss less than a
        // tiny one.
        assert!(mrc.eval(2_000.0) < mrc.eval(1.0));
        // The profiler shares the store registry: every GET shows up in
        // the per-shard counters.
        let snap = r.metrics().snapshot();
        assert_eq!(snap.shard_accesses.iter().sum::<u64>(), 6_000);
    }

    #[test]
    fn accuracy_watchdog_publishes_into_store_metrics() {
        let mut r = MiniRedis::new(1_000_000, 5, 11);
        r.enable_mrc_profiling(&KrrConfig::new(64.0).seed(2), 2);
        r.enable_accuracy_watchdog(WatchdogConfig {
            rate: 1.0,
            check_every: 2_000,
            mae_threshold: 0.5,
            eval_points: 16,
        });
        for _ in 0..4 {
            for k in 0..2_000u64 {
                r.access(&Request::get(k, 100));
            }
        }
        let report = r.watchdog_report().expect("watchdog checks ran");
        assert!(report.checks >= 3, "got {} checks", report.checks);
        let snap = r.metrics().snapshot();
        assert_eq!(snap.watchdog_checks, report.checks);
        assert!(snap.watchdog_shadow_refs > 0);
        assert!(snap.render_info().contains("# watchdog"));
    }

    #[test]
    fn recorder_traces_profiler_without_changing_the_mrc() {
        let run = |with_recorder: bool| {
            let mut r = MiniRedis::new(1_000_000, 5, 12);
            let rec = Arc::new(FlightRecorder::with_capacity(1024));
            if with_recorder {
                r.set_recorder(Arc::clone(&rec));
            }
            r.enable_mrc_profiling(&KrrConfig::new(5.0).seed(3), 2);
            for _ in 0..3 {
                for k in 0..1_000u64 {
                    r.access(&Request::get(k, 100));
                }
            }
            (r.mrc_profile().expect("profiling on"), rec)
        };
        let (plain, _) = run(false);
        let (traced, rec) = run(true);
        assert_eq!(plain.points(), traced.points(), "tracing changed the MRC");
        let (events, _) = rec.collect_events();
        assert!(!events.is_empty(), "shard rings should hold stack updates");
    }

    #[test]
    fn bgsave_restore_roundtrip() {
        let dir = std::env::temp_dir().join(format!("krr-bgsave-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.ckpt");
        let mut r = MiniRedis::new(10_000, 5, 21);
        r.enable_mrc_profiling(&KrrConfig::new(5.0).seed(4), 2);
        for i in 0..5_000u64 {
            r.access(&Request::get(i % 300, 100));
        }
        assert!(r.bgsave().is_err(), "no path configured yet");
        r.set_checkpoint_path(&path);
        r.bgsave().unwrap();
        let mut b = MiniRedis::restore_from(&path).unwrap();
        assert_eq!(b.len(), r.len());
        assert_eq!(b.used_memory(), r.used_memory());
        assert_eq!(b.stats(), r.stats());
        assert_eq!(b.checkpoint_path(), Some(path.as_path()));
        assert_eq!(
            b.mrc_profile().unwrap().points(),
            r.mrc_profile().unwrap().points(),
            "restored profiler carries the same curve"
        );
        // Restored metrics counters match the saved snapshot.
        assert_eq!(
            b.metrics().snapshot().hits,
            r.metrics().snapshot().hits,
            "metrics counters survive restore"
        );
        // The restored keyspace answers GETs exactly like the original.
        for k in 0..300u64 {
            assert_eq!(b.get(k), r.get(k), "key {k}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn approximates_lru_with_default_samples() {
        // Skewed workload: the miss ratio with samples=10 should be close
        // to exact LRU's (the Redis design claim the paper quotes).
        use krr_core::rng::Xoshiro256;
        use krr_sim::{Cache, Capacity, ExactLru};
        let mut redis = MiniRedis::new(50_000, 10, 8);
        let mut lru = ExactLru::new(Capacity::Bytes(50_000));
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut redis_hits = 0u64;
        let mut lru_hits = 0u64;
        let n = 200_000;
        for _ in 0..n {
            let u = rng.unit();
            let key = (u * u * 5_000.0) as u64;
            let req = Request::get(key, 100);
            if redis.access(&req) {
                redis_hits += 1;
            }
            if lru.access(&req) {
                lru_hits += 1;
            }
        }
        let a = redis_hits as f64 / n as f64;
        let b = lru_hits as f64 / n as f64;
        assert!((a - b).abs() < 0.03, "mini-redis hit {a} vs LRU {b}");
    }
}
