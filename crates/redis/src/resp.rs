//! RESP2 (REdis Serialization Protocol) codec.
//!
//! The subset a cache workload needs: simple strings, errors, integers,
//! bulk strings (including null) and arrays — enough to carry
//! GET/SET/DEL/DBSIZE/INFO between [`crate::server`] and
//! [`crate::client`]. Implemented from scratch on `BufRead`/`Write`.

use std::io::{self, BufRead, ErrorKind, Write};

/// Largest accepted bulk-string payload (mirrors redis's
/// `proto-max-bulk-len` default of 512 MB). Larger claims are rejected
/// *before* any allocation, so a hostile `$` header cannot balloon
/// memory.
pub const MAX_BULK_LEN: u64 = 512 << 20;

/// Largest accepted array arity (mirrors redis's multibulk limit).
pub const MAX_ARRAY_LEN: u64 = 1 << 20;

/// Maximum array nesting depth; deeper input is rejected instead of
/// recursing toward a stack overflow.
pub const MAX_DEPTH: u32 = 32;

/// Longest accepted header/simple line (tag + digits or short text).
const MAX_LINE_LEN: usize = 64 << 10;

/// Consecutive timeout-flavored stalls tolerated mid-value before giving
/// up. With the server's 50ms socket read timeout this allows ~10s of
/// dead air *inside* one value; idle gaps between values never get here
/// (the server probes for a first byte before calling [`read_value`]).
const MAX_STALLS: u32 = 200;

/// True for errors that mean "no data yet", not "connection broken".
fn retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
    )
}

/// A RESP2 value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `+OK\r\n`
    Simple(String),
    /// `-ERR ...\r\n`
    Error(String),
    /// `:42\r\n`
    Integer(i64),
    /// `$5\r\nhello\r\n`; `None` encodes the null bulk `$-1\r\n`.
    Bulk(Option<Vec<u8>>),
    /// `*2\r\n...`
    Array(Vec<Value>),
}

impl Value {
    /// Convenience: a non-null bulk string from bytes.
    #[must_use]
    pub fn bulk(data: impl Into<Vec<u8>>) -> Self {
        Value::Bulk(Some(data.into()))
    }

    /// Convenience: the null bulk reply.
    #[must_use]
    pub fn null() -> Self {
        Value::Bulk(None)
    }

    /// A command array of bulk strings.
    #[must_use]
    pub fn command(parts: &[&[u8]]) -> Self {
        Value::Array(parts.iter().map(|p| Value::bulk(p.to_vec())).collect())
    }
}

/// Writes one RESP value.
pub fn write_value<W: Write>(w: &mut W, v: &Value) -> io::Result<()> {
    match v {
        Value::Simple(s) => write!(w, "+{s}\r\n"),
        Value::Error(s) => write!(w, "-{s}\r\n"),
        Value::Integer(i) => write!(w, ":{i}\r\n"),
        Value::Bulk(None) => write!(w, "$-1\r\n"),
        Value::Bulk(Some(data)) => {
            write!(w, "${}\r\n", data.len())?;
            w.write_all(data)?;
            w.write_all(b"\r\n")
        }
        Value::Array(items) => {
            write!(w, "*{}\r\n", items.len())?;
            for item in items {
                write_value(w, item)?;
            }
            Ok(())
        }
    }
}

/// Reads one CRLF-terminated line, surviving timeout-flavored errors
/// mid-line.
///
/// `BufRead::read_line` into a fresh buffer would *drop* the bytes read
/// so far whenever the socket's read timeout fires between two bytes of
/// a command — desyncing the stream for every later command on the
/// connection. This loop works the `fill_buf`/`consume` interface
/// directly so partial progress lives in the `BufRead`'s own buffer (and
/// in `buf`) across retries.
fn read_line<R: BufRead>(r: &mut R) -> io::Result<String> {
    let mut buf: Vec<u8> = Vec::new();
    let mut stalls = 0u32;
    loop {
        let available = match r.fill_buf() {
            Ok(a) => a,
            Err(e) if retryable(&e) => {
                stalls += 1;
                if stalls > MAX_STALLS {
                    return Err(io::Error::new(ErrorKind::TimedOut, "stalled mid-line"));
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Err(io::Error::new(
                ErrorKind::UnexpectedEof,
                if buf.is_empty() {
                    "connection closed"
                } else {
                    "connection closed mid-line"
                },
            ));
        }
        stalls = 0;
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                buf.extend_from_slice(&available[..=i]);
                r.consume(i + 1);
            }
            None => {
                let n = available.len();
                buf.extend_from_slice(available);
                r.consume(n);
            }
        }
        if buf.len() > MAX_LINE_LEN {
            return Err(invalid("line exceeds maximum length"));
        }
        if buf.ends_with(b"\n") {
            break;
        }
    }
    if !buf.ends_with(b"\r\n") {
        return Err(invalid("line not CRLF-terminated"));
    }
    buf.truncate(buf.len() - 2);
    String::from_utf8(buf).map_err(|_| invalid("line not UTF-8"))
}

/// `read_exact` that keeps its fill position across timeout-flavored
/// errors instead of losing already-read bytes (std's contract leaves the
/// buffer contents unspecified after an error).
fn read_exact_retry<R: BufRead>(r: &mut R, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0usize;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-bulk",
                ));
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if retryable(&e) => {
                stalls += 1;
                if stalls > MAX_STALLS {
                    return Err(io::Error::new(ErrorKind::TimedOut, "stalled mid-bulk"));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one RESP value.
///
/// Hardened against hostile or fragmented input: bulk and array length
/// claims are validated against [`MAX_BULK_LEN`] / [`MAX_ARRAY_LEN`]
/// before any allocation, nesting is capped at [`MAX_DEPTH`], and values
/// split across an arbitrary number of socket reads (including reads
/// interrupted by a socket timeout) parse identically to a single
/// contiguous buffer.
pub fn read_value<R: BufRead>(r: &mut R) -> io::Result<Value> {
    read_value_at(r, 0)
}

fn read_value_at<R: BufRead>(r: &mut R, depth: u32) -> io::Result<Value> {
    if depth >= MAX_DEPTH {
        return Err(invalid("array nesting too deep"));
    }
    let line = read_line(r)?;
    if line.is_empty() {
        return Err(invalid("empty RESP line"));
    }
    let (tag, rest) = line.split_at(1);
    match tag {
        "+" => Ok(Value::Simple(rest.to_string())),
        "-" => Ok(Value::Error(rest.to_string())),
        ":" => rest
            .parse()
            .map(Value::Integer)
            .map_err(|_| invalid("bad integer")),
        "$" => {
            let len: i64 = rest.parse().map_err(|_| invalid("bad bulk length"))?;
            if len < 0 {
                return Ok(Value::Bulk(None));
            }
            if len as u64 > MAX_BULK_LEN {
                return Err(invalid(format!(
                    "bulk length {len} exceeds cap {MAX_BULK_LEN}"
                )));
            }
            let mut data = vec![0u8; len as usize];
            read_exact_retry(r, &mut data)?;
            let mut crlf = [0u8; 2];
            read_exact_retry(r, &mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(invalid("bulk not CRLF-terminated"));
            }
            Ok(Value::Bulk(Some(data)))
        }
        "*" => {
            let len: i64 = rest.parse().map_err(|_| invalid("bad array length"))?;
            if len < 0 {
                return Ok(Value::Array(Vec::new()));
            }
            if len as u64 > MAX_ARRAY_LEN {
                return Err(invalid(format!(
                    "array length {len} exceeds cap {MAX_ARRAY_LEN}"
                )));
            }
            // Reserve modestly: the *claim* is attacker-controlled until
            // the elements actually arrive.
            let mut items = Vec::with_capacity((len as usize).min(4096));
            for _ in 0..len {
                items.push(read_value_at(r, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        other => Err(invalid(format!("unknown RESP tag {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        write_value(&mut buf, v).unwrap();
        read_value(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn simple_and_error() {
        assert_eq!(
            roundtrip(&Value::Simple("OK".into())),
            Value::Simple("OK".into())
        );
        assert_eq!(
            roundtrip(&Value::Error("ERR nope".into())),
            Value::Error("ERR nope".into())
        );
    }

    #[test]
    fn integers() {
        for i in [0i64, 1, -1, i64::MAX, i64::MIN] {
            assert_eq!(roundtrip(&Value::Integer(i)), Value::Integer(i));
        }
    }

    #[test]
    fn bulk_including_null_and_binary() {
        assert_eq!(roundtrip(&Value::null()), Value::null());
        assert_eq!(
            roundtrip(&Value::bulk(b"hello".to_vec())),
            Value::bulk(b"hello".to_vec())
        );
        let binary = vec![0u8, 13, 10, 255, 36];
        assert_eq!(roundtrip(&Value::bulk(binary.clone())), Value::bulk(binary));
        assert_eq!(roundtrip(&Value::bulk(Vec::new())), Value::bulk(Vec::new()));
    }

    #[test]
    fn nested_arrays() {
        let v = Value::Array(vec![
            Value::command(&[b"SET", b"k", b"v"]),
            Value::Integer(7),
            Value::null(),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn wire_format_matches_redis() {
        let mut buf = Vec::new();
        write_value(&mut buf, &Value::command(&[b"GET", b"key1"])).unwrap();
        assert_eq!(buf, b"*2\r\n$3\r\nGET\r\n$4\r\nkey1\r\n");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_value(&mut "?wat\r\n".as_bytes()).is_err());
        assert!(read_value(&mut "$5\r\nab\r\n".as_bytes()).is_err());
        assert!(read_value(&mut ":notanum\r\n".as_bytes()).is_err());
        assert!(read_value(&mut "+no-crlf".as_bytes()).is_err());
        assert!(read_value(&mut "\r\n".as_bytes()).is_err());
    }

    /// Yields one byte per read and a `WouldBlock` error between every
    /// byte — the worst-case fragmentation a socket read timeout can
    /// produce.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        block_next: bool,
        blocks: u64,
    }

    impl<'a> Trickle<'a> {
        fn new(data: &'a [u8]) -> Self {
            Self {
                data,
                pos: 0,
                block_next: true,
                blocks: 0,
            }
        }
    }

    impl io::Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.block_next && self.pos < self.data.len() {
                self.block_next = false;
                self.blocks += 1;
                return Err(io::Error::new(ErrorKind::WouldBlock, "trickle"));
            }
            self.block_next = true;
            if self.pos == self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    impl BufRead for Trickle<'_> {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            if self.block_next && self.pos < self.data.len() {
                self.block_next = false;
                self.blocks += 1;
                return Err(io::Error::new(ErrorKind::WouldBlock, "trickle"));
            }
            self.block_next = true;
            Ok(&self.data[self.pos..(self.pos + 1).min(self.data.len())])
        }

        fn consume(&mut self, amt: usize) {
            self.pos += amt;
        }
    }

    #[test]
    fn survives_wouldblock_at_every_byte_boundary() {
        let mut wire = Vec::new();
        let cmd = Value::command(&[b"SET", b"key1", b"a value with spaces"]);
        write_value(&mut wire, &cmd).unwrap();
        write_value(&mut wire, &Value::Integer(-7)).unwrap();
        let mut r = Trickle::new(&wire);
        assert_eq!(read_value(&mut r).unwrap(), cmd);
        assert_eq!(read_value(&mut r).unwrap(), Value::Integer(-7));
        // Every byte really was preceded by a timeout-flavored error.
        assert_eq!(r.blocks, wire.len() as u64);
    }

    #[test]
    fn oversized_claims_rejected_before_allocation() {
        let huge_bulk = format!("${}\r\n", MAX_BULK_LEN + 1);
        let e = read_value(&mut huge_bulk.as_bytes()).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidData);
        let huge_array = format!("*{}\r\n", MAX_ARRAY_LEN + 1);
        let e = read_value(&mut huge_array.as_bytes()).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidData);
        // At the cap the *claim* is fine; missing payload is EOF, not
        // InvalidData, proving the length check passed.
        let at_cap = format!("*{MAX_ARRAY_LEN}\r\n");
        let e = read_value(&mut at_cap.as_bytes()).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn nesting_bomb_is_rejected_not_overflowed() {
        let bomb = "*1\r\n".repeat(10_000);
        let e = read_value(&mut bomb.as_bytes()).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn zero_length_bulk_roundtrips_and_mid_value_eof_is_eof() {
        assert_eq!(
            read_value(&mut "$0\r\n\r\n".as_bytes()).unwrap(),
            Value::bulk(Vec::new())
        );
        for partial in ["$10\r\nhel", "*2\r\n$3\r\nGET\r\n", "+OK\r", "$4\r\nhost\r"] {
            let e = read_value(&mut partial.as_bytes()).unwrap_err();
            assert_eq!(e.kind(), ErrorKind::UnexpectedEof, "{partial:?}");
        }
    }

    #[test]
    fn overlong_line_is_rejected() {
        let line = format!("+{}\r\n", "x".repeat(80 << 10));
        let e = read_value(&mut line.as_bytes()).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidData);
    }
}
