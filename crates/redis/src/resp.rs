//! RESP2 (REdis Serialization Protocol) codec.
//!
//! The subset a cache workload needs: simple strings, errors, integers,
//! bulk strings (including null) and arrays — enough to carry
//! GET/SET/DEL/DBSIZE/INFO between [`crate::server`] and
//! [`crate::client`]. Implemented from scratch on `BufRead`/`Write`.

use std::io::{self, BufRead, Write};

/// A RESP2 value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `+OK\r\n`
    Simple(String),
    /// `-ERR ...\r\n`
    Error(String),
    /// `:42\r\n`
    Integer(i64),
    /// `$5\r\nhello\r\n`; `None` encodes the null bulk `$-1\r\n`.
    Bulk(Option<Vec<u8>>),
    /// `*2\r\n...`
    Array(Vec<Value>),
}

impl Value {
    /// Convenience: a non-null bulk string from bytes.
    #[must_use]
    pub fn bulk(data: impl Into<Vec<u8>>) -> Self {
        Value::Bulk(Some(data.into()))
    }

    /// Convenience: the null bulk reply.
    #[must_use]
    pub fn null() -> Self {
        Value::Bulk(None)
    }

    /// A command array of bulk strings.
    #[must_use]
    pub fn command(parts: &[&[u8]]) -> Self {
        Value::Array(parts.iter().map(|p| Value::bulk(p.to_vec())).collect())
    }
}

/// Writes one RESP value.
pub fn write_value<W: Write>(w: &mut W, v: &Value) -> io::Result<()> {
    match v {
        Value::Simple(s) => write!(w, "+{s}\r\n"),
        Value::Error(s) => write!(w, "-{s}\r\n"),
        Value::Integer(i) => write!(w, ":{i}\r\n"),
        Value::Bulk(None) => write!(w, "$-1\r\n"),
        Value::Bulk(Some(data)) => {
            write!(w, "${}\r\n", data.len())?;
            w.write_all(data)?;
            w.write_all(b"\r\n")
        }
        Value::Array(items) => {
            write!(w, "*{}\r\n", items.len())?;
            for item in items {
                write_value(w, item)?;
            }
            Ok(())
        }
    }
}

fn read_line<R: BufRead>(r: &mut R) -> io::Result<String> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed",
        ));
    }
    if !line.ends_with("\r\n") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "line not CRLF-terminated",
        ));
    }
    line.truncate(line.len() - 2);
    Ok(line)
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one RESP value.
pub fn read_value<R: BufRead>(r: &mut R) -> io::Result<Value> {
    let line = read_line(r)?;
    let (tag, rest) = line.split_at(1);
    match tag {
        "+" => Ok(Value::Simple(rest.to_string())),
        "-" => Ok(Value::Error(rest.to_string())),
        ":" => rest
            .parse()
            .map(Value::Integer)
            .map_err(|_| invalid("bad integer")),
        "$" => {
            let len: i64 = rest.parse().map_err(|_| invalid("bad bulk length"))?;
            if len < 0 {
                return Ok(Value::Bulk(None));
            }
            let mut data = vec![0u8; len as usize];
            r.read_exact(&mut data)?;
            let mut crlf = [0u8; 2];
            r.read_exact(&mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(invalid("bulk not CRLF-terminated"));
            }
            Ok(Value::Bulk(Some(data)))
        }
        "*" => {
            let len: i64 = rest.parse().map_err(|_| invalid("bad array length"))?;
            if len < 0 {
                return Ok(Value::Array(Vec::new()));
            }
            let mut items = Vec::with_capacity(len as usize);
            for _ in 0..len {
                items.push(read_value(r)?);
            }
            Ok(Value::Array(items))
        }
        other => Err(invalid(format!("unknown RESP tag {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        write_value(&mut buf, v).unwrap();
        read_value(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn simple_and_error() {
        assert_eq!(
            roundtrip(&Value::Simple("OK".into())),
            Value::Simple("OK".into())
        );
        assert_eq!(
            roundtrip(&Value::Error("ERR nope".into())),
            Value::Error("ERR nope".into())
        );
    }

    #[test]
    fn integers() {
        for i in [0i64, 1, -1, i64::MAX, i64::MIN] {
            assert_eq!(roundtrip(&Value::Integer(i)), Value::Integer(i));
        }
    }

    #[test]
    fn bulk_including_null_and_binary() {
        assert_eq!(roundtrip(&Value::null()), Value::null());
        assert_eq!(
            roundtrip(&Value::bulk(b"hello".to_vec())),
            Value::bulk(b"hello".to_vec())
        );
        let binary = vec![0u8, 13, 10, 255, 36];
        assert_eq!(roundtrip(&Value::bulk(binary.clone())), Value::bulk(binary));
        assert_eq!(roundtrip(&Value::bulk(Vec::new())), Value::bulk(Vec::new()));
    }

    #[test]
    fn nested_arrays() {
        let v = Value::Array(vec![
            Value::command(&[b"SET", b"k", b"v"]),
            Value::Integer(7),
            Value::null(),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn wire_format_matches_redis() {
        let mut buf = Vec::new();
        write_value(&mut buf, &Value::command(&[b"GET", b"key1"])).unwrap();
        assert_eq!(buf, b"*2\r\n$3\r\nGET\r\n$4\r\nkey1\r\n");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_value(&mut "?wat\r\n".as_bytes()).is_err());
        assert!(read_value(&mut "$5\r\nab\r\n".as_bytes()).is_err());
        assert!(read_value(&mut ":notanum\r\n".as_bytes()).is_err());
        assert!(read_value(&mut "+no-crlf".as_bytes()).is_err());
    }
}
