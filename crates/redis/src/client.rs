//! A small blocking RESP2 client for [`crate::server::Server`] (or any
//! Redis-speaking endpoint that accepts the same command subset).

use crate::resp::{read_value, write_value, Value};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};

/// Blocking RESP client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends a raw command (array of bulk strings) and returns the reply.
    pub fn raw(&mut self, parts: &[&[u8]]) -> io::Result<Value> {
        write_value(&mut self.writer, &Value::command(parts))?;
        self.writer.flush()?;
        read_value(&mut self.reader)
    }

    fn expect_ok(&mut self, v: Value) -> io::Result<()> {
        match v {
            Value::Simple(s) if s == "OK" => Ok(()),
            Value::Error(e) => Err(io::Error::other(e)),
            other => Err(io::Error::other(format!("unexpected reply {other:?}"))),
        }
    }

    /// `PING` — returns true on PONG.
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(matches!(self.raw(&[b"PING"])?, Value::Simple(s) if s == "PONG"))
    }

    /// `GET key` — true if the key was resident.
    pub fn get(&mut self, key: u64) -> io::Result<bool> {
        match self.raw(&[b"GET", key.to_string().as_bytes()])? {
            Value::Bulk(Some(_)) => Ok(true),
            Value::Bulk(None) => Ok(false),
            Value::Error(e) => Err(io::Error::other(e)),
            other => Err(io::Error::other(format!("unexpected reply {other:?}"))),
        }
    }

    /// `TENANT id` — scopes this connection's subsequent GETs to `id` for
    /// fleet profiling (like a Redis `SELECT`).
    pub fn tenant(&mut self, id: u64) -> io::Result<()> {
        let reply = self.raw(&[b"TENANT", id.to_string().as_bytes()])?;
        self.expect_ok(reply)
    }

    /// `TENANT NONE` — back to unscoped (aggregate-only) profiling.
    pub fn tenant_none(&mut self) -> io::Result<()> {
        let reply = self.raw(&[b"TENANT", b"NONE"])?;
        self.expect_ok(reply)
    }

    /// `SET key <value of `size` bytes>`.
    pub fn set(&mut self, key: u64, size: u32) -> io::Result<()> {
        let payload = vec![b'x'; size as usize];
        let reply = self.raw(&[b"SET", key.to_string().as_bytes(), &payload])?;
        self.expect_ok(reply)
    }

    /// `DBSIZE`.
    pub fn dbsize(&mut self) -> io::Result<i64> {
        match self.raw(&[b"DBSIZE"])? {
            Value::Integer(n) => Ok(n),
            other => Err(io::Error::other(format!("unexpected reply {other:?}"))),
        }
    }

    /// `INFO` — the raw info text.
    pub fn info(&mut self) -> io::Result<String> {
        match self.raw(&[b"INFO"])? {
            Value::Bulk(Some(data)) => {
                String::from_utf8(data).map_err(|e| io::Error::other(e.to_string()))
            }
            other => Err(io::Error::other(format!("unexpected reply {other:?}"))),
        }
    }

    /// `METRICS` — the raw `krr-metrics-v1` JSON snapshot.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.raw(&[b"METRICS"])? {
            Value::Bulk(Some(data)) => {
                String::from_utf8(data).map_err(|e| io::Error::other(e.to_string()))
            }
            other => Err(io::Error::other(format!("unexpected reply {other:?}"))),
        }
    }

    /// `MRC` — the online profiler's `cache_size,miss_ratio` CSV, or an
    /// error if the server's store has profiling disabled.
    pub fn mrc(&mut self) -> io::Result<String> {
        match self.raw(&[b"MRC"])? {
            Value::Bulk(Some(data)) => {
                String::from_utf8(data).map_err(|e| io::Error::other(e.to_string()))
            }
            Value::Error(e) => Err(io::Error::other(e)),
            other => Err(io::Error::other(format!("unexpected reply {other:?}"))),
        }
    }

    /// `TRACE DUMP` — the server's flight-recorder rings as Chrome
    /// trace-event JSON (load it in Perfetto or `chrome://tracing`).
    pub fn trace_dump(&mut self) -> io::Result<String> {
        match self.raw(&[b"TRACE", b"DUMP"])? {
            Value::Bulk(Some(data)) => {
                String::from_utf8(data).map_err(|e| io::Error::other(e.to_string()))
            }
            Value::Error(e) => Err(io::Error::other(e)),
            other => Err(io::Error::other(format!("unexpected reply {other:?}"))),
        }
    }

    /// `BGSAVE` — asks the server to write its configured checkpoint; an
    /// error if no checkpoint path was set on the store.
    pub fn bgsave(&mut self) -> io::Result<()> {
        let reply = self.raw(&[b"BGSAVE"])?;
        self.expect_ok(reply)
    }

    /// `SLOWLOG LEN`.
    pub fn slowlog_len(&mut self) -> io::Result<i64> {
        match self.raw(&[b"SLOWLOG", b"LEN"])? {
            Value::Integer(n) => Ok(n),
            Value::Error(e) => Err(io::Error::other(e)),
            other => Err(io::Error::other(format!("unexpected reply {other:?}"))),
        }
    }

    /// `SLOWLOG RESET`.
    pub fn slowlog_reset(&mut self) -> io::Result<()> {
        let reply = self.raw(&[b"SLOWLOG", b"RESET"])?;
        self.expect_ok(reply)
    }

    /// `SLOWLOG GET` — newest-first entries as
    /// `(id, start_µs_since_server_start, duration_µs, argv)`.
    #[allow(clippy::type_complexity)]
    pub fn slowlog_get(&mut self) -> io::Result<Vec<(i64, i64, i64, Vec<Vec<u8>>, Option<i64>)>> {
        let Value::Array(items) = self.raw(&[b"SLOWLOG", b"GET"])? else {
            return Err(io::Error::other("SLOWLOG GET: expected array"));
        };
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let Value::Array(fields) = item else {
                return Err(io::Error::other("SLOWLOG entry: expected array"));
            };
            let [Value::Integer(id), Value::Integer(ts), Value::Integer(dur), Value::Array(argv), tenant] =
                fields.as_slice()
            else {
                return Err(io::Error::other("SLOWLOG entry: bad shape"));
            };
            let tenant = match tenant {
                Value::Integer(t) => Some(*t),
                Value::Bulk(None) => None,
                _ => return Err(io::Error::other("SLOWLOG tenant: bad shape")),
            };
            let argv = argv
                .iter()
                .map(|a| match a {
                    Value::Bulk(Some(data)) => Ok(data.clone()),
                    _ => Err(io::Error::other("SLOWLOG argv: expected bulk")),
                })
                .collect::<io::Result<Vec<_>>>()?;
            out.push((*id, *ts, *dur, argv, tenant));
        }
        Ok(out)
    }

    /// `CONFIG SET slowlog-log-slower-than <µs>`.
    pub fn set_slowlog_threshold_us(&mut self, us: u64) -> io::Result<()> {
        let reply = self.raw(&[
            b"CONFIG",
            b"SET",
            b"slowlog-log-slower-than",
            us.to_string().as_bytes(),
        ])?;
        self.expect_ok(reply)
    }

    /// Cache-aside access: GET, and SET on miss. Returns true on hit.
    pub fn access(&mut self, key: u64, size: u32) -> io::Result<bool> {
        let hit = self.get(key)?;
        if !hit {
            self.set(key, size)?;
        }
        Ok(hit)
    }
}
