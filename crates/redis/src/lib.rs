//! # krr-redis
//!
//! A miniature Redis sufficient to validate KRR against a real
//! approximated-LRU system (§5.7): the `dict.c`-style hash table with
//! incremental rehashing and clustered key sampling, the 24-bit LRU clock,
//! and the `evict.c` eviction pool driving `maxmemory-policy allkeys-lru`.
//! A RESP2 [`server`]/[`client`] pair exposes the store over TCP so the
//! §5.7 validation can run against an actual wire protocol.
//!
//! ```
//! use krr_redis::{MiniRedis, SamplingMode};
//!
//! let mut store = MiniRedis::new(10_000, 5, 42); // 10 KB, samples=5
//! store.set(1, 200);
//! assert!(store.get(1));
//! let _ = SamplingMode::ClusteredWalk;
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod dict;
pub mod resp;
pub mod server;
pub mod store;

pub use client::Client;
pub use dict::Dict;
pub use server::Server;
pub use store::{MiniRedis, SamplingMode, StoreStats, EVICTION_POOL_SIZE, LRU_BITS};
