//! A Redis-style chained hash table (`dict.c` work-alike).
//!
//! Reproduces the structural properties that matter for eviction sampling:
//!
//! * two tables with **incremental rehashing** (one bucket step per
//!   operation, as in Redis),
//! * power-of-two bucket counts with chain collisions,
//! * `get_some_keys` — the `dictGetSomeKeys` emulation: starts at a random
//!   bucket and walks *consecutive* buckets collecting whole chains. This
//!   clustered sampling is what makes real Redis deviate slightly from an
//!   ideal uniform sampler (§5.7, footnote 3),
//! * `random_key` — the fair-but-slower `dictGetRandomKey` alternative.

use krr_core::hashing::hash_key;
use krr_core::rng::Xoshiro256;

const NIL: u32 = u32::MAX;
const INITIAL_SIZE: usize = 4;
/// Redis visits at most `count * 10` buckets in `dictGetSomeKeys`.
const SOME_KEYS_BUCKET_FACTOR: usize = 10;

#[derive(Debug, Clone)]
struct Node<V> {
    key: u64,
    value: V,
    next: u32,
}

#[derive(Debug, Clone, Default)]
struct Table {
    buckets: Vec<u32>,
    used: usize,
}

impl Table {
    fn with_size(size: usize) -> Self {
        Self {
            buckets: vec![NIL; size],
            used: 0,
        }
    }

    fn mask(&self) -> usize {
        self.buckets.len() - 1
    }
}

/// Chained hash table with incremental rehashing.
#[derive(Debug, Clone)]
pub struct Dict<V> {
    nodes: Vec<Node<V>>,
    free: Vec<u32>,
    tables: [Table; 2],
    /// Bucket index being migrated; `None` when not rehashing.
    rehash_idx: Option<usize>,
    rng: Xoshiro256,
}

impl<V> Dict<V> {
    /// Creates an empty dict with a deterministic sampling RNG.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            tables: [Table::with_size(INITIAL_SIZE), Table::default()],
            rehash_idx: None,
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// Number of stored keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables[0].used + self.tables[1].used
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True while an incremental rehash is in progress.
    #[must_use]
    pub fn is_rehashing(&self) -> bool {
        self.rehash_idx.is_some()
    }

    fn alloc(&mut self, key: u64, value: V) -> u32 {
        let node = Node {
            key,
            value,
            next: NIL,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Migrates one non-empty bucket from table 0 to table 1 (plus skipping
    /// up to 10 empty buckets), mirroring `dictRehash(d, 1)`.
    fn rehash_step(&mut self) {
        let Some(mut idx) = self.rehash_idx else {
            return;
        };
        let mut empty_visits = 10;
        loop {
            if self.tables[0].used == 0 {
                // Swap table 1 into place; rehash complete.
                self.tables[0] = std::mem::take(&mut self.tables[1]);
                self.rehash_idx = None;
                return;
            }
            if idx >= self.tables[0].buckets.len() {
                self.rehash_idx = Some(idx);
                return;
            }
            let head = self.tables[0].buckets[idx];
            if head == NIL {
                idx += 1;
                empty_visits -= 1;
                if empty_visits == 0 {
                    self.rehash_idx = Some(idx);
                    return;
                }
                continue;
            }
            // Move the whole chain.
            let mut i = head;
            while i != NIL {
                let next = self.nodes[i as usize].next;
                let h = hash_key(self.nodes[i as usize].key) as usize & self.tables[1].mask();
                self.nodes[i as usize].next = self.tables[1].buckets[h];
                self.tables[1].buckets[h] = i;
                self.tables[0].used -= 1;
                self.tables[1].used += 1;
                i = next;
            }
            self.tables[0].buckets[idx] = NIL;
            self.rehash_idx = Some(idx + 1);
            return;
        }
    }

    fn maybe_expand(&mut self) {
        if self.rehash_idx.is_some() {
            return;
        }
        if self.len() >= self.tables[0].buckets.len() {
            let new_size = (self.tables[0].buckets.len() * 2).max(INITIAL_SIZE);
            self.tables[1] = Table::with_size(new_size);
            self.rehash_idx = Some(0);
        }
    }

    fn find(&self, key: u64) -> Option<u32> {
        let h = hash_key(key) as usize;
        for t in 0..2 {
            let table = &self.tables[t];
            if table.buckets.is_empty() {
                continue;
            }
            let mut i = table.buckets[h & table.mask()];
            while i != NIL {
                if self.nodes[i as usize].key == key {
                    return Some(i);
                }
                i = self.nodes[i as usize].next;
            }
            if self.rehash_idx.is_none() {
                break;
            }
        }
        None
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.rehash_step();
        self.find(key).map(|i| &self.nodes[i as usize].value)
    }

    /// Looks up `key` mutably.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.rehash_step();
        self.find(key).map(|i| &mut self.nodes[i as usize].value)
    }

    /// Read-only lookup without advancing the rehash (test use).
    #[must_use]
    pub fn peek(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| &self.nodes[i as usize].value)
    }

    /// Inserts or replaces; returns the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.rehash_step();
        if let Some(i) = self.find(key) {
            return Some(std::mem::replace(&mut self.nodes[i as usize].value, value));
        }
        self.maybe_expand();
        self.rehash_step();
        // New keys go to the table being populated (1 during rehash).
        let t = usize::from(self.rehash_idx.is_some());
        let node = self.alloc(key, value);
        let h = hash_key(key) as usize & self.tables[t].mask();
        self.nodes[node as usize].next = self.tables[t].buckets[h];
        self.tables[t].buckets[h] = node;
        self.tables[t].used += 1;
        None
    }

    /// Removes `key`; returns its value if present.
    pub fn remove(&mut self, key: u64) -> Option<V>
    where
        V: Clone,
    {
        self.rehash_step();
        let h = hash_key(key) as usize;
        for t in 0..2 {
            if self.tables[t].buckets.is_empty() {
                continue;
            }
            let bucket = h & self.tables[t].mask();
            let mut prev = NIL;
            let mut i = self.tables[t].buckets[bucket];
            while i != NIL {
                let next = self.nodes[i as usize].next;
                if self.nodes[i as usize].key == key {
                    if prev == NIL {
                        self.tables[t].buckets[bucket] = next;
                    } else {
                        self.nodes[prev as usize].next = next;
                    }
                    self.tables[t].used -= 1;
                    let value = self.nodes[i as usize].value.clone();
                    self.free.push(i);
                    return Some(value);
                }
                prev = i;
                i = next;
            }
            if self.rehash_idx.is_none() {
                break;
            }
        }
        None
    }

    /// `dictGetSomeKeys`: collects up to `count` `(key, value)` pairs by
    /// walking consecutive buckets from a random start. Fast but
    /// *clustered*: all entries of a visited chain are taken together, and
    /// neighbouring buckets are correlated.
    pub fn get_some_keys(&mut self, count: usize, out: &mut Vec<(u64, V)>)
    where
        V: Clone,
    {
        out.clear();
        if self.is_empty() || count == 0 {
            return;
        }
        self.rehash_step();
        let max_mask = if self.is_rehashing() {
            self.tables[1].mask()
        } else {
            self.tables[0].mask()
        };
        let mut idx = self.rng.next_u64() as usize & max_mask;
        let mut visited = 0usize;
        let max_buckets = (count * SOME_KEYS_BUCKET_FACTOR).max(1);
        while out.len() < count && visited < max_buckets {
            for t in 0..2 {
                let table = &self.tables[t];
                if table.buckets.is_empty() {
                    continue;
                }
                // Skip table-0 buckets already migrated.
                if t == 0 {
                    if let Some(r) = self.rehash_idx {
                        if (idx & table.mask()) < r {
                            continue;
                        }
                    }
                }
                let mut i = table.buckets[idx & table.mask()];
                while i != NIL && out.len() < count {
                    let n = &self.nodes[i as usize];
                    out.push((n.key, n.value.clone()));
                    i = n.next;
                }
                if self.rehash_idx.is_none() {
                    break;
                }
            }
            idx = (idx + 1) & max_mask;
            visited += 1;
        }
    }

    /// `dictGetRandomKey`: one fair-ish random entry — random non-empty
    /// bucket, then a uniform pick within the chain.
    pub fn random_key(&mut self) -> Option<(u64, V)>
    where
        V: Clone,
    {
        if self.is_empty() {
            return None;
        }
        self.rehash_step();
        loop {
            let (t, bucket) = if self.is_rehashing() {
                // Pick a slot uniformly over both tables' bucket spaces,
                // excluding already-migrated table-0 buckets.
                let migrated = self.rehash_idx.unwrap_or(0);
                let total = self.tables[0].buckets.len()
                    - migrated.min(self.tables[0].buckets.len())
                    + self.tables[1].buckets.len();
                let r = self.rng.below_usize(total);
                let t0_remaining =
                    self.tables[0].buckets.len() - migrated.min(self.tables[0].buckets.len());
                if r < t0_remaining {
                    (0, migrated + r)
                } else {
                    (1, r - t0_remaining)
                }
            } else {
                (0, self.rng.below_usize(self.tables[0].buckets.len()))
            };
            let head = self.tables[t].buckets[bucket];
            if head == NIL {
                continue;
            }
            let mut len = 0usize;
            let mut i = head;
            while i != NIL {
                len += 1;
                i = self.nodes[i as usize].next;
            }
            let pick = self.rng.below_usize(len);
            let mut i = head;
            for _ in 0..pick {
                i = self.nodes[i as usize].next;
            }
            let n = &self.nodes[i as usize];
            return Some((n.key, n.value.clone()));
        }
    }

    /// Iterates all `(key, &value)` pairs (test/diagnostic use).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.tables.iter().flat_map(move |table| {
            table.buckets.iter().flat_map(move |&head| {
                let mut items = Vec::new();
                let mut i = head;
                while i != NIL {
                    let n = &self.nodes[i as usize];
                    items.push((n.key, &n.value));
                    i = n.next;
                }
                items
            })
        })
    }
}

impl<V> krr_core::footprint::Footprint for Dict<V> {
    /// Node slab (at capacity), free list, and both tables' bucket arrays —
    /// table 1 is non-empty only mid-rehash, exactly when the dict briefly
    /// holds two bucket arrays like real Redis.
    fn footprint(&self) -> krr_core::footprint::FootprintReport {
        let mut r = krr_core::footprint::FootprintReport::new();
        r.add(
            "dict_nodes",
            self.nodes.capacity() * std::mem::size_of::<Node<V>>(),
        )
        .add(
            "dict_free",
            self.free.capacity() * std::mem::size_of::<u32>(),
        )
        .add(
            "dict_buckets",
            (self.tables[0].buckets.capacity() + self.tables[1].buckets.capacity())
                * std::mem::size_of::<u32>(),
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut d: Dict<u32> = Dict::new(1);
        assert_eq!(d.insert(1, 10), None);
        assert_eq!(d.insert(1, 11), Some(10));
        assert_eq!(d.get(1), Some(&11));
        assert_eq!(d.remove(1), Some(11));
        assert_eq!(d.get(1), None);
        assert!(d.is_empty());
    }

    #[test]
    fn grows_through_incremental_rehash() {
        let mut d: Dict<u64> = Dict::new(2);
        for k in 0..10_000u64 {
            d.insert(k, k * 2);
        }
        assert_eq!(d.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(d.get(k), Some(&(k * 2)), "key {k}");
        }
    }

    #[test]
    fn matches_hashmap_under_churn() {
        let mut d: Dict<u32> = Dict::new(3);
        let mut model: HashMap<u64, u32> = HashMap::new();
        let mut rng = Xoshiro256::seed_from_u64(4);
        for step in 0..100_000u32 {
            let key = rng.below(2_000);
            match rng.below(3) {
                0 => {
                    assert_eq!(d.insert(key, step), model.insert(key, step));
                }
                1 => {
                    assert_eq!(d.remove(key), model.remove(&key));
                }
                _ => {
                    assert_eq!(d.get(key), model.get(&key));
                }
            }
            assert_eq!(d.len(), model.len());
        }
    }

    #[test]
    fn get_some_keys_returns_live_entries() {
        let mut d: Dict<u32> = Dict::new(5);
        for k in 0..1000u64 {
            d.insert(k, k as u32);
        }
        let mut out = Vec::new();
        for _ in 0..100 {
            d.get_some_keys(5, &mut out);
            assert!(!out.is_empty() && out.len() <= 5);
            for (k, v) in &out {
                assert_eq!(d.peek(*k), Some(v), "sampled dead key");
            }
        }
    }

    #[test]
    fn get_some_keys_is_clustered() {
        // Consecutive samples from one call share hash-neighbourhoods:
        // sampling the same bucket walk twice in a row yields overlapping
        // results far more often than uniform sampling would.
        let mut d: Dict<u32> = Dict::new(6);
        for k in 0..4096u64 {
            d.insert(k, 0);
        }
        let mut out = Vec::new();
        d.get_some_keys(16, &mut out);
        assert_eq!(out.len(), 16);
        // All 16 came from a handful of consecutive buckets: their hash
        // residues (bucket indices) must span a tiny window of the table.
        let table_bits = 13; // 8192 buckets after growth to >=4096*2? compute mask below
        let _ = table_bits;
        let mask = (d.tables[0].buckets.len().max(d.tables[1].buckets.len()) - 1) as u64;
        let mut idxs: Vec<u64> = out.iter().map(|(k, _)| hash_key(*k) & mask).collect();
        idxs.sort_unstable();
        let span = (idxs[idxs.len() - 1] - idxs[0]).min(
            // circular span
            idxs[0] + mask + 1 - idxs[idxs.len() - 1],
        );
        assert!(
            span <= 160,
            "bucket span {span} too wide for a clustered walk"
        );
    }

    #[test]
    fn random_key_is_roughly_uniform() {
        let n = 256u64;
        let mut d: Dict<u32> = Dict::new(7);
        for k in 0..n {
            d.insert(k, 0);
        }
        let draws = 100_000;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            let (k, _) = d.random_key().unwrap();
            counts[k as usize] += 1;
        }
        let expect = draws as f64 / n as f64;
        // dictGetRandomKey carries a chain-length bias (a key in a chain of
        // length L is picked with probability ∝ 1/L, bucket-first): at load
        // factor ~0.5 chains of length 2-3 exist, so individual keys can
        // deviate by up to ~2-3x — exactly like real Redis. Assert full
        // coverage and that no key deviates beyond the bias bound.
        assert!(counts.iter().all(|&c| c > 0), "every key must be reachable");
        let max_dev = counts
            .iter()
            .map(|&c| (c as f64 - expect).abs() / expect)
            .fold(0.0f64, f64::max);
        assert!(max_dev < 2.0, "max deviation {max_dev}");
        // The *aggregate* distribution is still centered on uniform.
        let mean = counts.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - expect).abs() < 1e-9);
    }

    #[test]
    fn random_key_none_when_empty() {
        let mut d: Dict<u32> = Dict::new(8);
        assert!(d.random_key().is_none());
    }

    #[test]
    fn sampling_works_mid_rehash() {
        // Force an in-progress rehash, then sample: entries must come from
        // both tables without duplication anomalies or dead keys.
        let mut d: Dict<u32> = Dict::new(10);
        for k in 0..4096u64 {
            d.insert(k, k as u32);
        }
        // One more insert triggers expansion; rehash is now in progress and
        // advances one bucket per op.
        d.insert(5_000, 1);
        assert!(d.is_rehashing());
        let mut out = Vec::new();
        for _ in 0..50 {
            d.get_some_keys(8, &mut out);
            for (k, v) in &out {
                assert_eq!(d.peek(*k), Some(v), "sampled stale key {k}");
            }
            if let Some((k, _)) = d.random_key() {
                assert!(d.peek(k).is_some(), "random key {k} not live");
            }
        }
        // Rehash eventually completes under continued operations.
        for k in 0..4096u64 {
            assert!(d.get(k).is_some());
        }
        assert!(!d.is_rehashing(), "rehash should have completed");
    }

    #[test]
    fn remove_during_rehash() {
        let mut d: Dict<u32> = Dict::new(11);
        for k in 0..4097u64 {
            d.insert(k, 0);
        }
        assert!(d.is_rehashing());
        for k in (0..4097u64).step_by(2) {
            assert_eq!(d.remove(k), Some(0), "key {k}");
        }
        for k in 0..4097u64 {
            assert_eq!(d.get(k).is_some(), k % 2 == 1, "key {k}");
        }
    }

    #[test]
    fn iter_covers_everything() {
        let mut d: Dict<u32> = Dict::new(9);
        for k in 0..500u64 {
            d.insert(k, 1);
        }
        let keys: std::collections::HashSet<u64> = d.iter().map(|(k, _)| k).collect();
        assert_eq!(keys.len(), 500);
    }
}
