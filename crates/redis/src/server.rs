//! A TCP server exposing [`crate::MiniRedis`] over RESP2.
//!
//! Thread-per-connection with the store behind a mutex — the concurrency
//! model real Redis avoids, but sufficient to validate KRR against a cache
//! reached through an actual wire protocol (§5.7 ran against a live Redis
//! instance). Supported commands: `GET`, `SET`, `DEL`, `DBSIZE`, `INFO`,
//! `METRICS`, `MRC`, `PING`, `SHUTDOWN`, `BGSAVE`, `TRACE DUMP`,
//! `SLOWLOG GET|LEN|RESET`, and `CONFIG GET|SET` for
//! `slowlog-log-slower-than`, `expo-port`, and `forensics`.
//!
//! `CONFIG SET expo-port <port>` starts an embedded
//! [`krr_core::expo::ExpoServer`] on `127.0.0.1:<port>` serving the store's
//! metrics registry as OpenMetrics text (`/metrics`, with tail-latency
//! exemplars), the live profiler curve (`/mrc`, refreshed every
//! [`crate::store::EXPO_REFRESH_EVERY`] GETs), the flight recorder
//! (`/trace`), the exemplar ring (`/exemplars`), the phase profiler
//! (`/profile`), and `/healthz`; `CONFIG SET expo-port 0` stops it. The
//! same data also lands in `INFO`'s `# memory` section via the shared
//! registry.
//!
//! Tail-latency forensics: every command draws a request id from an
//! [`krr_core::forensics::ExemplarRing`]; commands whose latency lands in
//! the top histogram bucket (≈p99+) are captured with their tenant,
//! command tag, and a counter-context join (ring parks, deep-chain work,
//! scrape-in-progress). `CONFIG SET forensics off` disables both the
//! exemplar ring and the phase profiler, leaving only the flight
//! recorder — the baseline side of `BENCH_doctor.json`. Slow-log entries
//! and `Command` trace spans carry the connection's tenant so fleet-mode
//! tails are attributable.
//!
//! `BGSAVE` writes an atomic `krr-ckpt-v1` checkpoint of the whole store
//! (keyspace, counters, profiler, watchdog) to the path configured with
//! [`MiniRedis::set_checkpoint_path`]; start a server from
//! [`MiniRedis::restore_from`] to resume from one.
//!
//! `MRC` returns the online KRR profiler's current miss-ratio curve as a
//! `cache_size,miss_ratio` CSV bulk string (an error if the store was built
//! without [`MiniRedis::enable_mrc_profiling`]).
//!
//! `INFO` renders the store's counters plus the full metrics snapshot in
//! Redis's `# section` / `key:value` text form; `METRICS` returns the same
//! snapshot as one JSON document (`krr-metrics-v1`).
//!
//! Every server carries an always-on [`FlightRecorder`]: each connection
//! thread records a [`Phase::Command`] span per command into its own
//! lock-free ring, and the store's profiler/watchdog rings are attached at
//! startup. `TRACE DUMP` drains everything as Chrome trace-event JSON.
//! Commands slower than a configurable threshold (default 10 000 µs, the
//! Redis default) also land in the slow log, queryable with `SLOWLOG GET`
//! in Redis's reply shape: `[id, start_µs, duration_µs, argv]`, where
//! `start_µs` is measured from server start rather than the unix epoch
//! (the hermetic test suite forbids wall-clock timestamps).

use crate::resp::{read_value, write_value, Value};
use crate::store::MiniRedis;
use krr_core::expo::{ExpoServer, ExpoSources, MrcCell};
use krr_core::forensics::{Exemplar, ExemplarRing};
use krr_core::obs::{FlightRecorder, Phase};
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Maximum retained slow-log entries (Redis's `slowlog-max-len` default).
pub const SLOWLOG_MAX_LEN: usize = 128;
/// Default `slowlog-log-slower-than` threshold in microseconds.
pub const SLOWLOG_DEFAULT_THRESHOLD_US: u64 = 10_000;

/// One slow command.
#[derive(Debug, Clone)]
struct SlowEntry {
    id: u64,
    /// Microseconds since server start when the command began.
    start_us: u64,
    dur_us: u64,
    argv: Vec<Vec<u8>>,
    /// Tenant selected on the connection when the command ran, so
    /// fleet-mode slow queries are attributable.
    tenant: Option<u64>,
}

/// The server's slow log: commands whose handling exceeded the threshold.
#[derive(Debug)]
struct SlowLog {
    entries: Mutex<VecDeque<SlowEntry>>,
    next_id: AtomicU64,
    /// Threshold in microseconds; commands strictly slower are logged.
    threshold_us: AtomicU64,
}

impl SlowLog {
    fn new() -> Self {
        Self {
            entries: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(0),
            threshold_us: AtomicU64::new(SLOWLOG_DEFAULT_THRESHOLD_US),
        }
    }

    fn offer(&self, start_ns: u64, dur_ns: u64, argv: &[&[u8]], tenant: Option<u64>) {
        if dur_ns <= self.threshold_us.load(Ordering::Relaxed) * 1_000 {
            return;
        }
        let entry = SlowEntry {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            start_us: start_ns / 1_000,
            dur_us: dur_ns / 1_000,
            argv: argv.iter().map(|a| a.to_vec()).collect(),
            tenant,
        };
        let mut entries = self.entries.lock().expect("slowlog poisoned");
        if entries.len() == SLOWLOG_MAX_LEN {
            entries.pop_front();
        }
        entries.push_back(entry);
    }
}

/// Observability state shared by all connection threads.
struct ServerObs {
    recorder: Arc<FlightRecorder>,
    slowlog: SlowLog,
    /// Tail-request exemplar ring: every command gets a request id, p99+
    /// commands are captured with their counter context.
    exemplars: Arc<ExemplarRing>,
    next_conn: AtomicU64,
    /// Sources handed to the exposition server when `expo-port` is set.
    expo_sources: ExpoSources,
    /// The running exposition server, if `CONFIG SET expo-port` started one.
    expo: Mutex<Option<ExpoServer>>,
}

/// Handle to a running server.
pub struct Server {
    addr: std::net::SocketAddr,
    store: Arc<Mutex<MiniRedis>>,
    stop: Arc<AtomicBool>,
    recorder: Arc<FlightRecorder>,
    obs: Arc<ServerObs>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts a server on an ephemeral localhost port. The server's flight
    /// recorder is attached to the store, so profiler/watchdog activity
    /// shows up in `TRACE DUMP` alongside per-command spans.
    pub fn start(mut store: MiniRedis) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let recorder = Arc::new(FlightRecorder::new());
        store.set_recorder(Arc::clone(&recorder));
        let mrc_cell = Arc::new(MrcCell::new());
        store.set_mrc_cell(Arc::clone(&mrc_cell));
        let fleet_cell = Arc::new(krr_core::fleet::FleetCell::new());
        store.set_fleet_cell(Arc::clone(&fleet_cell));
        let exemplars = Arc::new(ExemplarRing::new());
        let expo_sources = ExpoSources {
            metrics: Some(Arc::clone(store.metrics())),
            mrc: Some(mrc_cell),
            stats: None,
            trace: Some(Arc::clone(&recorder)),
            tenants: Some(fleet_cell),
            exemplars: Some(Arc::clone(&exemplars)),
            profiler: Some(Arc::clone(recorder.profiler())),
        };
        let store = Arc::new(Mutex::new(store));
        let stop = Arc::new(AtomicBool::new(false));
        let obs = Arc::new(ServerObs {
            recorder: Arc::clone(&recorder),
            slowlog: SlowLog::new(),
            exemplars,
            next_conn: AtomicU64::new(0),
            expo_sources,
            expo: Mutex::new(None),
        });
        let accept_store = Arc::clone(&store);
        let accept_stop = Arc::clone(&stop);
        let accept_obs = Arc::clone(&obs);
        let accept_thread = std::thread::spawn(move || {
            // Non-blocking accept loop so SHUTDOWN can terminate us.
            listener.set_nonblocking(true).expect("set_nonblocking");
            let mut workers = Vec::new();
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        let store = Arc::clone(&accept_store);
                        let stop = Arc::clone(&accept_stop);
                        let obs = Arc::clone(&accept_obs);
                        workers.push(std::thread::spawn(move || {
                            let _ = serve_connection(conn, &store, &stop, &obs);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(Server {
            addr,
            store,
            stop,
            recorder,
            obs,
            accept_thread: Some(accept_thread),
        })
    }

    /// The exposition server's address, if `CONFIG SET expo-port` started
    /// one.
    #[must_use]
    pub fn expo_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs
            .expo
            .lock()
            .expect("expo poisoned")
            .as_ref()
            .map(ExpoServer::addr)
    }

    /// The server's flight recorder (drained by `TRACE DUMP`, or directly
    /// by an embedding test/benchmark).
    #[must_use]
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The server's socket address.
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Snapshot of the store's counters.
    #[must_use]
    pub fn stats(&self) -> crate::store::StoreStats {
        self.store.lock().expect("store poisoned").stats()
    }

    /// Stops the accept loop, waits for workers, and shuts down the
    /// exposition server if one is running (releasing its port).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(mut expo) = self.obs.expo.lock().expect("expo poisoned").take() {
            expo.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn parse_key(data: &[u8]) -> Option<u64> {
    std::str::from_utf8(data).ok()?.parse().ok()
}

fn serve_connection(
    conn: TcpStream,
    store: &Mutex<MiniRedis>,
    stop: &AtomicBool,
    obs: &ServerObs,
) -> io::Result<()> {
    let conn_id = obs.next_conn.fetch_add(1, Ordering::Relaxed);
    let rec = obs.recorder.register(&format!("conn-{conn_id}"));
    // Grabbed once so the exemplar capture path never takes the store lock.
    let metrics = Arc::clone(store.lock().expect("store poisoned").metrics());
    conn.set_nodelay(true)?;
    // A read timeout lets idle workers notice the stop flag instead of
    // blocking forever in `read` (which would deadlock `shutdown` while a
    // client holds its connection open).
    conn.set_read_timeout(Some(std::time::Duration::from_millis(50)))?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    // Per-connection tenant selection (`TENANT` command), like a Redis
    // `SELECT`ed database: it scopes this connection's GETs for fleet
    // profiling and resets when the connection closes.
    let mut tenant: Option<u64> = None;
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        // Probe for data without committing to a full-message read; a
        // timeout mid-probe keeps the buffered stream consistent.
        use std::io::BufRead;
        match reader.fill_buf() {
            Ok([]) => return Ok(()), // clean EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
        let request = match read_value(&mut reader) {
            Ok(v) => v,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Protocol violation (oversized claim, bad tag, broken
                // framing): report it like redis does, then hang up —
                // the byte stream cannot be resynchronized.
                use std::io::Write;
                let _ = write_value(
                    &mut writer,
                    &Value::Error(format!("ERR Protocol error: {e}")),
                );
                let _ = writer.flush();
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let request_id = obs.exemplars.next_request_id();
        let t0 = rec.now_ns();
        let reply = handle(&request, store, stop, obs, &mut tenant);
        let dur = rec.now_ns() - t0;
        write_value(&mut writer, &reply)?;
        use std::io::Write;
        writer.flush()?;
        // Forensics run strictly after the reply is on the wire: the
        // capture cost (it lands on exactly the tail requests) must not
        // inflate the latency the client observes. `dur` was taken
        // before the write, so it remains pure service time.
        if let Value::Array(parts) = &request {
            let argv: Vec<&[u8]> = parts
                .iter()
                .filter_map(|p| match p {
                    Value::Bulk(Some(data)) => Some(data.as_slice()),
                    _ => None,
                })
                .collect();
            let tag = argv.first().map_or(0, |c| command_tag(c));
            // Pack the tenant into the span arg (0 = none) so trace spans
            // are attributable in fleet mode; the trace writer unpacks it.
            let span_arg = match tenant {
                Some(t) => tag | ((t + 1) << 8),
                None => tag,
            };
            rec.record(Phase::Command, t0, dur, span_arg);
            obs.slowlog.offer(t0, dur, &argv, tenant);
            if obs.exemplars.observe(dur) {
                // Tail request: join the span key with the counter context
                // a post-mortem needs. All reads are lock-free.
                obs.exemplars.capture(&Exemplar {
                    request_id,
                    tenant,
                    latency_ns: dur,
                    start_ns: t0,
                    command_tag: tag as u8,
                    scrape_in_progress: obs.exemplars.scrape_in_progress(),
                    router_parks: metrics.pipeline_router_parks.get(),
                    worker_parks: metrics.pipeline_worker_parks.get(),
                    deep_chains: metrics.chain_len.count(),
                });
            }
        }
    }
}

/// Stable numeric tag identifying a command in trace-event args.
fn command_tag(cmd: &[u8]) -> u64 {
    match cmd.to_ascii_uppercase().as_slice() {
        b"PING" => 1,
        b"GET" => 2,
        b"SET" => 3,
        b"DEL" => 4,
        b"DBSIZE" => 5,
        b"INFO" => 6,
        b"METRICS" => 7,
        b"MRC" => 8,
        b"SHUTDOWN" => 9,
        b"TRACE" => 10,
        b"SLOWLOG" => 11,
        b"CONFIG" => 12,
        b"BGSAVE" => 13,
        b"TENANT" => 14,
        _ => 0,
    }
}

fn handle(
    request: &Value,
    store: &Mutex<MiniRedis>,
    stop: &AtomicBool,
    obs: &ServerObs,
    tenant: &mut Option<u64>,
) -> Value {
    let Value::Array(parts) = request else {
        return Value::Error("ERR expected command array".into());
    };
    let mut args = Vec::with_capacity(parts.len());
    for p in parts {
        match p {
            Value::Bulk(Some(data)) => args.push(data.as_slice()),
            _ => return Value::Error("ERR expected bulk-string arguments".into()),
        }
    }
    let Some((cmd, rest)) = args.split_first() else {
        return Value::Error("ERR empty command".into());
    };
    match cmd.to_ascii_uppercase().as_slice() {
        b"PING" => Value::Simple("PONG".into()),
        b"GET" => {
            let [key] = rest else {
                return Value::Error("ERR wrong arity for GET".into());
            };
            let Some(key) = parse_key(key) else {
                return Value::Error("ERR keys are u64 in mini-redis".into());
            };
            let hit = store.lock().expect("store poisoned").get_for(*tenant, key);
            if hit {
                // The store tracks sizes, not payloads; return a marker.
                Value::bulk(b"1".to_vec())
            } else {
                Value::null()
            }
        }
        b"SET" => {
            let [key, value] = rest else {
                return Value::Error("ERR wrong arity for SET".into());
            };
            let Some(key) = parse_key(key) else {
                return Value::Error("ERR keys are u64 in mini-redis".into());
            };
            store
                .lock()
                .expect("store poisoned")
                .set(key, value.len() as u32);
            Value::Simple("OK".into())
        }
        b"DEL" => {
            // Mini-redis has no user-facing delete; report 0 like a miss.
            Value::Integer(0)
        }
        b"DBSIZE" => Value::Integer(store.lock().expect("store poisoned").len() as i64),
        b"INFO" => {
            let s = store.lock().expect("store poisoned");
            s.publish_footprint();
            let stats = s.stats();
            let mut body = format!(
                "# mini-redis\r\nkeys:{}\r\nused_memory:{}\r\nhits:{}\r\nmisses:{}\r\nevictions:{}\r\n",
                s.len(),
                s.used_memory(),
                stats.hits,
                stats.misses,
                stats.evictions
            );
            body.push_str("\r\n");
            body.push_str(&s.metrics().snapshot().render_info());
            Value::bulk(body.into_bytes())
        }
        b"METRICS" => {
            let s = store.lock().expect("store poisoned");
            s.publish_footprint();
            let snap = s.metrics().snapshot();
            Value::bulk(snap.to_json().into_bytes())
        }
        b"MRC" => match store.lock().expect("store poisoned").mrc_profile() {
            Some(mrc) => {
                let mut body = String::from("cache_size,miss_ratio\n");
                for &(x, y) in mrc.points().iter().filter(|&&(x, _)| x > 0.0) {
                    body.push_str(&format!("{x:.0},{y:.5}\n"));
                }
                Value::bulk(body.into_bytes())
            }
            None => Value::Error("ERR MRC profiling not enabled".into()),
        },
        b"TENANT" => match rest {
            // TENANT        -> current selection (nil if none)
            // TENANT <id>   -> scope this connection's GETs to tenant <id>
            // TENANT NONE   -> back to unscoped (aggregate-only) profiling
            [] => match tenant {
                Some(id) => Value::bulk(id.to_string().into_bytes()),
                None => Value::null(),
            },
            [arg] if arg.eq_ignore_ascii_case(b"NONE") => {
                *tenant = None;
                Value::Simple("OK".into())
            }
            [arg] => match parse_key(arg) {
                Some(id) => {
                    *tenant = Some(id);
                    Value::Simple("OK".into())
                }
                None => Value::Error("ERR tenant ids are u64 in mini-redis".into()),
            },
            _ => Value::Error("ERR usage: TENANT [id|NONE]".into()),
        },
        b"SHUTDOWN" => {
            stop.store(true, Ordering::Relaxed);
            Value::Simple("OK".into())
        }
        b"BGSAVE" => {
            // Synchronous under the store lock: mini-redis has no fork, so
            // "background" saving is a consistent foreground snapshot.
            match store.lock().expect("store poisoned").bgsave() {
                Ok(()) => Value::Simple("OK".into()),
                Err(e) => Value::Error(format!("ERR BGSAVE: {e}")),
            }
        }
        b"TRACE" => match rest {
            [sub] if sub.eq_ignore_ascii_case(b"DUMP") => {
                Value::bulk(obs.recorder.chrome_trace_json().into_bytes())
            }
            _ => Value::Error("ERR usage: TRACE DUMP".into()),
        },
        b"SLOWLOG" => {
            let Some((sub, sub_rest)) = rest.split_first() else {
                return Value::Error("ERR usage: SLOWLOG GET|LEN|RESET".into());
            };
            match sub.to_ascii_uppercase().as_slice() {
                b"GET" => {
                    let count = match sub_rest {
                        [] => SLOWLOG_MAX_LEN,
                        [n] => match std::str::from_utf8(n).ok().and_then(|s| s.parse().ok()) {
                            Some(n) => n,
                            None => return Value::Error("ERR invalid SLOWLOG GET count".into()),
                        },
                        _ => return Value::Error("ERR usage: SLOWLOG GET [count]".into()),
                    };
                    let entries = obs.slowlog.entries.lock().expect("slowlog poisoned");
                    // Newest first, like Redis.
                    let items = entries
                        .iter()
                        .rev()
                        .take(count)
                        .map(|e| {
                            Value::Array(vec![
                                Value::Integer(e.id as i64),
                                Value::Integer(e.start_us as i64),
                                Value::Integer(e.dur_us as i64),
                                Value::Array(
                                    e.argv.iter().map(|a| Value::bulk(a.clone())).collect(),
                                ),
                                match e.tenant {
                                    Some(t) => Value::Integer(t as i64),
                                    None => Value::Bulk(None),
                                },
                            ])
                        })
                        .collect();
                    Value::Array(items)
                }
                b"LEN" => Value::Integer(
                    obs.slowlog.entries.lock().expect("slowlog poisoned").len() as i64,
                ),
                b"RESET" => {
                    obs.slowlog
                        .entries
                        .lock()
                        .expect("slowlog poisoned")
                        .clear();
                    Value::Simple("OK".into())
                }
                _ => Value::Error("ERR usage: SLOWLOG GET|LEN|RESET".into()),
            }
        }
        b"CONFIG" => match rest {
            [sub, param] if sub.eq_ignore_ascii_case(b"GET") => {
                if param.eq_ignore_ascii_case(b"slowlog-log-slower-than") {
                    let v = obs.slowlog.threshold_us.load(Ordering::Relaxed);
                    Value::Array(vec![
                        Value::bulk(b"slowlog-log-slower-than".to_vec()),
                        Value::bulk(v.to_string().into_bytes()),
                    ])
                } else if param.eq_ignore_ascii_case(b"expo-port") {
                    let port = obs
                        .expo
                        .lock()
                        .expect("expo poisoned")
                        .as_ref()
                        .map_or(0, |e| e.addr().port());
                    Value::Array(vec![
                        Value::bulk(b"expo-port".to_vec()),
                        Value::bulk(port.to_string().into_bytes()),
                    ])
                } else if param.eq_ignore_ascii_case(b"forensics") {
                    let on = obs.exemplars.enabled();
                    Value::Array(vec![
                        Value::bulk(b"forensics".to_vec()),
                        Value::bulk(if on { b"on".to_vec() } else { b"off".to_vec() }),
                    ])
                } else {
                    Value::Array(Vec::new())
                }
            }
            [sub, param, value] if sub.eq_ignore_ascii_case(b"SET") => {
                if param.eq_ignore_ascii_case(b"slowlog-log-slower-than") {
                    return match std::str::from_utf8(value).ok().and_then(|s| s.parse().ok()) {
                        Some(us) => {
                            obs.slowlog.threshold_us.store(us, Ordering::Relaxed);
                            Value::Simple("OK".into())
                        }
                        None => Value::Error("ERR value must be microseconds (u64)".into()),
                    };
                }
                if param.eq_ignore_ascii_case(b"expo-port") {
                    let Some(port) = std::str::from_utf8(value)
                        .ok()
                        .and_then(|s| s.parse::<u16>().ok())
                    else {
                        return Value::Error("ERR expo-port must be a u16 (0 stops)".into());
                    };
                    // Stop any running server first so the old port is
                    // released before a new bind (and so port 0 = stop).
                    let mut slot = obs.expo.lock().expect("expo poisoned");
                    if let Some(mut running) = slot.take() {
                        running.shutdown();
                    }
                    if port == 0 {
                        return Value::Simple("OK".into());
                    }
                    // Refresh the gauges so the first scrape has data.
                    store.lock().expect("store poisoned").publish_footprint();
                    match ExpoServer::start(("127.0.0.1", port), obs.expo_sources.clone()) {
                        Ok(server) => {
                            *slot = Some(server);
                            Value::Simple("OK".into())
                        }
                        Err(e) => Value::Error(format!("ERR expo-port bind: {e}")),
                    }
                } else if param.eq_ignore_ascii_case(b"forensics") {
                    // One switch for both forensic subsystems: the exemplar
                    // ring and the phase profiler. Used by the overhead
                    // bench to get a recorder-only baseline.
                    let on = match value.to_ascii_lowercase().as_slice() {
                        b"on" => true,
                        b"off" => false,
                        _ => return Value::Error("ERR forensics must be on|off".into()),
                    };
                    obs.exemplars.set_enabled(on);
                    obs.recorder.profiler().set_enabled(on);
                    Value::Simple("OK".into())
                } else {
                    Value::Error("ERR unknown CONFIG parameter".into())
                }
            }
            _ => Value::Error(
                "ERR usage: CONFIG GET|SET slowlog-log-slower-than|expo-port|forensics [value]"
                    .into(),
            ),
        },
        other => Value::Error(format!(
            "ERR unknown command {:?}",
            String::from_utf8_lossy(other)
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn get_set_over_the_wire() {
        let mut server = Server::start(MiniRedis::new(100_000, 5, 1)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert!(client.ping().unwrap());
        assert!(!client.get(42).unwrap());
        client.set(42, 200).unwrap();
        assert!(client.get(42).unwrap());
        assert_eq!(client.dbsize().unwrap(), 1);
        let info = client.info().unwrap();
        assert!(info.contains("keys:1"), "{info}");
        server.shutdown();
    }

    #[test]
    fn eviction_happens_over_the_wire() {
        let mut server = Server::start(MiniRedis::new(2_000, 5, 2)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for key in 0..100u64 {
            client.set(key, 100).unwrap();
        }
        let n = client.dbsize().unwrap();
        assert!(n <= 20, "dbsize {n} exceeds memory budget");
        server.shutdown();
    }

    #[test]
    fn multiple_clients() {
        let mut server = Server::start(MiniRedis::new(1_000_000, 5, 3)).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4u64)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for i in 0..200u64 {
                        client.set(c * 1_000 + i, 50).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.dbsize().unwrap(), 800);
        server.shutdown();
    }

    #[test]
    fn mrc_command_over_the_wire() {
        let mut store = MiniRedis::new(1_000_000, 5, 9);
        store.enable_mrc_profiling(&krr_core::KrrConfig::new(5.0).seed(7), 2);
        let mut server = Server::start(store).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for _ in 0..3 {
            for key in 0..500u64 {
                let _ = client.access(key, 50).unwrap();
            }
        }
        let csv = client.mrc().unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("cache_size,miss_ratio"));
        assert!(lines.next().is_some(), "curve has data points: {csv}");
        server.shutdown();
    }

    #[test]
    fn mrc_without_profiling_is_an_error() {
        let mut server = Server::start(MiniRedis::new(10_000, 5, 5)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert!(client.mrc().is_err());
        assert!(client.ping().unwrap(), "connection survives the error");
        server.shutdown();
    }

    #[test]
    fn bgsave_then_restore_on_start_resumes_the_dataset() {
        let dir = std::env::temp_dir().join(format!("krr-srv-bgsave-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.ckpt");
        let mut store = MiniRedis::new(1_000_000, 5, 31);
        store.set_checkpoint_path(&path);
        let mut server = Server::start(store).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for key in 0..50u64 {
            client.set(key, 100).unwrap();
        }
        client.bgsave().unwrap();
        server.shutdown();

        let restored = MiniRedis::restore_from(&path).unwrap();
        let mut server = Server::start(restored).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.dbsize().unwrap(), 50);
        assert!(client.get(7).unwrap());
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bgsave_without_path_is_an_error() {
        let mut server = Server::start(MiniRedis::new(10_000, 5, 32)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert!(client.bgsave().is_err());
        assert!(client.ping().unwrap(), "connection survives the error");
        server.shutdown();
    }

    #[test]
    fn expo_port_serves_openmetrics_and_stops_cleanly() {
        let mut store = MiniRedis::new(1_000_000, 5, 40);
        store.enable_mrc_profiling(&krr_core::KrrConfig::new(5.0).seed(7), 2);
        let mut server = Server::start(store).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for key in 0..500u64 {
            let _ = client.access(key, 50).unwrap();
        }
        // Find a free port, then ask the server to bind it.
        let probe = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = probe.local_addr().unwrap().port();
        drop(probe);
        let reply = client
            .raw(&[b"CONFIG", b"SET", b"expo-port", port.to_string().as_bytes()])
            .unwrap();
        assert!(
            matches!(&reply, Value::Simple(s) if s == "OK"),
            "CONFIG SET expo-port failed: {reply:?}"
        );
        let addr = server.expo_addr().expect("expo server running");
        assert_eq!(addr.port(), port);
        let (status, ctype, body) = krr_core::expo::http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(ctype.starts_with("application/openmetrics-text"));
        assert!(body.contains("krr_accesses_total"), "{body}");
        assert!(body.contains("krr_footprint_total_bytes"), "{body}");
        assert!(body.ends_with("# EOF\n"));
        // INFO shares the same registry, so the gauges show up there too.
        let info = client.info().unwrap();
        assert!(info.contains("# memory"), "{info}");
        // Port 0 stops the server and releases the port.
        let reply = client
            .raw(&[b"CONFIG", b"SET", b"expo-port", b"0"])
            .unwrap();
        assert!(matches!(&reply, Value::Simple(s) if s == "OK"));
        assert!(server.expo_addr().is_none());
        assert!(
            std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(200))
                .is_err(),
            "expo port should be closed after expo-port 0"
        );
        server.shutdown();
    }

    #[test]
    fn slowlog_entries_carry_the_connection_tenant() {
        let mut store = MiniRedis::new(1_000_000, 5, 8);
        store.enable_fleet_profiling(krr_core::fleet::FleetConfig::new(
            krr_core::KrrConfig::new(5.0).seed(7),
        ));
        let mut server = Server::start(store).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.set_slowlog_threshold_us(0).unwrap();
        client.tenant(3).unwrap();
        let _ = client.get(42).unwrap();
        client.tenant_none().unwrap();
        let _ = client.get(42).unwrap();
        let entries = client.slowlog_get().unwrap();
        let gets: Vec<Option<i64>> = entries
            .iter()
            .filter(|e| e.3.first().map(Vec::as_slice) == Some(b"GET"))
            .map(|e| e.4)
            .collect();
        // Newest first: the tenant-less GET, then the tenant-3 GET.
        assert_eq!(gets, [None, Some(3)], "slowlog tenants: {entries:?}");
        server.shutdown();
    }

    #[test]
    fn forensics_toggle_and_exemplar_capture() {
        let mut server = Server::start(MiniRedis::new(1_000_000, 5, 6)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        // The threshold starts at 0 (everything is "tail" until the
        // histogram warms up), so early commands capture exemplars.
        for key in 0..50u64 {
            let _ = client.access(key, 50).unwrap();
        }
        let reply = client.raw(&[b"CONFIG", b"GET", b"forensics"]).unwrap();
        let Value::Array(kv) = &reply else {
            panic!("CONFIG GET forensics: {reply:?}")
        };
        assert!(matches!(&kv[1], Value::Bulk(Some(v)) if v == b"on"));
        // Toggle off: no new exemplars are recorded, and the connection
        // round-trips both states.
        let reply = client
            .raw(&[b"CONFIG", b"SET", b"forensics", b"off"])
            .unwrap();
        assert!(matches!(&reply, Value::Simple(s) if s == "OK"));
        let reply = client.raw(&[b"CONFIG", b"GET", b"forensics"]).unwrap();
        let Value::Array(kv) = &reply else {
            panic!("CONFIG GET forensics: {reply:?}")
        };
        assert!(matches!(&kv[1], Value::Bulk(Some(v)) if v == b"off"));
        let reply = client
            .raw(&[b"CONFIG", b"SET", b"forensics", b"banana"])
            .unwrap();
        assert!(matches!(reply, Value::Error(_)));
        let reply = client
            .raw(&[b"CONFIG", b"SET", b"forensics", b"on"])
            .unwrap();
        assert!(matches!(&reply, Value::Simple(s) if s == "OK"));
        server.shutdown();
    }

    #[test]
    fn unknown_command_is_an_error_not_a_hangup() {
        let mut server = Server::start(MiniRedis::new(10_000, 5, 4)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let err = client.raw(&[b"FLUBBER"]).unwrap();
        assert!(matches!(err, crate::resp::Value::Error(_)));
        assert!(client.ping().unwrap(), "connection must survive errors");
        server.shutdown();
    }
}
