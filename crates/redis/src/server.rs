//! A TCP server exposing [`crate::MiniRedis`] over RESP2.
//!
//! Thread-per-connection with the store behind a mutex — the concurrency
//! model real Redis avoids, but sufficient to validate KRR against a cache
//! reached through an actual wire protocol (§5.7 ran against a live Redis
//! instance). Supported commands: `GET`, `SET`, `DEL`, `DBSIZE`, `INFO`,
//! `METRICS`, `MRC`, `PING`, `SHUTDOWN`.
//!
//! `MRC` returns the online KRR profiler's current miss-ratio curve as a
//! `cache_size,miss_ratio` CSV bulk string (an error if the store was built
//! without [`MiniRedis::enable_mrc_profiling`]).
//!
//! `INFO` renders the store's counters plus the full metrics snapshot in
//! Redis's `# section` / `key:value` text form; `METRICS` returns the same
//! snapshot as one JSON document (`krr-metrics-v1`).

use crate::resp::{read_value, write_value, Value};
use crate::store::MiniRedis;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Handle to a running server.
pub struct Server {
    addr: std::net::SocketAddr,
    store: Arc<Mutex<MiniRedis>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts a server on an ephemeral localhost port.
    pub fn start(store: MiniRedis) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let store = Arc::new(Mutex::new(store));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_store = Arc::clone(&store);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            // Non-blocking accept loop so SHUTDOWN can terminate us.
            listener.set_nonblocking(true).expect("set_nonblocking");
            let mut workers = Vec::new();
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        let store = Arc::clone(&accept_store);
                        let stop = Arc::clone(&accept_stop);
                        workers.push(std::thread::spawn(move || {
                            let _ = serve_connection(conn, &store, &stop);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(Server {
            addr,
            store,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The server's socket address.
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Snapshot of the store's counters.
    #[must_use]
    pub fn stats(&self) -> crate::store::StoreStats {
        self.store.lock().expect("store poisoned").stats()
    }

    /// Stops the accept loop and waits for workers.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn parse_key(data: &[u8]) -> Option<u64> {
    std::str::from_utf8(data).ok()?.parse().ok()
}

fn serve_connection(
    conn: TcpStream,
    store: &Mutex<MiniRedis>,
    stop: &AtomicBool,
) -> io::Result<()> {
    conn.set_nodelay(true)?;
    // A read timeout lets idle workers notice the stop flag instead of
    // blocking forever in `read` (which would deadlock `shutdown` while a
    // client holds its connection open).
    conn.set_read_timeout(Some(std::time::Duration::from_millis(50)))?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        // Probe for data without committing to a full-message read; a
        // timeout mid-probe keeps the buffered stream consistent.
        use std::io::BufRead;
        match reader.fill_buf() {
            Ok([]) => return Ok(()), // clean EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
        let request = match read_value(&mut reader) {
            Ok(v) => v,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let reply = handle(&request, store, stop);
        write_value(&mut writer, &reply)?;
        use std::io::Write;
        writer.flush()?;
    }
}

fn handle(request: &Value, store: &Mutex<MiniRedis>, stop: &AtomicBool) -> Value {
    let Value::Array(parts) = request else {
        return Value::Error("ERR expected command array".into());
    };
    let mut args = Vec::with_capacity(parts.len());
    for p in parts {
        match p {
            Value::Bulk(Some(data)) => args.push(data.as_slice()),
            _ => return Value::Error("ERR expected bulk-string arguments".into()),
        }
    }
    let Some((cmd, rest)) = args.split_first() else {
        return Value::Error("ERR empty command".into());
    };
    match cmd.to_ascii_uppercase().as_slice() {
        b"PING" => Value::Simple("PONG".into()),
        b"GET" => {
            let [key] = rest else {
                return Value::Error("ERR wrong arity for GET".into());
            };
            let Some(key) = parse_key(key) else {
                return Value::Error("ERR keys are u64 in mini-redis".into());
            };
            let hit = store.lock().expect("store poisoned").get(key);
            if hit {
                // The store tracks sizes, not payloads; return a marker.
                Value::bulk(b"1".to_vec())
            } else {
                Value::null()
            }
        }
        b"SET" => {
            let [key, value] = rest else {
                return Value::Error("ERR wrong arity for SET".into());
            };
            let Some(key) = parse_key(key) else {
                return Value::Error("ERR keys are u64 in mini-redis".into());
            };
            store
                .lock()
                .expect("store poisoned")
                .set(key, value.len() as u32);
            Value::Simple("OK".into())
        }
        b"DEL" => {
            // Mini-redis has no user-facing delete; report 0 like a miss.
            Value::Integer(0)
        }
        b"DBSIZE" => Value::Integer(store.lock().expect("store poisoned").len() as i64),
        b"INFO" => {
            let s = store.lock().expect("store poisoned");
            let stats = s.stats();
            let mut body = format!(
                "# mini-redis\r\nkeys:{}\r\nused_memory:{}\r\nhits:{}\r\nmisses:{}\r\nevictions:{}\r\n",
                s.len(),
                s.used_memory(),
                stats.hits,
                stats.misses,
                stats.evictions
            );
            body.push_str("\r\n");
            body.push_str(&s.metrics().snapshot().render_info());
            Value::bulk(body.into_bytes())
        }
        b"METRICS" => {
            let snap = store.lock().expect("store poisoned").metrics().snapshot();
            Value::bulk(snap.to_json().into_bytes())
        }
        b"MRC" => match store.lock().expect("store poisoned").mrc_profile() {
            Some(mrc) => {
                let mut body = String::from("cache_size,miss_ratio\n");
                for &(x, y) in mrc.points().iter().filter(|&&(x, _)| x > 0.0) {
                    body.push_str(&format!("{x:.0},{y:.5}\n"));
                }
                Value::bulk(body.into_bytes())
            }
            None => Value::Error("ERR MRC profiling not enabled".into()),
        },
        b"SHUTDOWN" => {
            stop.store(true, Ordering::Relaxed);
            Value::Simple("OK".into())
        }
        other => Value::Error(format!(
            "ERR unknown command {:?}",
            String::from_utf8_lossy(other)
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn get_set_over_the_wire() {
        let mut server = Server::start(MiniRedis::new(100_000, 5, 1)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert!(client.ping().unwrap());
        assert!(!client.get(42).unwrap());
        client.set(42, 200).unwrap();
        assert!(client.get(42).unwrap());
        assert_eq!(client.dbsize().unwrap(), 1);
        let info = client.info().unwrap();
        assert!(info.contains("keys:1"), "{info}");
        server.shutdown();
    }

    #[test]
    fn eviction_happens_over_the_wire() {
        let mut server = Server::start(MiniRedis::new(2_000, 5, 2)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for key in 0..100u64 {
            client.set(key, 100).unwrap();
        }
        let n = client.dbsize().unwrap();
        assert!(n <= 20, "dbsize {n} exceeds memory budget");
        server.shutdown();
    }

    #[test]
    fn multiple_clients() {
        let mut server = Server::start(MiniRedis::new(1_000_000, 5, 3)).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4u64)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for i in 0..200u64 {
                        client.set(c * 1_000 + i, 50).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.dbsize().unwrap(), 800);
        server.shutdown();
    }

    #[test]
    fn mrc_command_over_the_wire() {
        let mut store = MiniRedis::new(1_000_000, 5, 9);
        store.enable_mrc_profiling(&krr_core::KrrConfig::new(5.0).seed(7), 2);
        let mut server = Server::start(store).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for _ in 0..3 {
            for key in 0..500u64 {
                let _ = client.access(key, 50).unwrap();
            }
        }
        let csv = client.mrc().unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("cache_size,miss_ratio"));
        assert!(lines.next().is_some(), "curve has data points: {csv}");
        server.shutdown();
    }

    #[test]
    fn mrc_without_profiling_is_an_error() {
        let mut server = Server::start(MiniRedis::new(10_000, 5, 5)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert!(client.mrc().is_err());
        assert!(client.ping().unwrap(), "connection survives the error");
        server.shutdown();
    }

    #[test]
    fn unknown_command_is_an_error_not_a_hangup() {
        let mut server = Server::start(MiniRedis::new(10_000, 5, 4)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let err = client.raw(&[b"FLUBBER"]).unwrap();
        assert!(matches!(err, crate::resp::Value::Error(_)));
        assert!(client.ping().unwrap(), "connection must survive errors");
        server.shutdown();
    }
}
