//! Online accuracy watchdog: a spatially-sampled shadow [`OlkenLru`]
//! profiler that runs beside a KRR model and periodically measures how far
//! the KRR MRC sits from the shadow's exact-LRU MRC.
//!
//! KRR models a *K-LRU* cache, so the distance to exact LRU is not an
//! error per se — for the paper's Type A workloads and small K it is the
//! entire point. What a production deployment needs is the *trajectory* of
//! that distance: under a stationary workload the KRR-vs-shadow MAE is
//! stable (and shrinks with K, since K-LRU → LRU as K grows), so a jump
//! past a configured threshold means the workload shifted in a way the
//! K′ = K^1.4 correction no longer tracks, and the profile deserves a
//! fresh warm-up or a human look.
//!
//! Cost model: the shadow admits keys through the same SHARDS spatial
//! filter machinery as KRR ([`SpatialFilter`], low 24 hash bits at rate
//! `R`), so it pays Olken's O(logM) only on ~`R·N` references, and its MRC
//! is expanded by `1/R` back to full-trace scale before comparison.
//! Results publish into the shared [`MetricsRegistry`] (`# watchdog` INFO
//! section / `"watchdog"` JSON object): check count, shadow reference
//! count, a live MAE gauge in ppm, and a monotone drift-event counter.
//!
//! ```
//! use krr_baselines::watchdog::{AccuracyWatchdog, WatchdogConfig};
//! use krr_core::{KrrConfig, KrrModel};
//!
//! let mut model = KrrModel::new(KrrConfig::new(5.0));
//! let mut dog = AccuracyWatchdog::new(WatchdogConfig {
//!     rate: 1.0, // sample everything (tiny example)
//!     check_every: 1_000,
//!     ..WatchdogConfig::default()
//! });
//! for key in (0..500u64).chain(0..500) {
//!     model.access_key(key);
//!     dog.observe(key);
//!     if dog.check_due() {
//!         let report = dog.check(&model.mrc());
//!         assert!(report.mae < 0.5);
//!     }
//! }
//! ```

use krr_core::hashing::hash_key;
use krr_core::metrics::MetricsRegistry;
use krr_core::mrc::{even_sizes, Mrc};
use krr_core::obs::{Phase, ThreadRecorder};
use krr_core::sampling::SpatialFilter;
use std::sync::Arc;

use crate::olken::OlkenLru;

/// Tuning for an [`AccuracyWatchdog`].
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Spatial sampling rate of the shadow profiler (default 0.01: the
    /// shadow sees ~1% of references, cutting its O(logM) cost and memory
    /// by 100× at the usual SHARDS accuracy).
    pub rate: f64,
    /// References observed between shadow comparisons (default 100 000).
    pub check_every: u64,
    /// MAE (in miss-ratio units) at or above which a check counts as a
    /// drift event (default 0.08).
    pub mae_threshold: f64,
    /// Cache sizes on the comparison grid (default 32, evenly spaced up to
    /// the larger of the two curves' max size).
    pub eval_points: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            rate: 0.01,
            check_every: 100_000,
            mae_threshold: 0.08,
            eval_points: 32,
        }
    }
}

/// Outcome of one shadow comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogReport {
    /// Mean absolute error between the KRR MRC and the shadow MRC.
    pub mae: f64,
    /// Whether `mae` reached the configured drift threshold.
    pub drifted: bool,
    /// Comparisons performed so far (including this one).
    pub checks: u64,
    /// References the shadow profiler has admitted so far.
    pub shadow_refs: u64,
}

/// The shadow profiler plus its comparison schedule. See the module docs.
#[derive(Debug)]
pub struct AccuracyWatchdog {
    config: WatchdogConfig,
    filter: SpatialFilter,
    shadow: OlkenLru,
    observed: u64,
    shadow_refs: u64,
    checks: u64,
    next_check: u64,
    last: Option<WatchdogReport>,
    metrics: Option<Arc<MetricsRegistry>>,
    recorder: Option<ThreadRecorder>,
}

impl AccuracyWatchdog {
    /// Creates a watchdog; `config.rate` must lie in `(0, 1]`.
    #[must_use]
    pub fn new(config: WatchdogConfig) -> Self {
        assert!(
            config.rate > 0.0 && config.rate <= 1.0,
            "shadow sampling rate must be in (0, 1]"
        );
        let filter = if config.rate >= 1.0 {
            SpatialFilter::all()
        } else {
            SpatialFilter::with_rate(config.rate)
        };
        let next_check = config.check_every.max(1);
        Self {
            config,
            filter,
            shadow: OlkenLru::new(),
            observed: 0,
            shadow_refs: 0,
            checks: 0,
            next_check,
            last: None,
            metrics: None,
            recorder: None,
        }
    }

    /// Publishes check results into `metrics` (`watchdog_*` fields).
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        self.metrics = Some(metrics);
    }

    /// Records [`Phase::WatchdogCheck`] spans for each comparison.
    pub fn set_recorder(&mut self, recorder: ThreadRecorder) {
        self.recorder = Some(recorder);
    }

    /// Offers one reference; the spatial filter decides whether the shadow
    /// profiler sees it. Returns whether it was admitted.
    pub fn observe(&mut self, key: u64) -> bool {
        self.observe_hashed(key, hash_key(key))
    }

    /// [`AccuracyWatchdog::observe`] with a precomputed
    /// [`hash_key`] value (route-once callers).
    pub fn observe_hashed(&mut self, key: u64, key_hash: u64) -> bool {
        self.observed += 1;
        if !self.filter.admits_hashed(key_hash) {
            return false;
        }
        self.shadow.access_key(key);
        self.shadow_refs += 1;
        if let Some(m) = &self.metrics {
            m.watchdog_shadow_refs.inc();
        }
        true
    }

    /// Whether enough references have been observed since the last check.
    #[must_use]
    pub fn check_due(&self) -> bool {
        self.observed >= self.next_check
    }

    /// References observed so far (admitted or not).
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The most recent report, if a check has run.
    #[must_use]
    pub fn last_report(&self) -> Option<WatchdogReport> {
        self.last
    }

    /// Compares `krr` against the shadow's scaled exact-LRU MRC, publishes
    /// the result to the attached metrics registry, and reschedules the
    /// next check. An idle shadow (nothing admitted yet) reports MAE 0.
    pub fn check(&mut self, krr: &Mrc) -> WatchdogReport {
        let r0 = self.recorder.as_ref().map(ThreadRecorder::now_ns);
        let scale = 1.0 / self.filter.rate();
        let shadow = self.shadow.mrc_scaled(scale);
        let max = shadow.max_size().max(krr.max_size());
        let mae = if self.shadow_refs == 0 || max <= 0.0 {
            0.0
        } else {
            let sizes = even_sizes(max, self.config.eval_points.max(2));
            krr.mae(&shadow, &sizes)
        };
        self.checks += 1;
        let drifted = mae >= self.config.mae_threshold;
        let report = WatchdogReport {
            mae,
            drifted,
            checks: self.checks,
            shadow_refs: self.shadow_refs,
        };
        if let Some(m) = &self.metrics {
            m.watchdog_checks.inc();
            m.watchdog_mae_ppm.set((mae * 1e6).round() as u64);
            if drifted {
                m.watchdog_drift_events.inc();
            }
            m.publish_footprint(&krr_core::footprint::Footprint::footprint(self));
        }
        if let (Some(rec), Some(r0)) = (&self.recorder, r0) {
            rec.record_since(Phase::WatchdogCheck, r0, (mae * 1e6).round() as u64);
        }
        self.next_check =
            (self.observed / self.config.check_every.max(1) + 1) * self.config.check_every.max(1);
        self.last = Some(report);
        report
    }

    /// Serializes the watchdog — config, schedule counters, last report,
    /// and the shadow Olken profiler — into a `krr-ckpt-v1` payload (the
    /// `WDOG` checkpoint section).
    pub fn save_state(&self, enc: &mut krr_core::checkpoint::Enc) {
        enc.put_f64(self.config.rate)
            .put_u64(self.config.check_every)
            .put_f64(self.config.mae_threshold)
            .put_u64(self.config.eval_points as u64)
            .put_u64(self.observed)
            .put_u64(self.shadow_refs)
            .put_u64(self.checks)
            .put_u64(self.next_check);
        match &self.last {
            None => {
                enc.put_u8(0);
            }
            Some(r) => {
                enc.put_u8(1)
                    .put_f64(r.mae)
                    .put_u8(u8::from(r.drifted))
                    .put_u64(r.checks)
                    .put_u64(r.shadow_refs);
            }
        }
        self.shadow.save_state(enc);
    }

    /// Reconstructs a watchdog from an [`AccuracyWatchdog::save_state`]
    /// payload. The spatial filter is rebuilt from the stored rate;
    /// metrics/recorder start detached — re-attach with
    /// [`AccuracyWatchdog::set_metrics`] / [`AccuracyWatchdog::set_recorder`].
    pub fn load_state(dec: &mut krr_core::checkpoint::Dec<'_>) -> std::io::Result<Self> {
        let config = WatchdogConfig {
            rate: dec.f64()?,
            check_every: dec.u64()?,
            mae_threshold: dec.f64()?,
            eval_points: usize::try_from(dec.u64()?).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "eval_points overflow")
            })?,
        };
        if !(config.rate > 0.0 && config.rate <= 1.0) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "watchdog rate out of (0, 1] in checkpoint",
            ));
        }
        let filter = if config.rate >= 1.0 {
            SpatialFilter::all()
        } else {
            SpatialFilter::with_rate(config.rate)
        };
        let observed = dec.u64()?;
        let shadow_refs = dec.u64()?;
        let checks = dec.u64()?;
        let next_check = dec.u64()?;
        let last = match dec.u8()? {
            0 => None,
            _ => Some(WatchdogReport {
                mae: dec.f64()?,
                drifted: dec.u8()? != 0,
                checks: dec.u64()?,
                shadow_refs: dec.u64()?,
            }),
        };
        let shadow = OlkenLru::load_state(dec)?;
        Ok(Self {
            config,
            filter,
            shadow,
            observed,
            shadow_refs,
            checks,
            next_check,
            last,
            metrics: None,
            recorder: None,
        })
    }
}

impl krr_core::footprint::Footprint for AccuracyWatchdog {
    /// The shadow profiler's entire footprint under a single `shadow_olken`
    /// label, so [`MetricsRegistry::publish_footprint`] routes it to the
    /// `footprint_shadow_bytes` gauge without disturbing the model gauges.
    fn footprint(&self) -> krr_core::footprint::FootprintReport {
        let mut r = krr_core::footprint::FootprintReport::new();
        r.add("shadow_olken", self.shadow.deep_bytes());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krr_core::rng::Xoshiro256;
    use krr_core::{KrrConfig, KrrModel};

    fn drive(model: &mut KrrModel, dog: &mut AccuracyWatchdog, keys: u64, n: usize, seed: u64) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..n {
            let u = rng.unit();
            let key = (u * u * keys as f64) as u64;
            model.access_key(key);
            dog.observe(key);
            if dog.check_due() {
                let mrc = model.mrc();
                dog.check(&mrc);
            }
        }
    }

    #[test]
    fn stationary_workload_stays_under_threshold() {
        // Large K: K-LRU is close to LRU, so KRR should track the exact
        // shadow closely and no drift events should fire.
        let mut model = KrrModel::new(KrrConfig::new(64.0));
        let mut dog = AccuracyWatchdog::new(WatchdogConfig {
            rate: 0.2,
            check_every: 20_000,
            mae_threshold: 0.08,
            eval_points: 32,
        });
        let reg = Arc::new(MetricsRegistry::new());
        dog.set_metrics(Arc::clone(&reg));
        drive(&mut model, &mut dog, 20_000, 120_000, 9);
        let report = dog.last_report().expect("checks ran");
        assert!(report.checks >= 5, "expected periodic checks");
        assert!(
            report.mae < 0.08,
            "stationary large-K MAE should be small, got {}",
            report.mae
        );
        let snap = reg.snapshot();
        assert_eq!(snap.watchdog_checks, report.checks);
        assert_eq!(snap.watchdog_drift_events, 0);
        assert_eq!(snap.watchdog_mae_ppm, (report.mae * 1e6).round() as u64);
        assert!(snap.watchdog_shadow_refs > 0);
    }

    #[test]
    fn shadow_sampling_reduces_shadow_work() {
        let mut dog = AccuracyWatchdog::new(WatchdogConfig {
            rate: 0.05,
            ..WatchdogConfig::default()
        });
        for key in 0..50_000u64 {
            dog.observe(key);
        }
        let admitted = dog.shadow_refs;
        // 50K distinct keys at rate 0.05: expect ~2500, generous 3σ band.
        assert!(
            (1_800..=3_200).contains(&(admitted as i64)),
            "admitted {admitted}"
        );
        assert_eq!(dog.observed(), 50_000);
    }

    #[test]
    fn divergent_model_raises_drift_event() {
        // Compare a deliberately tiny-K model (coarse K-LRU) against the
        // shadow on a reuse-heavy workload with a tight threshold: the MAE
        // must land above it and increment the drift counter.
        let mut model = KrrModel::new(KrrConfig::new(1.0).raw_k());
        let mut dog = AccuracyWatchdog::new(WatchdogConfig {
            rate: 1.0,
            check_every: 10_000,
            mae_threshold: 0.01,
            eval_points: 32,
        });
        let reg = Arc::new(MetricsRegistry::new());
        dog.set_metrics(Arc::clone(&reg));
        drive(&mut model, &mut dog, 2_000, 40_000, 5);
        let report = dog.last_report().expect("checks ran");
        assert!(report.drifted, "K=1 vs exact LRU must exceed MAE 0.01");
        assert!(reg.snapshot().watchdog_drift_events >= 1);
    }

    #[test]
    fn save_load_preserves_schedule_and_shadow() {
        let mut model = KrrModel::new(KrrConfig::new(8.0));
        let mut a = AccuracyWatchdog::new(WatchdogConfig {
            rate: 0.5,
            check_every: 10_000,
            mae_threshold: 0.08,
            eval_points: 16,
        });
        drive(&mut model, &mut a, 5_000, 35_000, 17);
        let mut enc = krr_core::checkpoint::Enc::new();
        a.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut b =
            AccuracyWatchdog::load_state(&mut krr_core::checkpoint::Dec::new(&bytes)).unwrap();
        assert_eq!(b.observed(), a.observed());
        assert_eq!(b.last_report(), a.last_report());
        assert_eq!(b.check_due(), a.check_due());
        // Both copies must keep evolving identically.
        drive(&mut model, &mut a, 5_000, 20_000, 18);
        let mut model_b = KrrModel::new(KrrConfig::new(8.0));
        // model state differs between arms only through its own references;
        // feed b the same keys via a second drive with the same seed.
        drive(&mut model_b, &mut b, 5_000, 20_000, 18);
        assert_eq!(a.observed(), b.observed());
        assert_eq!(a.shadow_refs, b.shadow_refs);
    }

    #[test]
    fn idle_shadow_reports_zero_without_panicking() {
        let mut dog = AccuracyWatchdog::new(WatchdogConfig::default());
        let model = KrrModel::new(KrrConfig::new(5.0));
        let report = dog.check(&model.mrc());
        assert_eq!(report.mae, 0.0);
        assert!(!report.drifted);
        assert_eq!(report.shadow_refs, 0);
    }

    #[test]
    fn check_schedule_advances_past_observed_count() {
        let mut dog = AccuracyWatchdog::new(WatchdogConfig {
            rate: 1.0,
            check_every: 100,
            ..WatchdogConfig::default()
        });
        let model = KrrModel::new(KrrConfig::new(5.0));
        for key in 0..250u64 {
            dog.observe(key);
        }
        assert!(dog.check_due());
        dog.check(&model.mrc());
        // 250 observed, window 100 -> next boundary is 300.
        assert!(!dog.check_due());
        for key in 0..50u64 {
            dog.observe(key);
        }
        assert!(dog.check_due());
    }
}
