//! Olken's exact LRU stack-distance algorithm (§5.1's "Mattson's LRU stack
//! algorithm using a balanced search tree").
//!
//! Each referenced object's last-access time lives in an order-statistic
//! tree; the LRU stack distance of a re-reference is
//! `1 + count_greater(previous_time)`. O(logM) per access — still the lower
//! bound for *exact* LRU MRCs.

use crate::ostree::OsTreap;
use krr_core::checkpoint::{Dec, Enc};
use krr_core::hashing::KeyMap;
use krr_core::histogram::SdHistogram;
use krr_core::mrc::Mrc;

/// One-pass exact LRU MRC profiler.
#[derive(Debug, Clone)]
pub struct OlkenLru {
    tree: OsTreap,
    last: KeyMap<u64>,
    hist: SdHistogram,
    clock: u64,
}

impl Default for OlkenLru {
    fn default() -> Self {
        Self::new()
    }
}

impl OlkenLru {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self {
            tree: OsTreap::new(),
            last: KeyMap::default(),
            hist: SdHistogram::new(1),
            clock: 0,
        }
    }

    /// Processes one reference; returns the LRU stack distance, or `None`
    /// for a cold miss.
    pub fn access_key(&mut self, key: u64) -> Option<u64> {
        self.clock += 1;
        let now = self.clock;
        match self.last.insert(key, now) {
            Some(prev) => {
                let d = self.tree.count_greater(prev) + 1;
                self.tree.remove(prev);
                self.tree.insert(now);
                self.hist.record(d);
                Some(d)
            }
            None => {
                self.tree.insert(now);
                self.hist.record_cold();
                None
            }
        }
    }

    /// Distinct objects seen.
    #[must_use]
    pub fn distinct(&self) -> u64 {
        self.last.len() as u64
    }

    /// The exact LRU MRC over the processed references.
    #[must_use]
    pub fn mrc(&self) -> Mrc {
        Mrc::from_histogram(&self.hist, 1.0)
    }

    /// The MRC with the size axis expanded by `scale` — for a shadow
    /// profiler fed a spatial sample at rate `R`, pass `1/R` to express
    /// cache sizes at full-trace scale (the SHARDS construction).
    #[must_use]
    pub fn mrc_scaled(&self, scale: f64) -> Mrc {
        Mrc::from_histogram(&self.hist, scale)
    }

    /// The stack-distance histogram.
    #[must_use]
    pub fn histogram(&self) -> &SdHistogram {
        &self.hist
    }

    /// Serializes the profiler into a `krr-ckpt-v1` payload: clock,
    /// histogram, and the `(key, last-access-time)` map sorted by time so
    /// identical state always yields identical bytes. The order-statistic
    /// tree is derivable (it holds exactly the map's time values) and not
    /// stored.
    pub fn save_state(&self, enc: &mut Enc) {
        enc.put_u64(self.clock);
        self.hist.save_state(enc);
        let mut pairs: Vec<(u64, u64)> = self.last.iter().map(|(&k, &t)| (k, t)).collect();
        pairs.sort_unstable_by_key(|&(_, t)| t);
        enc.put_u64(pairs.len() as u64);
        for (k, t) in pairs {
            enc.put_u64(k).put_u64(t);
        }
    }

    /// Reconstructs a profiler from an [`OlkenLru::save_state`] payload,
    /// rebuilding the order-statistic tree from the stored access times.
    /// Tree shape may differ from the original (treap priorities), but
    /// rank queries — and therefore every future distance — are identical.
    pub fn load_state(dec: &mut Dec<'_>) -> std::io::Result<Self> {
        let clock = dec.u64()?;
        let hist = SdHistogram::load_state(dec)?;
        let n = dec.u64()?;
        let mut last = KeyMap::default();
        let mut tree = OsTreap::new();
        for _ in 0..n {
            let key = dec.u64()?;
            let time = dec.u64()?;
            if last.insert(key, time).is_some() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "duplicate key in Olken checkpoint",
                ));
            }
            tree.insert(time);
        }
        Ok(Self {
            tree,
            last,
            hist,
            clock,
        })
    }
}

impl krr_core::footprint::Footprint for OlkenLru {
    /// Tree slab + key→time index + histogram: the O(M) exact-profiler
    /// footprint KRR's sampled stack is compared against (§5.6).
    fn footprint(&self) -> krr_core::footprint::FootprintReport {
        let mut r = self.tree.footprint();
        r.add(
            "olken_index",
            krr_core::footprint::map_bytes(self.last.capacity(), std::mem::size_of::<(u64, u64)>()),
        );
        r.merge(&self.hist.footprint());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_hand_computation() {
        let mut o = OlkenLru::new();
        assert_eq!(o.access_key(1), None);
        assert_eq!(o.access_key(2), None);
        assert_eq!(o.access_key(3), None);
        assert_eq!(o.access_key(1), Some(3)); // stack: 3,2,1
        assert_eq!(o.access_key(1), Some(1));
        assert_eq!(o.access_key(2), Some(3)); // stack: 1,3,2
        assert_eq!(o.access_key(3), Some(3)); // stack: 2,1,3
    }

    #[test]
    fn loop_trace_has_constant_distance() {
        let mut o = OlkenLru::new();
        let m = 50u64;
        for i in 0..500u64 {
            let d = o.access_key(i % m);
            if i >= m {
                assert_eq!(d, Some(m));
            }
        }
    }

    #[test]
    fn mrc_matches_exact_lru_simulation() {
        use krr_sim::{even_capacities, simulate_mrc, Policy, Unit};
        use krr_trace::patterns;
        let trace = patterns::uniform_random(400, 50_000, 3);
        let mut o = OlkenLru::new();
        for r in &trace {
            o.access_key(r.key);
        }
        let caps = even_capacities(400, 40);
        let sim = simulate_mrc(&trace, Policy::ExactLru, Unit::Objects, &caps, 1, 4);
        let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
        let mae = o.mrc().mae(&sim, &sizes);
        assert!(mae < 0.002, "Olken vs LRU simulation MAE {mae}");
    }

    #[test]
    fn save_load_resumes_identically() {
        use krr_core::rng::Xoshiro256;
        let mut a = OlkenLru::new();
        let mut rng = Xoshiro256::seed_from_u64(8);
        for _ in 0..5000 {
            a.access_key(rng.below(400));
        }
        let mut enc = Enc::new();
        a.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut b = OlkenLru::load_state(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(b.distinct(), a.distinct());
        for _ in 0..5000 {
            let key = rng.below(400);
            assert_eq!(a.access_key(key), b.access_key(key));
        }
        assert_eq!(a.mrc().points(), b.mrc().points());
    }

    #[test]
    fn distances_match_naive_list_stack() {
        // Brute-force LRU stack as the oracle.
        use krr_core::rng::Xoshiro256;
        let mut o = OlkenLru::new();
        let mut list: Vec<u64> = Vec::new();
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..5000 {
            let key = rng.below(200);
            let expect = list.iter().position(|&k| k == key).map(|p| p as u64 + 1);
            if let Some(p) = expect {
                list.remove(p as usize - 1);
            }
            list.insert(0, key);
            assert_eq!(o.access_key(key), expect);
        }
    }
}
