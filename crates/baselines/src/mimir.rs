//! MIMIR's bucketed LRU stack (Saemundsson et al., SoCC '14; §6.1).
//!
//! The LRU stack is replaced by a sequence of `B` variable-size buckets in
//! coarse recency order: re-referenced objects move to the newest bucket,
//! and a hit in bucket `i` has stack distance between the sizes of all
//! newer buckets and that plus bucket `i`'s own size — estimated here at
//! the midpoint (MIMIR distributes it across the range; identical for the
//! MRC up to bucket resolution ~1/B).
//!
//! Aging keeps buckets balanced: when the newest bucket reaches its fair
//! share `⌈n/B⌉`, a fresh bucket opens; when the window exceeds `B`, the
//! two oldest merge. O(B) per access here (bucket scan), O(M) space.

use krr_core::hashing::KeyMap;
use krr_core::histogram::SdHistogram;
use krr_core::mrc::Mrc;
use std::collections::VecDeque;

/// One-pass MIMIR-style bucketed LRU profiler.
#[derive(Debug)]
pub struct Mimir {
    /// Bucket id per key. Ids grow monotonically; ids older than the live
    /// window belong (by merging) to the oldest live bucket.
    bucket_of: KeyMap<u64>,
    /// `(bucket id, object count)` from newest (front) to oldest (back).
    counts: VecDeque<(u64, u64)>,
    num_buckets: usize,
    next_id: u64,
    hist: SdHistogram,
}

impl Mimir {
    /// Creates a profiler with `b >= 2` buckets (the MIMIR paper uses
    /// B = 128).
    #[must_use]
    pub fn new(b: usize) -> Self {
        assert!(b >= 2, "need at least two buckets");
        let mut counts = VecDeque::with_capacity(b + 1);
        counts.push_front((0u64, 0u64));
        Self {
            bucket_of: KeyMap::default(),
            counts,
            num_buckets: b,
            next_id: 0,
            hist: SdHistogram::new(1),
        }
    }

    /// Number of tracked objects.
    #[must_use]
    pub fn distinct(&self) -> u64 {
        self.bucket_of.len() as u64
    }

    /// Live bucket count (test use).
    #[must_use]
    pub fn num_live_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Offers one reference; returns the estimated stack distance for a
    /// re-reference (`None` for cold misses).
    pub fn access_key(&mut self, key: u64) -> Option<u64> {
        let newest_id = self.counts.front().expect("non-empty").0;
        let oldest_id = self.counts.back().expect("non-empty").0;
        let distance = match self.bucket_of.insert(key, newest_id) {
            None => {
                // Cold: joins the newest bucket.
                self.counts.front_mut().expect("non-empty").1 += 1;
                None
            }
            Some(old_id) if old_id == newest_id => {
                // Re-hit inside the newest bucket: distance within it.
                let front = self.counts.front().expect("non-empty").1;
                Some((front / 2).max(1))
            }
            Some(old_id) => {
                // Ids below the live window merged into the oldest bucket.
                let eff_id = old_id.max(oldest_id);
                let mut below = 0u64;
                let mut old_size = 1u64;
                for &(id, count) in &self.counts {
                    if id > eff_id {
                        below += count;
                    } else if id == eff_id {
                        old_size = count.max(1);
                        break;
                    }
                }
                // Move: decrement the effective old bucket, join the newest.
                for slot in &mut self.counts {
                    if slot.0 == eff_id {
                        slot.1 = slot.1.saturating_sub(1);
                        break;
                    }
                }
                self.counts.front_mut().expect("non-empty").1 += 1;
                Some((below + old_size / 2).max(1))
            }
        };
        match distance {
            Some(d) => self.hist.record(d),
            None => self.hist.record_cold(),
        }
        self.age_if_needed();
        distance
    }

    /// Opens a fresh bucket when the newest reaches its fair share; merges
    /// the two oldest when the window exceeds `B`.
    fn age_if_needed(&mut self) {
        let n = self.bucket_of.len() as u64;
        let fair = n.div_ceil(self.num_buckets as u64).max(1);
        if self.counts.front().expect("non-empty").1 < fair {
            return;
        }
        self.next_id += 1;
        self.counts.push_front((self.next_id, 0));
        if self.counts.len() > self.num_buckets {
            let (_, dropped) = self.counts.pop_back().expect("non-empty");
            self.counts.back_mut().expect("non-empty").1 += dropped;
        }
    }

    /// The MRC observed so far.
    #[must_use]
    pub fn mrc(&self) -> Mrc {
        let mut mrc = Mrc::from_histogram(&self.hist, 1.0);
        mrc.make_monotone();
        mrc
    }

    /// Internal consistency check: bucket counts must sum to the number of
    /// tracked objects (test use).
    #[must_use]
    pub fn counts_consistent(&self) -> bool {
        self.counts.iter().map(|&(_, c)| c).sum::<u64>() == self.bucket_of.len() as u64
    }
}

impl krr_core::footprint::Footprint for Mimir {
    fn footprint(&self) -> krr_core::footprint::FootprintReport {
        let mut r = krr_core::footprint::FootprintReport::new();
        r.add(
            "mimir_index",
            krr_core::footprint::map_bytes(
                self.bucket_of.capacity(),
                std::mem::size_of::<(u64, u64)>(),
            ),
        )
        .add(
            "mimir_buckets",
            self.counts.capacity() * std::mem::size_of::<(u64, u64)>(),
        );
        r.merge(&self.hist.footprint());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::olken::OlkenLru;
    use krr_core::rng::Xoshiro256;

    #[test]
    fn cold_then_hit() {
        let mut m = Mimir::new(8);
        assert_eq!(m.access_key(1), None);
        let d = m.access_key(1);
        assert!(d.is_some());
        assert!(d.unwrap() >= 1);
        assert!(m.counts_consistent());
    }

    #[test]
    fn counts_stay_consistent_under_churn() {
        let mut m = Mimir::new(16);
        let mut rng = Xoshiro256::seed_from_u64(7);
        for i in 0..100_000u64 {
            m.access_key(rng.below(2_000));
            if i % 1_000 == 0 {
                assert!(m.counts_consistent(), "drift at step {i}");
            }
        }
        assert!(m.num_live_buckets() <= 16);
    }

    #[test]
    fn loop_distances_near_loop_size() {
        let loop_len = 1_000u64;
        let mut m = Mimir::new(128);
        for i in 0..20_000u64 {
            m.access_key(i % loop_len);
        }
        let mrc = m.mrc();
        // Bucketing smears the cliff by ~1/B; check it sits near the loop.
        assert!(
            mrc.eval(loop_len as f64 * 0.7) > 0.85,
            "{}",
            mrc.eval(loop_len as f64 * 0.7)
        );
        assert!(
            mrc.eval(loop_len as f64 * 1.4) < 0.15,
            "{}",
            mrc.eval(loop_len as f64 * 1.4)
        );
    }

    #[test]
    fn tracks_olken_with_b128() {
        let keys = 5_000u64;
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut m = Mimir::new(128);
        let mut o = OlkenLru::new();
        for _ in 0..200_000 {
            let u = rng.unit();
            let k = (u * u * keys as f64) as u64;
            m.access_key(k);
            o.access_key(k);
        }
        let sizes = krr_core::even_sizes(keys as f64, 20);
        let mae = m.mrc().mae(&o.mrc(), &sizes);
        assert!(mae < 0.05, "MIMIR MAE {mae}");
    }

    #[test]
    fn coarser_buckets_are_less_accurate() {
        let keys = 3_000u64;
        let mut rng = Xoshiro256::seed_from_u64(2);
        let trace: Vec<u64> = (0..100_000)
            .map(|_| {
                let u = rng.unit();
                (u * u * keys as f64) as u64
            })
            .collect();
        let mut o = OlkenLru::new();
        for &k in &trace {
            o.access_key(k);
        }
        let sizes = krr_core::even_sizes(keys as f64, 20);
        let mae_of = |b: usize| {
            let mut m = Mimir::new(b);
            for &k in &trace {
                m.access_key(k);
            }
            m.mrc().mae(&o.mrc(), &sizes)
        };
        let coarse = mae_of(4);
        let fine = mae_of(256);
        assert!(fine < coarse, "B=256 ({fine}) should beat B=4 ({coarse})");
    }
}
