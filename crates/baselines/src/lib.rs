//! # krr-baselines
//!
//! Baseline MRC techniques the paper compares against or builds on:
//!
//! * [`ostree`] — order-statistic treap (the balanced-tree substrate).
//! * [`olken`] — Olken's exact LRU stack-distance algorithm, O(N·logM).
//! * [`shards`] — SHARDS fixed-rate (± adjustment) and fixed-size variants.
//! * [`aet`] — the AET reuse-time model (related-work extension, §6.1).
//! * [`counterstacks`] / [`hll`] — CounterStacks over from-scratch
//!   HyperLogLogs (related-work extension, §6.1).
//! * [`statstack`] — StatStack's expected-stack-distance model (§6.1).
//! * [`mimir`] — MIMIR's bucketed LRU stack (§6.1).
//! * [`watchdog`] — online accuracy watchdog: a spatially-sampled shadow
//!   Olken profiler that tracks a live KRR model's drift.
//! * [`fleet_watchdog`] — the fleet-scale variant: shadows only the top-K
//!   tenants of a [`krr_core::fleet::FleetArena`] by traffic.
//!
//! All of these model *exact* LRU; the paper's point (Fig 5.2a) is that for
//! Type A workloads and small K they misestimate a K-LRU cache badly, which
//! is what `krr-core` fixes.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aet;
pub mod counterstacks;
pub mod fleet_watchdog;
pub mod hll;
pub mod mimir;
pub mod olken;
pub mod ostree;
pub mod shards;
pub mod statstack;
pub mod watchdog;

pub use aet::Aet;
pub use counterstacks::CounterStacks;
pub use fleet_watchdog::{FleetWatchdog, FleetWatchdogConfig};
pub use hll::HyperLogLog;
pub use mimir::Mimir;
pub use olken::OlkenLru;
pub use ostree::OsTreap;
pub use shards::{Shards, ShardsMax};
pub use statstack::StatStack;
pub use watchdog::{AccuracyWatchdog, WatchdogConfig, WatchdogReport};
