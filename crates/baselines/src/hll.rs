//! HyperLogLog cardinality counter (Flajolet et al., 2007), the
//! probabilistic counter CounterStacks replaces its Bloom filters with
//! (§6.1).
//!
//! Standard 2^b-register formulation with the small-range linear-counting
//! correction; 64-bit hashes make the large-range correction unnecessary.

use krr_core::hashing::hash_key;

/// HyperLogLog with `2^precision` 6-bit registers (stored as bytes).
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates a counter with `precision` index bits (4..=16). Relative
    /// error is ~`1.04 / sqrt(2^precision)`.
    #[must_use]
    pub fn new(precision: u8) -> Self {
        assert!((4..=16).contains(&precision), "precision must be in 4..=16");
        Self {
            precision,
            registers: vec![0; 1 << precision],
        }
    }

    /// Number of registers.
    #[must_use]
    pub fn registers(&self) -> usize {
        self.registers.len()
    }

    /// Adds a key (idempotent for duplicates).
    #[inline]
    pub fn add(&mut self, key: u64) {
        let h = hash_key(key);
        let idx = (h >> (64 - self.precision)) as usize;
        // Rank = position of the leftmost 1 in the remaining bits (1-based).
        let rest = h << self.precision;
        let rank = (rest.leading_zeros() as u8).min(64 - self.precision) + 1;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct keys added.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-i32::from(r)))
            .sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            // Small-range correction: linear counting over empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merges another counter (same precision) into this one.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(b);
        }
    }
}

impl krr_core::footprint::Footprint for HyperLogLog {
    fn footprint(&self) -> krr_core::footprint::FootprintReport {
        let mut r = krr_core::footprint::FootprintReport::new();
        r.add("hll_registers", self.registers.capacity());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let h = HyperLogLog::new(10);
        assert!(h.estimate() < 1.0);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new(10);
        for _ in 0..1000 {
            h.add(42);
        }
        assert!(h.estimate() < 2.0, "got {}", h.estimate());
    }

    #[test]
    fn accuracy_across_cardinalities() {
        let mut h = HyperLogLog::new(12); // ~1.6% relative error
        let mut next_check = 100u64;
        for n in 1..=1_000_000u64 {
            h.add(n);
            if n == next_check {
                let est = h.estimate();
                let rel = (est - n as f64).abs() / n as f64;
                assert!(rel < 0.06, "n={n}: estimate {est} (rel {rel})");
                next_check *= 10;
            }
        }
    }

    #[test]
    fn small_range_linear_counting() {
        let mut h = HyperLogLog::new(12);
        for n in 0..50u64 {
            h.add(n);
        }
        let est = h.estimate();
        assert!((est - 50.0).abs() < 5.0, "got {est}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        let mut union = HyperLogLog::new(10);
        for n in 0..5_000u64 {
            a.add(n);
            union.add(n);
        }
        for n in 2_500..7_500u64 {
            b.add(n);
            union.add(n);
        }
        a.merge(&b);
        assert!((a.estimate() - union.estimate()).abs() < 1e-9);
        let rel = (a.estimate() - 7_500.0).abs() / 7_500.0;
        assert!(rel < 0.1, "union estimate {}", a.estimate());
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_rejects_mismatched_precision() {
        let mut a = HyperLogLog::new(10);
        let b = HyperLogLog::new(11);
        a.merge(&b);
    }
}
