//! Order-statistic treap: the balanced-search-tree substrate of Olken's
//! O(N·logM) exact LRU stack algorithm (§2.1, ref. \[17\]).
//!
//! Keys are unique `u64` timestamps. Besides insert/remove, the tree answers
//! `count_greater(t)` — the number of keys strictly above `t` — in
//! O(log n), which is exactly an LRU stack distance query. Nodes live in a
//! slab with free-list reuse; heap priorities come from a deterministic
//! xoshiro stream so the structure is reproducible.

use krr_core::rng::Xoshiro256;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    pri: u64,
    left: u32,
    right: u32,
    /// Subtree size (this node included).
    count: u32,
}

/// Order-statistic treap over unique `u64` keys.
#[derive(Debug, Clone)]
pub struct OsTreap {
    nodes: Vec<Node>,
    root: u32,
    free: Vec<u32>,
    rng: Xoshiro256,
}

impl Default for OsTreap {
    fn default() -> Self {
        Self::new()
    }
}

impl OsTreap {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            root: NIL,
            free: Vec::new(),
            rng: Xoshiro256::seed_from_u64(0x7EA9_u64),
        }
    }

    /// Number of keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count(self.root) as usize
    }

    /// True if no key is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    #[inline]
    fn count(&self, i: u32) -> u32 {
        if i == NIL {
            0
        } else {
            self.nodes[i as usize].count
        }
    }

    #[inline]
    fn fix(&mut self, i: u32) {
        let (l, r) = (self.nodes[i as usize].left, self.nodes[i as usize].right);
        self.nodes[i as usize].count = 1 + self.count(l) + self.count(r);
    }

    fn alloc(&mut self, key: u64) -> u32 {
        let node = Node {
            key,
            pri: self.rng.next_u64(),
            left: NIL,
            right: NIL,
            count: 1,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Splits subtree `i` into (keys <= `key`, keys > `key`).
    fn split(&mut self, i: u32, key: u64) -> (u32, u32) {
        if i == NIL {
            return (NIL, NIL);
        }
        if self.nodes[i as usize].key <= key {
            let right = self.nodes[i as usize].right;
            let (a, b) = self.split(right, key);
            self.nodes[i as usize].right = a;
            self.fix(i);
            (i, b)
        } else {
            let left = self.nodes[i as usize].left;
            let (a, b) = self.split(left, key);
            self.nodes[i as usize].left = b;
            self.fix(i);
            (a, i)
        }
    }

    /// Merges subtrees `a` (all keys smaller) and `b`.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].pri >= self.nodes[b as usize].pri {
            let ar = self.nodes[a as usize].right;
            let m = self.merge(ar, b);
            self.nodes[a as usize].right = m;
            self.fix(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let m = self.merge(a, bl);
            self.nodes[b as usize].left = m;
            self.fix(b);
            b
        }
    }

    /// Inserts `key`; panics in debug builds if it already exists.
    pub fn insert(&mut self, key: u64) {
        debug_assert!(!self.contains(key), "duplicate key {key}");
        let node = self.alloc(key);
        let (a, b) = self.split(self.root, key);
        let left = self.merge(a, node);
        self.root = self.merge(left, b);
    }

    /// Removes `key`; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        if key == 0 {
            // split(key-1) below would underflow; handle the smallest key
            // by splitting at 0 and peeling the left part.
            let (le, gt) = self.split(self.root, 0);
            let found = le != NIL;
            debug_assert!(self.count(le) <= 1);
            if found {
                self.free.push(le);
            }
            self.root = gt;
            return found;
        }
        let (lt, ge) = self.split(self.root, key - 1);
        let (eq, gt) = self.split(ge, key);
        let found = eq != NIL;
        debug_assert!(self.count(eq) <= 1, "keys must be unique");
        if found {
            self.free.push(eq);
        }
        let merged = self.merge(lt, gt);
        self.root = merged;
        found
    }

    /// True if `key` is stored.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        let mut i = self.root;
        while i != NIL {
            let n = &self.nodes[i as usize];
            match key.cmp(&n.key) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => i = n.left,
                std::cmp::Ordering::Greater => i = n.right,
            }
        }
        false
    }

    /// Number of stored keys strictly greater than `key` — an LRU stack
    /// distance query when keys are last-access timestamps.
    #[must_use]
    pub fn count_greater(&self, key: u64) -> u64 {
        let mut i = self.root;
        let mut acc = 0u64;
        while i != NIL {
            let n = &self.nodes[i as usize];
            if n.key > key {
                acc += 1 + u64::from(self.count(n.right));
                i = n.left;
            } else {
                i = n.right;
            }
        }
        acc
    }
}

impl krr_core::footprint::Footprint for OsTreap {
    /// The node slab (at capacity) plus the free list — slab slots stay
    /// allocated after removals, which is exactly what makes the tree's
    /// footprint O(M) even when shrinking.
    fn footprint(&self) -> krr_core::footprint::FootprintReport {
        let mut r = krr_core::footprint::FootprintReport::new();
        r.add(
            "tree_nodes",
            self.nodes.capacity() * std::mem::size_of::<Node>(),
        )
        .add(
            "tree_free",
            self.free.capacity() * std::mem::size_of::<u32>(),
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krr_core::rng::Xoshiro256;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_remove() {
        let mut t = OsTreap::new();
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k);
        }
        assert_eq!(t.len(), 5);
        assert!(t.contains(3));
        assert!(!t.contains(4));
        assert!(t.remove(3));
        assert!(!t.remove(3));
        assert!(!t.contains(3));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn count_greater_matches_btreeset() {
        let mut t = OsTreap::new();
        let mut model = BTreeSet::new();
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..20_000 {
            let op = rng.below(3);
            let key = rng.below(5_000);
            match op {
                0 => {
                    if model.insert(key) {
                        t.insert(key);
                    }
                }
                1 => {
                    assert_eq!(t.remove(key), model.remove(&key));
                }
                _ => {
                    let expect = model.range(key + 1..).count() as u64;
                    assert_eq!(t.count_greater(key), expect, "key {key}");
                }
            }
            assert_eq!(t.len(), model.len());
        }
    }

    #[test]
    fn remove_key_zero() {
        let mut t = OsTreap::new();
        t.insert(0);
        t.insert(1);
        assert!(t.remove(0));
        assert!(!t.contains(0));
        assert!(t.contains(1));
        assert!(!t.remove(0));
    }

    #[test]
    fn slab_reuse() {
        let mut t = OsTreap::new();
        for round in 0..10u64 {
            for k in 0..100u64 {
                t.insert(round * 1000 + k);
            }
            for k in 0..100u64 {
                assert!(t.remove(round * 1000 + k));
            }
        }
        assert!(t.nodes.len() <= 101, "slab grew to {}", t.nodes.len());
    }

    #[test]
    fn depth_is_logarithmic() {
        // Insert sorted keys — the worst case for an unbalanced BST — and
        // check count_greater still answers fast (implicitly: no stack
        // overflow and sane shape via a depth probe).
        let mut t = OsTreap::new();
        for k in 0..100_000u64 {
            t.insert(k);
        }
        assert_eq!(t.count_greater(49_999), 50_000);
        assert_eq!(t.count_greater(0), 99_999);
        assert_eq!(t.count_greater(200_000), 0);
    }
}
