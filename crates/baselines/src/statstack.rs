//! StatStack (Eklöv & Hagersten, ISPASS '10): expected LRU stack distances
//! from the reuse-time distribution (§6.1).
//!
//! For a reference with reuse time `r` (references between consecutive
//! accesses to the same object), StatStack estimates its stack distance as
//! the expected number of the `r` intervening references whose *forward*
//! reuse time outlives the window:
//!
//! ```text
//! E[sd | r] = Σ_{j=1}^{r} P(forward reuse time > j)
//! ```
//!
//! Under stationarity the forward reuse-time distribution equals the
//! observed one, so the whole model reduces to a prefix sum over the
//! reuse-time CCDF — the same ingredient AET integrates, reached from a
//! different argument. Both are implemented here so the related-work claims
//! can be checked against each other (they agree; see the tests).

use krr_core::hashing::KeyMap;
use krr_core::histogram::SdHistogram;
use krr_core::mrc::Mrc;

/// One-pass StatStack profiler.
#[derive(Debug, Clone)]
pub struct StatStack {
    last: KeyMap<u64>,
    rtd: SdHistogram,
    clock: u64,
}

impl Default for StatStack {
    fn default() -> Self {
        Self::new()
    }
}

impl StatStack {
    /// Creates a profiler with exact (width-1) reuse-time bins.
    #[must_use]
    pub fn new() -> Self {
        Self::with_bin_width(1)
    }

    /// Creates a profiler with the given reuse-time bin width.
    #[must_use]
    pub fn with_bin_width(w: u64) -> Self {
        Self {
            last: KeyMap::default(),
            rtd: SdHistogram::new(w),
            clock: 0,
        }
    }

    /// Offers one reference.
    pub fn access_key(&mut self, key: u64) {
        self.clock += 1;
        match self.last.insert(key, self.clock) {
            Some(prev) => self.rtd.record(self.clock - prev),
            None => self.rtd.record_cold(),
        }
    }

    /// Distinct objects seen.
    #[must_use]
    pub fn distinct(&self) -> u64 {
        self.last.len() as u64
    }

    /// Constructs the StatStack-approximated LRU MRC.
    ///
    /// One sweep computes, per reuse-time bin `r`, both the expected stack
    /// distance `E[sd | r]` (prefix sum of the CCDF) and the reference mass
    /// at that bin, then reads the MRC off the resulting stack-distance
    /// distribution.
    #[must_use]
    pub fn mrc(&self) -> Mrc {
        let total = self.rtd.total();
        if total == 0 {
            return Mrc::from_points(vec![(0.0, 1.0)]);
        }
        let w = self.rtd.bin_width() as f64;
        // (expected stack distance, mass) per occupied reuse-time bin,
        // in increasing reuse-time order. E[sd | r] is monotone in r, so
        // the output points are naturally ordered.
        let mut points = vec![(0.0, 1.0)];
        let mut seen = 0u64;
        let mut esd = 0.0f64;
        let mut hits_below = 0u64;
        for (_, count) in self.rtd.iter() {
            // CCDF just before this bin (fraction of references whose reuse
            // time is at least this bin's range; colds count as infinite).
            let p_before = (total - seen) as f64 / total as f64;
            seen += count;
            let p_after = (total - seen) as f64 / total as f64;
            // All count references in this bin land at stack distance
            // ~esd + half the bin's increment.
            let increment = w * 0.5 * (p_before + p_after);
            esd += increment;
            hits_below += count;
            let miss = (total - hits_below) as f64 / total as f64;
            // Emit every bin (empty ones too): flat stretches keep the
            // piecewise-linear evaluation from turning a cliff into a ramp.
            points.push((esd.max(1.0), miss));
        }
        let mut mrc = Mrc::from_points(points);
        mrc.make_monotone();
        mrc
    }
}

impl krr_core::footprint::Footprint for StatStack {
    fn footprint(&self) -> krr_core::footprint::FootprintReport {
        let mut r = krr_core::footprint::FootprintReport::new();
        r.add(
            "statstack_index",
            krr_core::footprint::map_bytes(self.last.capacity(), std::mem::size_of::<(u64, u64)>()),
        );
        r.merge(&self.rtd.footprint());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aet::Aet;
    use crate::olken::OlkenLru;
    use krr_core::rng::Xoshiro256;

    fn skewed(keys: u64, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u = rng.unit();
                (u * u * keys as f64) as u64
            })
            .collect()
    }

    #[test]
    fn loop_trace_puts_cliff_at_loop_size() {
        let m = 1_000u64;
        let mut s = StatStack::new();
        for i in 0..50_000u64 {
            s.access_key(i % m);
        }
        let mrc = s.mrc();
        assert!(mrc.eval(m as f64 * 0.8) > 0.9);
        assert!(mrc.eval(m as f64 * 1.2) < 0.05);
    }

    #[test]
    fn tracks_olken_on_skewed_workload() {
        let keys = 5_000u64;
        let trace = skewed(keys, 200_000, 1);
        let mut s = StatStack::new();
        let mut o = OlkenLru::new();
        for &k in &trace {
            s.access_key(k);
            o.access_key(k);
        }
        let sizes = krr_core::even_sizes(keys as f64, 20);
        let mae = s.mrc().mae(&o.mrc(), &sizes);
        assert!(mae < 0.03, "StatStack MAE {mae}");
    }

    #[test]
    fn agrees_with_aet() {
        // Two reuse-time models, two derivations, one curve.
        let keys = 5_000u64;
        let trace = skewed(keys, 150_000, 2);
        let mut s = StatStack::new();
        let mut a = Aet::new();
        for &k in &trace {
            s.access_key(k);
            a.access_key(k);
        }
        let sizes = krr_core::even_sizes(keys as f64, 20);
        let mae = s.mrc().mae(&a.mrc(), &sizes);
        assert!(mae < 0.01, "StatStack vs AET MAE {mae}");
    }

    #[test]
    fn empty_profiler() {
        assert_eq!(StatStack::new().mrc().eval(10.0), 1.0);
    }
}
