//! AET: the kinetic reuse-time model for exact-LRU MRCs
//! (Hu et al., ATC '16 / ToS '18), implemented as the related-work
//! extension described in §6.1.
//!
//! AET collects only the *reuse time* distribution (references between two
//! accesses to the same object). Let `P(t)` be the probability that a
//! reference's reuse time exceeds `t` (cold misses count as infinite). The
//! average eviction time `T(c)` of an LRU cache of size `c` satisfies
//! `∫₀^{T} P(t) dt = c`, and the miss ratio is `P(T(c))`. Construction is a
//! single prefix-sum sweep over the reuse-time histogram.

use krr_core::hashing::KeyMap;
use krr_core::histogram::SdHistogram;
use krr_core::mrc::Mrc;

/// One-pass AET profiler.
#[derive(Debug, Clone)]
pub struct Aet {
    last: KeyMap<u64>,
    rtd: SdHistogram,
    clock: u64,
}

impl Default for Aet {
    fn default() -> Self {
        Self::new()
    }
}

impl Aet {
    /// Creates an AET profiler with exact (width-1) reuse-time bins.
    #[must_use]
    pub fn new() -> Self {
        Self::with_bin_width(1)
    }

    /// Creates an AET profiler with the given reuse-time bin width (larger
    /// widths bound memory for very long traces).
    #[must_use]
    pub fn with_bin_width(w: u64) -> Self {
        Self {
            last: KeyMap::default(),
            rtd: SdHistogram::new(w),
            clock: 0,
        }
    }

    /// Offers one reference.
    pub fn access_key(&mut self, key: u64) {
        self.clock += 1;
        match self.last.insert(key, self.clock) {
            Some(prev) => self.rtd.record(self.clock - prev),
            None => self.rtd.record_cold(),
        }
    }

    /// Distinct objects seen.
    #[must_use]
    pub fn distinct(&self) -> u64 {
        self.last.len() as u64
    }

    /// Constructs the AET-approximated LRU MRC.
    ///
    /// Sweeps eviction time `T` over the reuse-time support, accumulating
    /// `c(T) = Σ P(t)` and emitting `(c(T), P(T))`; stops once `c` covers
    /// the working set.
    #[must_use]
    pub fn mrc(&self) -> Mrc {
        let total = self.rtd.total();
        if total == 0 {
            return Mrc::from_points(vec![(0.0, 1.0)]);
        }
        let distinct = self.distinct() as f64;
        let w = self.rtd.bin_width() as f64;
        let mut points = vec![(0.0, 1.0)];
        let mut seen = 0u64;
        let mut c = 0.0f64;
        for (_, count) in self.rtd.iter() {
            // P(t) just *before* this bin's upper boundary.
            let p_before = (total - seen) as f64 / total as f64;
            seen += count;
            let p_after = (total - seen) as f64 / total as f64;
            // Trapezoidal step of the integral over one bin width.
            c += w * 0.5 * (p_before + p_after);
            points.push((c.min(distinct), p_after));
            if c >= distinct {
                break;
            }
        }
        let mut mrc = Mrc::from_points(points);
        mrc.make_monotone();
        mrc
    }
}

impl krr_core::footprint::Footprint for Aet {
    fn footprint(&self) -> krr_core::footprint::FootprintReport {
        let mut r = krr_core::footprint::FootprintReport::new();
        r.add(
            "aet_index",
            krr_core::footprint::map_bytes(self.last.capacity(), std::mem::size_of::<(u64, u64)>()),
        );
        r.merge(&self.rtd.footprint());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::olken::OlkenLru;
    use krr_core::rng::Xoshiro256;

    #[test]
    fn loop_trace_yields_cliff_at_loop_size() {
        let m = 100u64;
        let mut a = Aet::new();
        for i in 0..20_000u64 {
            a.access_key(i % m);
        }
        let mrc = a.mrc();
        // All reuse times are exactly m, so P(t)=~1 for t<m and ~0 after;
        // the AET integral puts the cliff at c = m.
        assert!(mrc.eval(80.0) > 0.9, "below cliff: {}", mrc.eval(80.0));
        assert!(mrc.eval(101.0) < 0.02, "above cliff: {}", mrc.eval(101.0));
    }

    #[test]
    fn tracks_olken_on_random_workload() {
        let keys = 2_000u64;
        let mut a = Aet::new();
        let mut o = OlkenLru::new();
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..200_000 {
            let u = rng.unit();
            let k = (u * u * keys as f64) as u64;
            a.access_key(k);
            o.access_key(k);
        }
        let sizes = krr_core::even_sizes(keys as f64, 20);
        let mae = a.mrc().mae(&o.mrc(), &sizes);
        assert!(mae < 0.03, "AET MAE {mae}");
    }

    #[test]
    fn binned_variant_stays_close() {
        let keys = 2_000u64;
        let mut exact = Aet::new();
        let mut binned = Aet::with_bin_width(16);
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..100_000 {
            let u = rng.unit();
            let k = (u * u * keys as f64) as u64;
            exact.access_key(k);
            binned.access_key(k);
        }
        let sizes = krr_core::even_sizes(keys as f64, 20);
        let mae = exact.mrc().mae(&binned.mrc(), &sizes);
        assert!(mae < 0.02, "binned AET MAE {mae}");
    }

    #[test]
    fn empty_profiler_yields_unit_mrc() {
        assert_eq!(Aet::new().mrc().eval(100.0), 1.0);
    }
}
