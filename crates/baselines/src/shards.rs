//! SHARDS: spatially sampled exact-LRU MRC approximation
//! (Waldspurger et al., FAST '15) — the paper's primary LRU baseline
//! (§5.1, Table 5.4).
//!
//! * [`Shards`] — fixed-rate SHARDS: an Olken tracker fed only references
//!   whose key passes `hash(L) mod P < T`, with distances expanded by `1/R`.
//!   Optionally applies the SHARDS-adj correction, which compensates for
//!   the difference between expected and actual sampled reference counts.
//! * [`ShardsMax`] — fixed-size SHARDS (`SHARDS_max`): bounds tracked
//!   objects at `s_max` by lowering the threshold adaptively, rescaling the
//!   histogram counts by `T_new/T_old` at each lowering, as in the original
//!   paper.

use crate::ostree::OsTreap;
use krr_core::hashing::{hash_key, KeyMap};
use krr_core::histogram::SdHistogram;
use krr_core::mrc::Mrc;
use krr_core::sampling::{SpatialFilter, DEFAULT_MODULUS};

/// Fixed-rate SHARDS.
#[derive(Debug, Clone)]
pub struct Shards {
    filter: SpatialFilter,
    tree: OsTreap,
    last: KeyMap<u64>,
    hist: SdHistogram,
    clock: u64,
    processed: u64,
    sampled: u64,
    adjust: bool,
}

impl Shards {
    /// Creates a SHARDS profiler with sampling rate `rate`, without the
    /// count adjustment.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        Self::with_adjustment(rate, false)
    }

    /// Creates a SHARDS profiler, optionally with SHARDS-adj.
    #[must_use]
    pub fn with_adjustment(rate: f64, adjust: bool) -> Self {
        Self {
            filter: if rate >= 1.0 {
                SpatialFilter::all()
            } else {
                SpatialFilter::with_rate(rate)
            },
            tree: OsTreap::new(),
            last: KeyMap::default(),
            hist: SdHistogram::new(1),
            clock: 0,
            processed: 0,
            sampled: 0,
            adjust,
        }
    }

    /// Offers one reference.
    pub fn access_key(&mut self, key: u64) {
        self.processed += 1;
        if !self.filter.admits(key) {
            return;
        }
        self.sampled += 1;
        self.clock += 1;
        let now = self.clock;
        match self.last.insert(key, now) {
            Some(prev) => {
                let d = self.tree.count_greater(prev) + 1;
                self.tree.remove(prev);
                self.tree.insert(now);
                self.hist.record(d);
            }
            None => {
                self.tree.insert(now);
                self.hist.record_cold();
            }
        }
    }

    /// References offered / admitted.
    #[must_use]
    pub fn counts(&self) -> (u64, u64) {
        (self.processed, self.sampled)
    }

    /// The approximated exact-LRU MRC (full-trace cache sizes).
    #[must_use]
    pub fn mrc(&self) -> Mrc {
        let scale = self.filter.scale();
        if !self.adjust {
            return Mrc::from_histogram(&self.hist, scale);
        }
        // SHARDS-adj: the sampled reference count should be N·R in
        // expectation; credit the shortfall to — or drain the excess from —
        // the smallest-distance buckets, where hot-key sampling bias
        // concentrates (same correction KrrModel applies; without the
        // negative direction a lucky hot key leaves the whole curve shifted,
        // measured at 0.089 MAE on msr_web).
        let expected = (self.processed as f64 * self.filter.rate()).round() as i64;
        let diff = expected - self.sampled as i64;
        let mut hist = self.hist.clone();
        hist.apply_count_adjustment(diff);
        Mrc::from_histogram(&hist, scale)
    }
}

/// Fixed-size SHARDS (`SHARDS_max`): adapts the sampling threshold to track
/// at most `s_max` distinct objects.
#[derive(Debug)]
pub struct ShardsMax {
    modulus: u64,
    threshold: u64,
    s_max: usize,
    tree: OsTreap,
    /// key -> (last time, hash residue)
    last: KeyMap<(u64, u64)>,
    /// time -> key (to evict tracked objects when the threshold drops)
    by_time: std::collections::BTreeMap<u64, u64>,
    /// Weighted histogram over *unsampled* distances.
    bins: Vec<f64>,
    cold: f64,
    total: f64,
    clock: u64,
}

impl ShardsMax {
    /// Creates a fixed-size profiler tracking at most `s_max` objects.
    #[must_use]
    pub fn new(s_max: usize) -> Self {
        assert!(s_max >= 1);
        Self {
            modulus: DEFAULT_MODULUS,
            threshold: DEFAULT_MODULUS,
            s_max,
            tree: OsTreap::new(),
            last: KeyMap::default(),
            by_time: std::collections::BTreeMap::new(),
            bins: Vec::new(),
            cold: 0.0,
            total: 0.0,
            clock: 0,
        }
    }

    fn rate(&self) -> f64 {
        self.threshold as f64 / self.modulus as f64
    }

    fn record(&mut self, unscaled: u64) {
        // Distance expanded to full-trace scale at the *current* rate.
        let d = (unscaled as f64 / self.rate()).ceil() as u64;
        let bin = (d.max(1) - 1) as usize;
        // Cap the bin vector growth with a coarse upper-region bin merge:
        // distances are already approximate at low rates.
        let bin = bin.min(1 << 26);
        if bin >= self.bins.len() {
            self.bins.resize(bin + 1, 0.0);
        }
        self.bins[bin] += 1.0;
        self.total += 1.0;
    }

    /// Offers one reference.
    pub fn access_key(&mut self, key: u64) {
        let residue = hash_key(key) % self.modulus;
        if residue >= self.threshold {
            return;
        }
        self.clock += 1;
        let now = self.clock;
        match self.last.insert(key, (now, residue)) {
            Some((prev, _)) => {
                let d = self.tree.count_greater(prev) + 1;
                self.tree.remove(prev);
                self.tree.insert(now);
                self.by_time.remove(&prev);
                self.by_time.insert(now, key);
                self.record(d);
            }
            None => {
                self.tree.insert(now);
                self.by_time.insert(now, key);
                self.cold += 1.0;
                self.total += 1.0;
                if self.last.len() > self.s_max {
                    self.shrink();
                }
            }
        }
    }

    /// Lowers the threshold to the largest tracked residue, evicting every
    /// object at or above it and rescaling the histogram.
    fn shrink(&mut self) {
        let t_old = self.threshold;
        let max_residue = self
            .last
            .values()
            .map(|&(_, r)| r)
            .max()
            .expect("shrink on empty tracker");
        let t_new = max_residue;
        debug_assert!(t_new < t_old);
        self.threshold = t_new;
        let doomed: Vec<u64> = self
            .last
            .iter()
            .filter(|(_, &(_, r))| r >= t_new)
            .map(|(&k, _)| k)
            .collect();
        for key in doomed {
            let (time, _) = self.last.remove(&key).expect("doomed key present");
            self.tree.remove(time);
            self.by_time.remove(&time);
        }
        // Rescale accumulated counts as in the SHARDS paper: earlier samples
        // were collected at a higher rate, so their weight shrinks.
        let factor = t_new as f64 / t_old as f64;
        for b in &mut self.bins {
            *b *= factor;
        }
        self.cold *= factor;
        self.total = self.bins.iter().sum::<f64>() + self.cold;
    }

    /// Tracked object count and current effective rate.
    #[must_use]
    pub fn tracker_state(&self) -> (usize, f64) {
        (self.last.len(), self.rate())
    }

    /// The approximated exact-LRU MRC.
    #[must_use]
    pub fn mrc(&self) -> Mrc {
        if self.total <= 0.0 {
            return Mrc::from_points(vec![(0.0, 1.0)]);
        }
        let mut points = Vec::with_capacity(self.bins.len() + 1);
        points.push((0.0, 1.0));
        let mut hits = 0.0;
        for (i, &c) in self.bins.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            hits += c;
            points.push(((i + 1) as f64, (self.total - hits) / self.total));
        }
        let mut mrc = Mrc::from_points(points);
        mrc.make_monotone();
        mrc
    }
}

impl krr_core::footprint::Footprint for Shards {
    fn footprint(&self) -> krr_core::footprint::FootprintReport {
        let mut r = self.tree.footprint();
        r.add(
            "shards_index",
            krr_core::footprint::map_bytes(self.last.capacity(), std::mem::size_of::<(u64, u64)>()),
        );
        r.merge(&self.hist.footprint());
        r
    }
}

impl krr_core::footprint::Footprint for ShardsMax {
    fn footprint(&self) -> krr_core::footprint::FootprintReport {
        let mut r = self.tree.footprint();
        r.add(
            "shards_index",
            krr_core::footprint::map_bytes(
                self.last.capacity(),
                std::mem::size_of::<(u64, (u64, u64))>(),
            ),
        )
        .add(
            "shards_time_index",
            krr_core::footprint::btree_bytes(self.by_time.len(), std::mem::size_of::<(u64, u64)>()),
        )
        .add(
            "shards_bins",
            self.bins.capacity() * std::mem::size_of::<f64>(),
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::olken::OlkenLru;
    use krr_core::rng::Xoshiro256;

    fn skewed_trace(keys: u64, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u = rng.unit();
                (u * u * keys as f64) as u64
            })
            .collect()
    }

    #[test]
    fn rate_one_matches_olken_exactly() {
        let trace = skewed_trace(5_000, 50_000, 1);
        let mut s = Shards::new(1.0);
        let mut o = OlkenLru::new();
        for &k in &trace {
            s.access_key(k);
            o.access_key(k);
        }
        assert_eq!(s.mrc().points(), o.mrc().points());
    }

    #[test]
    fn sampled_mrc_tracks_exact_mrc() {
        let keys = 200_000u64;
        let trace = skewed_trace(keys, 400_000, 2);
        let mut s = Shards::new(0.05);
        let mut o = OlkenLru::new();
        for &k in &trace {
            s.access_key(k);
            o.access_key(k);
        }
        let sizes = krr_core::even_sizes(keys as f64, 30);
        let mae = s.mrc().mae(&o.mrc(), &sizes);
        assert!(mae < 0.03, "SHARDS MAE {mae}");
        let (p, n) = s.counts();
        assert!(n < p / 10);
    }

    #[test]
    fn adjustment_moves_toward_the_exact_curve() {
        // Hot keys (don't) sampling in deviates the sampled reference count
        // from N·R and shifts the plain curve vertically; the correction
        // must close (most of) that gap to the exact Olken curve.
        let keys = 100_000u64;
        let trace = skewed_trace(keys, 200_000, 3);
        let mut plain = Shards::new(0.02);
        let mut adj = Shards::with_adjustment(0.02, true);
        let mut exact = OlkenLru::new();
        for &k in &trace {
            plain.access_key(k);
            adj.access_key(k);
            exact.access_key(k);
        }
        let sizes = krr_core::even_sizes(keys as f64, 20);
        let mae_plain = plain.mrc().mae(&exact.mrc(), &sizes);
        let mae_adj = adj.mrc().mae(&exact.mrc(), &sizes);
        assert!(
            mae_adj <= mae_plain + 1e-9,
            "adjusted ({mae_adj}) must not be worse than plain ({mae_plain})"
        );
    }

    #[test]
    fn shards_max_bounds_tracker_size() {
        let trace = skewed_trace(300_000, 300_000, 4);
        let mut sm = ShardsMax::new(2_000);
        for &k in &trace {
            sm.access_key(k);
        }
        let (tracked, rate) = sm.tracker_state();
        assert!(tracked <= 2_000, "tracked {tracked}");
        assert!(rate < 1.0, "threshold never adapted");
    }

    #[test]
    fn shards_max_mrc_tracks_exact() {
        let keys = 100_000u64;
        let trace = skewed_trace(keys, 300_000, 5);
        let mut sm = ShardsMax::new(8_192);
        let mut o = OlkenLru::new();
        for &k in &trace {
            sm.access_key(k);
            o.access_key(k);
        }
        let sizes = krr_core::even_sizes(keys as f64, 20);
        let mae = sm.mrc().mae(&o.mrc(), &sizes);
        assert!(mae < 0.05, "SHARDS_max MAE {mae}");
    }
}
