//! Fleet-scale accuracy watchdog: shadow only the tenants that matter.
//!
//! A [`FleetArena`] hosts thousands of KRR
//! instances, but running an [`AccuracyWatchdog`] (a spatially-sampled
//! shadow Olken profiler) beside *every* tenant would multiply the fleet's
//! memory by the shadow cost. The observation behind [`FleetWatchdog`] is
//! that drift detection follows traffic: a tenant whose model drifts but
//! receives a trickle of references misestimates a trickle of decisions,
//! while the hottest tenants dominate both the aggregate miss ratio and
//! the bytes a wrong partitioning would waste. So the fleet watchdog
//! shadows only the **top-K tenants by reference count**, re-electing that
//! set periodically as traffic shifts, and writes each shadow comparison
//! back into the arena's per-tenant rows
//! ([`FleetArena::record_check`](krr_core::fleet::FleetArena::record_check))
//! where `/tenants`, `/healthz` and the `krr_tenant_mae_ppm` series pick
//! it up.
//!
//! Tenants that cool off keep their accumulated `drift_events` (the row
//! counter is monotone) but stop paying shadow cost; tenants that heat up
//! start a fresh shadow from empty, which needs `check_every` references
//! before its first verdict — the usual warm-up for any shadow profiler.
//!
//! ```
//! use krr_baselines::fleet_watchdog::{FleetWatchdog, FleetWatchdogConfig};
//! use krr_baselines::watchdog::WatchdogConfig;
//! use krr_core::fleet::{FleetArena, FleetConfig};
//! use krr_core::KrrConfig;
//!
//! let mut arena = FleetArena::new(FleetConfig::new(KrrConfig::new(5.0)));
//! let mut dog = FleetWatchdog::new(FleetWatchdogConfig {
//!     top_k: 2,
//!     elect_every: 1_000,
//!     shadow: WatchdogConfig { rate: 1.0, check_every: 500, ..WatchdogConfig::default() },
//! });
//! for i in 0..4_000u64 {
//!     let (tenant, key) = (i % 3, i % 97);
//!     arena.access(tenant, key, 1);
//!     dog.observe(&mut arena, tenant, key);
//! }
//! assert!(dog.shadowed_tenants().len() <= 2);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use krr_core::fleet::FleetArena;
use krr_core::hashing::hash_key;
use krr_core::metrics::MetricsRegistry;

use crate::watchdog::{AccuracyWatchdog, WatchdogConfig, WatchdogReport};

/// Tuning for a [`FleetWatchdog`].
#[derive(Debug, Clone)]
pub struct FleetWatchdogConfig {
    /// How many of the hottest tenants carry a shadow profiler
    /// (default 8). `0` disables shadowing entirely.
    pub top_k: usize,
    /// Fleet-wide references between top-K re-elections (default 100 000).
    pub elect_every: u64,
    /// Per-tenant shadow tuning; each elected tenant gets its own
    /// [`AccuracyWatchdog`] built from this.
    pub shadow: WatchdogConfig,
}

impl Default for FleetWatchdogConfig {
    fn default() -> Self {
        Self {
            top_k: 8,
            elect_every: 100_000,
            shadow: WatchdogConfig::default(),
        }
    }
}

/// Top-K shadow watchdogs over a [`FleetArena`]. See the module docs.
#[derive(Debug)]
pub struct FleetWatchdog {
    config: FleetWatchdogConfig,
    dogs: HashMap<u64, AccuracyWatchdog>,
    observed: u64,
    next_election: u64,
    elections: u64,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl FleetWatchdog {
    /// Creates a fleet watchdog; per-tenant shadows are created lazily at
    /// the first election.
    #[must_use]
    pub fn new(config: FleetWatchdogConfig) -> Self {
        let next_election = config.elect_every.max(1);
        Self {
            config,
            dogs: HashMap::new(),
            observed: 0,
            next_election,
            elections: 0,
            metrics: None,
        }
    }

    /// Publishes per-check results into `metrics` (`watchdog_*` fields
    /// aggregate across all shadowed tenants).
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        self.metrics = Some(metrics);
    }

    /// Tenant ids currently carrying a shadow profiler, in no particular
    /// order.
    #[must_use]
    pub fn shadowed_tenants(&self) -> Vec<u64> {
        self.dogs.keys().copied().collect()
    }

    /// Fleet-wide references observed so far (shadowed or not).
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Top-K elections run so far.
    #[must_use]
    pub fn elections(&self) -> u64 {
        self.elections
    }

    /// Offers one reference. Hashes `key` once; prefer
    /// [`FleetWatchdog::observe_hashed`] when the caller already routed.
    pub fn observe(&mut self, arena: &mut FleetArena, tenant: u64, key: u64) -> bool {
        self.observe_hashed(arena, tenant, key, hash_key(key))
    }

    /// [`FleetWatchdog::observe`] with a precomputed
    /// [`hash_key`] value (route-once callers). Returns whether the
    /// tenant's shadow admitted the reference. Runs due per-tenant checks
    /// and the periodic top-K election inline.
    pub fn observe_hashed(
        &mut self,
        arena: &mut FleetArena,
        tenant: u64,
        key: u64,
        key_hash: u64,
    ) -> bool {
        self.observed += 1;
        let mut admitted = false;
        if let Some(dog) = self.dogs.get_mut(&tenant) {
            admitted = dog.observe_hashed(key, key_hash);
            if dog.check_due() {
                if let Some(mrc) = arena.tenant_mrc(tenant) {
                    let report = dog.check(&mrc);
                    Self::publish(arena, self.metrics.as_ref(), tenant, report);
                }
            }
        }
        if self.observed >= self.next_election {
            self.elect(arena);
        }
        admitted
    }

    /// Forces a shadow comparison for every shadowed tenant now, regardless
    /// of each shadow's schedule. Returns `(tenant, report)` pairs.
    pub fn check_all(&mut self, arena: &mut FleetArena) -> Vec<(u64, WatchdogReport)> {
        let mut out = Vec::with_capacity(self.dogs.len());
        let mut tenants: Vec<u64> = self.dogs.keys().copied().collect();
        tenants.sort_unstable();
        for tenant in tenants {
            let Some(mrc) = arena.tenant_mrc(tenant) else {
                continue;
            };
            let dog = self.dogs.get_mut(&tenant).expect("tenant key held");
            let report = dog.check(&mrc);
            Self::publish(arena, self.metrics.as_ref(), tenant, report);
            out.push((tenant, report));
        }
        out
    }

    /// Re-elects the shadowed set to the arena's current top-K tenants by
    /// traffic: newly-hot tenants get fresh shadows, cooled tenants drop
    /// theirs (keeping their monotone drift counters in the arena rows).
    /// Runs automatically every `elect_every` observed references; callers
    /// that batch (e.g. after [`FleetArena::process_parallel`]) can invoke
    /// it directly.
    pub fn elect(&mut self, arena: &mut FleetArena) {
        self.elections += 1;
        self.next_election =
            (self.observed / self.config.elect_every.max(1) + 1) * self.config.elect_every.max(1);
        let hot: Vec<u64> = arena
            .hottest(self.config.top_k)
            .into_iter()
            .map(|row| row.id)
            .collect();
        let dropped: Vec<u64> = self
            .dogs
            .keys()
            .copied()
            .filter(|id| !hot.contains(id))
            .collect();
        for id in dropped {
            self.dogs.remove(&id);
            arena.set_shadowed(id, false);
        }
        for id in hot {
            if !self.dogs.contains_key(&id) {
                let mut dog = AccuracyWatchdog::new(self.config.shadow.clone());
                if let Some(m) = &self.metrics {
                    dog.set_metrics(Arc::clone(m));
                }
                self.dogs.insert(id, dog);
            }
            arena.set_shadowed(id, true);
        }
    }

    fn publish(
        arena: &mut FleetArena,
        metrics: Option<&Arc<MetricsRegistry>>,
        tenant: u64,
        report: WatchdogReport,
    ) {
        arena.record_check(tenant, (report.mae * 1e6).round() as u64, report.drifted);
        // Per-tenant ppm lands in the arena row; the shared watchdog_*
        // counters were already bumped by the inner AccuracyWatchdog when
        // metrics are attached, so nothing further to do here.
        let _ = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krr_core::fleet::{FleetConfig, FleetView};
    use krr_core::KrrConfig;

    fn arena() -> FleetArena {
        FleetArena::new(FleetConfig::new(KrrConfig::new(5.0)).budget(256.0))
    }

    /// Tenant 0 gets 4x the traffic of tenants 1..4.
    fn drive(arena: &mut FleetArena, dog: &mut FleetWatchdog, n: u64) {
        for i in 0..n {
            let tenant = if i % 2 == 0 { 0 } else { 1 + (i / 2) % 3 };
            let key = i % 101;
            arena.access(tenant, key, 1);
            dog.observe(arena, tenant, key);
        }
    }

    #[test]
    fn elects_hottest_tenants_and_marks_rows() {
        let mut arena = arena();
        let mut dog = FleetWatchdog::new(FleetWatchdogConfig {
            top_k: 2,
            elect_every: 2_000,
            shadow: WatchdogConfig {
                rate: 1.0,
                check_every: 1_000,
                ..WatchdogConfig::default()
            },
        });
        drive(&mut arena, &mut dog, 10_000);
        assert!(dog.elections() >= 1);
        let shadowed = dog.shadowed_tenants();
        assert!(shadowed.len() <= 2);
        assert!(shadowed.contains(&0), "hottest tenant must be shadowed");
        let rows = arena.summary();
        let row0 = rows.iter().find(|r| r.id == 0).unwrap();
        assert!(row0.shadowed);
        let unshadowed = rows.iter().filter(|r| !r.shadowed).count();
        assert!(unshadowed >= 2, "cool tenants must not pay shadow cost");
    }

    #[test]
    fn checks_flow_back_into_arena_rows() {
        let mut arena = arena();
        let mut dog = FleetWatchdog::new(FleetWatchdogConfig {
            top_k: 1,
            elect_every: 500,
            shadow: WatchdogConfig {
                rate: 1.0,
                check_every: 500,
                ..WatchdogConfig::default()
            },
        });
        drive(&mut arena, &mut dog, 8_000);
        let reports = dog.check_all(&mut arena);
        assert!(!reports.is_empty());
        let rows = arena.summary();
        let shadowed: Vec<_> = rows.iter().filter(|r| r.shadowed).collect();
        assert_eq!(shadowed.len(), 1);
        // A stationary workload with K=5 tracks the shadow reasonably; the
        // row must carry the latest MAE from the check we just forced.
        let (tenant, report) = reports[0];
        let row = rows.iter().find(|r| r.id == tenant).unwrap();
        assert_eq!(row.mae_ppm, (report.mae * 1e6).round() as u64);
    }

    #[test]
    fn cooled_tenant_keeps_drift_counter_but_loses_shadow() {
        let mut arena = arena();
        let mut dog = FleetWatchdog::new(FleetWatchdogConfig {
            top_k: 1,
            elect_every: 1_000,
            shadow: WatchdogConfig {
                rate: 1.0,
                check_every: 200,
                mae_threshold: 0.0, // every check is a "drift event"
                ..WatchdogConfig::default()
            },
        });
        // Phase 1: tenant 7 is the only (hence hottest) tenant.
        for i in 0..3_000u64 {
            arena.access(7, i % 64, 1);
            dog.observe(&mut arena, 7, i % 64);
        }
        let drift_before = arena.tenant_drift_events(7).unwrap();
        assert!(drift_before >= 1, "threshold 0 must record drift");
        // Phase 2: tenant 9 floods; 7 goes quiet and loses the election.
        for i in 0..20_000u64 {
            arena.access(9, i % 64, 1);
            dog.observe(&mut arena, 9, i % 64);
        }
        assert_eq!(dog.shadowed_tenants(), vec![9]);
        let rows = arena.summary();
        let row7 = rows.iter().find(|r| r.id == 7).unwrap();
        assert!(!row7.shadowed);
        assert_eq!(row7.drift_events, drift_before, "counter stays monotone");
    }

    #[test]
    fn top_k_zero_disables_shadowing() {
        let mut arena = arena();
        let mut dog = FleetWatchdog::new(FleetWatchdogConfig {
            top_k: 0,
            elect_every: 100,
            ..FleetWatchdogConfig::default()
        });
        drive(&mut arena, &mut dog, 2_000);
        assert!(dog.shadowed_tenants().is_empty());
        assert!(arena.summary().iter().all(|r| !r.shadowed));
    }

    #[test]
    fn shadowed_rows_survive_into_fleet_view() {
        let mut arena = arena();
        let mut dog = FleetWatchdog::new(FleetWatchdogConfig {
            top_k: 2,
            elect_every: 1_000,
            shadow: WatchdogConfig {
                rate: 1.0,
                check_every: 500,
                ..WatchdogConfig::default()
            },
        });
        drive(&mut arena, &mut dog, 6_000);
        let view: FleetView = arena.view();
        assert!(view.rows.iter().any(|r| r.shadowed));
    }
}
