//! CounterStacks (Wires et al., OSDI '14): LRU MRC construction from a
//! stack of cardinality counters (§6.1).
//!
//! One counter is started every `interval` requests; every counter absorbs
//! every request. For a request at time `t`, its LRU stack distance is the
//! number of uniques since its previous access — so if it is *new* to the
//! counter started at `s_{j+1}` but *old* to the one started at `s_j`, its
//! previous access lies in `[s_j, s_{j+1})` and its distance is ≈ `c_j(t)`.
//! Per processing chunk, `Δc_{j+1} − Δc_j` requests fall into that bucket.
//! Requests new to even the oldest counter are cold misses.
//!
//! Space is bounded by **pruning**: a younger counter whose count converges
//! within `(1 − δ)` of its older neighbour will track it forever and is
//! dropped. Counters are HyperLogLogs, so both distances and counts are
//! approximate — the trade-off the original paper makes for O(logM) space.

use crate::hll::HyperLogLog;
use krr_core::mrc::Mrc;

struct Counter {
    hll: HyperLogLog,
    /// Estimate after the previous chunk.
    prev_estimate: f64,
}

/// One-pass CounterStacks profiler.
pub struct CounterStacks {
    interval: usize,
    precision: u8,
    prune_delta: f64,
    counters: Vec<Counter>,
    buffer: Vec<u64>,
    /// Weighted distance histogram (distance -> mass); f64 because chunk
    /// attributions are normalized fractions.
    bins: Vec<f64>,
    cold: f64,
    total: f64,
    processed: u64,
}

impl CounterStacks {
    /// Creates a profiler that starts a new counter every `interval`
    /// requests (the "downsampling" knob; smaller = finer distances but
    /// more counters) with the given HLL precision and pruning δ.
    #[must_use]
    pub fn new(interval: usize, precision: u8, prune_delta: f64) -> Self {
        assert!(interval >= 1);
        assert!((0.0..1.0).contains(&prune_delta));
        Self {
            interval,
            precision,
            prune_delta,
            counters: Vec::new(),
            buffer: Vec::with_capacity(interval),
            bins: Vec::new(),
            cold: 0.0,
            total: 0.0,
            processed: 0,
        }
    }

    /// Profiler with the original paper's flavour of defaults, scaled for
    /// in-memory use: 1K-request chunks, 2^12 registers, δ = 0.02.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(1_024, 12, 0.02)
    }

    /// Offers one reference.
    pub fn access_key(&mut self, key: u64) {
        self.processed += 1;
        self.buffer.push(key);
        if self.buffer.len() >= self.interval {
            self.flush_chunk();
        }
    }

    /// Number of live counters (space check).
    #[must_use]
    pub fn num_counters(&self) -> usize {
        self.counters.len()
    }

    /// References processed.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    fn flush_chunk(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        // A fresh counter covers this chunk onward.
        self.counters.push(Counter {
            hll: HyperLogLog::new(self.precision),
            prev_estimate: 0.0,
        });
        for c in &mut self.counters {
            for &key in &self.buffer {
                c.hll.add(key);
            }
        }
        let chunk_len = self.buffer.len() as f64;
        self.buffer.clear();

        // Distance attribution: counters[0] is the oldest. Δ_j = uniques
        // this chunk that were new to counter j; a request new to counter
        // j+1 but old to counter j has distance ≈ c_j (its estimate now).
        //
        // HLL deltas are noisy (error scales with the counter's absolute
        // estimate, not the chunk size), so raw attributions can sum to far
        // more than the chunk; normalize them to the exact chunk length to
        // keep the histogram's total mass — and hence the cold fraction —
        // correct.
        let estimates: Vec<f64> = self.counters.iter().map(|c| c.hll.estimate()).collect();
        let deltas: Vec<f64> = self
            .counters
            .iter()
            .zip(&estimates)
            .map(|(c, &e)| (e - c.prev_estimate).max(0.0))
            .collect();
        let newest = self.counters.len() - 1;
        // (distance, raw mass) attributions for this chunk. Pair masses are
        // kept *signed*: clamping at zero would turn zero-mean HLL noise
        // into phantom positive mass that steals weight from the real
        // buckets (measured: cold fraction 0.15 instead of 0.20 on a loop
        // trace). Signed noise cancels across chunks instead.
        let mut attributions: Vec<(u64, f64)> = Vec::with_capacity(self.counters.len() + 1);
        let cold_raw = deltas[0];
        for j in 0..newest {
            let mass = deltas[j + 1] - deltas[j];
            let distance = estimates[j].round().max(1.0) as u64;
            attributions.push((distance, mass));
        }
        // Intra-chunk re-references: old even to the newest counter
        // (started this chunk); their distance is below the chunk's unique
        // count.
        let intra = (chunk_len - deltas[newest]).max(0.0);
        attributions.push(((estimates[newest] / 2.0).round().max(1.0) as u64, intra));
        let raw_total: f64 = cold_raw + attributions.iter().map(|&(_, m)| m).sum::<f64>();
        let norm = if raw_total > 0.0 {
            chunk_len / raw_total
        } else {
            0.0
        };
        debug_assert!(norm.is_finite());
        self.cold += cold_raw * norm;
        for (distance, mass) in attributions {
            let bin = (distance - 1) as usize;
            if bin >= self.bins.len() {
                self.bins.resize(bin + 1, 0.0);
            }
            self.bins[bin] += mass * norm;
        }
        self.total += chunk_len;
        for (c, &e) in self.counters.iter_mut().zip(&estimates) {
            c.prev_estimate = e;
        }

        // Prune younger counters that converged with their older neighbour.
        let delta = self.prune_delta;
        let mut j = 1;
        while j < self.counters.len() {
            let older = self.counters[j - 1].prev_estimate;
            let younger = self.counters[j].prev_estimate;
            if younger >= (1.0 - delta) * older && older > 0.0 {
                self.counters.remove(j);
            } else {
                j += 1;
            }
        }
    }

    /// The approximated LRU MRC over everything processed so far
    /// (flushes any buffered partial chunk).
    pub fn mrc(&mut self) -> Mrc {
        self.flush_chunk();
        if self.total <= 0.0 {
            return Mrc::from_points(vec![(0.0, 1.0)]);
        }
        let mut points = Vec::with_capacity(64);
        points.push((0.0, 1.0));
        let mut hits = 0.0;
        for (bin, &mass) in self.bins.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            hits += mass;
            let miss = ((self.total - hits) / self.total).clamp(0.0, 1.0);
            points.push(((bin + 1) as f64, miss));
        }
        let mut mrc = Mrc::from_points(points);
        mrc.make_monotone();
        mrc
    }
}

impl krr_core::footprint::Footprint for CounterStacks {
    /// Counter slab + every HLL's register array + chunk buffer + weighted
    /// bins — O(logM)-ish after pruning, the structure's selling point.
    fn footprint(&self) -> krr_core::footprint::FootprintReport {
        let mut r = krr_core::footprint::FootprintReport::new();
        r.add(
            "cs_counters",
            self.counters.capacity() * std::mem::size_of::<Counter>(),
        )
        .add(
            "cs_buffer",
            self.buffer.capacity() * std::mem::size_of::<u64>(),
        )
        .add("cs_bins", self.bins.capacity() * std::mem::size_of::<f64>());
        for c in &self.counters {
            r.merge(&c.hll.footprint());
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::olken::OlkenLru;
    use krr_core::rng::Xoshiro256;

    fn skewed(keys: u64, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u = rng.unit();
                (u * u * keys as f64) as u64
            })
            .collect()
    }

    #[test]
    fn tracks_olken_on_skewed_workload() {
        let keys = 20_000u64;
        let trace = skewed(keys, 200_000, 1);
        let mut cs = CounterStacks::with_defaults();
        let mut o = OlkenLru::new();
        for &k in &trace {
            cs.access_key(k);
            o.access_key(k);
        }
        let sizes = krr_core::even_sizes(keys as f64, 20);
        let mae = cs.mrc().mae(&o.mrc(), &sizes);
        assert!(mae < 0.06, "CounterStacks MAE {mae}");
    }

    #[test]
    fn loop_cliff_is_located_correctly() {
        let m = 5_000u64;
        let mut cs = CounterStacks::new(512, 12, 0.02);
        for i in 0..100_000u64 {
            cs.access_key(i % m);
        }
        let mrc = cs.mrc();
        // Cliff at the loop size, within HLL error.
        assert!(
            mrc.eval(m as f64 * 0.7) > 0.9,
            "below cliff: {}",
            mrc.eval(m as f64 * 0.7)
        );
        assert!(
            mrc.eval(m as f64 * 1.3) < 0.15,
            "above cliff: {}",
            mrc.eval(m as f64 * 1.3)
        );
    }

    #[test]
    fn pruning_bounds_counter_count() {
        let trace = skewed(50_000, 300_000, 2);
        let mut cs = CounterStacks::new(512, 10, 0.05);
        for &k in &trace {
            cs.access_key(k);
        }
        // Without pruning there would be ~586 counters.
        assert!(
            cs.num_counters() < 120,
            "pruning ineffective: {} counters",
            cs.num_counters()
        );
    }

    #[test]
    fn partial_final_chunk_is_flushed_by_mrc() {
        let mut cs = CounterStacks::new(1_000, 10, 0.02);
        for i in 0..1_500u64 {
            cs.access_key(i % 100);
        }
        let mrc = cs.mrc();
        assert!(
            mrc.eval(200.0) < 0.3,
            "repeats must be visible: {}",
            mrc.eval(200.0)
        );
        assert_eq!(cs.processed(), 1_500);
    }
}
