//! ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST '03).
//!
//! The paper's §6.2 names ARC as the canonical *non-stack* policy: it
//! violates the inclusion property, so no one-pass stack model exists and
//! MRCs must come from (miniature) simulation. This implementation follows
//! the published algorithm: recency list `T1` and frequency list `T2` with
//! ghost lists `B1`/`B2`, and the adaptation parameter `p` nudged on ghost
//! hits.
//!
//! Object-granularity only (ARC's published form is for fixed-size pages).

use crate::{Cache, CacheStats, Capacity};
use krr_core::hashing::KeyMap;
use krr_trace::Request;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum List {
    T1,
    T2,
    B1,
    B2,
}

/// Adaptive Replacement Cache.
#[derive(Debug)]
pub struct ArcCache {
    c: usize,
    p: usize,
    /// MRU at the front.
    t1: VecDeque<u64>,
    t2: VecDeque<u64>,
    b1: VecDeque<u64>,
    b2: VecDeque<u64>,
    whereis: KeyMap<List>,
    stats: CacheStats,
}

impl ArcCache {
    /// Creates an ARC cache holding `capacity` objects.
    #[must_use]
    pub fn new(capacity: Capacity) -> Self {
        let c = capacity.limit() as usize;
        assert!(c > 0, "capacity must be positive");
        Self {
            c,
            p: 0,
            t1: VecDeque::new(),
            t2: VecDeque::new(),
            b1: VecDeque::new(),
            b2: VecDeque::new(),
            whereis: KeyMap::default(),
            stats: CacheStats::default(),
        }
    }

    /// Resident object count (`|T1| + |T2|`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    /// True if nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The adaptation parameter `p` (target size of T1).
    #[must_use]
    pub fn p(&self) -> usize {
        self.p
    }

    fn remove_from(list: &mut VecDeque<u64>, key: u64) {
        if let Some(pos) = list.iter().position(|&k| k == key) {
            list.remove(pos);
        }
    }

    /// REPLACE(x): evict the LRU page of T1 or T2 into its ghost list,
    /// steered by `p`.
    fn replace(&mut self, in_b2: bool) {
        let t1_len = self.t1.len();
        if t1_len > 0 && (t1_len > self.p || (in_b2 && t1_len == self.p)) {
            if let Some(victim) = self.t1.pop_back() {
                self.b1.push_front(victim);
                self.whereis.insert(victim, List::B1);
            }
        } else if let Some(victim) = self.t2.pop_back() {
            self.b2.push_front(victim);
            self.whereis.insert(victim, List::B2);
        } else if let Some(victim) = self.t1.pop_back() {
            self.b1.push_front(victim);
            self.whereis.insert(victim, List::B1);
        }
    }
}

impl Cache for ArcCache {
    fn access(&mut self, req: &Request) -> bool {
        let key = req.key;
        match self.whereis.get(&key).copied() {
            // Case I: hit in T1 or T2 -> move to MRU of T2.
            Some(List::T1) => {
                self.stats.hits += 1;
                Self::remove_from(&mut self.t1, key);
                self.t2.push_front(key);
                self.whereis.insert(key, List::T2);
                true
            }
            Some(List::T2) => {
                self.stats.hits += 1;
                Self::remove_from(&mut self.t2, key);
                self.t2.push_front(key);
                true
            }
            // Case II: ghost hit in B1 -> favour recency (grow p).
            Some(List::B1) => {
                self.stats.misses += 1;
                let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
                self.p = (self.p + delta).min(self.c);
                self.replace(false);
                Self::remove_from(&mut self.b1, key);
                self.t2.push_front(key);
                self.whereis.insert(key, List::T2);
                false
            }
            // Case III: ghost hit in B2 -> favour frequency (shrink p).
            Some(List::B2) => {
                self.stats.misses += 1;
                let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
                self.p = self.p.saturating_sub(delta);
                self.replace(true);
                Self::remove_from(&mut self.b2, key);
                self.t2.push_front(key);
                self.whereis.insert(key, List::T2);
                false
            }
            // Case IV: complete miss.
            None => {
                self.stats.misses += 1;
                let l1 = self.t1.len() + self.b1.len();
                let l2 = self.t2.len() + self.b2.len();
                if l1 == self.c {
                    if self.t1.len() < self.c {
                        if let Some(g) = self.b1.pop_back() {
                            self.whereis.remove(&g);
                        }
                        self.replace(false);
                    } else if let Some(victim) = self.t1.pop_back() {
                        self.whereis.remove(&victim);
                    }
                } else if l1 < self.c && l1 + l2 >= self.c {
                    if l1 + l2 == 2 * self.c {
                        if let Some(g) = self.b2.pop_back() {
                            self.whereis.remove(&g);
                        }
                    }
                    self.replace(false);
                }
                self.t1.push_front(key);
                self.whereis.insert(key, List::T1);
                false
            }
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::ExactLru;
    use krr_core::rng::Xoshiro256;

    fn get(key: u64) -> Request {
        Request::unit(key)
    }

    #[test]
    fn basic_hit_miss() {
        let mut a = ArcCache::new(Capacity::Objects(2));
        assert!(!a.access(&get(1)));
        assert!(a.access(&get(1)));
        assert!(!a.access(&get(2)));
        assert!(!a.access(&get(3)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut a = ArcCache::new(Capacity::Objects(50));
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..50_000 {
            a.access(&get(rng.below(500)));
            assert!(a.len() <= 50, "resident {}", a.len());
            // Ghost lists are bounded too: |L1| <= c, |L1|+|L2| <= 2c.
            assert!(a.t1.len() + a.b1.len() <= 50);
            assert!(a.t1.len() + a.b1.len() + a.t2.len() + a.b2.len() <= 100);
        }
    }

    #[test]
    fn whereis_stays_consistent() {
        let mut a = ArcCache::new(Capacity::Objects(20));
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..20_000 {
            a.access(&get(rng.below(200)));
        }
        assert_eq!(
            a.whereis.len(),
            a.t1.len() + a.t2.len() + a.b1.len() + a.b2.len(),
            "index count mismatch"
        );
        for (&k, &l) in &a.whereis {
            let list = match l {
                List::T1 => &a.t1,
                List::T2 => &a.t2,
                List::B1 => &a.b1,
                List::B2 => &a.b2,
            };
            assert!(list.contains(&k), "{k} not in its recorded list");
        }
    }

    #[test]
    fn scan_resistant_unlike_lru() {
        // Hot set of 80 keys in a 100-object cache, plus a long one-shot
        // scan; ARC's frequency list keeps the hot set alive.
        let cap = Capacity::Objects(100);
        let mut arc = ArcCache::new(cap);
        let mut lru = ExactLru::new(cap);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut arc_hits = 0u64;
        let mut lru_hits = 0u64;
        let mut scan_key = 10_000u64;
        for _ in 0..200_000 {
            let r = if rng.unit() < 0.5 {
                get(rng.below(80))
            } else {
                scan_key += 1;
                get(scan_key)
            };
            if arc.access(&r) {
                arc_hits += 1;
            }
            if lru.access(&r) {
                lru_hits += 1;
            }
        }
        assert!(
            arc_hits as f64 > lru_hits as f64 * 1.2,
            "ARC {arc_hits} should beat LRU {lru_hits} under scanning"
        );
    }

    #[test]
    fn adaptation_parameter_moves() {
        // A working set slightly larger than the cache keeps evicted keys
        // returning while they are still in the ghost lists, which is what
        // drives the p adaptation.
        let mut a = ArcCache::new(Capacity::Objects(20));
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut p_values = std::collections::HashSet::new();
        for _ in 0..30_000u64 {
            a.access(&get(rng.below(35)));
            p_values.insert(a.p());
        }
        assert!(p_values.len() > 1, "p never adapted");
    }
}
