//! The K-LRU cache simulator (§3, §5.1): random sampling-based approximated
//! LRU, the policy KRR models.
//!
//! On eviction the cache samples `K` resident objects uniformly — with
//! replacement by default, matching Redis (§3) — and evicts the least
//! recently used of the sample. Objects live in a slot vector with a hash
//! index, so uniform sampling is a single `below(len)` draw and removal is a
//! `swap_remove`, both O(1).

use std::sync::Arc;

use crate::{Cache, CacheStats, Capacity};
use krr_core::hashing::KeyMap;
use krr_core::metrics::MetricsRegistry;
use krr_core::rng::Xoshiro256;
use krr_trace::Request;

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u64,
    size: u32,
    last_access: u64,
}

/// Random sampling-based LRU cache.
#[derive(Debug, Clone)]
pub struct KLruCache {
    capacity: Capacity,
    k: u32,
    with_replacement: bool,
    map: KeyMap<u32>,
    slots: Vec<Slot>,
    clock: u64,
    used_bytes: u64,
    rng: Xoshiro256,
    stats: CacheStats,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl KLruCache {
    /// Creates a K-LRU cache with sampling size `k`, sampling *with*
    /// replacement (the Redis convention).
    #[must_use]
    pub fn new(capacity: Capacity, k: u32, seed: u64) -> Self {
        Self::with_mode(capacity, k, true, seed)
    }

    /// Creates a K-LRU cache with an explicit sampling mode.
    #[must_use]
    pub fn with_mode(capacity: Capacity, k: u32, with_replacement: bool, seed: u64) -> Self {
        assert!(capacity.limit() > 0, "capacity must be positive");
        assert!(k >= 1, "sampling size must be >= 1");
        Self {
            capacity,
            k,
            with_replacement,
            map: KeyMap::default(),
            slots: Vec::new(),
            clock: 0,
            used_bytes: 0,
            rng: Xoshiro256::seed_from_u64(seed),
            stats: CacheStats::default(),
            metrics: None,
        }
    }

    /// Attaches a metrics registry; eviction counts and sampled-candidate
    /// ages (in accesses, measured on the cache's logical clock) are
    /// recorded into it.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        self.metrics = Some(metrics);
    }

    /// Number of resident objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Bytes currently resident.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Sampling size `K`.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Changes the sampling size in place. K only parameterizes eviction
    /// sampling, so cached contents are untouched — the reconfigurability
    /// §1 credits random sampling caches with.
    pub fn set_k(&mut self, k: u32) {
        assert!(k >= 1, "sampling size must be >= 1");
        self.k = k;
    }

    /// Resident keys ordered by recency, most recent first (test use; O(n log n)).
    #[must_use]
    pub fn recency_order(&self) -> Vec<u64> {
        let mut v: Vec<&Slot> = self.slots.iter().collect();
        v.sort_by_key(|s| std::cmp::Reverse(s.last_access));
        v.into_iter().map(|s| s.key).collect()
    }

    fn used(&self) -> u64 {
        match self.capacity {
            Capacity::Objects(_) => self.slots.len() as u64,
            Capacity::Bytes(_) => self.used_bytes,
        }
    }

    /// Samples K residents and evicts the least recently used among them.
    fn evict_one(&mut self) {
        let n = self.slots.len();
        debug_assert!(n > 0);
        let mut victim = self.rng.below_usize(n);
        self.record_candidate_age(victim);
        if self.with_replacement {
            for _ in 1..self.k {
                let cand = self.rng.below_usize(n);
                self.record_candidate_age(cand);
                if self.slots[cand].last_access < self.slots[victim].last_access {
                    victim = cand;
                }
            }
        } else {
            // Distinct sample of min(K, n) slots; K is small, so rejection
            // sampling over a scratch set is cheap.
            let k = (self.k as usize).min(n);
            let mut picked = Vec::with_capacity(k);
            picked.push(victim);
            while picked.len() < k {
                let cand = self.rng.below_usize(n);
                if !picked.contains(&cand) {
                    picked.push(cand);
                    self.record_candidate_age(cand);
                    if self.slots[cand].last_access < self.slots[victim].last_access {
                        victim = cand;
                    }
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.evictions.inc();
        }
        self.remove_slot(victim);
    }

    fn record_candidate_age(&self, slot: usize) {
        if let Some(m) = &self.metrics {
            m.candidate_age
                .record(self.clock - self.slots[slot].last_access);
        }
    }

    fn remove_slot(&mut self, i: usize) {
        let removed = self.slots.swap_remove(i);
        self.map.remove(&removed.key);
        self.used_bytes -= u64::from(removed.size);
        if i < self.slots.len() {
            // Fix the index of the slot that got moved into position i.
            self.map.insert(self.slots[i].key, i as u32);
        }
    }
}

impl Cache for KLruCache {
    fn access(&mut self, req: &Request) -> bool {
        self.clock += 1;
        let size = req.size.max(1);
        if let Some(&i) = self.map.get(&req.key) {
            self.stats.hits += 1;
            let slot = &mut self.slots[i as usize];
            slot.last_access = self.clock;
            let old = slot.size;
            slot.size = size;
            self.used_bytes = self.used_bytes - u64::from(old) + u64::from(size);
            while self.used() > self.capacity.limit() && self.slots.len() > 1 {
                self.evict_one();
            }
            if self.used() > self.capacity.limit() {
                // The resized object alone no longer fits; drop it (the
                // access itself was still a hit).
                let i = self.map[&req.key] as usize;
                self.remove_slot(i);
            }
            return true;
        }
        self.stats.misses += 1;
        if u64::from(size) > self.capacity.limit() {
            return false;
        }
        let need = match self.capacity {
            Capacity::Objects(_) => 1,
            Capacity::Bytes(_) => u64::from(size),
        };
        while self.used() + need > self.capacity.limit() {
            self.evict_one();
        }
        let i = self.slots.len() as u32;
        self.slots.push(Slot {
            key: req.key,
            size,
            last_access: self.clock,
        });
        self.map.insert(req.key, i);
        self.used_bytes += u64::from(size);
        false
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krr_core::prob::{eviction_prob_with_replacement, eviction_prob_without_replacement};

    fn get(key: u64) -> Request {
        Request::unit(key)
    }

    #[test]
    fn basic_hit_miss_accounting() {
        let mut c = KLruCache::new(Capacity::Objects(2), 5, 1);
        assert!(!c.access(&get(1)));
        assert!(c.access(&get(1)));
        assert!(!c.access(&get(2)));
        assert_eq!(c.len(), 2);
        assert!(!c.access(&get(3)));
        assert_eq!(c.len(), 2);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert!((s.miss_ratio() - 0.75).abs() < 1e-12);
    }

    /// The core statistical property (Proposition 1): rank-d eviction
    /// probability is (d^K - (d-1)^K)/C^K under with-replacement sampling.
    #[test]
    fn eviction_rank_distribution_with_replacement() {
        let c_size = 20u64;
        let k = 4u32;
        let trials = 40_000;
        let mut counts = vec![0u64; c_size as usize + 1];
        let mut cache = KLruCache::new(Capacity::Objects(c_size), k, 9);
        // Fill with keys 0..C touched in order; key i has rank C-i (key 0 is
        // the least recent => rank C).
        for key in 0..c_size {
            cache.access(&get(key));
        }
        for t in 0..trials {
            let before: std::collections::HashSet<u64> =
                cache.recency_order().into_iter().collect();
            let order = cache.recency_order(); // most recent first, rank = idx+1
            let newcomer = c_size + t;
            cache.access(&get(newcomer));
            let after: std::collections::HashSet<u64> = cache.recency_order().into_iter().collect();
            let evicted: Vec<&u64> = before.difference(&after).collect();
            assert_eq!(evicted.len(), 1);
            let rank = order.iter().position(|k| k == evicted[0]).unwrap() as u64 + 1;
            counts[rank as usize] += 1;
        }
        for d in 1..=c_size {
            let expect = eviction_prob_with_replacement(d, c_size, f64::from(k));
            let got = counts[d as usize] as f64 / trials as f64;
            let tol = 3.0 * (expect * (1.0 - expect) / trials as f64).sqrt() + 2e-3;
            assert!(
                (got - expect).abs() < tol,
                "rank {d}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn eviction_rank_distribution_without_replacement() {
        let c_size = 15u64;
        let k = 5u32;
        let trials = 30_000;
        let mut counts = vec![0u64; c_size as usize + 1];
        let mut cache = KLruCache::with_mode(Capacity::Objects(c_size), k, false, 11);
        for key in 0..c_size {
            cache.access(&get(key));
        }
        for t in 0..trials {
            let order = cache.recency_order();
            let before: std::collections::HashSet<u64> = order.iter().copied().collect();
            cache.access(&get(c_size + t));
            let after: std::collections::HashSet<u64> = cache.recency_order().into_iter().collect();
            let evicted: Vec<&u64> = before.difference(&after).collect();
            let rank = order.iter().position(|k| k == evicted[0]).unwrap() as u64 + 1;
            counts[rank as usize] += 1;
        }
        // Ranks below K are never evictable without replacement.
        for d in 1..u64::from(k) {
            assert_eq!(counts[d as usize], 0, "rank {d} must be safe");
        }
        for d in u64::from(k)..=c_size {
            let expect = eviction_prob_without_replacement(d, c_size, u64::from(k));
            let got = counts[d as usize] as f64 / trials as f64;
            let tol = 3.0 * (expect * (1.0 - expect) / trials as f64).sqrt() + 2e-3;
            assert!(
                (got - expect).abs() < tol,
                "rank {d}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn k1_is_random_replacement_and_beats_lru_on_loops() {
        // Loop of 101 keys through a 100-object cache: LRU gets zero hits,
        // random replacement hits with probability ~ C/loop.
        use crate::lru::ExactLru;
        let mut rr = KLruCache::new(Capacity::Objects(100), 1, 3);
        let mut lru = ExactLru::new(Capacity::Objects(100));
        let mut rr_hits = 0u64;
        let mut lru_hits = 0u64;
        for i in 0..200_000u64 {
            let r = get(i % 101);
            if rr.access(&r) {
                rr_hits += 1;
            }
            if lru.access(&r) {
                lru_hits += 1;
            }
        }
        assert_eq!(lru_hits, 0);
        assert!(
            rr_hits > 100_000,
            "RR should hit most of the time, got {rr_hits}"
        );
    }

    #[test]
    fn large_k_approaches_exact_lru_miss_ratio() {
        use crate::lru::ExactLru;
        use krr_core::rng::Xoshiro256;
        let cap = 200u64;
        let mut klru = KLruCache::new(Capacity::Objects(cap), 64, 5);
        let mut lru = ExactLru::new(Capacity::Objects(cap));
        let mut rng = Xoshiro256::seed_from_u64(6);
        for _ in 0..200_000 {
            let u = rng.unit();
            let r = get((u * u * 2000.0) as u64);
            klru.access(&r);
            lru.access(&r);
        }
        let a = klru.stats().miss_ratio();
        let b = lru.stats().miss_ratio();
        assert!((a - b).abs() < 0.01, "K=64 miss {a} vs LRU {b}");
    }

    #[test]
    fn byte_capacity_and_oversize_bypass() {
        let mut c = KLruCache::new(Capacity::Bytes(100), 3, 1);
        c.access(&Request::get(1, 60));
        c.access(&Request::get(2, 30));
        assert_eq!(c.used_bytes(), 90);
        c.access(&Request::get(3, 500)); // bypass
        assert_eq!(c.len(), 2);
        c.access(&Request::get(4, 50)); // must evict at least one
        assert!(c.used_bytes() <= 100);
    }

    #[test]
    fn map_stays_consistent_under_churn() {
        use krr_core::rng::Xoshiro256;
        let mut c = KLruCache::new(Capacity::Objects(50), 5, 2);
        let mut rng = Xoshiro256::seed_from_u64(8);
        for _ in 0..50_000 {
            c.access(&get(rng.below(500)));
        }
        assert_eq!(c.map.len(), c.slots.len());
        for (i, s) in c.slots.iter().enumerate() {
            assert_eq!(c.map.get(&s.key), Some(&(i as u32)));
        }
    }
}
