//! Count–min sketch and the TinyLFU admission/eviction score.
//!
//! The sketch estimates per-key frequencies in sublinear space; TinyLFU
//! (Einziger et al.) uses it to compare an incoming object's frequency
//! against a would-be victim's, which is also directly usable as a
//! frequency-based [`crate::sampled::EvictionScore`] — a sketch-backed
//! alternative to the per-object Morris counters of
//! [`crate::klfu::KLfuCache`], closing the loop on the paper's
//! "other metrics, such as access frequency" future work (§7).

use crate::sampled::{EvictionScore, ObjectMeta};
use krr_core::hashing::hash_key;
use krr_core::rng::mix64;
use std::cell::RefCell;
use std::rc::Rc;

/// Count–min sketch with conservative update and periodic halving (the
/// TinyLFU "reset" that keeps estimates fresh).
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: usize,
    width: usize,
    counters: Vec<u32>,
    additions: u64,
    /// Halve all counters after this many additions (0 disables aging).
    reset_period: u64,
}

impl CountMinSketch {
    /// Creates a sketch with `rows >= 1` hash rows of `width >= 16`
    /// counters, aging every `reset_period` additions.
    #[must_use]
    pub fn new(rows: usize, width: usize, reset_period: u64) -> Self {
        assert!(rows >= 1 && width >= 16);
        Self {
            rows,
            width,
            counters: vec![0; rows * width],
            additions: 0,
            reset_period,
        }
    }

    /// A TinyLFU-flavoured default sized for ~`capacity` tracked objects.
    #[must_use]
    pub fn for_capacity(capacity: u64) -> Self {
        let width = (capacity as usize * 4).next_power_of_two().max(64);
        Self::new(4, width, capacity.saturating_mul(10).max(1))
    }

    #[inline]
    fn slot(&self, row: usize, key: u64) -> usize {
        let h = mix64(hash_key(key) ^ (row as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        row * self.width + (h as usize & (self.width - 1))
    }

    /// Records one occurrence of `key` (conservative update).
    pub fn add(&mut self, key: u64) {
        let est = self.estimate(key);
        for row in 0..self.rows {
            let i = self.slot(row, key);
            if u64::from(self.counters[i]) == est {
                self.counters[i] = self.counters[i].saturating_add(1);
            }
        }
        self.additions += 1;
        if self.reset_period > 0 && self.additions >= self.reset_period {
            self.halve();
        }
    }

    /// Frequency estimate (an overestimate, never an underestimate between
    /// halvings).
    #[must_use]
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.rows)
            .map(|row| u64::from(self.counters[self.slot(row, key)]))
            .min()
            .unwrap_or(0)
    }

    /// TinyLFU aging: halve every counter.
    fn halve(&mut self) {
        for c in &mut self.counters {
            *c /= 2;
        }
        self.additions /= 2;
    }

    /// Total additions since the last halving (test/diagnostic use).
    #[must_use]
    pub fn additions(&self) -> u64 {
        self.additions
    }
}

/// A sketch-backed frequency eviction score: lower estimated frequency is
/// evicted first, with recency (last access) as the tiebreaker. Sharing
/// the sketch with the cache's touch path is the caller's job — see
/// [`TinyLfuScore::sketch`].
#[derive(Debug, Clone)]
pub struct TinyLfuScore {
    sketch: Rc<RefCell<CountMinSketch>>,
}

impl TinyLfuScore {
    /// Creates a score with a sketch sized for `capacity` objects.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        Self {
            sketch: Rc::new(RefCell::new(CountMinSketch::for_capacity(capacity))),
        }
    }

    /// Handle to the shared sketch; call `borrow_mut().add(key)` on every
    /// reference before the cache access.
    #[must_use]
    pub fn sketch(&self) -> Rc<RefCell<CountMinSketch>> {
        Rc::clone(&self.sketch)
    }
}

impl EvictionScore for TinyLfuScore {
    fn score(&self, meta: &ObjectMeta, _now: u64) -> f64 {
        // Estimated frequency, with recency as an epsilon tiebreaker so
        // equal-frequency victims fall back to LRU order.
        self.sketch.borrow().estimate(meta.key) as f64 + meta.last_access as f64 * 1e-12
    }
}

impl TinyLfuScore {
    /// Frequency score for an explicit key (diagnostic entry point).
    #[must_use]
    pub fn score_key(&self, key: u64) -> u64 {
        self.sketch.borrow().estimate(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krr_core::rng::Xoshiro256;

    #[test]
    fn estimates_track_true_counts() {
        let mut cms = CountMinSketch::new(4, 1 << 12, 0);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..100_000 {
            let u = rng.unit();
            let key = (u * u * 500.0) as u64;
            cms.add(key);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        for (&key, &count) in &truth {
            let est = cms.estimate(key);
            assert!(
                est >= count,
                "CMS must never underestimate ({est} < {count})"
            );
            if count > 1_000 {
                let rel = (est - count) as f64 / count as f64;
                assert!(rel < 0.05, "hot key {key}: est {est} vs {count}");
            }
        }
    }

    #[test]
    fn never_seen_keys_estimate_near_zero() {
        let mut cms = CountMinSketch::new(4, 1 << 12, 0);
        for key in 0..1_000u64 {
            cms.add(key % 50);
        }
        let ghost_max = (10_000..10_100u64)
            .map(|k| cms.estimate(k))
            .max()
            .unwrap_or(0);
        assert!(ghost_max <= 2, "ghost estimate {ghost_max}");
    }

    #[test]
    fn halving_ages_old_traffic() {
        let mut cms = CountMinSketch::new(4, 1 << 10, 1_000);
        for _ in 0..999 {
            cms.add(7);
        }
        assert!(cms.estimate(7) >= 999);
        cms.add(7); // triggers the halving
        assert!(
            cms.estimate(7) <= 500,
            "estimate {} after halving",
            cms.estimate(7)
        );
    }

    #[test]
    fn sketch_backed_cache_keeps_frequent_objects() {
        use crate::sampled::SampledCache;
        use crate::{Cache, Capacity};
        use krr_trace::Request;
        let score = TinyLfuScore::new(200);
        let sketch = score.sketch();
        let mut cache = SampledCache::new(Capacity::Objects(100), 10, score, 3);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut scan = 1_000_000u64;
        let mut hot_hits = 0u64;
        let mut hot_refs = 0u64;
        for _ in 0..100_000 {
            let key = if rng.unit() < 0.6 {
                rng.below(80)
            } else {
                scan += 1;
                scan
            };
            sketch.borrow_mut().add(key);
            let hit = cache.access(&Request::unit(key));
            if key < 80 {
                hot_refs += 1;
                if hit {
                    hot_hits += 1;
                }
            }
        }
        let hot_ratio = hot_hits as f64 / hot_refs as f64;
        assert!(
            hot_ratio > 0.9,
            "hot keys should nearly always hit ({hot_ratio})"
        );
    }

    #[test]
    fn score_key_prefers_frequent_objects() {
        let score = TinyLfuScore::new(1_000);
        {
            let sketch = score.sketch();
            let mut s = sketch.borrow_mut();
            for _ in 0..100 {
                s.add(1);
            }
            s.add(2);
        }
        assert!(score.score_key(1) > score.score_key(2));
    }
}
