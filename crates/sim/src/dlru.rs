//! DLRU: dynamically configured sampling size (Wang, Yang & Wang,
//! MEMSYS '20) — the application that motivated the paper (§1).
//!
//! A K-LRU cache whose `K` is re-tuned online: a bank of lightweight KRR
//! profilers (one per candidate `K`, fed spatially sampled references)
//! predicts each candidate's miss ratio at the cache's current capacity;
//! at every epoch boundary the cache switches to the best predicted `K`
//! and the profilers restart, so decisions track the *current* regime
//! rather than the whole history.
//! On Type A workloads different `K` win at different cache sizes
//! (Fig 1.1), so the adaptive cache tracks the per-size winner without
//! ever simulating alternatives.

use crate::klru::KLruCache;
use crate::{Cache, CacheStats, Capacity};
use krr_core::{KrrConfig, KrrModel};
use krr_trace::Request;

/// K-LRU cache with online, KRR-driven adaptation of the sampling size.
pub struct DLruCache {
    cache: KLruCache,
    capacity: Capacity,
    candidates: Vec<u32>,
    models: Vec<KrrModel>,
    rate: f64,
    seed: u64,
    epoch: u64,
    accesses: u64,
    switches: u64,
}

impl DLruCache {
    /// Creates an adaptive cache choosing among `candidates` (must be
    /// non-empty; the first is the initial `K`), re-deciding every
    /// `epoch` requests using KRR profilers at spatial rate `rate`.
    #[must_use]
    pub fn new(capacity: Capacity, candidates: &[u32], epoch: u64, rate: f64, seed: u64) -> Self {
        assert!(!candidates.is_empty() && epoch > 0);
        let models = Self::fresh_models(candidates, rate, seed);
        Self {
            cache: KLruCache::new(capacity, candidates[0], seed),
            capacity,
            candidates: candidates.to_vec(),
            models,
            rate,
            seed,
            epoch,
            accesses: 0,
            switches: 0,
        }
    }

    fn fresh_models(candidates: &[u32], rate: f64, seed: u64) -> Vec<KrrModel> {
        candidates
            .iter()
            .map(|&k| {
                let mut cfg = KrrConfig::new(f64::from(k)).seed(seed ^ u64::from(k));
                if rate < 1.0 {
                    cfg = cfg.sampling(rate);
                }
                KrrModel::new(cfg)
            })
            .collect()
    }

    /// The sampling size currently in use.
    #[must_use]
    pub fn current_k(&self) -> u32 {
        self.cache.k()
    }

    /// How many times the cache has switched `K`.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Predicted miss ratio of each candidate at the current capacity.
    #[must_use]
    pub fn predictions(&self) -> Vec<(u32, f64)> {
        let c = self.capacity.limit() as f64;
        self.candidates
            .iter()
            .zip(&self.models)
            .map(|(&k, m)| (k, m.mrc().eval(c)))
            .collect()
    }

    fn maybe_adapt(&mut self) {
        if self.accesses % self.epoch != 0 {
            return;
        }
        let preds = self.predictions();
        let Some(&(best_k, best_miss)) = preds.iter().min_by(|a, b| a.1.total_cmp(&b.1)) else {
            return;
        };
        // Hysteresis: only switch for a clear win, and never on a profiler
        // that hasn't seen enough samples yet.
        let current = preds
            .iter()
            .find(|&&(k, _)| k == self.cache.k())
            .map_or(1.0, |&(_, m)| m);
        let enough = self
            .models
            .first()
            .map(|m| m.stats().sampled > 1_000)
            .unwrap_or(false);
        if enough && best_k != self.cache.k() && best_miss + 0.01 < current {
            // K only parameterizes eviction sampling, so switching it keeps
            // every cached object — the flexibility §1 credits random
            // sampling caches with ("one can dynamically configure the
            // sampling size").
            self.cache.set_k(best_k);
            self.switches += 1;
        }
        // Restart the profilers so the next decision reflects the current
        // workload regime, not the whole history.
        self.models = Self::fresh_models(&self.candidates, self.rate, self.seed ^ self.accesses);
    }
}

impl Cache for DLruCache {
    fn access(&mut self, req: &Request) -> bool {
        self.accesses += 1;
        for m in &mut self.models {
            m.access(req.key, req.size);
        }
        self.maybe_adapt();
        self.cache.access(req)
    }

    fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krr_trace::patterns;

    /// Loop of L keys through a cache of 0.6·L: K=1 (random replacement)
    /// hits ~25% while LRU-like large K thrashes to ~0%. DLRU must discover
    /// K=1.
    #[test]
    fn adapts_to_small_k_below_a_loop_cliff() {
        let loop_len = 5_000u64;
        let cap = Capacity::Objects(3_000);
        let trace = patterns::loop_trace(loop_len, 400_000);
        let mut dlru = DLruCache::new(cap, &[32, 4, 1], 20_000, 1.0, 1);
        assert_eq!(dlru.current_k(), 32, "starts at the first candidate");
        for r in &trace {
            dlru.access(r);
        }
        assert_eq!(dlru.current_k(), 1, "should settle on K=1 for a loop");
        assert!(dlru.switches() >= 1);

        // And it must actually outperform the fixed initial choice.
        let mut fixed = KLruCache::new(cap, 32, 1);
        for r in &trace {
            fixed.access(r);
        }
        let adaptive_miss = dlru.stats().miss_ratio();
        let fixed_miss = fixed.stats().miss_ratio();
        assert!(
            adaptive_miss < fixed_miss - 0.05,
            "adaptive {adaptive_miss} vs fixed-K32 {fixed_miss}"
        );
    }

    /// On a K-insensitive (Type B) workload the predictions tie within the
    /// hysteresis margin, so DLRU should not flap.
    #[test]
    fn stays_put_on_type_b_workloads() {
        let trace = patterns::uniform_random(2_000, 200_000, 3);
        let mut dlru = DLruCache::new(Capacity::Objects(1_000), &[4, 1, 16], 20_000, 1.0, 2);
        for r in &trace {
            dlru.access(r);
        }
        assert!(dlru.switches() <= 1, "switched {} times", dlru.switches());
    }

    #[test]
    fn stats_accumulate_across_switches() {
        let trace = patterns::loop_trace(1_000, 100_000);
        let mut dlru = DLruCache::new(Capacity::Objects(600), &[16, 1], 10_000, 1.0, 4);
        for r in &trace {
            dlru.access(r);
        }
        let s = dlru.stats();
        assert_eq!(s.hits + s.misses, trace.len() as u64);
    }

    #[test]
    fn predictions_cover_all_candidates() {
        let mut dlru = DLruCache::new(Capacity::Objects(100), &[1, 2, 4], 1_000, 1.0, 5);
        for r in patterns::uniform_random(500, 5_000, 6) {
            dlru.access(&r);
        }
        let p = dlru.predictions();
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|&(_, m)| (0.0..=1.0).contains(&m)));
    }
}
