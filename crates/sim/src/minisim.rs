//! Miniature cache simulation (Waldspurger et al., ATC '17; §6.2 of the
//! paper's related work).
//!
//! For policies with no one-pass stack model, an MRC can still be built
//! cheaply: emulate each target cache size `C` with a *scaled-down* cache of
//! size `C·R` fed only the spatially sampled (rate `R`) requests. One pass
//! drives all miniature caches simultaneously. This is the generic
//! alternative KRR competes with for K-LRU — and the only practical option
//! for non-stack policies like sampled LFU (see [`crate::klfu`]).

use crate::{Cache, CacheStats, Capacity};
use krr_core::mrc::Mrc;
use krr_core::sampling::SpatialFilter;
use krr_trace::Request;

/// One-pass multi-size miniature simulation.
pub struct MiniSim {
    filter: SpatialFilter,
    minis: Vec<(u64, Box<dyn Cache>)>,
    processed: u64,
    sampled: u64,
}

impl MiniSim {
    /// Creates miniature caches for every target capacity, scaled by
    /// `rate`. `factory` builds the policy under study at a given
    /// (scaled-down) capacity — e.g. `|c| Box::new(KLruCache::new(c, 5, 1))`.
    ///
    /// Capacities are in the same unit the factory interprets (objects or
    /// bytes); each miniature capacity is `max(1, C·R)`.
    pub fn new(
        capacities: &[u64],
        rate: f64,
        factory: impl Fn(Capacity) -> Box<dyn Cache>,
        byte_capacities: bool,
    ) -> Self {
        assert!(!capacities.is_empty());
        let filter = if rate >= 1.0 {
            SpatialFilter::all()
        } else {
            SpatialFilter::with_rate(rate)
        };
        let minis = capacities
            .iter()
            .map(|&c| {
                let scaled = ((c as f64 * filter.rate()).round() as u64).max(1);
                let cap = if byte_capacities {
                    Capacity::Bytes(scaled)
                } else {
                    Capacity::Objects(scaled)
                };
                (c, factory(cap))
            })
            .collect();
        Self {
            filter,
            minis,
            processed: 0,
            sampled: 0,
        }
    }

    /// Offers one request to every miniature cache (if its key samples in).
    pub fn access(&mut self, req: &Request) {
        self.processed += 1;
        if !self.filter.admits(req.key) {
            return;
        }
        self.sampled += 1;
        for (_, cache) in &mut self.minis {
            cache.access(req);
        }
    }

    /// Offers a uniform-size reference.
    pub fn access_key(&mut self, key: u64) {
        self.access(&Request::unit(key));
    }

    /// `(processed, sampled)` reference counts.
    #[must_use]
    pub fn counts(&self) -> (u64, u64) {
        (self.processed, self.sampled)
    }

    /// Per-capacity miss ratios of the miniature caches, with the same
    /// count correction the KRR model applies (DESIGN.md §6): sampled
    /// reference counts deviate from `N·R` when hot keys (don't) sample in,
    /// shifting every miniature miss ratio vertically; re-normalizing the
    /// denominator to `N·R` attributes the excess/shortfall to hits.
    #[must_use]
    pub fn miss_ratios(&self) -> Vec<(u64, f64)> {
        let expected = (self.processed as f64 * self.filter.rate()).max(1.0);
        self.minis
            .iter()
            .map(|(c, cache)| {
                let s = cache.stats();
                (*c, (s.misses as f64 / expected).clamp(0.0, 1.0))
            })
            .collect()
    }

    /// Per-capacity miss ratios without the count correction (the naive
    /// ratio estimator; diagnostic use).
    #[must_use]
    pub fn raw_miss_ratios(&self) -> Vec<(u64, f64)> {
        self.minis
            .iter()
            .map(|(c, cache)| (*c, cache.stats().miss_ratio()))
            .collect()
    }

    /// The interpolated MRC over the target capacities.
    #[must_use]
    pub fn mrc(&self) -> Mrc {
        let mut points = vec![(0.0, 1.0)];
        points.extend(self.miss_ratios().into_iter().map(|(c, m)| (c as f64, m)));
        let mut mrc = Mrc::from_points(points);
        mrc.make_monotone();
        mrc
    }

    /// Aggregate stats of one miniature cache (test/diagnostic use).
    #[must_use]
    pub fn mini_stats(&self, idx: usize) -> CacheStats {
        self.minis[idx].1.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::klru::KLruCache;
    use crate::lru::ExactLru;
    use crate::mrc_sim::{even_capacities, simulate_mrc, Policy, Unit};
    use krr_core::rng::Xoshiro256;

    fn skewed_trace(keys: u64, n: usize, seed: u64) -> Vec<Request> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u = rng.unit();
                Request::unit((u * u * keys as f64) as u64)
            })
            .collect()
    }

    #[test]
    fn rate_one_equals_full_simulation() {
        let trace = skewed_trace(2_000, 60_000, 1);
        let caps = even_capacities(2_000, 8);
        let mut ms = MiniSim::new(&caps, 1.0, |c| Box::new(ExactLru::new(c)), false);
        for r in &trace {
            ms.access(r);
        }
        let full = simulate_mrc(&trace, Policy::ExactLru, Unit::Objects, &caps, 1, 1);
        for &c in &caps {
            let a = ms.mrc().eval(c as f64);
            let b = full.eval(c as f64);
            assert!((a - b).abs() < 1e-9, "C={c}: {a} vs {b}");
        }
    }

    #[test]
    fn sampled_minisim_tracks_full_klru() {
        let keys = 100_000u64;
        let trace = skewed_trace(keys, 400_000, 2);
        let caps = even_capacities(keys, 10);
        let mut ms = MiniSim::new(&caps, 0.05, |c| Box::new(KLruCache::new(c, 5, 7)), false);
        for r in &trace {
            ms.access(r);
        }
        let (_, sampled) = ms.counts();
        assert!(sampled < trace.len() as u64 / 10);
        let full = simulate_mrc(&trace, Policy::klru(5), Unit::Objects, &caps, 3, 1);
        let sizes: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
        let mae = ms.mrc().mae(&full, &sizes);
        // ~5K sampled objects at R=0.05: expect a slightly larger
        // sampling error than the paper's 8K-object guard implies.
        assert!(mae < 0.045, "miniature simulation MAE {mae}");
    }

    #[test]
    fn byte_capacities_scale_too() {
        let trace: Vec<Request> = skewed_trace(5_000, 50_000, 3)
            .into_iter()
            .map(|r| Request::get(r.key, 100))
            .collect();
        let caps = [100_000u64, 250_000, 500_000];
        let mut ms = MiniSim::new(&caps, 0.5, |c| Box::new(KLruCache::new(c, 5, 9)), true);
        for r in &trace {
            ms.access(r);
        }
        let mrc = ms.mrc();
        assert!(mrc.eval(100_000.0) > mrc.eval(500_000.0));
    }

    #[test]
    fn tiny_capacity_clamps_to_one() {
        let caps = [10u64];
        let ms = MiniSim::new(&caps, 0.001, |c| Box::new(ExactLru::new(c)), false);
        // 10 * 0.001 rounds to 0 -> clamped to 1; construction must not panic.
        assert_eq!(ms.miss_ratios()[0].0, 10);
    }
}
