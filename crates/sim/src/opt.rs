//! Belady's OPT (MIN): the clairvoyant replacement lower bound.
//!
//! OPT *is* a stack algorithm (Mattson's priority = next reference time),
//! but efficient one-pass OPT stack distances need the Sugumar–Abraham
//! machinery; since OPT here serves as a reference curve for the policy
//! zoo, we simulate it directly per cache size: next-use times are
//! precomputed in a backward pass, and eviction picks the resident with the
//! furthest next use via an ordered set — O(N·logC) per size. Bypass is
//! allowed (an incoming object whose next use is furthest is not inserted),
//! i.e. this is MIN with optional placement — the strongest clairvoyant
//! bound, ≤ insertion-mandatory OPT everywhere.

use crate::CacheStats;
use krr_core::hashing::KeyMap;
use krr_core::mrc::Mrc;
use krr_trace::Request;
use std::collections::BTreeSet;

/// Per-reference next-use indices (`usize::MAX` = never again).
#[must_use]
pub fn next_use_times(trace: &[Request]) -> Vec<usize> {
    let mut next = vec![usize::MAX; trace.len()];
    let mut last_seen: KeyMap<usize> = KeyMap::default();
    for (i, r) in trace.iter().enumerate().rev() {
        if let Some(&later) = last_seen.get(&r.key) {
            next[i] = later;
        }
        last_seen.insert(r.key, i);
    }
    next
}

/// Simulates Belady's OPT at one cache size (object granularity) and
/// returns the hit/miss counters.
#[must_use]
pub fn simulate_opt(trace: &[Request], next: &[usize], capacity: u64) -> CacheStats {
    assert_eq!(trace.len(), next.len());
    assert!(capacity > 0);
    let capacity = capacity as usize;
    let mut stats = CacheStats::default();
    // Residents ordered by (next use, key); resident key -> its next use.
    let mut by_next_use: BTreeSet<(usize, u64)> = BTreeSet::new();
    let mut resident: KeyMap<usize> = KeyMap::default();
    for (i, r) in trace.iter().enumerate() {
        let this_next = next[i];
        if let Some(&cur) = resident.get(&r.key) {
            stats.hits += 1;
            // Refresh the key's priority to its new next-use time.
            by_next_use.remove(&(cur, r.key));
            by_next_use.insert((this_next, r.key));
            resident.insert(r.key, this_next);
            continue;
        }
        stats.misses += 1;
        if this_next == usize::MAX {
            // Never used again: OPT would evict it immediately; bypass.
            continue;
        }
        if resident.len() >= capacity {
            // Evict the resident with the furthest next use — unless the
            // incoming object's next use is even further (then bypass).
            let &(furthest, victim) = by_next_use.iter().next_back().expect("non-empty");
            if furthest <= this_next {
                continue;
            }
            by_next_use.remove(&(furthest, victim));
            resident.remove(&victim);
        }
        by_next_use.insert((this_next, r.key));
        resident.insert(r.key, this_next);
    }
    stats
}

/// OPT MRC over the given capacities.
#[must_use]
pub fn opt_mrc(trace: &[Request], capacities: &[u64]) -> Mrc {
    let next = next_use_times(trace);
    let mut points = vec![(0.0, 1.0)];
    for &c in capacities {
        points.push((c as f64, simulate_opt(trace, &next, c).miss_ratio()));
    }
    let mut mrc = Mrc::from_points(points);
    mrc.make_monotone();
    mrc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::ExactLru;
    use crate::mrc_sim::even_capacities;
    use crate::{Cache, Capacity};
    use krr_core::rng::Xoshiro256;
    use krr_trace::patterns;

    #[test]
    fn next_use_computation() {
        let trace = vec![
            Request::unit(1),
            Request::unit(2),
            Request::unit(1),
            Request::unit(3),
            Request::unit(1),
        ];
        assert_eq!(
            next_use_times(&trace),
            vec![2, usize::MAX, 4, usize::MAX, usize::MAX]
        );
    }

    #[test]
    fn opt_on_loop_achieves_the_theoretical_hit_ratio() {
        // Loop of L through cache C with bypass allowed: OPT pins C keys
        // and bypasses the rest, hit ratio C/L in steady state.
        let l = 100u64;
        let c = 40u64;
        let trace = patterns::loop_trace(l, 100_000);
        let next = next_use_times(&trace);
        let stats = simulate_opt(&trace, &next, c);
        let hit = 1.0 - stats.miss_ratio();
        let expect = c as f64 / l as f64;
        assert!((hit - expect).abs() < 0.01, "hit {hit} vs theory {expect}");
    }

    #[test]
    fn opt_never_loses_to_lru() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let trace: Vec<Request> = (0..100_000)
            .map(|_| {
                let u = rng.unit();
                Request::unit((u * u * 2_000.0) as u64)
            })
            .collect();
        let next = next_use_times(&trace);
        for &c in &even_capacities(2_000, 8) {
            let opt = simulate_opt(&trace, &next, c).miss_ratio();
            let mut lru = ExactLru::new(Capacity::Objects(c));
            for r in &trace {
                lru.access(r);
            }
            let lru_miss = lru.stats().miss_ratio();
            assert!(
                opt <= lru_miss + 1e-9,
                "OPT ({opt}) must not lose to LRU ({lru_miss}) at C={c}"
            );
        }
    }

    #[test]
    fn full_capacity_only_cold_misses() {
        let trace = patterns::loop_trace(500, 5_000);
        let next = next_use_times(&trace);
        let stats = simulate_opt(&trace, &next, 500);
        assert_eq!(stats.misses, 500);
    }

    #[test]
    fn opt_mrc_is_monotone() {
        let trace = patterns::uniform_random(300, 20_000, 2);
        let mrc = opt_mrc(&trace, &even_capacities(300, 10));
        let mut prev = f64::INFINITY;
        for &(_, m) in mrc.points() {
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }
}
