//! Sampled LFU: the paper's named future-work direction ("other
//! random-sampling policies which use other metrics, such as access
//! frequency", §7) and Redis's `allkeys-lfu`.
//!
//! On eviction, sample `K` residents and evict the one with the lowest
//! frequency estimate. Frequency follows Redis's design: an 8-bit Morris
//! counter incremented with probability `1 / (counter · lfu_log_factor + 1)`
//! and decayed by one per `decay_period` accesses of idle time, so the
//! counter tracks *recent* popularity.
//!
//! Sampled LFU is not a stack policy (its MRCs are built with
//! [`crate::minisim::MiniSim`], as §6.2 prescribes for non-stack policies).

use crate::{Cache, CacheStats, Capacity};
use krr_core::hashing::KeyMap;
use krr_core::rng::Xoshiro256;
use krr_trace::Request;

/// Initial counter value for new objects (`LFU_INIT_VAL` in Redis),
/// protecting fresh objects from immediate eviction.
pub const LFU_INIT_VAL: u8 = 5;

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u64,
    size: u32,
    counter: u8,
    last_decay: u64,
}

/// Random sampling-based LFU cache with Redis-style probabilistic counters.
#[derive(Debug, Clone)]
pub struct KLfuCache {
    capacity: Capacity,
    k: u32,
    /// Redis `lfu-log-factor`: larger values need exponentially more hits
    /// to saturate the counter.
    log_factor: f64,
    /// Accesses of idle time per counter decrement (Redis `lfu-decay-time`,
    /// measured here in logical clock ticks).
    decay_period: u64,
    map: KeyMap<u32>,
    slots: Vec<Slot>,
    clock: u64,
    used_bytes: u64,
    rng: Xoshiro256,
    stats: CacheStats,
}

impl KLfuCache {
    /// Creates a sampled-LFU cache with Redis-like defaults
    /// (`lfu-log-factor = 10`; one counter decrement per `64 × capacity`
    /// accesses of idle time — Redis decays on a wall-clock minute scale,
    /// which is slow relative to the request rate).
    #[must_use]
    pub fn new(capacity: Capacity, k: u32, seed: u64) -> Self {
        let decay = capacity.limit().saturating_mul(64).max(1);
        Self::with_params(capacity, k, 10.0, decay, seed)
    }

    /// Creates a sampled-LFU cache with explicit counter parameters.
    #[must_use]
    pub fn with_params(
        capacity: Capacity,
        k: u32,
        log_factor: f64,
        decay_period: u64,
        seed: u64,
    ) -> Self {
        assert!(capacity.limit() > 0 && k >= 1 && decay_period >= 1);
        assert!(log_factor >= 0.0);
        Self {
            capacity,
            k,
            log_factor,
            decay_period,
            map: KeyMap::default(),
            slots: Vec::new(),
            clock: 0,
            used_bytes: 0,
            rng: Xoshiro256::seed_from_u64(seed),
            stats: CacheStats::default(),
        }
    }

    /// Number of resident objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Bytes currently resident.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Current frequency estimate of `key` (after decay), if resident.
    #[must_use]
    pub fn frequency_of(&self, key: u64) -> Option<u8> {
        self.map
            .get(&key)
            .map(|&i| self.decayed_counter(&self.slots[i as usize]))
    }

    fn used(&self) -> u64 {
        match self.capacity {
            Capacity::Objects(_) => self.slots.len() as u64,
            Capacity::Bytes(_) => self.used_bytes,
        }
    }

    /// Counter value after applying idle-time decay (`LFUDecrAndReturn`).
    fn decayed_counter(&self, slot: &Slot) -> u8 {
        let idle_periods = (self.clock - slot.last_decay) / self.decay_period;
        slot.counter.saturating_sub(idle_periods.min(255) as u8)
    }

    /// Probabilistic logarithmic increment (`LFULogIncr`).
    fn log_incr(&mut self, counter: u8) -> u8 {
        if counter == u8::MAX {
            return counter;
        }
        let base = f64::from(counter.saturating_sub(LFU_INIT_VAL));
        let p = 1.0 / (base * self.log_factor + 1.0);
        if self.rng.chance(p) {
            counter + 1
        } else {
            counter
        }
    }

    fn touch(&mut self, i: usize) {
        let decayed = self.decayed_counter(&self.slots[i]);
        let bumped = self.log_incr(decayed);
        let slot = &mut self.slots[i];
        slot.counter = bumped;
        slot.last_decay = self.clock;
    }

    /// Samples K residents and evicts the lowest-frequency one (ties broken
    /// by sample order, like Redis's pool insertion).
    fn evict_one(&mut self) {
        let n = self.slots.len();
        debug_assert!(n > 0);
        let mut victim = self.rng.below_usize(n);
        let mut victim_freq = self.decayed_counter(&self.slots[victim]);
        for _ in 1..self.k {
            let cand = self.rng.below_usize(n);
            let freq = self.decayed_counter(&self.slots[cand]);
            if freq < victim_freq {
                victim = cand;
                victim_freq = freq;
            }
        }
        let removed = self.slots.swap_remove(victim);
        self.map.remove(&removed.key);
        self.used_bytes -= u64::from(removed.size);
        if victim < self.slots.len() {
            self.map.insert(self.slots[victim].key, victim as u32);
        }
    }
}

impl Cache for KLfuCache {
    fn access(&mut self, req: &Request) -> bool {
        self.clock += 1;
        let size = req.size.max(1);
        if let Some(&i) = self.map.get(&req.key) {
            self.stats.hits += 1;
            self.touch(i as usize);
            let slot = &mut self.slots[i as usize];
            let old = slot.size;
            slot.size = size;
            self.used_bytes = self.used_bytes - u64::from(old) + u64::from(size);
            while self.used() > self.capacity.limit() && self.slots.len() > 1 {
                self.evict_one();
            }
            if self.used() > self.capacity.limit() {
                let i = self.map[&req.key] as usize;
                let removed = self.slots.swap_remove(i);
                self.map.remove(&removed.key);
                self.used_bytes -= u64::from(removed.size);
                if i < self.slots.len() {
                    self.map.insert(self.slots[i].key, i as u32);
                }
            }
            return true;
        }
        self.stats.misses += 1;
        if u64::from(size) > self.capacity.limit() {
            return false;
        }
        let need = match self.capacity {
            Capacity::Objects(_) => 1,
            Capacity::Bytes(_) => u64::from(size),
        };
        while self.used() + need > self.capacity.limit() {
            self.evict_one();
        }
        let i = self.slots.len() as u32;
        self.slots.push(Slot {
            key: req.key,
            size,
            counter: LFU_INIT_VAL,
            last_decay: self.clock,
        });
        self.map.insert(req.key, i);
        self.used_bytes += u64::from(size);
        false
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krr_core::rng::Xoshiro256;

    fn get(key: u64) -> Request {
        Request::unit(key)
    }

    #[test]
    fn basic_caching_works() {
        let mut c = KLfuCache::new(Capacity::Objects(2), 5, 1);
        assert!(!c.access(&get(1)));
        assert!(c.access(&get(1)));
        assert!(!c.access(&get(2)));
        assert!(!c.access(&get(3)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn counters_grow_logarithmically() {
        let mut c = KLfuCache::with_params(Capacity::Objects(10), 5, 10.0, 1 << 40, 2);
        c.access(&get(1));
        for _ in 0..100 {
            c.access(&get(1));
        }
        let f100 = c.frequency_of(1).unwrap();
        for _ in 0..10_000 {
            c.access(&get(1));
        }
        let f10k = c.frequency_of(1).unwrap();
        assert!(f100 > LFU_INIT_VAL, "counter should grow");
        assert!(f10k > f100);
        assert!(f10k < 60, "growth must be logarithmic, got {f10k}");
    }

    #[test]
    fn frequent_keys_survive_scans() {
        // LFU's defining advantage: a one-shot scan cannot displace the
        // frequently used working set.
        let mut c = KLfuCache::with_params(Capacity::Objects(100), 10, 10.0, 1 << 40, 3);
        let mut rng = Xoshiro256::seed_from_u64(4);
        // Build frequency for 50 hot keys.
        for _ in 0..200 {
            for k in 0..50u64 {
                if rng.unit() < 0.9 {
                    c.access(&get(k));
                }
            }
        }
        // One-shot scan of 1000 cold keys.
        for k in 1_000..2_000u64 {
            c.access(&get(k));
        }
        let survivors = (0..50u64).filter(|&k| c.frequency_of(k).is_some()).count();
        assert!(
            survivors >= 45,
            "only {survivors}/50 hot keys survived the scan"
        );
    }

    #[test]
    fn decay_lets_stale_keys_die() {
        let mut c = KLfuCache::with_params(Capacity::Objects(10), 10, 1.0, 10, 5);
        // Make key 0 very frequent, then go idle.
        for _ in 0..500 {
            c.access(&get(0));
        }
        let hot = c.frequency_of(0).unwrap();
        // 2000 accesses to other keys = 200 decay periods.
        for i in 0..2_000u64 {
            c.access(&get(1 + i % 9));
        }
        let decayed = c.frequency_of(0);
        // None means the key was evicted entirely, which is also fine.
        if let Some(f) = decayed {
            assert!(f < hot, "counter must decay ({f} vs {hot})");
        }
    }

    #[test]
    fn capacity_enforced_in_bytes() {
        let mut c = KLfuCache::new(Capacity::Bytes(1_000), 5, 6);
        for k in 0..100u64 {
            c.access(&Request::get(k, 99));
            assert!(c.used_bytes() <= 1_000);
        }
    }

    #[test]
    fn map_consistent_under_churn() {
        let mut c = KLfuCache::new(Capacity::Objects(50), 5, 7);
        let mut rng = Xoshiro256::seed_from_u64(8);
        for _ in 0..30_000 {
            c.access(&get(rng.below(400)));
        }
        assert_eq!(c.map.len(), c.slots.len());
        for (i, s) in c.slots.iter().enumerate() {
            assert_eq!(c.map.get(&s.key), Some(&(i as u32)));
        }
    }
}
