//! W-TinyLFU (Einziger, Friedman & Manes): windowed admission caching —
//! the modern sketch-based design the paper's "other metrics" future work
//! points toward, and the strongest practical foil for the sampled
//! policies in the zoo.
//!
//! Structure: a small LRU **window** absorbs arrivals; on window overflow
//! the evictee is offered to the **main** segmented-LRU region
//! (probation + protected), where admission is decided by comparing
//! count–min-sketch frequencies of the candidate and the main region's
//! would-be victim. Object granularity (the published form).

use crate::cms::CountMinSketch;
use crate::{Cache, CacheStats, Capacity};
use krr_core::hashing::KeyMap;
use krr_trace::Request;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Window,
    Probation,
    Protected,
}

/// W-TinyLFU cache.
#[derive(Debug)]
pub struct WTinyLfuCache {
    window_cap: usize,
    probation_cap: usize,
    protected_cap: usize,
    /// MRU at the front for every queue.
    window: VecDeque<u64>,
    probation: VecDeque<u64>,
    protected: VecDeque<u64>,
    whereis: KeyMap<Segment>,
    sketch: CountMinSketch,
    stats: CacheStats,
}

impl WTinyLfuCache {
    /// Creates a cache with the published default split: 1% window, and
    /// an 80/20 protected/probation main region.
    #[must_use]
    pub fn new(capacity: Capacity) -> Self {
        let c = capacity.limit() as usize;
        assert!(c >= 4, "capacity must be at least 4 objects");
        let window_cap = (c / 100).max(1);
        let main = c - window_cap;
        let protected_cap = main * 4 / 5;
        let probation_cap = main - protected_cap;
        Self {
            window_cap,
            probation_cap: probation_cap.max(1),
            protected_cap: protected_cap.max(1),
            window: VecDeque::new(),
            probation: VecDeque::new(),
            protected: VecDeque::new(),
            whereis: KeyMap::default(),
            sketch: CountMinSketch::for_capacity(c as u64),
            stats: CacheStats::default(),
        }
    }

    /// Resident object count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.window.len() + self.probation.len() + self.protected.len()
    }

    /// True if nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn remove_from(list: &mut VecDeque<u64>, key: u64) {
        if let Some(pos) = list.iter().position(|&k| k == key) {
            list.remove(pos);
        }
    }

    /// Moves a probation hit into protected, demoting the protected LRU
    /// back to probation when over budget.
    fn promote(&mut self, key: u64) {
        Self::remove_from(&mut self.probation, key);
        self.protected.push_front(key);
        self.whereis.insert(key, Segment::Protected);
        if self.protected.len() > self.protected_cap {
            if let Some(demoted) = self.protected.pop_back() {
                self.probation.push_front(demoted);
                self.whereis.insert(demoted, Segment::Probation);
            }
        }
    }

    /// Offers `candidate` (evicted from the window) to the main region.
    fn admit_to_main(&mut self, candidate: u64) {
        if self.probation.len() + self.protected.len() < self.probation_cap + self.protected_cap {
            self.probation.push_front(candidate);
            self.whereis.insert(candidate, Segment::Probation);
            return;
        }
        // TinyLFU admission duel against the probation LRU.
        let Some(&victim) = self.probation.back() else {
            // Probation empty but main full: everything is protected;
            // reject the candidate (it will return via the sketch if hot).
            self.whereis.remove(&candidate);
            return;
        };
        if self.sketch.estimate(candidate) > self.sketch.estimate(victim) {
            self.probation.pop_back();
            self.whereis.remove(&victim);
            self.probation.push_front(candidate);
            self.whereis.insert(candidate, Segment::Probation);
        } else {
            self.whereis.remove(&candidate);
        }
    }
}

impl Cache for WTinyLfuCache {
    fn access(&mut self, req: &Request) -> bool {
        let key = req.key;
        self.sketch.add(key);
        match self.whereis.get(&key).copied() {
            Some(Segment::Window) => {
                self.stats.hits += 1;
                Self::remove_from(&mut self.window, key);
                self.window.push_front(key);
                true
            }
            Some(Segment::Probation) => {
                self.stats.hits += 1;
                self.promote(key);
                true
            }
            Some(Segment::Protected) => {
                self.stats.hits += 1;
                Self::remove_from(&mut self.protected, key);
                self.protected.push_front(key);
                true
            }
            None => {
                self.stats.misses += 1;
                self.window.push_front(key);
                self.whereis.insert(key, Segment::Window);
                if self.window.len() > self.window_cap {
                    if let Some(evictee) = self.window.pop_back() {
                        self.admit_to_main(evictee);
                    }
                }
                false
            }
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::klru::KLruCache;
    use krr_core::rng::Xoshiro256;

    fn get(key: u64) -> Request {
        Request::unit(key)
    }

    #[test]
    fn basic_hit_miss() {
        let mut c = WTinyLfuCache::new(Capacity::Objects(100));
        assert!(!c.access(&get(1)));
        assert!(c.access(&get(1)));
        assert!(c.len() <= 100);
    }

    #[test]
    fn capacity_bounded_under_churn() {
        let mut c = WTinyLfuCache::new(Capacity::Objects(64));
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..50_000 {
            c.access(&get(rng.below(1_000)));
            assert!(c.len() <= 64, "resident {}", c.len());
        }
        assert_eq!(
            c.whereis.len(),
            c.len(),
            "index must track exactly the resident set"
        );
    }

    #[test]
    fn scan_resistance_beats_sampled_lru() {
        // Hot Zipf set + one-shot scan stream: the admission filter should
        // refuse the scan keys and keep the hot set.
        let cap = Capacity::Objects(500);
        let mut wt = WTinyLfuCache::new(cap);
        let mut klru = KLruCache::new(cap, 5, 2);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut scan = 10_000_000u64;
        let mut wt_hits = 0u64;
        let mut klru_hits = 0u64;
        let n = 300_000;
        for _ in 0..n {
            let r = if rng.unit() < 0.35 {
                scan += 1;
                get(scan)
            } else {
                let u = rng.unit();
                get((u * u * 2_000.0) as u64)
            };
            if wt.access(&r) {
                wt_hits += 1;
            }
            if klru.access(&r) {
                klru_hits += 1;
            }
        }
        assert!(
            wt_hits > klru_hits,
            "W-TinyLFU {wt_hits} should beat K-LRU {klru_hits} under scans"
        );
    }

    #[test]
    fn hot_keys_reach_protected() {
        let mut c = WTinyLfuCache::new(Capacity::Objects(200));
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..20_000 {
            let u = rng.unit();
            c.access(&get((u * u * 400.0) as u64));
        }
        assert!(!c.protected.is_empty(), "hot keys should be promoted");
        // The hottest key must be protected by now.
        assert_eq!(c.whereis.get(&0).copied(), Some(Segment::Protected));
    }
}
