//! A generic random sampling-based cache, parameterized by its eviction
//! score — the family the paper's introduction surveys (K-LRU in Redis,
//! sampled LFU, Hyperbolic caching, LHD) and its conclusion proposes to
//! model next.
//!
//! On eviction, sample `K` residents and evict the one whose
//! [`EvictionScore`] is lowest. [`crate::klru::KLruCache`] and
//! [`crate::klfu::KLfuCache`] remain the tuned concrete implementations;
//! this module exists to host *function-based* policies like
//! [`HyperbolicScore`] (Blankstein et al., ATC '17: priority =
//! hits / time-in-cache) and to make new priority functions one small impl
//! away.

use crate::{Cache, CacheStats, Capacity};
use krr_core::hashing::KeyMap;
use krr_core::rng::Xoshiro256;
use krr_trace::Request;

/// Per-object bookkeeping visible to scoring functions.
#[derive(Debug, Clone, Copy)]
pub struct ObjectMeta {
    /// Object key (lets sketch-backed scores look frequencies up).
    pub key: u64,
    /// Logical clock value when the object was inserted.
    pub inserted_at: u64,
    /// Logical clock value of the most recent access.
    pub last_access: u64,
    /// Number of hits since insertion (the insertion itself excluded).
    pub hits: u64,
    /// Object size in bytes.
    pub size: u32,
}

/// An eviction priority: *lower scores are evicted first*.
pub trait EvictionScore {
    /// Scores `meta` at logical time `now`.
    fn score(&self, meta: &ObjectMeta, now: u64) -> f64;
}

/// Recency score: sampled LRU (equivalent to [`crate::klru::KLruCache`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct LruScore;

impl EvictionScore for LruScore {
    fn score(&self, meta: &ObjectMeta, _now: u64) -> f64 {
        meta.last_access as f64
    }
}

/// Hyperbolic caching (Blankstein et al., ATC '17): priority is the
/// object's hit *rate* over its lifetime in cache, `hits / age`; per-byte
/// when `per_byte` is set (their cost-aware variant with cost = size).
#[derive(Debug, Clone, Copy, Default)]
pub struct HyperbolicScore {
    /// Divide the score by object size (prefer evicting big cold objects).
    pub per_byte: bool,
}

impl EvictionScore for HyperbolicScore {
    fn score(&self, meta: &ObjectMeta, now: u64) -> f64 {
        let age = (now.saturating_sub(meta.inserted_at)).max(1) as f64;
        // +1: the insertion reference counts as the first hit, as in the
        // paper's estimator.
        let base = (meta.hits + 1) as f64 / age;
        if self.per_byte {
            base / f64::from(meta.size.max(1))
        } else {
            base
        }
    }
}

/// Random sampling-based cache generic over the eviction score.
#[derive(Debug)]
pub struct SampledCache<S: EvictionScore> {
    score: S,
    capacity: Capacity,
    k: u32,
    map: KeyMap<u32>,
    slots: Vec<(u64, ObjectMeta)>,
    clock: u64,
    used_bytes: u64,
    rng: Xoshiro256,
    stats: CacheStats,
}

impl<S: EvictionScore> SampledCache<S> {
    /// Creates a cache with sampling size `k` and the given scoring
    /// function.
    #[must_use]
    pub fn new(capacity: Capacity, k: u32, score: S, seed: u64) -> Self {
        assert!(capacity.limit() > 0 && k >= 1);
        Self {
            score,
            capacity,
            k,
            map: KeyMap::default(),
            slots: Vec::new(),
            clock: 0,
            used_bytes: 0,
            rng: Xoshiro256::seed_from_u64(seed),
            stats: CacheStats::default(),
        }
    }

    /// Resident object count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Bytes resident.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn used(&self) -> u64 {
        match self.capacity {
            Capacity::Objects(_) => self.slots.len() as u64,
            Capacity::Bytes(_) => self.used_bytes,
        }
    }

    fn evict_one(&mut self) {
        let n = self.slots.len();
        debug_assert!(n > 0);
        let mut victim = self.rng.below_usize(n);
        let mut victim_score = self.score.score(&self.slots[victim].1, self.clock);
        for _ in 1..self.k {
            let cand = self.rng.below_usize(n);
            let s = self.score.score(&self.slots[cand].1, self.clock);
            if s < victim_score {
                victim = cand;
                victim_score = s;
            }
        }
        let removed = self.slots.swap_remove(victim);
        self.map.remove(&removed.0);
        self.used_bytes -= u64::from(removed.1.size);
        if victim < self.slots.len() {
            self.map.insert(self.slots[victim].0, victim as u32);
        }
    }

    fn remove_key(&mut self, key: u64) {
        if let Some(&i) = self.map.get(&key) {
            let i = i as usize;
            let removed = self.slots.swap_remove(i);
            self.map.remove(&removed.0);
            self.used_bytes -= u64::from(removed.1.size);
            if i < self.slots.len() {
                self.map.insert(self.slots[i].0, i as u32);
            }
        }
    }
}

impl<S: EvictionScore> Cache for SampledCache<S> {
    fn access(&mut self, req: &Request) -> bool {
        self.clock += 1;
        let size = req.size.max(1);
        if let Some(&i) = self.map.get(&req.key) {
            self.stats.hits += 1;
            let meta = &mut self.slots[i as usize].1;
            meta.last_access = self.clock;
            meta.hits += 1;
            let old = meta.size;
            meta.size = size;
            self.used_bytes = self.used_bytes - u64::from(old) + u64::from(size);
            while self.used() > self.capacity.limit() && self.slots.len() > 1 {
                self.evict_one();
            }
            if self.used() > self.capacity.limit() {
                self.remove_key(req.key);
            }
            return true;
        }
        self.stats.misses += 1;
        if u64::from(size) > self.capacity.limit() {
            return false;
        }
        let need = match self.capacity {
            Capacity::Objects(_) => 1,
            Capacity::Bytes(_) => u64::from(size),
        };
        while self.used() + need > self.capacity.limit() {
            self.evict_one();
        }
        let meta = ObjectMeta {
            key: req.key,
            inserted_at: self.clock,
            last_access: self.clock,
            hits: 0,
            size,
        };
        let i = self.slots.len() as u32;
        self.slots.push((req.key, meta));
        self.map.insert(req.key, i);
        self.used_bytes += u64::from(size);
        false
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::klru::KLruCache;
    use krr_core::rng::Xoshiro256;

    fn get(key: u64) -> Request {
        Request::unit(key)
    }

    #[test]
    fn lru_score_matches_klru_statistically() {
        // Same policy, two implementations: miss ratios must agree.
        let cap = Capacity::Objects(200);
        let mut generic = SampledCache::new(cap, 5, LruScore, 1);
        let mut tuned = KLruCache::new(cap, 5, 2);
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..200_000 {
            let u = rng.unit();
            let r = get((u * u * 2_000.0) as u64);
            generic.access(&r);
            tuned.access(&r);
        }
        let a = generic.stats().miss_ratio();
        let b = tuned.stats().miss_ratio();
        assert!((a - b).abs() < 0.01, "generic {a} vs tuned {b}");
    }

    #[test]
    fn hyperbolic_beats_sampled_lru_under_scan_pollution() {
        // Hyperbolic's hit-rate priority ejects one-shot scan objects fast.
        let cap = Capacity::Objects(1_000);
        let mut hyper = SampledCache::new(cap, 10, HyperbolicScore::default(), 4);
        let mut lru = KLruCache::new(cap, 10, 4);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut scan = 1_000_000u64;
        for _ in 0..300_000 {
            let r = if rng.unit() < 0.3 {
                scan += 1;
                get(scan)
            } else {
                let u = rng.unit();
                get((u * u * 3_000.0) as u64)
            };
            hyper.access(&r);
            lru.access(&r);
        }
        let h = hyper.stats().miss_ratio();
        let l = lru.stats().miss_ratio();
        assert!(h < l - 0.01, "hyperbolic {h} should beat K-LRU {l}");
    }

    #[test]
    fn per_byte_variant_prefers_evicting_large_objects() {
        let cap = Capacity::Bytes(10_000);
        let mut c = SampledCache::new(cap, 10, HyperbolicScore { per_byte: true }, 6);
        // Insert equally-hot small and large objects, then churn.
        for round in 0..200u64 {
            for k in 0..50u64 {
                c.access(&Request::get(k, 20)); // small
                c.access(&Request::get(1_000 + k, 400)); // large
            }
            let _ = round;
        }
        let small_alive = (0..50u64).filter(|&k| c.map.contains_key(&k)).count();
        let large_alive = (0..50u64)
            .filter(|&k| c.map.contains_key(&(1_000 + k)))
            .count();
        assert!(
            small_alive > large_alive,
            "per-byte scoring should keep small objects ({small_alive} vs {large_alive})"
        );
    }

    #[test]
    fn capacity_enforced() {
        let mut c = SampledCache::new(Capacity::Bytes(1_000), 3, HyperbolicScore::default(), 7);
        let mut rng = Xoshiro256::seed_from_u64(8);
        for _ in 0..20_000 {
            c.access(&Request::get(rng.below(300), (rng.below(90) + 10) as u32));
            assert!(c.used_bytes() <= 1_000);
        }
        assert_eq!(c.map.len(), c.slots.len());
    }
}
