//! Ground-truth MRC construction by multi-size simulation (§5.1).
//!
//! "A simulator can only generate one miss ratio for a given cache size with
//! one pass of the input trace. To generate an MRC, we can run the simulator
//! multiple times for different cache sizes and using interpolation" — each
//! cache size is an independent single pass, so the sweep fans out over
//! scoped threads with a shared atomic work index (no locks, no shared
//! mutable state; per-size RNG seeds keep runs deterministic regardless of
//! scheduling).

use crate::klru::KLruCache;
use crate::lru::ExactLru;
use crate::{Cache, Capacity};
use krr_core::mrc::Mrc;
use krr_trace::Request;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Replacement policy to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Exact LRU.
    ExactLru,
    /// Random sampling-based LRU with sampling size `k`.
    KLru {
        /// Eviction sampling size.
        k: u32,
        /// Sample with replacement (Redis convention) or without.
        with_replacement: bool,
    },
}

impl Policy {
    /// Redis-style K-LRU (with replacement).
    #[must_use]
    pub fn klru(k: u32) -> Self {
        Policy::KLru {
            k,
            with_replacement: true,
        }
    }

    fn build(&self, capacity: Capacity, seed: u64) -> Box<dyn Cache> {
        match *self {
            Policy::ExactLru => Box::new(ExactLru::new(capacity)),
            Policy::KLru {
                k,
                with_replacement,
            } => Box::new(KLruCache::with_mode(capacity, k, with_replacement, seed)),
        }
    }
}

/// Units of the capacity axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Capacities count objects.
    Objects,
    /// Capacities count bytes.
    Bytes,
}

impl Unit {
    fn capacity(&self, c: u64) -> Capacity {
        match self {
            Unit::Objects => Capacity::Objects(c),
            Unit::Bytes => Capacity::Bytes(c),
        }
    }
}

/// Simulates one cache size over the whole trace; returns the miss ratio.
#[must_use]
pub fn miss_ratio(trace: &[Request], policy: Policy, capacity: Capacity, seed: u64) -> f64 {
    let mut cache = policy.build(capacity, seed);
    for r in trace {
        cache.access(r);
    }
    cache.stats().miss_ratio()
}

/// Simulates every capacity in `capacities` (in parallel when
/// `threads > 1`) and returns the interpolated MRC, anchored at
/// `(0, 1.0)`.
#[must_use]
pub fn simulate_mrc(
    trace: &[Request],
    policy: Policy,
    unit: Unit,
    capacities: &[u64],
    seed: u64,
    threads: usize,
) -> Mrc {
    assert!(!capacities.is_empty(), "need at least one cache size");
    let threads = threads.max(1).min(capacities.len());
    let next = AtomicUsize::new(0);
    let partials: Vec<Vec<(f64, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= capacities.len() {
                            break;
                        }
                        let c = capacities[i];
                        // Seed varies per capacity so probabilistic policies
                        // don't reuse one random stream at every size.
                        let m =
                            miss_ratio(trace, policy, unit.capacity(c), seed ^ ((i as u64) << 32));
                        local.push((c as f64, m));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("simulation thread panicked"))
            .collect()
    });
    let mut points = Vec::with_capacity(capacities.len() + 1);
    points.push((0.0, 1.0));
    points.extend(partials.into_iter().flatten());
    let mut mrc = Mrc::from_points(points);
    mrc.make_monotone();
    mrc
}

/// Working-set size of a trace: distinct objects and total distinct bytes
/// (first-size convention).
#[must_use]
pub fn working_set(trace: &[Request]) -> (u64, u64) {
    let s = krr_trace::stats(trace);
    (s.distinct, s.working_set_bytes)
}

/// `n` capacities evenly spread over `(0, max]`, deduplicated and nonzero —
/// the paper's evaluation grid.
#[must_use]
pub fn even_capacities(max: u64, n: usize) -> Vec<u64> {
    assert!(n >= 1 && max >= 1);
    let mut v: Vec<u64> = (1..=n as u64)
        .map(|i| (max * i / n as u64).max(1))
        .collect();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use krr_trace::patterns;

    #[test]
    fn even_capacities_spread() {
        assert_eq!(even_capacities(100, 4), vec![25, 50, 75, 100]);
        assert_eq!(even_capacities(3, 6), vec![1, 2, 3]);
    }

    #[test]
    fn lru_mrc_of_loop_is_a_cliff() {
        let trace = patterns::loop_trace(100, 50_000);
        let caps = even_capacities(120, 12);
        let mrc = simulate_mrc(&trace, Policy::ExactLru, Unit::Objects, &caps, 1, 4);
        // Below the loop size: ~all misses. At/above: ~all hits.
        assert!(mrc.eval(90.0) > 0.95);
        assert!(mrc.eval(100.0) < 0.01);
    }

    #[test]
    fn klru_k1_mrc_of_loop_is_smooth() {
        let trace = patterns::loop_trace(100, 50_000);
        let caps = even_capacities(120, 12);
        let mrc = simulate_mrc(&trace, Policy::klru(1), Unit::Objects, &caps, 1, 4);
        // Random replacement on a loop reaches the steady state
        // 1 - m = (1 - 1/C)^(m*L): m(50) ≈ 0.80, m(90) ≈ 0.20 for L = 100 —
        // a smooth decrease where LRU is a cliff.
        let m50 = mrc.eval(50.0);
        let m90 = mrc.eval(90.0);
        assert!((m50 - 0.80).abs() < 0.07, "m(50) = {m50}");
        assert!((m90 - 0.20).abs() < 0.10, "m(90) = {m90}");
        assert!(
            mrc.eval(25.0) > m50 && m50 > mrc.eval(75.0),
            "smooth decrease"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let trace = patterns::uniform_random(500, 20_000, 7);
        let caps = even_capacities(500, 8);
        let par = simulate_mrc(&trace, Policy::klru(4), Unit::Objects, &caps, 3, 4);
        let seq = simulate_mrc(&trace, Policy::klru(4), Unit::Objects, &caps, 3, 1);
        assert_eq!(
            par.points(),
            seq.points(),
            "determinism regardless of threading"
        );
    }

    #[test]
    fn mrc_is_monotone() {
        let trace = patterns::uniform_random(300, 30_000, 9);
        let caps = even_capacities(300, 10);
        let mrc = simulate_mrc(&trace, Policy::klru(2), Unit::Objects, &caps, 5, 4);
        let mut prev = f64::INFINITY;
        for &(_, m) in mrc.points() {
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn working_set_counts() {
        let trace = patterns::loop_trace(42, 1000);
        assert_eq!(working_set(&trace), (42, 42));
    }
}
