//! Exact LRU cache (§5.1's ground truth for the LRU curves).
//!
//! A slab-allocated intrusive doubly-linked list plus a hash index gives
//! O(1) access, promotion and eviction with no per-node allocation. Capacity
//! can be counted in objects (hardware-cache convention) or bytes (software
//! KV-cache convention, needed for the variable-size experiments).

use crate::{Cache, CacheStats, Capacity};
use krr_core::hashing::KeyMap;
use krr_trace::Request;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    size: u32,
    prev: u32,
    next: u32,
}

/// Exact LRU cache.
#[derive(Debug, Clone)]
pub struct ExactLru {
    capacity: Capacity,
    map: KeyMap<u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    used_bytes: u64,
    stats: CacheStats,
}

impl ExactLru {
    /// Creates an empty cache with the given capacity.
    #[must_use]
    pub fn new(capacity: Capacity) -> Self {
        assert!(capacity.limit() > 0, "capacity must be positive");
        Self {
            capacity,
            map: KeyMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            used_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of resident objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently resident.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Keys from most- to least-recently used (diagnostic/test use).
    #[must_use]
    pub fn recency_order(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push(self.nodes[i as usize].key);
            i = self.nodes[i as usize].next;
        }
        out
    }

    fn used(&self) -> u64 {
        match self.capacity {
            Capacity::Objects(_) => self.map.len() as u64,
            Capacity::Bytes(_) => self.used_bytes,
        }
    }

    fn unlink(&mut self, i: u32) {
        let node = self.nodes[i as usize];
        if node.prev != NIL {
            self.nodes[node.prev as usize].next = node.next;
        } else {
            self.head = node.next;
        }
        if node.next != NIL {
            self.nodes[node.next as usize].prev = node.prev;
        } else {
            self.tail = node.prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        self.nodes[i as usize].prev = NIL;
        self.nodes[i as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn evict_tail(&mut self) {
        debug_assert!(self.tail != NIL);
        let victim = self.tail;
        self.unlink(victim);
        let node = self.nodes[victim as usize];
        self.map.remove(&node.key);
        self.used_bytes -= u64::from(node.size);
        self.free.push(victim);
    }

    fn insert(&mut self, key: u64, size: u32) {
        let node = Node {
            key,
            size,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        self.map.insert(key, i);
        self.used_bytes += u64::from(size);
        self.push_front(i);
    }
}

impl Cache for ExactLru {
    fn access(&mut self, req: &Request) -> bool {
        let size = req.size.max(1);
        if let Some(&i) = self.map.get(&req.key) {
            self.stats.hits += 1;
            // Promote and refresh size.
            self.unlink(i);
            let old = self.nodes[i as usize].size;
            self.nodes[i as usize].size = size;
            self.used_bytes = self.used_bytes - u64::from(old) + u64::from(size);
            self.push_front(i);
            // A growing object can push the cache over its byte budget.
            while self.used() > self.capacity.limit() && self.map.len() > 1 {
                self.evict_tail();
            }
            if self.used() > self.capacity.limit() {
                // The resized object alone no longer fits; drop it (the
                // access itself was still a hit). It sits at the list head,
                // which equals the tail when it is the only resident.
                self.evict_tail();
            }
            return true;
        }
        self.stats.misses += 1;
        if u64::from(size) > self.capacity.limit() {
            // Object larger than the whole cache: bypass.
            return false;
        }
        let need = match self.capacity {
            Capacity::Objects(_) => 1,
            Capacity::Bytes(_) => u64::from(size),
        };
        while self.used() + need > self.capacity.limit() {
            self.evict_tail();
        }
        self.insert(req.key, size);
        false
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(key: u64) -> Request {
        Request::unit(key)
    }

    #[test]
    fn hits_and_misses_basic() {
        let mut c = ExactLru::new(Capacity::Objects(2));
        assert!(!c.access(&get(1)));
        assert!(!c.access(&get(2)));
        assert!(c.access(&get(1)));
        assert!(!c.access(&get(3))); // evicts 2 (LRU)
        assert!(!c.access(&get(2)));
        assert!(c.access(&get(3)));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ExactLru::new(Capacity::Objects(3));
        for k in [1, 2, 3] {
            c.access(&get(k));
        }
        c.access(&get(1)); // order: 1,3,2
        c.access(&get(4)); // evicts 2
        assert_eq!(c.recency_order(), vec![4, 1, 3]);
        assert!(!c.access(&get(2)));
    }

    #[test]
    fn byte_capacity_counts_sizes() {
        let mut c = ExactLru::new(Capacity::Bytes(100));
        assert!(!c.access(&Request::get(1, 60)));
        assert!(!c.access(&Request::get(2, 30)));
        assert_eq!(c.used_bytes(), 90);
        assert!(!c.access(&Request::get(3, 30))); // evicts 1
        assert_eq!(c.recency_order(), vec![3, 2]);
        assert_eq!(c.used_bytes(), 60);
    }

    #[test]
    fn oversized_object_bypasses() {
        let mut c = ExactLru::new(Capacity::Bytes(100));
        c.access(&Request::get(1, 50));
        assert!(!c.access(&Request::get(2, 500)));
        assert_eq!(c.len(), 1);
        assert!(c.access(&Request::get(1, 50)), "resident object unharmed");
    }

    #[test]
    fn resize_on_hit_can_trigger_eviction() {
        let mut c = ExactLru::new(Capacity::Bytes(100));
        c.access(&Request::get(1, 40));
        c.access(&Request::get(2, 40));
        assert!(c.access(&Request::get(2, 90))); // grows; must evict 1
        assert_eq!(c.recency_order(), vec![2]);
        assert_eq!(c.used_bytes(), 90);
    }

    #[test]
    fn inclusion_property_holds_across_sizes() {
        // LRU is a stack algorithm: contents of a size-C cache are a subset
        // of a size-(C+1) cache at every step.
        use krr_core::rng::Xoshiro256;
        let mut small = ExactLru::new(Capacity::Objects(8));
        let mut large = ExactLru::new(Capacity::Objects(9));
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..5000 {
            let r = get(rng.below(50));
            small.access(&r);
            large.access(&r);
            let big: std::collections::HashSet<u64> = large.recency_order().into_iter().collect();
            for k in small.recency_order() {
                assert!(big.contains(&k), "inclusion violated for key {k}");
            }
        }
    }

    #[test]
    fn loop_larger_than_cache_never_hits() {
        let mut c = ExactLru::new(Capacity::Objects(10));
        for i in 0..1000u64 {
            assert!(
                !c.access(&get(i % 11)),
                "LRU must thrash on loop > capacity"
            );
        }
    }

    #[test]
    fn slab_reuses_freed_nodes() {
        let mut c = ExactLru::new(Capacity::Objects(2));
        for k in 0..100u64 {
            c.access(&get(k));
        }
        assert!(c.nodes.len() <= 3, "slab grew to {}", c.nodes.len());
    }
}
