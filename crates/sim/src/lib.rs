//! # krr-sim
//!
//! Ground-truth cache simulators for the KRR reproduction: exact LRU, the
//! random sampling-based K-LRU policy the paper models, and a parallel
//! multi-size simulation harness that produces "actual" MRCs by
//! interpolation (§5.1).
//!
//! ```
//! use krr_sim::{Cache, Capacity, KLruCache};
//! use krr_trace::Request;
//!
//! let mut cache = KLruCache::new(Capacity::Objects(100), 5, 42);
//! assert!(!cache.access(&Request::unit(1))); // cold miss
//! assert!(cache.access(&Request::unit(1))); // hit
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod arc;
pub mod cms;
pub mod dlru;
pub mod klfu;
pub mod klru;
pub mod lru;
pub mod minisim;
pub mod mrc_sim;
pub mod opt;
pub mod sampled;
pub mod wtinylfu;

pub use arc::ArcCache;
pub use cms::{CountMinSketch, TinyLfuScore};
pub use dlru::DLruCache;
pub use klfu::KLfuCache;
pub use klru::KLruCache;
pub use lru::ExactLru;
pub use minisim::MiniSim;
pub use mrc_sim::{even_capacities, miss_ratio, simulate_mrc, working_set, Policy, Unit};
pub use sampled::{EvictionScore, HyperbolicScore, LruScore, SampledCache};
pub use wtinylfu::WTinyLfuCache;

use krr_trace::Request;

/// Cache capacity in objects or bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capacity {
    /// Maximum number of resident objects.
    Objects(u64),
    /// Maximum resident bytes.
    Bytes(u64),
}

impl Capacity {
    /// The numeric limit, in whichever unit.
    #[must_use]
    pub fn limit(&self) -> u64 {
        match *self {
            Capacity::Objects(n) | Capacity::Bytes(n) => n,
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests that found their object resident.
    pub hits: u64,
    /// Requests that did not.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio over all requests seen (1.0 when empty).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A trace-driven cache.
pub trait Cache {
    /// Processes one request; returns true on a hit.
    fn access(&mut self, req: &Request) -> bool;

    /// Hit/miss counters so far.
    fn stats(&self) -> CacheStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_edge_cases() {
        assert_eq!(CacheStats::default().miss_ratio(), 1.0);
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn capacity_limit() {
        assert_eq!(Capacity::Objects(10).limit(), 10);
        assert_eq!(Capacity::Bytes(4096).limit(), 4096);
    }
}
