//! `krr` — command-line front end for the KRR toolkit.
//!
//! ```text
//! krr generate --workload msr:web --requests 1000000 --out trace.csv
//! krr stats trace.csv
//! krr model --k 5 --rate 0.01 trace.csv        # one-pass KRR MRC
//! krr simulate --policy klru:5 --sizes 25 trace.csv
//! krr compare --k 5 trace.csv                  # KRR vs ground truth
//! ```
//!
//! Workload specs: `msr:<name>` (web, src1, …), `ycsb-c:<alpha>`,
//! `ycsb-e:<alpha>`, `twitter:<cluster>` (26.0, 34.1, 45.0, 52.7),
//! `zipf:<alpha>:<keys>`, `loop:<len>`.

use krr::prelude::*;
use krr::trace::{io as trace_io, msr, patterns, twitter, ycsb};
use std::io::{BufReader, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "stats" => cmd_stats(rest),
        "model" => cmd_model(rest),
        "simulate" => cmd_simulate(rest),
        "compare" => cmd_compare(rest),
        "analyze" => cmd_analyze(rest),
        "plot" => cmd_plot(rest),
        "partition" => cmd_partition(rest),
        "load" => cmd_load(rest),
        "doctor" => cmd_doctor(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
krr — miss ratio curves for random sampling-based LRU caches

USAGE:
  krr generate --workload <spec> [--requests N] [--scale S] [--seed X]
               [--var-size] [--out FILE]
  krr stats <trace.csv>
  krr model [--k K] [--rate R] [--updater backward|topdown|naive]
            [--bytes] [--seed X] [--shards S] [--threads T] [--metrics]
            [--metrics-out FILE] [--trace-out FILE]
            [--stats-every N] [--stats-out FILE]
            [--checkpoint-every N] [--checkpoint-out FILE]
            [--resume FILE] [--serve ADDR] [--serve-hold SECS]
            [--tenants N] [--budget B] [--mrc-out DIR]
            (<trace.csv> | --workload <spec> ...)
            (with --shards > 1, trace files are streamed through the
             route-once pipeline and never fully materialized;
             --trace-out dumps a Chrome trace for ui.perfetto.dev,
             --stats-every/--stats-out emit a krr-stats-v1 JSONL
             timeline of windowed metric deltas;
             --checkpoint-out writes an atomic krr-ckpt-v1 checkpoint
             every --checkpoint-every refs (default 1000000), and
             --resume restores one and finishes the same trace file
             with bit-identical results;
             --serve binds a live exposition HTTP server, e.g.
             127.0.0.1:9184, answering /metrics /mrc /stats /trace
             /healthz while the run is in flight; --serve-hold keeps
             it up SECS seconds after the run so short traces can
             still be scraped (default 0: shut down immediately);
             --tenants N switches to fleet mode: the trace splits into
             N tenants by key % N, each profiled by its own KRR model;
             stdout becomes a per-tenant summary (miss ratio at
             --budget, default 4096 objects), --mrc-out writes one
             tenant-<id>.csv per tenant, and --serve additionally
             answers /tenants and /mrc?tenant=ID)
  krr simulate [--policy lru|klru:K|klfu:K] [--sizes N] [--bytes]
               (<trace.csv> | --workload <spec> ...)
  krr compare [--k K] [--sizes N] (<trace.csv> | --workload <spec> ...)
  krr analyze (<trace.csv> | --workload <spec> ...)
  krr plot [--width W] [--height H] <mrc.csv> [<mrc.csv> ...]
  krr partition --budget B [--quantum Q]
                (<mrc.csv> [<mrc.csv> ...] | --live HOST:PORT)
                (--live scrapes a running exposition server's
                 /tenants?format=csv and each /mrc?tenant=ID&format=csv
                 and partitions the live fleet instead of trace files)
  krr load [--qps Q] [--arrival constant|poisson|ramp|burst] [--seed X]
           [--connections C] [--pipeline D] [--addr HOST:PORT] [--ab]
           [--maxmemory BYTES] [--samples S] [--no-prefill] [--json FILE]
           [--tenants N]
           (<trace.csv> | --workload <spec> [--requests N] ...)
           (open-loop RESP load run against mini-Redis: every arrival
            time is fixed up front from --qps/--arrival/--seed, so a
            slow server inflates the measured tail instead of thinning
            the load; without --addr an embedded server is started;
            --tenants N makes connection c TENANT-select tenant c%N
            during setup, and an embedded server profiles each tenant
            in a fleet arena;
            --ab replays the identical schedule twice — MRC profiling
            plus live /metrics scraping off, then on — and reports the
            p99 delta and a krr doctor diagnosis of the profiled side;
            --json writes the krr-load-v1 report)
  krr doctor (--live HOST:PORT | --offline [DIR]
              | [--metrics-in FILE] [--exemplars FILE] [--bench FILE])
             [--json FILE]
             (counter-signature diagnosis from docs/PERFORMANCE.md as
              machine-checked rules; --live scrapes a running exposition
              server's /metrics?format=json and /exemplars, --offline
              validates every BENCH_*.json and krr-*-v1 artifact under
              DIR (default .) against its schema and then diagnoses
              BENCH_pipeline.json, --metrics-in/--exemplars/--bench read
              dumped artifacts; --json writes the krr-doctor-v1 report;
              exit status is nonzero when an --offline artifact fails
              schema validation — diagnoses themselves are advisory)

WORKLOAD SPECS:
  msr:<web|src1|src2|proj|usr|hm|rsrch|mds|prn|prxy|stg|ts|wdev>
  ycsb-c:<alpha>   ycsb-e:<alpha>   twitter:<26.0|34.1|45.0|52.7>
  zipf:<alpha>:<keys>   loop:<len>";

/// Minimal flag parser: `--name value` pairs plus positional arguments.
struct Flags {
    pairs: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if name == "var-size"
                    || name == "bytes"
                    || name == "metrics"
                    || name == "ab"
                    || name == "no-prefill"
                    || name == "offline"
                {
                    pairs.push((name.to_string(), "true".to_string()));
                } else {
                    let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    pairs.push((name.to_string(), v.clone()));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Self { pairs, positional })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }

    fn flag(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

fn build_workload(
    spec: &str,
    n: usize,
    seed: u64,
    scale: f64,
    var_size: bool,
) -> Result<Trace, String> {
    let (kind, arg) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad workload spec {spec:?}"))?;
    match kind {
        "msr" => {
            let t = msr::MsrTrace::ALL
                .iter()
                .find(|t| t.name() == arg)
                .ok_or_else(|| format!("unknown MSR trace {arg:?}"))?;
            let p = msr::profile(*t);
            Ok(if var_size {
                p.generate_var_size(n, seed, scale)
            } else {
                p.generate(n, seed, scale)
            })
        }
        "ycsb-c" => {
            let alpha: f64 = arg.parse().map_err(|_| format!("bad alpha {arg:?}"))?;
            let records = ((1_000_000.0 * scale) as u64).max(1_000);
            Ok(ycsb::WorkloadC::new(records, alpha).generate(n, seed))
        }
        "ycsb-e" => {
            let alpha: f64 = arg.parse().map_err(|_| format!("bad alpha {arg:?}"))?;
            let records = ((100_000.0 * scale) as u64).max(500);
            let mut t = ycsb::WorkloadE::new(records, alpha).generate(n, seed);
            t.truncate(n);
            Ok(t)
        }
        "twitter" => {
            let c = twitter::TwitterCluster::ALL
                .iter()
                .find(|c| c.name().trim_start_matches("cluster") == arg)
                .ok_or_else(|| format!("unknown Twitter cluster {arg:?}"))?;
            Ok(twitter::profile(*c).generate(n, seed, scale, var_size))
        }
        "zipf" => {
            let (alpha, keys) = arg
                .split_once(':')
                .ok_or_else(|| "zipf spec is zipf:<alpha>:<keys>".to_string())?;
            let alpha: f64 = alpha.parse().map_err(|_| format!("bad alpha {alpha:?}"))?;
            let keys: u64 = keys
                .parse()
                .map_err(|_| format!("bad key count {keys:?}"))?;
            Ok(ycsb::WorkloadC::new(keys, alpha).generate(n, seed))
        }
        "loop" => {
            let len: u64 = arg
                .parse()
                .map_err(|_| format!("bad loop length {arg:?}"))?;
            Ok(patterns::loop_trace(len, n))
        }
        other => Err(format!("unknown workload kind {other:?}")),
    }
}

/// Loads the trace from a positional CSV path or synthesizes from flags.
fn load_trace(f: &Flags) -> Result<Trace, String> {
    if let Some(path) = f.positional.first() {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        return trace_io::read_csv(BufReader::new(file)).map_err(|e| e.to_string());
    }
    let spec = f
        .get("workload")
        .ok_or("need a trace file or --workload <spec>")?;
    build_workload(
        spec,
        f.num("requests", 400_000usize)?,
        f.num("seed", 42u64)?,
        f.num("scale", 0.1f64)?,
        f.flag("var-size"),
    )
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let spec = f.get("workload").ok_or("--workload <spec> is required")?;
    let trace = build_workload(
        spec,
        f.num("requests", 400_000usize)?,
        f.num("seed", 42u64)?,
        f.num("scale", 0.1f64)?,
        f.flag("var-size"),
    )?;
    match f.get("out") {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            trace_io::write_csv(std::io::BufWriter::new(file), &trace)
                .map_err(|e| e.to_string())?;
            eprintln!("wrote {} requests to {path}", trace.len());
        }
        None => {
            trace_io::write_csv(std::io::stdout().lock(), &trace).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let trace = load_trace(&f)?;
    let s = krr::trace::stats(&trace);
    println!("requests:           {}", s.requests);
    println!("distinct objects:   {}", s.distinct);
    println!("working set bytes:  {}", s.working_set_bytes);
    println!("set fraction:       {:.4}", s.set_fraction);
    Ok(())
}

fn cmd_model(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let k: f64 = f.num("k", 5.0)?;
    let rate: f64 = f.num("rate", 1.0)?;
    let updater = match f.get("updater").unwrap_or("backward") {
        "backward" => UpdaterKind::Backward,
        "topdown" | "top-down" => UpdaterKind::TopDown,
        "naive" => UpdaterKind::Naive,
        other => return Err(format!("unknown updater {other:?}")),
    };
    let mut cfg = KrrConfig::new(k)
        .updater(updater)
        .seed(f.num("seed", 1u64)?);
    if rate < 1.0 {
        cfg = cfg.sampling(rate);
    }
    if f.flag("bytes") {
        cfg = cfg.byte_level(2, 4096);
    }
    let tenants: u64 = f.num("tenants", 0u64)?;
    if tenants > 0 {
        return cmd_model_fleet(&f, cfg, tenants);
    }
    let shards: usize = f.num("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    let ckpt_out = f.get("checkpoint-out").map(str::to_string);
    let mut ckpt_every: u64 = f.num("checkpoint-every", 0u64)?;
    if ckpt_out.is_some() && ckpt_every == 0 {
        ckpt_every = 1_000_000;
    }
    if ckpt_every > 0 && ckpt_out.is_none() {
        return Err("--checkpoint-every needs --checkpoint-out <file>".into());
    }
    let resume_path = f.get("resume").map(str::to_string);
    let checkpointing = ckpt_every > 0 || resume_path.is_some();
    if checkpointing && f.positional.is_empty() {
        return Err(
            "checkpointing needs a positional trace file (resume offsets refer to it)".into(),
        );
    }
    // Open the checkpoint before any observability is wired up: restored
    // metrics must land in the registry before the stats timeline takes
    // its first snapshot.
    let ckpt = match &resume_path {
        Some(path) => {
            Some(krr::core::CheckpointReader::open(path).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let trace_out = f.get("trace-out").map(str::to_string);
    let stats_out = f.get("stats-out").map(str::to_string);
    let mut stats_every: u64 = f.num("stats-every", 0u64)?;
    if stats_out.is_some() && stats_every == 0 {
        stats_every = 100_000;
    }
    let serve_addr = f.get("serve").map(str::to_string);
    let want_metrics = f.flag("metrics")
        || f.get("metrics-out").is_some()
        || stats_every > 0
        || serve_addr.is_some();
    let registry = want_metrics.then(|| std::sync::Arc::new(krr::core::MetricsRegistry::new()));
    let mrc_cell = serve_addr
        .as_ref()
        .map(|_| std::sync::Arc::new(krr::core::MrcCell::new()));
    let stats_ring = serve_addr
        .as_ref()
        .map(|_| std::sync::Arc::new(krr::core::StatsRing::new()));
    let recorder = trace_out
        .as_ref()
        .map(|_| std::sync::Arc::new(krr::core::FlightRecorder::new()));
    if let (Some(ckpt), Some(reg)) = (&ckpt, &registry) {
        if let Some(mut dec) = ckpt.section(krr::core::checkpoint::SECTION_METRICS) {
            let snap = krr::core::MetricsSnapshot::load_state(&mut dec)
                .map_err(|e| format!("resume metrics: {e}"))?;
            reg.absorb(&snap);
        }
    }
    // (seen refs, trace byte offset, trace line number, stats rows written).
    let resume_state = match &ckpt {
        Some(ckpt) => {
            let mut dec = ckpt
                .require(krr::core::checkpoint::SECTION_STREAM)
                .map_err(|e| format!("resume: {e}"))?;
            Some(read_stream_state(&mut dec).map_err(|e| format!("resume stream state: {e}"))?)
        }
        None => None,
    };
    let mut timeline: Option<krr::core::StatsTimeline<Box<dyn Write>>> = if stats_every > 0 {
        let reg = registry.as_ref().expect("stats imply a registry");
        let out: Box<dyn Write> = match &stats_out {
            Some(path) => {
                // On resume, append: the previous run's rows stay and the
                // timeline continues where the checkpoint left off.
                let file = if resume_path.is_some() {
                    std::fs::OpenOptions::new()
                        .append(true)
                        .create(true)
                        .open(path)
                } else {
                    std::fs::File::create(path)
                }
                .map_err(|e| format!("{path}: {e}"))?;
                Box::new(std::io::BufWriter::new(file))
            }
            None => Box::new(std::io::stderr()),
        };
        // Tee the JSONL rows into the /stats ring when serving.
        let out: Box<dyn Write> = match &stats_ring {
            Some(ring) => Box::new(krr::core::expo::RingWriter::new(
                Some(out),
                std::sync::Arc::clone(ring),
            )),
            None => out,
        };
        Some(krr::core::StatsTimeline::new(
            std::sync::Arc::clone(reg),
            out,
            stats_every,
        ))
    } else {
        None
    };
    if let (Some((seen0, _, _, rows)), Some(t)) = (resume_state, timeline.as_mut()) {
        t.resume_at(seen0, rows);
    }
    // Start serving only after any checkpoint restore has been absorbed, so
    // the first scrape of a resumed run already sees the restored counters
    // (and a fresh process after a crash simply rebinds the address).
    let mut expo = match &serve_addr {
        Some(addr) => {
            let sources = krr::core::ExpoSources {
                metrics: registry.clone(),
                mrc: mrc_cell.clone(),
                stats: stats_ring.clone(),
                trace: recorder.clone(),
                tenants: None,
                exemplars: None,
                profiler: recorder
                    .as_ref()
                    .map(|r| std::sync::Arc::clone(r.profiler())),
            };
            let srv = krr::core::ExpoServer::start(addr.as_str(), sources)
                .map_err(|e| format!("--serve {addr}: {e}"))?;
            eprintln!("serving live metrics on http://{}/metrics", srv.addr());
            Some(srv)
        }
        None => None,
    };
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = f.num("threads", default_threads)?;
    if threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    // References seen so far; drives the stats timeline windows.
    let mut seen: u64 = resume_state.map_or(0, |(s, _, _, _)| s);
    let mut stats_err: Option<std::io::Error> = None;
    let t0 = std::time::Instant::now();
    let (mrc, st) = if shards > 1 || checkpointing {
        let mut bank = match &ckpt {
            Some(ckpt) => {
                let mut dec = ckpt
                    .require(krr::core::checkpoint::SECTION_SHARDED)
                    .map_err(|e| format!("resume: {e}"))?;
                let bank = krr::core::sharded::ShardedKrr::load_state(&mut dec)
                    .map_err(|e| format!("resume: {e}"))?;
                eprintln!(
                    "resumed at {seen} refs ({} shards; model flags come from the checkpoint)",
                    bank.num_shards()
                );
                bank
            }
            None => krr::core::sharded::ShardedKrr::new(&cfg, shards),
        };
        if let Some(reg) = &registry {
            bank.set_metrics(std::sync::Arc::clone(reg));
        }
        if let Some(rec) = &recorder {
            bank.set_recorder(std::sync::Arc::clone(rec));
        }
        let tick = |seen: &mut u64,
                    timeline: &mut Option<krr::core::StatsTimeline<Box<dyn Write>>>,
                    stats_err: &mut Option<std::io::Error>| {
            *seen += 1;
            if let Some(t) = timeline.as_mut() {
                if let Err(e) = t.offer(*seen) {
                    stats_err.get_or_insert(e);
                }
            }
        };
        if let Some(path) = f.positional.first() {
            // Stream the file straight into the pipeline: the trace is
            // never materialized, so file size doesn't bound memory. On
            // resume, seek past the prefix the checkpoint already covers.
            let mut stream = match resume_state {
                Some((_, off, lineno, _)) => {
                    trace_io::CsvStream::open_at(path, off, lineno as usize)
                }
                None => trace_io::CsvStream::open(path),
            }
            .map_err(|e| format!("{path}: {e}"))?;
            if let Some(rec) = &recorder {
                stream = stream.with_recorder(rec.register("csv-reader"), 0);
            }
            if checkpointing {
                // Chunked: drain --checkpoint-every refs per pipeline run,
                // then write an atomic checkpoint at the batch boundary.
                // Chunk boundaries don't change results: per-shard order is
                // global arrival order either way.
                let chunk = if ckpt_every > 0 { ckpt_every } else { u64::MAX };
                loop {
                    let before = seen;
                    let mut read_err = None;
                    let refs = (&mut stream)
                        .map_while(|res| match res {
                            Ok(r) => Some((r.key, r.size)),
                            Err(e) => {
                                read_err = Some(e);
                                None
                            }
                        })
                        .inspect(|_| tick(&mut seen, &mut timeline, &mut stats_err))
                        .take(usize::try_from(chunk).unwrap_or(usize::MAX));
                    bank.process_stream(refs, threads);
                    if let Some(e) = read_err {
                        return Err(e.to_string());
                    }
                    // Chunk boundary: refresh the live /mrc view.
                    if let Some(cell) = &mrc_cell {
                        cell.publish(bank.mrc());
                    }
                    let advanced = seen - before;
                    if let Some(out) = &ckpt_out {
                        if advanced > 0 {
                            write_model_checkpoint(
                                out,
                                &bank,
                                registry.as_deref(),
                                seen,
                                stream.byte_offset(),
                                stream.lineno() as u64,
                                timeline.as_ref().map_or(0, |t| t.rows()),
                            )?;
                        }
                    }
                    if advanced < chunk {
                        break;
                    }
                }
            } else {
                let mut read_err = None;
                let refs = stream
                    .map_while(|res| match res {
                        Ok(r) => Some((r.key, r.size)),
                        Err(e) => {
                            read_err = Some(e);
                            None
                        }
                    })
                    .inspect(|_| tick(&mut seen, &mut timeline, &mut stats_err));
                bank.process_stream(refs, threads);
                if let Some(e) = read_err {
                    return Err(e.to_string());
                }
            }
        } else {
            let trace = load_trace(&f)?;
            let refs = trace
                .iter()
                .map(|r| (r.key, r.size))
                .inspect(|_| tick(&mut seen, &mut timeline, &mut stats_err));
            bank.process_stream(refs, threads);
        }
        (bank.mrc(), bank.stats())
    } else {
        let trace = load_trace(&f)?;
        let mut model = KrrModel::new(cfg);
        if let Some(reg) = &registry {
            model.set_metrics(std::sync::Arc::clone(reg));
        }
        if let Some(rec) = &recorder {
            model.set_recorder(rec.register("model"));
        }
        for r in &trace {
            model.access(r.key, r.size);
            seen += 1;
            if let Some(t) = timeline.as_mut() {
                if let Err(e) = t.offer(seen) {
                    stats_err.get_or_insert(e);
                }
            }
        }
        if let Some(reg) = &registry {
            use krr::core::Footprint as _;
            reg.publish_footprint(&model.footprint());
        }
        (model.mrc(), model.stats())
    };
    if let Some(cell) = &mrc_cell {
        cell.publish(mrc.clone());
    }
    if let Some(t) = timeline.as_mut() {
        if let Err(e) = t.finish(seen) {
            stats_err.get_or_insert(e);
        }
    }
    if let Some(e) = stats_err {
        return Err(format!("stats timeline: {e}"));
    }
    let elapsed = t0.elapsed();
    let mut out = std::io::BufWriter::new(std::io::stdout().lock());
    let _ = writeln!(out, "cache_size,miss_ratio");
    // Downsample evenly to at most 2000 points so huge histograms stay
    // plottable without chopping the tail off the curve.
    let pts: Vec<(f64, f64)> = mrc
        .points()
        .iter()
        .copied()
        .filter(|&(x, _)| x > 0.0)
        .collect();
    let step = (pts.len() / 2_000).max(1);
    for (i, &(x, y)) in pts.iter().enumerate() {
        if i % step != 0 && i != pts.len() - 1 {
            continue;
        }
        // Ignore EPIPE so `krr model ... | head` exits cleanly.
        if writeln!(out, "{x:.0},{y:.5}").is_err() {
            break;
        }
    }
    drop(out);
    eprintln!(
        "processed {} refs ({} sampled, {} distinct) in {elapsed:?}",
        st.processed, st.sampled, st.distinct
    );
    if let Some(reg) = &registry {
        let snap = reg.snapshot();
        if f.flag("metrics") {
            eprintln!("{}", snap.render_info());
        }
        if let Some(path) = f.get("metrics-out") {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            krr::core::persist::write_metrics_json(std::io::BufWriter::new(file), &snap)
                .map_err(|e| e.to_string())?;
            eprintln!("wrote metrics snapshot to {path}");
        }
    }
    if let Some(t) = &timeline {
        if let Some(path) = &stats_out {
            eprintln!("wrote {} stats rows to {path}", t.rows());
        }
    }
    if let (Some(path), Some(rec)) = (&trace_out, &recorder) {
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        rec.write_chrome_trace(std::io::BufWriter::new(file))
            .map_err(|e| e.to_string())?;
        eprintln!("wrote Chrome trace to {path} (open it in ui.perfetto.dev)");
    }
    // Explicit shutdown (Drop would too) so the listener thread is joined
    // and the port released before the process reports success.
    serve_hold(&f, expo.is_some())?;
    if let Some(srv) = expo.as_mut() {
        srv.shutdown();
    }
    Ok(())
}

/// `--serve-hold SECS`: a fast run tears the `--serve` server down before
/// anything can scrape it, so optionally keep it up after the trace ends.
fn serve_hold(f: &Flags, serving: bool) -> Result<(), String> {
    let Some(raw) = f.get("serve-hold") else {
        return Ok(());
    };
    let secs: u64 = raw
        .parse()
        .map_err(|_| format!("--serve-hold {raw}: expected seconds"))?;
    if !serving {
        return Err("--serve-hold needs --serve".into());
    }
    if secs > 0 {
        eprintln!("holding the exposition server for {secs}s");
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }
    Ok(())
}

/// `krr model --tenants N`: fleet mode. The trace is split into `N`
/// synthetic tenants by `key % N` (a stand-in for real tenant tags) and
/// profiled by a [`krr::core::FleetArena`] — one KRR model per tenant,
/// routed through the shared pipeline in one pass. Stdout is a per-tenant
/// summary CSV; `--mrc-out DIR` writes each tenant's MRC as
/// `tenant-<id>.csv` (the files `krr partition` consumes), and `--serve`
/// exposes `/tenants` + `/mrc?tenant=ID` live while the run is in flight
/// (`--serve-hold SECS` keeps the server up after it).
fn cmd_model_fleet(f: &Flags, cfg: KrrConfig, tenants: u64) -> Result<(), String> {
    use krr::core::fleet::{FleetArena, FleetCell, FleetConfig};
    let trace = load_trace(f)?;
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = f.num("threads", default_threads)?;
    if threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    let budget: f64 = f.num("budget", 4096.0f64)?;
    if budget <= 0.0 || budget.is_nan() {
        return Err("--budget must be positive".into());
    }
    let serve_addr = f.get("serve").map(str::to_string);
    let want_metrics = f.flag("metrics") || f.get("metrics-out").is_some() || serve_addr.is_some();
    let registry = want_metrics.then(|| std::sync::Arc::new(krr::core::MetricsRegistry::new()));
    let mut arena = FleetArena::new(FleetConfig::new(cfg).budget(budget));
    if let Some(reg) = &registry {
        arena.set_metrics(std::sync::Arc::clone(reg));
    }
    let cell = serve_addr
        .as_ref()
        .map(|_| std::sync::Arc::new(FleetCell::new()));
    let mut expo = match &serve_addr {
        Some(addr) => {
            let sources = krr::core::ExpoSources {
                metrics: registry.clone(),
                tenants: cell.clone(),
                ..krr::core::ExpoSources::default()
            };
            let srv = krr::core::ExpoServer::start(addr.as_str(), sources)
                .map_err(|e| format!("--serve {addr}: {e}"))?;
            eprintln!("serving the fleet on http://{}/tenants", srv.addr());
            Some(srv)
        }
        None => None,
    };
    let refs: Vec<(u64, u64, u32)> = trace
        .iter()
        .map(|r| (r.key % tenants, r.key, r.size))
        .collect();
    let t0 = std::time::Instant::now();
    // Chunked so a live scraper watches the fleet converge mid-run.
    for chunk in refs.chunks(1_000_000) {
        arena.process_parallel(chunk, threads);
        if let Some(cell) = &cell {
            cell.publish(arena.view());
        }
    }
    let elapsed = t0.elapsed();
    if let Some(cell) = &cell {
        cell.publish(arena.view());
    }
    if let Some(dir) = f.get("mrc-out") {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
        let mut ids = arena.tenant_ids();
        ids.sort_unstable();
        for &id in &ids {
            let mrc = arena.tenant_mrc(id).expect("registered tenant has an MRC");
            let path = format!("{dir}/tenant-{id}.csv");
            let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
            krr::core::persist::write_mrc(std::io::BufWriter::new(file), &mrc)
                .map_err(|e| format!("{path}: {e}"))?;
        }
        eprintln!("wrote {} per-tenant MRCs to {dir}/", ids.len());
    }
    let mut rows = arena.summary();
    rows.sort_unstable_by_key(|r| r.id);
    let mut out = std::io::BufWriter::new(std::io::stdout().lock());
    let _ = writeln!(
        out,
        "tenant,refs,resident,resident_bytes,miss_ratio_at_budget"
    );
    for r in &rows {
        if writeln!(
            out,
            "{},{},{},{},{:.5}",
            r.id,
            r.refs,
            r.resident,
            r.resident_bytes,
            r.miss_ratio_ppm as f64 / 1e6
        )
        .is_err()
        {
            break;
        }
    }
    drop(out);
    let st = arena.stats();
    eprintln!(
        "processed {} refs across {} tenants ({} sampled, {} distinct) in {elapsed:?}",
        st.processed,
        arena.len(),
        st.sampled,
        st.distinct
    );
    if let Some(reg) = &registry {
        let snap = reg.snapshot();
        if f.flag("metrics") {
            eprintln!("{}", snap.render_info());
        }
        if let Some(path) = f.get("metrics-out") {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            krr::core::persist::write_metrics_json(std::io::BufWriter::new(file), &snap)
                .map_err(|e| e.to_string())?;
            eprintln!("wrote metrics snapshot to {path}");
        }
    }
    serve_hold(f, expo.is_some())?;
    if let Some(srv) = expo.as_mut() {
        srv.shutdown();
    }
    Ok(())
}

/// Decodes the `STRM` section: (seen refs, byte offset, line number,
/// stats rows written).
fn read_stream_state(
    dec: &mut krr::core::checkpoint::Dec<'_>,
) -> std::io::Result<(u64, u64, u64, u64)> {
    Ok((dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?))
}

/// Writes one atomic `krr model` checkpoint: profiler bank (`SHRD`),
/// metrics snapshot (`METR`, when metrics are on) and stream position
/// (`STRM`).
fn write_model_checkpoint(
    path: &str,
    bank: &krr::core::sharded::ShardedKrr,
    registry: Option<&krr::core::MetricsRegistry>,
    seen: u64,
    byte_offset: u64,
    lineno: u64,
    stats_rows: u64,
) -> Result<(), String> {
    use krr::core::checkpoint::{SECTION_METRICS, SECTION_SHARDED, SECTION_STREAM};
    let mut w = krr::core::CheckpointWriter::new();
    bank.save_state(w.section(SECTION_SHARDED));
    if let Some(reg) = registry {
        reg.snapshot().save_state(w.section(SECTION_METRICS));
    }
    w.section(SECTION_STREAM)
        .put_u64(seen)
        .put_u64(byte_offset)
        .put_u64(lineno)
        .put_u64(stats_rows);
    w.write_atomic(path).map_err(|e| format!("{path}: {e}"))
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let trace = load_trace(&f)?;
    let n_sizes: usize = f.num("sizes", 25)?;
    let bytes = f.flag("bytes");
    let (objects, ws_bytes) = krr::sim::working_set(&trace);
    let max = if bytes { ws_bytes } else { objects };
    let caps = even_capacities(max, n_sizes);
    let unit = if bytes { Unit::Bytes } else { Unit::Objects };
    let policy_spec = f.get("policy").unwrap_or("klru:5");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mrc = match policy_spec {
        "lru" => simulate_mrc(&trace, Policy::ExactLru, unit, &caps, 1, threads),
        spec if spec.starts_with("klru:") => {
            let k: u32 = spec[5..]
                .parse()
                .map_err(|_| format!("bad policy {spec:?}"))?;
            simulate_mrc(&trace, Policy::klru(k), unit, &caps, 1, threads)
        }
        spec if spec.starts_with("klfu:") => {
            let k: u32 = spec[5..]
                .parse()
                .map_err(|_| format!("bad policy {spec:?}"))?;
            // No Policy variant for LFU: run each size directly.
            let mut points = vec![(0.0, 1.0)];
            for &c in &caps {
                let cap = if bytes {
                    Capacity::Bytes(c)
                } else {
                    Capacity::Objects(c)
                };
                let mut cache = KLfuCache::new(cap, k, 1);
                for r in &trace {
                    cache.access(r);
                }
                points.push((c as f64, cache.stats().miss_ratio()));
            }
            Mrc::from_points(points)
        }
        other => return Err(format!("unknown policy {other:?}")),
    };
    let mut out = std::io::BufWriter::new(std::io::stdout().lock());
    let _ = writeln!(out, "cache_size,miss_ratio");
    for &(x, y) in mrc.points().iter().filter(|&&(x, _)| x > 0.0) {
        if writeln!(out, "{x:.0},{y:.5}").is_err() {
            break;
        }
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let trace = load_trace(&f)?;
    let k: u32 = f.num("k", 5)?;
    let n_sizes: usize = f.num("sizes", 25)?;
    let (objects, _) = krr::sim::working_set(&trace);
    let caps = even_capacities(objects, n_sizes);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sim = simulate_mrc(&trace, Policy::klru(k), Unit::Objects, &caps, 1, threads);
    let mut model = KrrModel::new(KrrConfig::new(f64::from(k)).seed(2));
    for r in &trace {
        model.access_key(r.key);
    }
    let krr_mrc = model.mrc();
    println!("cache_size,simulated,krr,abs_err");
    let mut sum = 0.0;
    for &c in &caps {
        let a = sim.eval(c as f64);
        let b = krr_mrc.eval(c as f64);
        sum += (a - b).abs();
        println!("{c},{a:.5},{b:.5},{:.5}", (a - b).abs());
    }
    eprintln!(
        "MAE over {} sizes: {:.5}",
        caps.len(),
        sum / caps.len() as f64
    );
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let trace = load_trace(&f)?;
    let c = krr::trace::analyze::characterize(&trace);
    println!("requests:        {}", c.requests);
    println!("distinct keys:   {}", c.distinct);
    println!("cold fraction:   {:.4}", c.cold_fraction);
    match (c.median_reuse, c.p90_reuse) {
        (Some(m), Some(p)) => println!("reuse time:      median {m}, p90 {p}"),
        _ => println!("reuse time:      (no re-references)"),
    }
    println!("zipf exponent:   {:.2}", c.zipf_exponent);
    println!("loop signature:  {:.3}", c.loop_signature);
    println!(
        "classification:  Type {} ({})",
        if c.is_type_a() { "A" } else { "B" },
        if c.is_type_a() {
            "K-LRU sampling size matters; model it with KRR"
        } else {
            "K-insensitive; any K (or an LRU model) will do"
        }
    );
    Ok(())
}

fn cmd_plot(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    if f.positional.is_empty() {
        return Err("plot needs one or more cache_size,miss_ratio CSV files".into());
    }
    let mut curves = Vec::new();
    for path in &f.positional {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let mrc = krr::core::persist::read_mrc(BufReader::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        curves.push((path.clone(), mrc));
    }
    let width: usize = f.num("width", 64)?;
    let height: usize = f.num("height", 16)?;
    print!("{}", render_ascii_mrc(&curves, width, height));
    Ok(())
}

/// Renders MRCs as an ASCII chart: x = cache size (linear), y = miss ratio.
fn render_ascii_mrc(curves: &[(String, krr::Mrc)], width: usize, height: usize) -> String {
    let max_x = curves
        .iter()
        .map(|(_, m)| m.max_size())
        .fold(0.0f64, f64::max)
        .max(1.0);
    let marks = ['*', 'o', '+', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width]; height];
    for (ci, (_, mrc)) in curves.iter().enumerate() {
        let mark = marks[ci % marks.len()];
        for (col, x) in (0..width).map(|c| (c, max_x * (c as f64 + 0.5) / width as f64)) {
            let y = mrc.eval(x).clamp(0.0, 1.0);
            let row = ((1.0 - y) * (height as f64 - 1.0)).round() as usize;
            grid[row][col] = mark;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = 1.0 - r as f64 / (height as f64 - 1.0);
        out.push_str(&format!("{label:5.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("      +{}\n", "-".repeat(width)));
    out.push_str(&format!("       0{:>w$.0}\n", max_x, w = width - 1));
    for (ci, (name, _)) in curves.iter().enumerate() {
        out.push_str(&format!("       {} = {}\n", marks[ci % marks.len()], name));
    }
    out
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    use krr::core::partition::{allocate_greedy, allocate_optimal, Tenant};
    let f = Flags::parse(args)?;
    let live = f.get("live").map(str::to_string);
    if f.positional.is_empty() && live.is_none() {
        return Err(
            "partition needs one or more cache_size,miss_ratio CSV files or --live HOST:PORT"
                .into(),
        );
    }
    if !f.positional.is_empty() && live.is_some() {
        return Err("--live and MRC files are mutually exclusive".into());
    }
    let budget: u64 = f.num("budget", 0)?;
    if budget == 0 {
        return Err("--budget is required and must be positive".into());
    }
    let quantum: u64 = f.num("quantum", (budget / 100).max(1))?;
    let mut tenants = Vec::new();
    if let Some(live) = &live {
        // Scrape the live fleet: tenant ids from /tenants?format=csv, then
        // each curve as the exact persist::write_mrc bytes, so a live
        // allocation is bit-for-bit the offline allocation over the same
        // curves.
        let addr: std::net::SocketAddr = live
            .parse()
            .map_err(|_| format!("--live: cannot parse {live:?}"))?;
        let (status, _, body) = krr::core::expo::http_get(addr, "/tenants?format=csv")
            .map_err(|e| format!("--live {live}: {e}"))?;
        if status != 200 {
            return Err(format!(
                "--live {live}/tenants: HTTP {status}: {}",
                body.trim()
            ));
        }
        let mut ids = Vec::new();
        for line in body.lines().skip(1).filter(|l| !l.trim().is_empty()) {
            let id = line.split(',').next().unwrap_or("");
            ids.push(
                id.parse::<u64>()
                    .map_err(|_| format!("/tenants row with bad id: {line:?}"))?,
            );
        }
        ids.sort_unstable();
        for id in ids {
            let path = format!("/mrc?tenant={id}&format=csv");
            let (status, _, body) = krr::core::expo::http_get(addr, &path)
                .map_err(|e| format!("--live {live}{path}: {e}"))?;
            if status != 200 {
                return Err(format!(
                    "--live {live}{path}: HTTP {status}: {}",
                    body.trim()
                ));
            }
            let mrc = krr::core::persist::read_mrc(body.as_bytes())
                .map_err(|e| format!("{path}: {e}"))?;
            tenants.push(Tenant::new(id.to_string(), mrc, 1.0));
        }
        if tenants.is_empty() {
            return Err(format!("--live {live}: fleet has no tenants yet"));
        }
    }
    for path in &f.positional {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let mrc = krr::core::persist::read_mrc(BufReader::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        tenants.push(Tenant::new(path.clone(), mrc, 1.0));
    }
    let greedy = allocate_greedy(&tenants, budget, quantum);
    let optimal = allocate_optimal(&tenants, budget, quantum);
    println!("{:>32} {:>12} {:>12}", "tenant", "greedy", "optimal");
    for (i, t) in tenants.iter().enumerate() {
        println!(
            "{:>32} {:>12} {:>12}",
            t.name, greedy.per_tenant[i], optimal.per_tenant[i]
        );
    }
    println!(
        "total weighted miss:  greedy {:.4}   optimal {:.4}",
        greedy.total_miss_rate, optimal.total_miss_rate
    );
    Ok(())
}

fn cmd_load(args: &[String]) -> Result<(), String> {
    use krr::load::{AbConfig, Arrival, LoadConfig, Schedule};
    let f = Flags::parse(args)?;
    let trace = load_trace(&f)?;
    if trace.is_empty() {
        return Err("trace is empty".into());
    }
    let qps: f64 = f.num("qps", 20_000.0)?;
    if !(qps > 0.0 && qps.is_finite()) {
        return Err("--qps must be positive".into());
    }
    let arrival = Arrival::parse(f.get("arrival").unwrap_or("poisson"))?;
    let seed: u64 = f.num("seed", 42)?;
    let load_cfg = LoadConfig {
        connections: f.num("connections", 4usize)?.max(1),
        pipeline_depth: f.num("pipeline", 32usize)?.max(1),
        tenants: f.num("tenants", 0usize)?,
    };
    let schedule = Schedule::generate(arrival, qps, trace.len(), seed);
    let prefill = !f.flag("no-prefill");

    let report = if let Some(addr) = f.get("addr") {
        // External server: plain one-sided run.
        if f.flag("ab") {
            return Err("--ab needs embedded servers; drop --addr".into());
        }
        let addr: std::net::SocketAddr = addr
            .parse()
            .map_err(|_| format!("--addr: cannot parse {addr:?}"))?;
        if prefill {
            let keys = krr::load::prefill(addr, &trace).map_err(|e| e.to_string())?;
            eprintln!("prefilled {keys} keys");
        }
        krr::load::run(addr, &schedule, &trace, &load_cfg).map_err(|e| e.to_string())?
    } else {
        let maxmemory: u64 = f.num("maxmemory", 64u64 << 20)?;
        let samples: usize = f.num("samples", 5usize)?;
        let ab_cfg = AbConfig {
            maxmemory,
            samples,
            seed,
            prefill,
            ..AbConfig::default()
        };
        if f.flag("ab") {
            let (report, metrics_json) =
                krr::load::run_ab_forensics(&schedule, &trace, &load_cfg, &ab_cfg)
                    .map_err(|e| e.to_string())?;
            // Post-mortem the profiled side: the same counter-signature
            // rules `krr doctor` runs, on the run we just measured.
            if let Some(doc) = metrics_json
                .as_deref()
                .and_then(|s| krr::core::json::parse(s).ok())
            {
                let counters = krr::core::doctor::DoctorCounters::from_metrics_json(&doc);
                eprint!("{}", krr::core::doctor::diagnose(&counters).render_text());
            }
            report
        } else {
            let mut store = krr::redis::MiniRedis::new(maxmemory, samples, seed);
            if load_cfg.tenants > 0 {
                // Tenant-selected connections should land somewhere: give
                // the embedded server a fleet arena keyed by samples-as-K.
                store.enable_fleet_profiling(krr::core::fleet::FleetConfig::new(KrrConfig::new(
                    samples as f64,
                )));
            }
            let mut server = krr::redis::Server::start(store).map_err(|e| e.to_string())?;
            if prefill {
                let keys = krr::load::prefill(server.addr(), &trace).map_err(|e| e.to_string())?;
                eprintln!("prefilled {keys} keys");
            }
            let report = krr::load::run(server.addr(), &schedule, &trace, &load_cfg)
                .map_err(|e| e.to_string())?;
            server.shutdown();
            report
        }
    };

    print!("{}", report.render_text());
    if let Some(path) = f.get("json") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote krr-load-v1 report to {path}");
    }
    Ok(())
}

fn cmd_doctor(args: &[String]) -> Result<(), String> {
    use krr::core::doctor::{diagnose, validate_artifact, DoctorCounters};
    use krr::core::json;
    let f = Flags::parse(args)?;

    let read_json = |path: &str| -> Result<json::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };

    let report = if let Some(live) = f.get("live") {
        // Live mode: the exposition server's JSON snapshot is the exact
        // krr-metrics-v1 document the offline path reads from a file.
        let addr: std::net::SocketAddr = live
            .parse()
            .map_err(|_| format!("--live: cannot parse {live:?}"))?;
        let (status, _, body) = krr::core::expo::http_get(addr, "/metrics?format=json")
            .map_err(|e| format!("--live {live}: {e}"))?;
        if status != 200 {
            return Err(format!("--live {live}/metrics: HTTP {status}"));
        }
        let doc = json::parse(&body).map_err(|e| format!("--live {live}/metrics: {e}"))?;
        let mut counters = DoctorCounters::from_metrics_json(&doc);
        // Exemplars are optional: a model-only server has no ring.
        if let Ok((200, _, body)) = krr::core::expo::http_get(addr, "/exemplars") {
            if let Ok(doc) = json::parse(&body) {
                counters.join_exemplars(&doc);
            }
        }
        diagnose(&counters)
    } else if f.flag("offline") {
        // Offline mode: sweep the artifact directory, hold every
        // committed krr-*-v1 document to its grow-only schema, then
        // diagnose the pipeline bench the same way a live scrape would be.
        let dir = f.positional.first().map_or(".", String::as_str);
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{dir}: {e}"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                name.ends_with(".json") && (name.starts_with("BENCH_") || name.contains("krr-"))
            })
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(format!("{dir}: no BENCH_*.json artifacts to validate"));
        }
        let mut invalid = 0usize;
        let mut pipeline_doc = None;
        for path in &paths {
            let shown = path.display();
            match std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|text| json::parse(&text))
                .and_then(|doc| {
                    let schema = validate_artifact(&doc)?;
                    Ok((doc, schema))
                }) {
                Ok((doc, schema)) => {
                    println!("valid   {shown} ({schema})");
                    if schema == "krr-bench-pipeline-v2" {
                        pipeline_doc = Some(doc);
                    }
                }
                Err(e) => {
                    println!("INVALID {shown}: {e}");
                    invalid += 1;
                }
            }
        }
        if invalid > 0 {
            return Err(format!("{invalid} artifact(s) failed schema validation"));
        }
        let Some(doc) = pipeline_doc else {
            println!("all artifacts valid; no pipeline bench to diagnose");
            return Ok(());
        };
        diagnose(&DoctorCounters::from_bench_pipeline(&doc))
    } else {
        let mut counters = None;
        if let Some(path) = f.get("metrics-in") {
            counters = Some(DoctorCounters::from_metrics_json(&read_json(path)?));
        }
        if let Some(path) = f.get("bench") {
            if counters.is_some() {
                return Err("--metrics-in and --bench are mutually exclusive".into());
            }
            counters = Some(DoctorCounters::from_bench_pipeline(&read_json(path)?));
        }
        let Some(mut counters) = counters else {
            return Err("need --live, --offline, --metrics-in, or --bench".into());
        };
        if let Some(path) = f.get("exemplars") {
            counters.join_exemplars(&read_json(path)?);
        }
        diagnose(&counters)
    };

    print!("{}", report.render_text());
    if let Some(path) = f.get("json") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote krr-doctor-v1 report to {path}");
    }
    Ok(())
}
