//! # krr
//!
//! One-pass Miss Ratio Curve construction for random sampling-based LRU
//! caches — a from-scratch Rust reproduction of *Efficient Modeling of
//! Random Sampling-Based LRU* (Yang, Wang & Wang, ICPP 2021).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] — the KRR stack algorithm, fast updaters, spatial
//!   sampling, byte-level distances, and the [`KrrModel`] profiler.
//! * [`trace`] — synthetic MSR/YCSB/Twitter-like workloads.
//! * [`sim`] — ground-truth exact-LRU and K-LRU simulators.
//! * [`redis`] — a mini-Redis with the real eviction machinery.
//! * [`load`] — an open-loop RESP load harness with seeded arrival
//!   schedules and tail-latency reports.
//! * [`baselines`] — Olken, SHARDS and AET LRU baselines.
//!
//! ## Example: model a Redis cache (maxmemory-samples = 5)
//!
//! ```
//! use krr::prelude::*;
//!
//! let trace = krr::trace::ycsb::WorkloadC::new(5_000, 0.99).generate(50_000, 42);
//! let mut model = KrrModel::new(KrrConfig::new(5.0));
//! for r in &trace {
//!     model.access_key(r.key);
//! }
//! let mrc = model.mrc();
//! assert!(mrc.eval(5_000.0) < mrc.eval(50.0));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use krr_baselines as baselines;
pub use krr_core as core;
pub use krr_load as load;
pub use krr_redis as redis;
pub use krr_sim as sim;
pub use krr_trace as trace;

pub use krr_core::{
    even_sizes, Access, KrrConfig, KrrModel, ModelStats, Mrc, SdHistogram, SizeArray, SizeMode,
    SpatialFilter, UpdaterKind,
};

/// Common imports for applications.
pub mod prelude {
    pub use krr_baselines::{
        Aet, CounterStacks, HyperLogLog, Mimir, OlkenLru, Shards, ShardsMax, StatStack,
    };
    pub use krr_core::{even_sizes, KrrConfig, KrrModel, Mrc, ShardedKrr, SizeMode, UpdaterKind};
    pub use krr_redis::{MiniRedis, SamplingMode};
    pub use krr_sim::{
        even_capacities, simulate_mrc, Cache, Capacity, ExactLru, KLfuCache, KLruCache, MiniSim,
        Policy, Unit,
    };
    pub use krr_trace::{Op, Request, Trace};
}
