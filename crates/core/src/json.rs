//! Minimal recursive-descent JSON parser.
//!
//! Just enough JSON to read back the repo's machine-readable artifacts
//! (`krr-metrics-v1`, `krr-stats-v1`, `krr-load-v1`, `BENCH_*.json`,
//! Chrome trace dumps) without an external crate, keeping tier-1
//! hermetic. Promoted from the test-support tree so runtime consumers —
//! `krr doctor` joining offline artifacts, the CI artifact validator —
//! share one implementation with the golden-schema tests. Accepts strict
//! JSON; numbers land in `f64`, which is exact for the u64 counters under
//! 2^53 that the schemas emit.
//!
//! ```
//! use krr_core::json::{parse, Json};
//!
//! let doc = parse(r#"{"schema":"krr-metrics-v1","pipeline":{"stalls":3}}"#).unwrap();
//! assert_eq!(doc.get("schema").and_then(Json::as_str), Some("krr-metrics-v1"));
//! assert_eq!(doc.path(&["pipeline", "stalls"]).and_then(Json::as_num), Some(3.0));
//! ```

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Json>),
    /// Object (insertion-ordered)
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested field lookup: `doc.path(&["pipeline", "ring", "wraps"])`.
    #[must_use]
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object field list, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of this value's type, for golden-schema comparisons.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "num",
            Json::Str(_) => "str",
            Json::Arr(_) => "arr",
            Json::Obj(_) => "obj",
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a human-readable message naming the byte offset of the first
/// syntax error, or a trailing-garbage complaint if the document does not
/// span the whole input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs don't appear in our outputs;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, however many bytes long.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    self.pos += c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(r#"{"a":[1,2,{"b":null}],"c":true,"d":"x\n"}"#).unwrap();
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("d").and_then(Json::as_str), Some("x\n"));
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn path_walks_nested_objects() {
        let doc = parse(r#"{"a":{"b":{"c":7}}}"#).unwrap();
        assert_eq!(doc.path(&["a", "b", "c"]).and_then(Json::as_num), Some(7.0));
        assert_eq!(doc.path(&["a", "z"]), None);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }
}
