//! Miss Ratio Curves and the MAE accuracy metric (§2.1, §5.3).

use crate::histogram::SdHistogram;

/// A miss ratio curve: monotone non-increasing miss ratio as a function of
/// cache size (objects or bytes, matching how it was built).
#[derive(Debug, Clone, PartialEq)]
pub struct Mrc {
    /// `(cache_size, miss_ratio)` points with strictly increasing sizes.
    points: Vec<(f64, f64)>,
}

impl Mrc {
    /// Builds an MRC from explicit points. Points are sorted by size;
    /// duplicate sizes keep the last value.
    #[must_use]
    pub fn from_points(mut points: Vec<(f64, f64)>) -> Self {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        points.dedup_by(|b, a| {
            if (a.0 - b.0).abs() < f64::EPSILON {
                a.1 = b.1;
                true
            } else {
                false
            }
        });
        Self { points }
    }

    /// Builds an MRC from a stack-distance histogram. `scale` multiplies the
    /// cache-size axis — pass `1/R` when the histogram was collected under
    /// spatial sampling with rate `R` (SHARDS expansion), else `1.0`.
    #[must_use]
    pub fn from_histogram(hist: &SdHistogram, scale: f64) -> Self {
        let total = hist.total();
        if total == 0 {
            return Self {
                points: vec![(0.0, 1.0)],
            };
        }
        let mut points = Vec::with_capacity(hist.num_bins() + 1);
        points.push((0.0, 1.0));
        let mut hits = 0u64;
        for (boundary, count) in hist.iter() {
            hits += count;
            let miss = (total - hits) as f64 / total as f64;
            points.push((boundary as f64 * scale, miss));
        }
        Self { points }
    }

    /// The underlying points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Miss ratio at `size` by linear interpolation between surrounding
    /// points; clamps to the first/last point outside the covered range.
    #[must_use]
    pub fn eval(&self, size: f64) -> f64 {
        match self.points.as_slice() {
            [] => 1.0,
            [only] => only.1,
            points => {
                if size <= points[0].0 {
                    return points[0].1;
                }
                if size >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                // Largest index with points[i].0 <= size.
                let i = points.partition_point(|p| p.0 <= size) - 1;
                let (x0, y0) = points[i];
                let (x1, y1) = points[i + 1];
                let t = (size - x0) / (x1 - x0);
                y0 + t * (y1 - y0)
            }
        }
    }

    /// Step evaluation: the miss ratio recorded at the largest point with
    /// size ≤ `size` (the exact semantics of a histogram-derived MRC).
    #[must_use]
    pub fn eval_step(&self, size: f64) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        let i = self.points.partition_point(|p| p.0 <= size);
        if i == 0 {
            return 1.0;
        }
        self.points[i - 1].1
    }

    /// Largest cache size covered by the curve.
    #[must_use]
    pub fn max_size(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.0)
    }

    /// Mean absolute error against `other`, evaluated at `sizes`
    /// (the paper's accuracy metric, §5.3).
    #[must_use]
    pub fn mae(&self, other: &Mrc, sizes: &[f64]) -> f64 {
        assert!(!sizes.is_empty(), "MAE needs at least one evaluation point");
        let sum: f64 = sizes
            .iter()
            .map(|&s| (self.eval(s) - other.eval(s)).abs())
            .sum();
        sum / sizes.len() as f64
    }

    /// Enforces monotonicity (non-increasing miss ratio), fixing the small
    /// inversions that probabilistic models can produce.
    pub fn make_monotone(&mut self) {
        let mut floor = f64::INFINITY;
        for p in &mut self.points {
            if p.1 > floor {
                p.1 = floor;
            } else {
                floor = p.1;
            }
        }
    }
}

/// `n` cache sizes evenly distributed over `(0, max]` — the paper's
/// evaluation grid ("40 different cache sizes that are evenly distributed
/// over the workload's working set size").
#[must_use]
pub fn even_sizes(max: f64, n: usize) -> Vec<f64> {
    assert!(n >= 1 && max > 0.0);
    (1..=n).map(|i| max * i as f64 / n as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_histogram_basic() {
        let mut h = SdHistogram::new(1);
        h.record(1);
        h.record(2);
        h.record(2);
        h.record_cold();
        let mrc = Mrc::from_histogram(&h, 1.0);
        assert_eq!(mrc.eval_step(0.0), 1.0);
        assert_eq!(mrc.eval_step(1.0), 0.75);
        assert_eq!(mrc.eval_step(2.0), 0.25);
        assert_eq!(mrc.eval_step(100.0), 0.25);
    }

    #[test]
    fn spatial_scale_expands_x_axis() {
        let mut h = SdHistogram::new(1);
        h.record(5);
        let mrc = Mrc::from_histogram(&h, 1000.0);
        assert_eq!(mrc.eval_step(4999.0), 1.0);
        assert_eq!(mrc.eval_step(5000.0), 0.0);
    }

    #[test]
    fn linear_eval_interpolates() {
        let mrc = Mrc::from_points(vec![(0.0, 1.0), (10.0, 0.5), (20.0, 0.1)]);
        assert!((mrc.eval(5.0) - 0.75).abs() < 1e-12);
        assert!((mrc.eval(15.0) - 0.3).abs() < 1e-12);
        assert_eq!(mrc.eval(-1.0), 1.0);
        assert_eq!(mrc.eval(25.0), 0.1);
    }

    #[test]
    fn histogram_mrc_is_monotone() {
        let mut h = SdHistogram::new(2);
        for d in [1u64, 1, 3, 7, 9, 9, 20, 2] {
            h.record(d);
        }
        h.record_cold();
        let mrc = Mrc::from_histogram(&h, 1.0);
        let mut prev = f64::INFINITY;
        for &(_, m) in mrc.points() {
            assert!(m <= prev);
            prev = m;
        }
    }

    #[test]
    fn mae_of_identical_curves_is_zero() {
        let mrc = Mrc::from_points(vec![(0.0, 1.0), (10.0, 0.2)]);
        let sizes = even_sizes(10.0, 40);
        assert_eq!(mrc.mae(&mrc.clone(), &sizes), 0.0);
    }

    #[test]
    fn mae_measures_offset() {
        let a = Mrc::from_points(vec![(0.0, 0.5), (10.0, 0.5)]);
        let b = Mrc::from_points(vec![(0.0, 0.3), (10.0, 0.3)]);
        assert!((a.mae(&b, &even_sizes(10.0, 5)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn make_monotone_clips_inversions() {
        let mut mrc = Mrc::from_points(vec![(0.0, 1.0), (1.0, 0.4), (2.0, 0.45), (3.0, 0.2)]);
        mrc.make_monotone();
        assert_eq!(mrc.points()[2].1, 0.4);
        assert_eq!(mrc.points()[3].1, 0.2);
    }

    #[test]
    fn even_sizes_covers_range() {
        let s = even_sizes(100.0, 4);
        assert_eq!(s, vec![25.0, 50.0, 75.0, 100.0]);
    }

    #[test]
    fn eval_step_exact_boundaries() {
        let mrc = Mrc::from_points(vec![(0.0, 1.0), (10.0, 0.4), (20.0, 0.1)]);
        assert_eq!(mrc.eval_step(9.999), 1.0);
        assert_eq!(mrc.eval_step(10.0), 0.4);
        assert_eq!(mrc.eval_step(19.999), 0.4);
        assert_eq!(mrc.eval_step(20.0), 0.1);
    }

    #[test]
    fn empty_and_singleton_curves() {
        let empty = Mrc::from_points(vec![]);
        assert_eq!(empty.eval(5.0), 1.0);
        assert_eq!(empty.eval_step(5.0), 1.0);
        assert_eq!(empty.max_size(), 0.0);
        let single = Mrc::from_points(vec![(3.0, 0.7)]);
        assert_eq!(single.eval(0.0), 0.7);
        assert_eq!(single.eval(100.0), 0.7);
        assert_eq!(single.eval_step(2.0), 1.0);
        assert_eq!(single.eval_step(3.0), 0.7);
    }

    #[test]
    fn from_points_sorts_and_dedups() {
        let mrc = Mrc::from_points(vec![(5.0, 0.5), (1.0, 0.9), (5.0, 0.4)]);
        assert_eq!(mrc.points().len(), 2);
        assert_eq!(mrc.points()[1], (5.0, 0.4));
    }
}
