//! Embedded HTTP/1.1 exposition server: point a scraper (or `curl`) at a
//! running profiler.
//!
//! Everything the repo's observability layers produce — the
//! `krr-metrics-v1` registry, the live MRC, the windowed stats timeline,
//! the flight-recorder trace, the accuracy watchdog — was push/file-based
//! until now. [`ExpoServer`] exposes the same data over plain HTTP with no
//! dependencies: a blocking [`TcpListener`] in one background thread (the
//! same style as the mini-Redis server), handling one request per
//! connection.
//!
//! | Endpoint          | Content                                                |
//! |-------------------|--------------------------------------------------------|
//! | `/metrics`        | [`MetricsRegistry`] as OpenMetrics/Prometheus text     |
//! |                   | (`?format=json` for the `krr-metrics-v1` snapshot;     |
//! |                   | with an exemplar source, the command-latency histogram |
//! |                   | carries OpenMetrics exemplars on its bucket lines)     |
//! | `/mrc`            | latest published MRC as `krr-mrc-v1` JSON              |
//! | `/mrc?tenant=ID`  | one tenant's MRC from the published [`FleetCell`] view |
//! |                   | (both accept `&format=csv` for `persist::write_mrc`    |
//! |                   | bytes, round-tripping through `persist::read_mrc`)     |
//! | `/tenants`        | fleet summary as `krr-tenants-v1` JSON (`?format=csv`  |
//! |                   | for CSV rows, `?top=K` to keep only the K hottest)     |
//! | `/stats`          | recent `krr-stats-v1` timeline rows as a JSON array    |
//! | `/trace`          | flight-recorder drain as Chrome trace-event JSON       |
//! | `/exemplars`      | tail-request exemplar ring as `krr-exemplars-v1` JSON  |
//! | `/profile`        | self-profiler totals as collapsed-stack folded text    |
//! |                   | (pipe into `flamegraph.pl` / speedscope)               |
//! | `/healthz`        | JSON health detail: watchdog drift, pipeline stalls,   |
//! |                   | exemplar/profiler ring losses, per-tenant drift count  |
//! |                   | (200, or 503 on any drift)                             |
//!
//! Endpoints whose source was not wired into [`ExpoSources`] answer 404;
//! `/mrc` answers 503 until the first MRC is published (and
//! `/mrc?tenant=ID` 404s for an unknown tenant); `/healthz` always
//! answers. Requests are handled inline on the accept thread, so shutting
//! the server down ([`ExpoServer::shutdown`], also run on [`Drop`]) joins
//! exactly one thread and can never leak per-connection threads.
//!
//! ```
//! use krr_core::expo::{http_get, ExpoServer, ExpoSources};
//! use krr_core::metrics::MetricsRegistry;
//! use std::sync::Arc;
//!
//! let reg = Arc::new(MetricsRegistry::new());
//! reg.accesses.add(3);
//! let sources = ExpoSources {
//!     metrics: Some(Arc::clone(&reg)),
//!     ..ExpoSources::default()
//! };
//! let server = ExpoServer::start("127.0.0.1:0", sources).unwrap();
//! let (status, ctype, body) = http_get(server.addr(), "/metrics").unwrap();
//! assert_eq!(status, 200);
//! assert!(ctype.starts_with("application/openmetrics-text"));
//! assert!(body.contains("krr_accesses_total 3"));
//! assert!(body.trim_end().ends_with("# EOF"));
//! ```

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::fleet::{FleetCell, FleetView};
use crate::forensics::ExemplarRing;
use crate::metrics::{
    bucket_bound, bucket_of, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, TenantRow,
};
use crate::mrc::Mrc;
use crate::obs::FlightRecorder;
use crate::profiler::PhaseProfiler;

/// Content type of the `/metrics` endpoint.
pub const OPENMETRICS_CONTENT_TYPE: &str =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// A shared slot holding the most recently published MRC, read by the
/// `/mrc` endpoint. The profiling loop publishes at natural barriers
/// (chunk boundaries, end of run); scrapes never block profiling for more
/// than the copy under the mutex.
#[derive(Debug, Default)]
pub struct MrcCell(Mutex<Option<Mrc>>);

impl MrcCell {
    /// Creates an empty cell (readers see "not yet published").
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a new MRC, replacing any previous one.
    pub fn publish(&self, mrc: Mrc) {
        *self.0.lock().expect("mrc cell poisoned") = Some(mrc);
    }

    /// The latest published MRC, if any.
    #[must_use]
    pub fn get(&self) -> Option<Mrc> {
        self.0.lock().expect("mrc cell poisoned").clone()
    }
}

/// Capacity of a [`StatsRing`]: scrapes see at most this many recent rows.
pub const STATS_RING_ROWS: usize = 64;

/// A bounded ring of recent `krr-stats-v1` timeline rows (JSON objects,
/// one per window), served by `/stats`. Push via [`StatsRing::push`] or by
/// teeing a `StatsTimeline` writer through [`RingWriter`].
#[derive(Debug, Default)]
pub struct StatsRing(Mutex<VecDeque<String>>);

impl StatsRing {
    /// Creates an empty ring.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row, dropping the oldest once [`STATS_RING_ROWS`] is
    /// reached.
    pub fn push(&self, row: String) {
        let mut q = self.0.lock().expect("stats ring poisoned");
        if q.len() == STATS_RING_ROWS {
            q.pop_front();
        }
        q.push_back(row);
    }

    /// The retained rows, oldest first.
    #[must_use]
    pub fn rows(&self) -> Vec<String> {
        self.0
            .lock()
            .expect("stats ring poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

/// A [`Write`] tee that forwards bytes to an optional inner writer while
/// splitting the stream on `\n` into complete lines pushed to a
/// [`StatsRing`]. Wrap a `StatsTimeline` output with this to make the
/// JSONL rows scrapeable from `/stats` while still landing in the file.
#[derive(Debug)]
pub struct RingWriter<W: Write> {
    inner: Option<W>,
    ring: Arc<StatsRing>,
    buf: Vec<u8>,
}

impl<W: Write> RingWriter<W> {
    /// Tees into `ring`, forwarding to `inner` when present.
    #[must_use]
    pub fn new(inner: Option<W>, ring: Arc<StatsRing>) -> Self {
        Self {
            inner,
            ring,
            buf: Vec::new(),
        }
    }
}

impl<W: Write> Write for RingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(w) = &mut self.inner {
            w.write_all(buf)?;
        }
        for &b in buf {
            if b == b'\n' {
                let line = String::from_utf8_lossy(&self.buf).into_owned();
                if !line.is_empty() {
                    self.ring.push(line);
                }
                self.buf.clear();
            } else {
                self.buf.push(b);
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        match &mut self.inner {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }
}

/// What an [`ExpoServer`] serves. Every source is optional; endpoints
/// without a source answer 404 so a scraper can tell "not wired" from
/// "not yet ready" (503).
#[derive(Debug, Default, Clone)]
pub struct ExpoSources {
    /// Registry behind `/metrics` (and the drift/stall half of `/healthz`).
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Cell behind `/mrc`.
    pub mrc: Option<Arc<MrcCell>>,
    /// Ring behind `/stats`.
    pub stats: Option<Arc<StatsRing>>,
    /// Recorder behind `/trace`.
    pub trace: Option<Arc<FlightRecorder>>,
    /// Fleet view behind `/tenants` and `/mrc?tenant=ID`.
    pub tenants: Option<Arc<FleetCell>>,
    /// Exemplar ring behind `/exemplars` and the `/metrics` exemplar
    /// suffixes (also flagged as "scrape in progress" during `/metrics`).
    pub exemplars: Option<Arc<ExemplarRing>>,
    /// Self-profiler behind `/profile`.
    pub profiler: Option<Arc<PhaseProfiler>>,
}

/// Renders a metrics snapshot as OpenMetrics text (the format scraped by
/// Prometheus): `# TYPE` lines, `_total`-suffixed counters, cumulative
/// `_bucket{le="..."}` histogram series ending at `+Inf`, `{shard="i"}`
/// labels for the per-shard series, and a final `# EOF` terminator.
#[must_use]
pub fn render_openmetrics(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    // Labeled fleets dominate the document (~6 series per tenant at
    // ~50 B each); reserving up front avoids repeated growth copies of a
    // multi-hundred-KB string on every scrape.
    let mut s = String::with_capacity(4096 + snap.tenant_rows.len() * 320);
    let counter = |s: &mut String, name: &str, v: u64| {
        let _ = write!(s, "# TYPE krr_{name} counter\nkrr_{name}_total {v}\n");
    };
    let gauge = |s: &mut String, name: &str, v: u64| {
        let _ = write!(s, "# TYPE krr_{name} gauge\nkrr_{name} {v}\n");
    };
    let hist = |s: &mut String, name: &str, h: &HistogramSnapshot| {
        let _ = writeln!(s, "# TYPE krr_{name} histogram");
        let mut cum = 0u64;
        for (b, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let _ = writeln!(s, "krr_{name}_bucket{{le=\"{}\"}} {cum}", bucket_bound(b));
        }
        // A scrape can race `Histogram::record`, whose bucket increment
        // lands before its count increment — a snapshot may briefly hold
        // more bucketed values than `count`. Clamp so the exposed series
        // stays cumulative (`+Inf` >= every finite bucket == `_count`).
        let total = h.count.max(cum);
        let _ = writeln!(s, "krr_{name}_bucket{{le=\"+Inf\"}} {total}");
        let _ = write!(s, "krr_{name}_count {total}\nkrr_{name}_sum {}\n", h.sum);
    };
    counter(&mut s, "accesses", snap.accesses);
    counter(&mut s, "spatial_rejected", snap.spatial_rejected);
    counter(&mut s, "hits", snap.hits);
    counter(&mut s, "cold_misses", snap.cold_misses);
    hist(&mut s, "chain_len", &snap.chain_len);
    hist(&mut s, "positions_scanned", &snap.positions_scanned);
    hist(&mut s, "access_ns", &snap.access_ns);
    counter(&mut s, "merges", snap.merges);
    counter(&mut s, "merge_ns", snap.merge_ns);
    counter(&mut s, "evictions", snap.evictions);
    hist(&mut s, "candidate_age", &snap.candidate_age);
    counter(&mut s, "pipeline_batches", snap.pipeline_batches);
    counter(&mut s, "pipeline_stalls", snap.pipeline_stalls);
    counter(&mut s, "pipeline_keys_hashed", snap.pipeline_keys_hashed);
    counter(
        &mut s,
        "pipeline_router_busy_ns",
        snap.pipeline_router_busy_ns,
    );
    counter(
        &mut s,
        "pipeline_worker_busy_ns",
        snap.pipeline_worker_busy_ns,
    );
    counter(&mut s, "pipeline_ring_wraps", snap.pipeline_ring_wraps);
    counter(&mut s, "pipeline_router_parks", snap.pipeline_router_parks);
    counter(&mut s, "pipeline_worker_parks", snap.pipeline_worker_parks);
    counter(&mut s, "watchdog_checks", snap.watchdog_checks);
    counter(&mut s, "watchdog_shadow_refs", snap.watchdog_shadow_refs);
    counter(&mut s, "watchdog_drift_events", snap.watchdog_drift_events);
    gauge(&mut s, "watchdog_mae_ppm", snap.watchdog_mae_ppm);
    gauge(&mut s, "footprint_stack_bytes", snap.footprint_stack_bytes);
    gauge(&mut s, "footprint_hist_bytes", snap.footprint_hist_bytes);
    gauge(&mut s, "footprint_sizes_bytes", snap.footprint_sizes_bytes);
    gauge(
        &mut s,
        "footprint_pipeline_bytes",
        snap.footprint_pipeline_bytes,
    );
    gauge(
        &mut s,
        "footprint_shadow_bytes",
        snap.footprint_shadow_bytes,
    );
    gauge(&mut s, "footprint_total_bytes", snap.footprint_total_bytes);
    gauge(&mut s, "heap_live_bytes", snap.heap_live_bytes);
    gauge(&mut s, "heap_peak_bytes", snap.heap_peak_bytes);
    let labeled = |s: &mut String, name: &str, kind: &str, suffix: &str, vals: &[u64]| {
        if vals.is_empty() {
            return;
        }
        let _ = writeln!(s, "# TYPE krr_{name} {kind}");
        for (i, v) in vals.iter().enumerate() {
            let _ = writeln!(s, "krr_{name}{suffix}{{shard=\"{i}\"}} {v}");
        }
    };
    labeled(
        &mut s,
        "shard_accesses",
        "counter",
        "_total",
        &snap.shard_accesses,
    );
    labeled(&mut s, "shard_resident", "gauge", "", &snap.shard_resident);
    labeled(
        &mut s,
        "shard_depth_hwm",
        "gauge",
        "",
        &snap.shard_depth_hwm,
    );
    labeled(
        &mut s,
        "shard_queue_depth_hwm",
        "gauge",
        "",
        &snap.pipeline_queue_hwm,
    );
    let ring_labeled = |s: &mut String, name: &str, vals: &[u64]| {
        if vals.is_empty() {
            return;
        }
        let _ = writeln!(s, "# TYPE krr_{name} gauge");
        for (i, v) in vals.iter().enumerate() {
            let _ = writeln!(s, "krr_{name}{{worker=\"{i}\"}} {v}");
        }
    };
    ring_labeled(&mut s, "ring_depth_hwm", &snap.pipeline_ring_hwm);
    if !snap.tenant_rows.is_empty() {
        gauge(&mut s, "tenant_count", snap.tenant_rows.len() as u64);
        let (t_total, t_mean, t_max) = snap.tenant_memory();
        gauge(&mut s, "footprint_tenant_total_bytes", t_total);
        gauge(&mut s, "footprint_tenant_mean_bytes", t_mean);
        gauge(&mut s, "footprint_tenant_max_bytes", t_max);
        let tenant_labeled = |s: &mut String,
                              name: &str,
                              kind: &str,
                              suffix: &str,
                              get: &dyn Fn(&TenantRow) -> u64| {
            let _ = writeln!(s, "# TYPE krr_{name} {kind}");
            for t in &snap.tenant_rows {
                let _ = writeln!(s, "krr_{name}{suffix}{{tenant=\"{}\"}} {}", t.id, get(t));
            }
        };
        tenant_labeled(&mut s, "tenant_refs", "counter", "_total", &|t| t.refs);
        tenant_labeled(&mut s, "tenant_resident", "gauge", "", &|t| t.resident);
        tenant_labeled(&mut s, "tenant_resident_bytes", "gauge", "", &|t| {
            t.resident_bytes
        });
        tenant_labeled(&mut s, "tenant_miss_ratio_ppm", "gauge", "", &|t| {
            t.miss_ratio_ppm
        });
        tenant_labeled(&mut s, "tenant_drift_events", "counter", "_total", &|t| {
            t.drift_events
        });
        tenant_labeled(&mut s, "tenant_mae_ppm", "gauge", "", &|t| t.mae_ppm);
    }
    s.push_str("# EOF\n");
    s
}

/// Renders the forensics families appended to `/metrics` when an
/// exemplar ring (and optionally a profiler) is wired: the
/// `krr_command_latency_ns` histogram with OpenMetrics exemplar suffixes
/// (`<sample> # {request_id="..",tenant=".."} <latency>`) on its bucket
/// lines — each finite bucket carries the most recent tail request that
/// landed in it — plus the forensics loss counters. Returned *without* a
/// trailing `# EOF` (the caller splices it into the main document).
#[must_use]
pub fn render_forensics_block(
    exemplars: &ExemplarRing,
    profiler: Option<&PhaseProfiler>,
) -> String {
    use std::fmt::Write as _;
    let dump = exemplars.snapshot();
    // Most recent exemplar per finite bucket (dump is oldest-first).
    let mut by_bucket: std::collections::BTreeMap<usize, &crate::forensics::Exemplar> =
        std::collections::BTreeMap::new();
    for e in &dump.exemplars {
        by_bucket.insert(bucket_of(e.latency_ns), e);
    }
    let h = exemplars.latency_histogram();
    let mut s = String::with_capacity(1024);
    let _ = writeln!(s, "# TYPE krr_command_latency_ns histogram");
    let mut cum = 0u64;
    for (b, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let _ = write!(
            s,
            "krr_command_latency_ns_bucket{{le=\"{}\"}} {cum}",
            bucket_bound(b)
        );
        if let Some(e) = by_bucket.get(&b) {
            // OpenMetrics exemplar: the exemplar value (the request's
            // latency) is always <= the bucket's le bound by construction.
            let _ = write!(s, " # {{request_id=\"{}\"", e.request_id);
            if let Some(t) = e.tenant {
                let _ = write!(s, ",tenant=\"{t}\"");
            }
            let _ = write!(s, "}} {}", e.latency_ns);
        }
        s.push('\n');
    }
    let total = h.count.max(cum);
    let _ = writeln!(s, "krr_command_latency_ns_bucket{{le=\"+Inf\"}} {total}");
    let _ = write!(
        s,
        "krr_command_latency_ns_count {total}\nkrr_command_latency_ns_sum {}\n",
        h.sum
    );
    let _ = write!(
        s,
        "# TYPE krr_exemplars_captured counter\nkrr_exemplars_captured_total {}\n\
         # TYPE krr_exemplars_dropped counter\nkrr_exemplars_dropped_total {}\n",
        dump.captured, dump.dropped
    );
    if let Some(p) = profiler {
        let _ = write!(
            s,
            "# TYPE krr_profiler_samples counter\nkrr_profiler_samples_total {}\n\
             # TYPE krr_profiler_dropped counter\nkrr_profiler_dropped_total {}\n",
            p.samples_total(),
            p.dropped()
        );
    }
    s
}

/// Renders a [`FleetView`] as `krr-tenants-v1` JSON: fleet rollups, one
/// row per tenant (optionally capped to the `top` hottest by refs), and
/// top-10 `hottest` / `most_drifted` tenant-id views.
#[must_use]
pub fn tenants_json(view: &FleetView, top: Option<usize>) -> String {
    use std::fmt::Write as _;
    let drifted = view.rows.iter().filter(|t| t.drift_events > 0).count();
    let shadowed = view.rows.iter().filter(|t| t.shadowed).count();
    let refs: u64 = view.rows.iter().map(|t| t.refs).sum();
    let mut hottest: Vec<&TenantRow> = view.rows.iter().collect();
    hottest.sort_by_key(|t| (std::cmp::Reverse(t.refs), t.id));
    let mut most_drifted: Vec<&TenantRow> = view.rows.iter().collect();
    most_drifted.sort_by_key(|t| {
        (
            std::cmp::Reverse(t.drift_events),
            std::cmp::Reverse(t.mae_ppm),
            t.id,
        )
    });
    let mut s = String::from("{\"schema\":\"krr-tenants-v1\"");
    let _ = write!(
        s,
        ",\"count\":{},\"budget\":{},\"refs\":{refs},\"drifted\":{drifted},\"shadowed\":{shadowed}",
        view.rows.len(),
        view.budget
    );
    s.push_str(",\"hottest\":[");
    for (i, t) in hottest.iter().take(10).enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}", t.id);
    }
    s.push_str("],\"most_drifted\":[");
    for (i, t) in most_drifted.iter().take(10).enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}", t.id);
    }
    s.push_str("],\"tenants\":[");
    let rows: Vec<&TenantRow> = match top {
        Some(k) => hottest.iter().take(k).copied().collect(),
        None => view.rows.iter().collect(),
    };
    for (i, t) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&t.to_json());
    }
    s.push_str("]}");
    s
}

/// Renders a [`FleetView`] as CSV — the machine-simple form `krr
/// partition --live` scrapes. One header line, then one row per tenant
/// (optionally capped to the `top` hottest by refs).
#[must_use]
pub fn tenants_csv(view: &FleetView, top: Option<usize>) -> String {
    use std::fmt::Write as _;
    let mut rows: Vec<&TenantRow> = view.rows.iter().collect();
    if let Some(k) = top {
        rows.sort_by_key(|t| (std::cmp::Reverse(t.refs), t.id));
        rows.truncate(k);
    }
    let mut s = String::from(
        "id,refs,resident,resident_bytes,miss_ratio_ppm,drift_events,mae_ppm,shadowed\n",
    );
    for t in rows {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{}",
            t.id,
            t.refs,
            t.resident,
            t.resident_bytes,
            t.miss_ratio_ppm,
            t.drift_events,
            t.mae_ppm,
            u8::from(t.shadowed)
        );
    }
    s
}

/// Renders an MRC as `krr-mrc-v1` JSON:
/// `{"schema":"krr-mrc-v1","points":[[cache_size,miss_ratio],...]}`.
#[must_use]
pub fn mrc_json(mrc: &Mrc) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\"schema\":\"krr-mrc-v1\",\"points\":[");
    for (i, &(x, y)) in mrc.points().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{x},{y}]");
    }
    s.push_str("]}");
    s
}

/// The exposition server: one listener, one background thread, requests
/// handled inline. Dropping (or calling [`ExpoServer::shutdown`]) stops
/// the thread and releases the port, so a later server — e.g. after a
/// checkpoint restore — can rebind the same address.
#[derive(Debug)]
pub struct ExpoServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ExpoServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9090"`; port 0 picks a free port —
    /// read it back from [`ExpoServer::addr`]) and starts serving
    /// `sources` on a background thread.
    pub fn start<A: ToSocketAddrs>(addr: A, sources: ExpoSources) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("krr-expo".into())
            .spawn(move || serve_loop(&listener, &sources, &thread_stop))?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent;
    /// also run by [`Drop`], so tests and the CLI can never leak the
    /// listener thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ExpoServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(listener: &TcpListener, sources: &ExpoSources, stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Inline handling: a request is a snapshot + a render, so
                // a dedicated thread per connection buys nothing and would
                // complicate shutdown.
                let _ = handle_conn(stream, sources);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// First value of `key` in an `a=1&b=2` query string (no percent
/// decoding — tenant ids and knob values are plain integers/words).
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn respond(
    mut stream: TcpStream,
    status: u16,
    reason: &str,
    ctype: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn handle_conn(mut stream: TcpStream, sources: &ExpoSources) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut req = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the end of the header block (we never accept bodies).
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        req.extend_from_slice(&chunk[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 8192 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&req);
    let mut parts = text.lines().next().unwrap_or("").split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return respond(stream, 400, "Bad Request", "text/plain", "bad request\n"),
    };
    if method != "GET" {
        return respond(
            stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => match &sources.metrics {
            Some(reg) => {
                // Mark the scrape for the exemplar ring: tail requests
                // captured while we render carry scrape_in_progress.
                let _guard = sources.exemplars.as_ref().map(|e| e.scrape_guard());
                if query_param(query, "format") == Some("json") {
                    // The krr-metrics-v1 snapshot (what `--metrics-out`
                    // writes) — the machine-readable side `krr doctor
                    // --live` scrapes.
                    let body = reg.snapshot().to_json();
                    return respond(stream, 200, "OK", "application/json", &body);
                }
                let mut body = render_openmetrics(&reg.snapshot());
                if let Some(ring) = &sources.exemplars {
                    body.truncate(body.len() - "# EOF\n".len());
                    body.push_str(&render_forensics_block(ring, sources.profiler.as_deref()));
                    body.push_str("# EOF\n");
                }
                respond(stream, 200, "OK", OPENMETRICS_CONTENT_TYPE, &body)
            }
            None => respond(
                stream,
                404,
                "Not Found",
                "text/plain",
                "no metrics source\n",
            ),
        },
        "/exemplars" => match &sources.exemplars {
            Some(ring) => respond(stream, 200, "OK", "application/json", &ring.to_json()),
            None => respond(
                stream,
                404,
                "Not Found",
                "text/plain",
                "no exemplar source\n",
            ),
        },
        "/profile" => match &sources.profiler {
            Some(p) => respond(stream, 200, "OK", "text/plain", &p.folded()),
            None => respond(
                stream,
                404,
                "Not Found",
                "text/plain",
                "no profiler source\n",
            ),
        },
        "/mrc" => {
            // `format=csv` serves the exact bytes `persist::write_mrc`
            // produces, so a scraper round-trips curves bit-for-bit
            // through `persist::read_mrc` (the `krr partition --live`
            // contract).
            let as_csv = query_param(query, "format") == Some("csv");
            let render = |stream: TcpStream, mrc: &crate::mrc::Mrc| {
                if as_csv {
                    let mut buf = Vec::new();
                    crate::persist::write_mrc(&mut buf, mrc).expect("vec write");
                    let body = String::from_utf8(buf).expect("mrc csv is utf-8");
                    respond(stream, 200, "OK", "text/csv", &body)
                } else {
                    respond(stream, 200, "OK", "application/json", &mrc_json(mrc))
                }
            };
            if let Some(tenant) = query_param(query, "tenant") {
                let Ok(id) = tenant.parse::<u64>() else {
                    return respond(stream, 400, "Bad Request", "text/plain", "bad tenant id\n");
                };
                let Some(cell) = &sources.tenants else {
                    return respond(stream, 404, "Not Found", "text/plain", "no tenant source\n");
                };
                return match cell.get() {
                    Some(view) => match view.mrc_for(id) {
                        Some(mrc) => render(stream, mrc),
                        None => respond(stream, 404, "Not Found", "text/plain", "unknown tenant\n"),
                    },
                    None => respond(
                        stream,
                        503,
                        "Service Unavailable",
                        "text/plain",
                        "fleet view not yet published\n",
                    ),
                };
            }
            match &sources.mrc {
                Some(cell) => match cell.get() {
                    Some(mrc) => render(stream, &mrc),
                    None => respond(
                        stream,
                        503,
                        "Service Unavailable",
                        "text/plain",
                        "mrc not yet published\n",
                    ),
                },
                None => respond(stream, 404, "Not Found", "text/plain", "no mrc source\n"),
            }
        }
        "/tenants" => match &sources.tenants {
            Some(cell) => match cell.get() {
                Some(view) => {
                    let top = query_param(query, "top").and_then(|v| v.parse::<usize>().ok());
                    if query_param(query, "format") == Some("csv") {
                        respond(stream, 200, "OK", "text/csv", &tenants_csv(&view, top))
                    } else {
                        respond(
                            stream,
                            200,
                            "OK",
                            "application/json",
                            &tenants_json(&view, top),
                        )
                    }
                }
                None => respond(
                    stream,
                    503,
                    "Service Unavailable",
                    "text/plain",
                    "fleet view not yet published\n",
                ),
            },
            None => respond(stream, 404, "Not Found", "text/plain", "no tenant source\n"),
        },
        "/stats" => match &sources.stats {
            Some(ring) => {
                let rows = ring.rows();
                let mut body = String::from("[");
                for (i, r) in rows.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(r);
                }
                body.push(']');
                respond(stream, 200, "OK", "application/json", &body)
            }
            None => respond(stream, 404, "Not Found", "text/plain", "no stats source\n"),
        },
        "/trace" => match &sources.trace {
            Some(rec) => respond(
                stream,
                200,
                "OK",
                "application/json",
                &rec.chrome_trace_json(),
            ),
            None => respond(stream, 404, "Not Found", "text/plain", "no trace source\n"),
        },
        "/healthz" => {
            let (drift, mae, stalls, tenants_drifted) = match &sources.metrics {
                Some(reg) => (
                    reg.watchdog_drift_events.get(),
                    reg.watchdog_mae_ppm.get(),
                    reg.pipeline_stalls.get(),
                    reg.tenant_rows()
                        .iter()
                        .filter(|t| t.drift_events > 0)
                        .count() as u64,
                ),
                None => (0, 0, 0, 0),
            };
            let unhealthy = drift > 0 || tenants_drifted > 0;
            let status = if unhealthy { "drift" } else { "ok" };
            // Subsystem detail: *which* part is unhealthy. Stalls are
            // back-pressure (expected under load), so they are surfaced
            // but never flip the health code.
            let watchdog = if drift > 0 { "drift" } else { "ok" };
            let pipeline = if stalls > 0 { "stalls" } else { "ok" };
            let tenants = if tenants_drifted > 0 { "drift" } else { "ok" };
            // Forensics ring losses: overwrite-oldest is by design
            // (bounded memory), so loss is surfaced but never flips the
            // health code either — silent loss is the failure mode this
            // guards against.
            let exemplar_drops = sources.exemplars.as_ref().map_or(0, |e| e.dropped());
            let profiler_drops = sources.profiler.as_ref().map_or(0, |p| p.dropped());
            let forensics = if exemplar_drops > 0 || profiler_drops > 0 {
                "lossy"
            } else {
                "ok"
            };
            let body = format!(
                "{{\"status\":\"{status}\",\"drift_events\":{drift},\"mae_ppm\":{mae},\"pipeline_stalls\":{stalls},\"tenants_drifted\":{tenants_drifted},\"exemplar_drops\":{exemplar_drops},\"profiler_drops\":{profiler_drops},\"subsystems\":{{\"watchdog\":\"{watchdog}\",\"pipeline\":\"{pipeline}\",\"tenants\":\"{tenants}\",\"forensics\":\"{forensics}\"}}}}"
            );
            if unhealthy {
                respond(
                    stream,
                    503,
                    "Service Unavailable",
                    "application/json",
                    &body,
                )
            } else {
                respond(stream, 200, "OK", "application/json", &body)
            }
        }
        _ => respond(stream, 404, "Not Found", "text/plain", "unknown endpoint\n"),
    }
}

/// Minimal HTTP/1.1 GET client for tests and examples: returns
/// `(status, content_type, body)`. Not a general client — it assumes the
/// `Connection: close` responses [`ExpoServer`] sends.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let header_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let head = &text[..header_end];
    let body = text[header_end + 4..].to_string();
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let ctype = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-type")
                .then(|| v.trim().to_string())
        })
        .unwrap_or_default();
    Ok((status, ctype, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mrc_cell_publishes_latest() {
        let cell = MrcCell::new();
        assert!(cell.get().is_none());
        cell.publish(Mrc::from_points(vec![(0.0, 1.0), (10.0, 0.5)]));
        cell.publish(Mrc::from_points(vec![(0.0, 1.0), (10.0, 0.25)]));
        let got = cell.get().unwrap();
        assert_eq!(got.points().len(), 2);
        assert!((got.eval(10.0) - 0.25).abs() < 1e-12);
        assert!(mrc_json(&got).starts_with("{\"schema\":\"krr-mrc-v1\""));
    }

    #[test]
    fn ring_writer_splits_lines_and_forwards() {
        let ring = Arc::new(StatsRing::new());
        let mut file = Vec::new();
        {
            let mut w = RingWriter::new(Some(&mut file), Arc::clone(&ring));
            w.write_all(b"{\"a\":1}").unwrap();
            w.write_all(b"\n{\"b\":2}\n{\"c\"").unwrap();
            w.write_all(b":3}\n").unwrap();
            w.flush().unwrap();
        }
        assert_eq!(ring.rows(), vec!["{\"a\":1}", "{\"b\":2}", "{\"c\":3}"]);
        assert_eq!(file, b"{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n");
    }

    #[test]
    fn stats_ring_is_bounded() {
        let ring = StatsRing::new();
        for i in 0..(STATS_RING_ROWS + 10) {
            ring.push(format!("{{\"i\":{i}}}"));
        }
        let rows = ring.rows();
        assert_eq!(rows.len(), STATS_RING_ROWS);
        assert_eq!(rows[0], "{\"i\":10}");
    }

    #[test]
    fn openmetrics_render_shapes() {
        let reg = MetricsRegistry::new();
        reg.accesses.add(7);
        reg.chain_len.record(0);
        reg.chain_len.record(5);
        reg.init_shards(2);
        reg.shard_access_n(1, 3);
        reg.set_shard_resident(0, 11);
        let text = render_openmetrics(&reg.snapshot());
        assert!(text.contains("# TYPE krr_accesses counter\nkrr_accesses_total 7\n"));
        assert!(text.contains("# TYPE krr_chain_len histogram\n"));
        // Cumulative: bucket 0 (le="0") holds 1, le=+Inf holds all 2.
        assert!(text.contains("krr_chain_len_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("krr_chain_len_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("krr_chain_len_sum 5\n"));
        assert!(text.contains("krr_shard_accesses_total{shard=\"1\"} 3\n"));
        assert!(text.contains("krr_shard_resident{shard=\"0\"} 11\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn forensics_block_renders_exemplars_and_losses() {
        use crate::forensics::Exemplar;
        let ring = ExemplarRing::new();
        assert!(ring.observe(900));
        ring.capture(&Exemplar {
            request_id: 12,
            tenant: Some(3),
            latency_ns: 900,
            ..Exemplar::default()
        });
        let block = render_forensics_block(&ring, None);
        assert!(
            block.contains("krr_command_latency_ns_bucket{le=\"1023\"} 1 # {request_id=\"12\",tenant=\"3\"} 900\n"),
            "{block}"
        );
        assert!(block.contains("krr_command_latency_ns_bucket{le=\"+Inf\"} 1\n"));
        assert!(block.contains("krr_exemplars_dropped_total 0\n"));

        // Wired into /metrics: the scrape carries the exemplar suffix and
        // still terminates with # EOF.
        let reg = Arc::new(MetricsRegistry::new());
        let sources = ExpoSources {
            metrics: Some(Arc::clone(&reg)),
            exemplars: Some(Arc::new(ExemplarRing::new())),
            profiler: Some(Arc::new(PhaseProfiler::new())),
            ..ExpoSources::default()
        };
        sources.exemplars.as_ref().unwrap().capture(&Exemplar {
            request_id: 1,
            latency_ns: 5,
            ..Exemplar::default()
        });
        let server = ExpoServer::start("127.0.0.1:0", sources).unwrap();
        let (status, _, body) = http_get(server.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("krr_profiler_dropped_total 0\n"));
        assert!(body.trim_end().ends_with("# EOF"));
        let (status, ctype, body) = http_get(server.addr(), "/metrics?format=json").unwrap();
        assert_eq!(status, 200);
        assert!(ctype.starts_with("application/json"));
        assert!(body.starts_with("{\"schema\":\"krr-metrics-v1\""));
        let (status, _, body) = http_get(server.addr(), "/exemplars").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"schema\":\"krr-exemplars-v1\""));
        let (status, _, body) = http_get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"exemplar_drops\":0"), "{body}");
        assert!(body.contains("\"forensics\":\"ok\""), "{body}");
    }

    #[test]
    fn server_serves_and_shuts_down_cleanly() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.hits.add(5);
        let sources = ExpoSources {
            metrics: Some(Arc::clone(&reg)),
            ..ExpoSources::default()
        };
        let mut server = ExpoServer::start("127.0.0.1:0", sources.clone()).unwrap();
        let addr = server.addr();
        let (status, ctype, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(ctype.starts_with("application/openmetrics-text"));
        assert!(body.contains("krr_hits_total 5"));
        let (status, _, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
        server.shutdown();
        // The port is released: a new server can rebind the same address.
        let server2 = ExpoServer::start(addr, sources).unwrap();
        let (status, _, body) = http_get(server2.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
    }

    #[test]
    fn unwired_sources_answer_404_and_empty_mrc_503() {
        let sources = ExpoSources {
            mrc: Some(Arc::new(MrcCell::new())),
            ..ExpoSources::default()
        };
        let server = ExpoServer::start("127.0.0.1:0", sources).unwrap();
        for path in ["/metrics", "/stats", "/trace", "/exemplars", "/profile"] {
            let (status, _, _) = http_get(server.addr(), path).unwrap();
            assert_eq!(status, 404, "{path}");
        }
        let (status, _, _) = http_get(server.addr(), "/mrc").unwrap();
        assert_eq!(status, 503);
    }
}
