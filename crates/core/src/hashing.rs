//! Key hashing for spatial sampling and for the stack's key index.
//!
//! Spatial sampling (SHARDS, §2.4 of the paper) requires a hash whose low
//! bits are uniform regardless of key structure; sequential block numbers are
//! the common worst case. We use the `splitmix64` finalizer, which passes
//! avalanche tests and costs a handful of ALU ops.

use crate::rng::mix64;
use std::hash::{BuildHasher, Hasher};

/// Hashes a 64-bit key to a 64-bit value with full avalanche.
#[inline]
#[must_use]
pub fn hash_key(key: u64) -> u64 {
    // A non-zero odd constant decouples this hash from other mix64 users
    // (e.g. RNG seeding), so sampling decisions don't correlate with
    // generator streams that hash the same keys.
    mix64(key ^ 0x9E6C_63D0_876A_3F6B)
}

/// [`hash_key`] over a batch of 8 keys.
///
/// The eight mix chains are mutually independent, so a fixed-width batch
/// lets the compiler unroll and interleave them: while one chain waits on
/// its multiply, the others issue theirs (instruction-level parallelism the
/// one-at-a-time router loop can't reach). Bit-identical to eight
/// [`hash_key`] calls — batching changes scheduling, never values.
#[inline]
#[must_use]
pub fn hash_keys8(keys: [u64; 8]) -> [u64; 8] {
    keys.map(hash_key)
}

/// A `BuildHasher` for `u64` keys used by the stack's key→position index.
///
/// `write_u64` applies [`hash_key`]; other write methods fall back to a
/// simple folding scheme (they are not used on the hot path).
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyHashBuilder;

impl BuildHasher for KeyHashBuilder {
    type Hasher = KeyHasher;

    #[inline]
    fn build_hasher(&self) -> KeyHasher {
        KeyHasher { state: 0 }
    }
}

/// Hasher produced by [`KeyHashBuilder`].
#[derive(Debug, Clone, Copy)]
pub struct KeyHasher {
    state: u64,
}

impl Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = mix64(self.state.rotate_left(8) ^ u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = hash_key(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.state = hash_key(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.state = hash_key(i as u64);
    }
}

/// `HashMap` keyed by `u64` using [`KeyHashBuilder`].
pub type KeyMap<V> = std::collections::HashMap<u64, V, KeyHashBuilder>;

/// `HashSet` of `u64` using [`KeyHashBuilder`].
pub type KeySet = std::collections::HashSet<u64, KeyHashBuilder>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_key_is_deterministic_and_injective_on_small_sets() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..100_000u64 {
            assert_eq!(hash_key(k), hash_key(k));
            assert!(seen.insert(hash_key(k)), "collision at {k}");
        }
    }

    #[test]
    fn low_bits_of_sequential_keys_are_uniform() {
        // Spatial sampling uses `hash % P < T`; check that the residues of
        // sequential keys (the block-trace worst case) are near-uniform.
        let p = 64u64;
        let mut counts = vec![0u64; p as usize];
        let n = 640_000u64;
        for k in 0..n {
            counts[(hash_key(k) % p) as usize] += 1;
        }
        let expected = n as f64 / p as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "residue {i} deviates by {dev}");
        }
    }

    #[test]
    fn hash_keys8_matches_scalar() {
        for base in [0u64, 17, 1 << 40, u64::MAX - 7] {
            let keys = std::array::from_fn(|i| base.wrapping_add(i as u64));
            let batch = hash_keys8(keys);
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(batch[i], hash_key(k));
            }
        }
    }

    #[test]
    fn keymap_roundtrip() {
        let mut m: KeyMap<u32> = KeyMap::default();
        for k in 0..1000u64 {
            m.insert(k, k as u32 * 2);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&k), Some(&(k as u32 * 2)));
        }
    }
}
