//! Lock-free single-producer/single-consumer rings — the transport under
//! the streaming pipeline (`crate::pipeline`).
//!
//! This generalizes the single-writer ring machinery proven in
//! [`crate::obs`] (the flight recorder) from "fixed 4-word slots, overwrite
//! oldest" to "arbitrary `T`, bounded, blocking with back-pressure": the
//! shape a router→worker queue needs. One [`Producer`] and one [`Consumer`]
//! share a power-of-two slot buffer; each endpoint owns its position
//! exclusively, so neither ever issues a compare-and-swap — pushes and pops
//! are one store plus one (usually cached) load.
//!
//! # Memory-ordering contract
//!
//! The ring's correctness rests on two Acquire/Release pairs and one
//! single-writer invariant:
//!
//! * **`tail` (publish):** the producer writes the slot *then* stores the
//!   advanced `tail` with `Release`; the consumer loads `tail` with
//!   `Acquire` before reading the slot. The pair guarantees the consumer
//!   observes a fully-written slot — a torn read would require observing a
//!   `tail` that was published *before* the slot write, which `Release`
//!   forbids.
//! * **`head` (reclaim):** the consumer moves the value out of the slot
//!   *then* stores the advanced `head` with `Release`; the producer loads
//!   `head` with `Acquire` before reusing the slot. The pair guarantees the
//!   producer never overwrites a slot still being read.
//! * **Single-writer invariant:** `tail` is stored by exactly one thread
//!   (the producer) and `head` by exactly one thread (the consumer). Both
//!   endpoints take `&mut self` and are not `Clone`, so the type system
//!   enforces this — it is why plain stores suffice where an MPMC queue
//!   would need RMWs.
//!
//! Each endpoint also keeps a *cached* copy of the opposite position and
//! only reloads it (the one cross-core Acquire load) when the cache says
//! the ring looks full/empty — the "cached head/tail" optimization, which
//! makes the common case entirely core-local.
//!
//! # Blocking: spin budget, then park
//!
//! [`Producer::push`] and [`Consumer::pop`] spin [`SPIN_BUDGET`] times
//! before parking the thread. Wakeups are batch-amortized: a push only
//! unparks the consumer when its parked flag is raised, so a worker that is
//! keeping up costs the router one relaxed load per batch, not a syscall.
//! The park itself uses the flag-raise → re-check → `park_timeout` pattern
//! (with a 1 ms timeout as a belt-and-braces bound on any lost-wakeup
//! window), with `SeqCst` fences ordering the flag against the position
//! stores on both sides.
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::Thread;
use std::time::Duration;

/// Failed `try_push`/`try_pop` attempts before a blocking call parks.
pub const SPIN_BUDGET: u32 = 256;

/// Upper bound on a single park: even a lost wakeup (impossible under the
/// fence protocol, but cheap to insure against) costs at most this long.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Pads the head and tail words onto separate cache lines so the
/// producer's `tail` stores never invalidate the consumer's `head` line
/// (false sharing is the classic SPSC throughput killer).
#[repr(align(64))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// One thread's parking spot. Only ever parked on by a single thread (the
/// ring's producer or consumer respectively), so a `OnceLock<Thread>` pins
/// the handle on first use.
#[derive(Debug, Default)]
struct WaitCell {
    /// Raised by the waiter before its final re-check; cleared by whoever
    /// acts on it. `wake` only syscalls when this is set.
    parked: AtomicBool,
    /// Times the owning thread actually parked (diagnostic counter).
    parks: AtomicU64,
    thread: OnceLock<Thread>,
}

impl WaitCell {
    /// Registers the calling thread and raises the parked flag. The caller
    /// must re-check the ring state *after* this and either [`Self::park`]
    /// or [`Self::cancel`]; the `SeqCst` fence orders the flag store before
    /// that re-check so it cannot race past the peer's position store.
    fn prepare(&self) {
        self.thread.get_or_init(std::thread::current);
        self.parked.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
    }

    /// Withdraws a [`Self::prepare`] whose re-check found progress. A wake
    /// that already fired just leaves a stale unpark token, which the next
    /// park consumes harmlessly.
    fn cancel(&self) {
        self.parked.store(false, Ordering::SeqCst);
    }

    /// Parks the calling thread (bounded by [`PARK_TIMEOUT`]).
    fn park(&self) {
        self.parks.fetch_add(1, Ordering::Relaxed);
        std::thread::park_timeout(PARK_TIMEOUT);
        self.parked.store(false, Ordering::SeqCst);
    }

    /// Unparks the waiter iff its flag is raised. The fence pairs with the
    /// one in [`Self::prepare`]: either the waker sees the flag, or the
    /// waiter's re-check sees the position store that preceded this call.
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if self.parked.load(Ordering::Relaxed) && self.parked.swap(false, Ordering::SeqCst) {
            if let Some(t) = self.thread.get() {
                t.unpark();
            }
        }
    }

    fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }
}

/// Shared state. Positions are monotonically increasing counters (slot =
/// `pos & mask`), so "full" is `tail - head == capacity` and empty is
/// `tail == head` with no ambiguity at wrap-around.
#[derive(Debug)]
struct Inner<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next position the consumer will pop. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next position the producer will push. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
    closed: AtomicBool,
    /// Where the consumer parks when the ring is empty.
    consumer_wait: WaitCell,
    /// Where the producer parks when the ring is full.
    producer_wait: WaitCell,
}

// SAFETY: the single-writer protocol (documented at module level) ensures a
// slot is accessed by at most one thread at a time; `T: Send` is all that
// moving values across the ring requires.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // `&mut self` proves both endpoints are gone, so the positions are
        // stable and the undrained range [head, tail) holds live values.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let mut pos = head;
        while pos != tail {
            unsafe { (*self.slots[pos & self.mask].get()).assume_init_drop() };
            pos = pos.wrapping_add(1);
        }
    }
}

/// Creates a bounded SPSC ring with at least `capacity` slots (rounded up
/// to a power of two, minimum 2). The endpoints are the only handles; drop
/// the [`Producer`] (or call [`Producer::close`]) to end the stream.
#[must_use]
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let inner = Arc::new(Inner {
        mask: cap - 1,
        slots: (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        consumer_wait: WaitCell::default(),
        producer_wait: WaitCell::default(),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            tail: 0,
            cached_head: 0,
            depth_hwm: 0,
            closed: false,
        },
        Consumer {
            inner,
            head: 0,
            cached_tail: 0,
        },
    )
}

/// The write end. Not `Clone` — exactly one thread may push (the
/// single-writer invariant the memory-ordering contract rests on).
#[derive(Debug)]
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Local mirror of `inner.tail` (we are its only writer).
    tail: usize,
    cached_head: usize,
    depth_hwm: usize,
    closed: bool,
}

impl<T: Send> Producer<T> {
    /// Attempts a non-blocking push; returns the value back when the ring
    /// is full even after refreshing the cached head.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let cap = self.inner.mask + 1;
        if self.tail.wrapping_sub(self.cached_head) == cap {
            self.cached_head = self.inner.head.0.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.cached_head) == cap {
                return Err(value);
            }
        }
        unsafe { (*self.inner.slots[self.tail & self.inner.mask].get()).write(value) };
        self.tail = self.tail.wrapping_add(1);
        self.inner.tail.0.store(self.tail, Ordering::Release);
        let depth = self.tail.wrapping_sub(self.cached_head);
        if depth > self.depth_hwm {
            self.depth_hwm = depth;
        }
        self.inner.consumer_wait.wake();
        Ok(())
    }

    /// Pushes, spinning [`SPIN_BUDGET`] times and then parking until the
    /// consumer frees a slot.
    pub fn push(&mut self, value: T) {
        let mut value = match self.try_push(value) {
            Ok(()) => return,
            Err(v) => v,
        };
        let mut spins = 0u32;
        loop {
            if spins < SPIN_BUDGET {
                spins += 1;
                std::hint::spin_loop();
            } else {
                self.inner.producer_wait.prepare();
                // Final re-check under the raised flag: a pop that raced
                // past the flag store is caught here instead of lost.
                match self.try_push(value) {
                    Ok(()) => {
                        self.inner.producer_wait.cancel();
                        return;
                    }
                    Err(v) => value = v,
                }
                self.inner.producer_wait.park();
            }
            match self.try_push(value) {
                Ok(()) => return,
                Err(v) => value = v,
            }
        }
    }

    /// Marks the stream finished and wakes the consumer; [`Consumer::pop`]
    /// returns `None` once the remaining slots drain. Dropping the producer
    /// closes implicitly.
    pub fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            self.inner.closed.store(true, Ordering::Release);
            self.inner.consumer_wait.wake();
        }
    }

    /// Slot count (the rounded-up capacity).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Total values pushed over the ring's lifetime.
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.tail as u64
    }

    /// Times the slot buffer has been fully cycled (`pushes / capacity`).
    #[must_use]
    pub fn wraps(&self) -> u64 {
        (self.tail / (self.inner.mask + 1)) as u64
    }

    /// Deepest occupancy observed at push time (an upper bound: measured
    /// against the cached, possibly stale, head).
    #[must_use]
    pub fn depth_hwm(&self) -> u64 {
        self.depth_hwm as u64
    }

    /// Times this end parked waiting for a free slot (back-pressure).
    #[must_use]
    pub fn producer_parks(&self) -> u64 {
        self.inner.producer_wait.parks()
    }

    /// Times the consumer end parked waiting for data (starvation).
    #[must_use]
    pub fn consumer_parks(&self) -> u64 {
        self.inner.consumer_wait.parks()
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        if !self.closed {
            self.closed = true;
            self.inner.closed.store(true, Ordering::Release);
            self.inner.consumer_wait.wake();
        }
    }
}

/// The read end. Not `Clone` — exactly one thread may pop.
#[derive(Debug)]
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Local mirror of `inner.head` (we are its only writer).
    head: usize,
    cached_tail: usize,
}

impl<T: Send> Consumer<T> {
    /// Attempts a non-blocking pop; `None` means the ring is currently
    /// empty (closed or not — use [`Self::pop`] to distinguish).
    pub fn try_pop(&mut self) -> Option<T> {
        if self.head == self.cached_tail {
            self.cached_tail = self.inner.tail.0.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        let value =
            unsafe { (*self.inner.slots[self.head & self.inner.mask].get()).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        self.inner.head.0.store(self.head, Ordering::Release);
        self.inner.producer_wait.wake();
        Some(value)
    }

    /// Pops, spinning then parking while the ring is empty. Returns `None`
    /// only after the producer closed *and* every pushed value has been
    /// drained — the `closed` flag is checked with `Acquire` so all pushes
    /// sequenced before the close are visible first.
    pub fn pop(&mut self) -> Option<T> {
        if let Some(v) = self.try_pop() {
            return Some(v);
        }
        let mut spins = 0u32;
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.inner.closed.load(Ordering::Acquire) {
                // One last drain: pushes race the close flag, never follow it.
                return self.try_pop();
            }
            if spins < SPIN_BUDGET {
                spins += 1;
                std::hint::spin_loop();
            } else {
                self.inner.consumer_wait.prepare();
                if let Some(v) = self.try_pop() {
                    self.inner.consumer_wait.cancel();
                    return Some(v);
                }
                if self.inner.closed.load(Ordering::Acquire) {
                    self.inner.consumer_wait.cancel();
                    return self.try_pop();
                }
                self.inner.consumer_wait.park();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_survives_wraparound() {
        let (mut tx, mut rx) = ring::<u64>(4);
        assert_eq!(tx.capacity(), 4);
        for i in 0..1000u64 {
            tx.try_push(i).unwrap();
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert!(
            tx.wraps() >= 200,
            "4-slot ring must have wrapped many times"
        );
        assert_eq!(tx.pushes(), 1000);
    }

    #[test]
    fn full_and_empty_edges() {
        let (mut tx, mut rx) = ring::<u32>(2);
        assert_eq!(rx.try_pop(), None);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.try_push(3), Err(3));
        assert_eq!(rx.try_pop(), Some(1));
        tx.try_push(3).unwrap();
        assert_eq!(tx.try_push(4), Err(4));
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), Some(3));
        assert_eq!(rx.try_pop(), None);
        assert_eq!(tx.depth_hwm(), 2);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let (mut tx, mut rx) = ring::<u64>(8);
        for i in 0..5 {
            tx.try_push(i).unwrap();
        }
        tx.close();
        for i in 0..5 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn dropping_producer_closes() {
        let (mut tx, mut rx) = ring::<u64>(8);
        tx.try_push(7).unwrap();
        drop(tx);
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn undrained_values_are_dropped_with_the_ring() {
        use std::sync::atomic::AtomicU64;
        static DROPS: AtomicU64 = AtomicU64::new(0);
        #[derive(Debug)]
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, mut rx) = ring::<Tracked>(8);
        for _ in 0..5 {
            tx.try_push(Tracked).unwrap();
        }
        drop(rx.try_pop()); // one value dropped by the consumer
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }

    /// The single-writer rule makes a torn publish impossible: the consumer
    /// must never observe a value whose fields disagree, at any wrap count,
    /// with both ends blocking (so the park/wake protocol is exercised).
    fn stress(n: u64, cap: usize) {
        let (mut tx, mut rx) = ring::<(u64, u64, u64)>(cap);
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                // Composite payload: fields are functions of each other, so
                // any torn read is detectable.
                tx.push((i, i.wrapping_mul(31), i ^ 0xDEAD_BEEF));
            }
            tx.close();
            (tx.wraps(), tx.producer_parks())
        });
        let mut expect = 0u64;
        while let Some((a, b, c)) = rx.pop() {
            assert_eq!(a, expect, "FIFO order violated");
            assert_eq!(b, a.wrapping_mul(31), "torn publish: field b");
            assert_eq!(c, a ^ 0xDEAD_BEEF, "torn publish: field c");
            expect += 1;
        }
        assert_eq!(expect, n, "values lost or duplicated");
        let (wraps, _parks) = producer.join().unwrap();
        assert!(wraps >= n / cap as u64, "ring must have wrapped");
    }

    #[test]
    fn threaded_stress_tiny_ring() {
        stress(200_000, 4);
    }

    #[test]
    fn threaded_stress_typical_ring() {
        stress(200_000, 64);
    }

    /// Long-running variant for the `KRR_CI_BENCH=1` CI hook.
    #[test]
    #[ignore = "long stress run; exercised by scripts/ci.sh under KRR_CI_BENCH=1"]
    fn ring_stress_long() {
        stress(5_000_000, 4);
        stress(5_000_000, 1024);
    }

    #[test]
    fn pop_blocks_until_data_arrives() {
        let (mut tx, mut rx) = ring::<u64>(4);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = rx.pop() {
                got.push(v);
            }
            got
        });
        std::thread::sleep(Duration::from_millis(20));
        for i in 0..100 {
            tx.push(i);
        }
        tx.close();
        assert_eq!(consumer.join().unwrap(), (0..100).collect::<Vec<_>>());
    }
}
