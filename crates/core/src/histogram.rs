//! Stack distance histogram (SDH).
//!
//! Records one distance per reference (object count for uniform-size
//! workloads, bytes for variable-size ones) plus the cold-miss count. A
//! configurable bin width keeps byte-granularity histograms compact; object
//! granularity uses width 1 by default, making the histogram exact.

/// Stack-distance histogram with fixed-width bins.
///
/// Distance `d` (1-based) falls into bin `(d - 1) / bin_width`; bin `b`
/// therefore covers distances `(b·w, (b+1)·w]`, and a cache of capacity
/// `(b+1)·w` holds every reference recorded in bins `0..=b`.
#[derive(Debug, Clone)]
pub struct SdHistogram {
    bin_width: u64,
    bins: Vec<u64>,
    cold: u64,
    total: u64,
}

impl SdHistogram {
    /// Creates an empty histogram with the given bin width (>= 1).
    #[must_use]
    pub fn new(bin_width: u64) -> Self {
        assert!(bin_width >= 1, "bin width must be positive");
        Self {
            bin_width,
            bins: Vec::new(),
            cold: 0,
            total: 0,
        }
    }

    /// Records a reference at stack distance `d >= 1`.
    #[inline]
    pub fn record(&mut self, d: u64) {
        debug_assert!(d >= 1, "stack distances are 1-based");
        let bin = ((d - 1) / self.bin_width) as usize;
        if bin >= self.bins.len() {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
        self.total += 1;
    }

    /// Records a cold miss (infinite stack distance).
    #[inline]
    pub fn record_cold(&mut self) {
        self.cold += 1;
        self.total += 1;
    }

    /// Total references recorded (finite distances + cold misses).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cold misses recorded.
    #[must_use]
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Bin width in distance units.
    #[must_use]
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Number of occupied bins.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `b`.
    #[must_use]
    pub fn bin(&self, b: usize) -> u64 {
        self.bins.get(b).copied().unwrap_or(0)
    }

    /// Miss ratio of a cache with the given capacity: the fraction of
    /// references whose distance exceeds `capacity` (including cold misses).
    /// Capacity is rounded down to a bin boundary.
    #[must_use]
    pub fn miss_ratio(&self, capacity: u64) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let full_bins = (capacity / self.bin_width) as usize;
        let hits: u64 = self.bins.iter().take(full_bins).sum();
        (self.total - hits) as f64 / self.total as f64
    }

    /// Applies a SHARDS-adj-style count correction: under spatial sampling
    /// the number of sampled references should be `N·R` in expectation, but
    /// hot keys make the actual count deviate, which shifts the whole MRC
    /// vertically. `diff = expected − actual`: a positive value adds that
    /// many references at the smallest distance; a negative value removes
    /// mass from the smallest-distance bins (never from cold misses). The
    /// rationale is that over/under-represented hot objects contribute
    /// mostly tiny reuse distances.
    pub fn apply_count_adjustment(&mut self, diff: i64) {
        if diff > 0 {
            let d = diff as u64;
            if self.bins.is_empty() {
                self.bins.push(0);
            }
            self.bins[0] += d;
            self.total += d;
        } else {
            let mut remaining = (-diff) as u64;
            for b in &mut self.bins {
                if remaining == 0 {
                    break;
                }
                let take = (*b).min(remaining);
                *b -= take;
                self.total -= take;
                remaining -= take;
            }
        }
    }

    /// Estimated heap footprint in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.bins.capacity() * std::mem::size_of::<u64>()
    }

    /// Merges another histogram (must share the bin width) into this one.
    pub fn merge(&mut self, other: &SdHistogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin widths must match");
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (a, &b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.cold += other.cold;
        self.total += other.total;
    }

    /// Iterates `(bin_upper_boundary, count)` over occupied bins.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(move |(b, &c)| ((b as u64 + 1) * self.bin_width, c))
    }

    /// Serializes the histogram into a `krr-ckpt-v1` payload (bin width,
    /// cold count, total, raw bin counts). Unlike the `krr-sdh` text format
    /// in [`crate::persist`], this is an O(bins) direct dump — suitable for
    /// frequent checkpoints of histograms holding billions of references.
    pub fn save_state(&self, enc: &mut crate::checkpoint::Enc) {
        enc.put_u64(self.bin_width)
            .put_u64(self.cold)
            .put_u64(self.total)
            .put_u64(self.bins.len() as u64);
        for &b in &self.bins {
            enc.put_u64(b);
        }
    }

    /// Reconstructs a histogram from a [`SdHistogram::save_state`] payload.
    pub fn load_state(dec: &mut crate::checkpoint::Dec<'_>) -> std::io::Result<Self> {
        let bin_width = dec.u64()?;
        if bin_width == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "histogram bin width 0 in checkpoint",
            ));
        }
        let cold = dec.u64()?;
        let total = dec.u64()?;
        let n = usize::try_from(dec.u64()?).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "histogram length overflow")
        })?;
        let mut bins = Vec::with_capacity(n);
        for _ in 0..n {
            bins.push(dec.u64()?);
        }
        Ok(Self {
            bin_width,
            bins,
            cold,
            total,
        })
    }
}

impl crate::footprint::Footprint for SdHistogram {
    fn footprint(&self) -> crate::footprint::FootprintReport {
        let mut r = crate::footprint::FootprintReport::new();
        r.add("histogram", self.memory_bytes());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_binning_at_width_one() {
        let mut h = SdHistogram::new(1);
        h.record(1);
        h.record(1);
        h.record(3);
        h.record_cold();
        assert_eq!(h.total(), 4);
        assert_eq!(h.cold(), 1);
        assert_eq!(h.bin(0), 2);
        assert_eq!(h.bin(1), 0);
        assert_eq!(h.bin(2), 1);
        // capacity 0: everything misses
        assert_eq!(h.miss_ratio(0), 1.0);
        // capacity 1 holds the two distance-1 refs
        assert_eq!(h.miss_ratio(1), 0.5);
        // capacity 2 adds nothing
        assert_eq!(h.miss_ratio(2), 0.5);
        // capacity 3 holds distance-3 too; only the cold miss remains
        assert_eq!(h.miss_ratio(3), 0.25);
        assert_eq!(h.miss_ratio(u64::MAX / 2), 0.25);
    }

    #[test]
    fn wide_bins_round_capacity_down() {
        let mut h = SdHistogram::new(10);
        for d in 1..=10 {
            h.record(d); // all land in bin 0
        }
        h.record(11); // bin 1
        assert_eq!(h.bin(0), 10);
        assert_eq!(h.bin(1), 1);
        assert_eq!(h.miss_ratio(9), 1.0); // capacity below first boundary
        assert!((h.miss_ratio(10) - 1.0 / 11.0).abs() < 1e-12);
        assert_eq!(h.miss_ratio(20), 0.0);
    }

    #[test]
    fn count_adjustment_positive_adds_at_distance_one() {
        let mut h = SdHistogram::new(1);
        h.record(5);
        h.apply_count_adjustment(3);
        assert_eq!(h.total(), 4);
        assert_eq!(h.bin(0), 3);
        assert_eq!(h.miss_ratio(1), 0.25);
    }

    #[test]
    fn count_adjustment_negative_drains_small_bins_first() {
        let mut h = SdHistogram::new(1);
        h.record(1);
        h.record(1);
        h.record(3);
        h.record_cold();
        h.apply_count_adjustment(-3);
        // Two from bin 0, one from bin 2; cold untouched.
        assert_eq!(h.bin(0), 0);
        assert_eq!(h.bin(2), 0);
        assert_eq!(h.cold(), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn count_adjustment_on_empty_histogram() {
        let mut h = SdHistogram::new(1);
        h.apply_count_adjustment(2);
        assert_eq!(h.total(), 2);
        h.apply_count_adjustment(-10);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SdHistogram::new(2);
        let mut b = SdHistogram::new(2);
        a.record(1);
        b.record(4);
        b.record_cold();
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.cold(), 1);
        assert_eq!(a.bin(0), 1);
        assert_eq!(a.bin(1), 1);
    }

    #[test]
    fn empty_histogram_misses_everything() {
        let h = SdHistogram::new(1);
        assert_eq!(h.miss_ratio(100), 1.0);
    }

    #[test]
    fn iter_reports_bin_boundaries() {
        let mut h = SdHistogram::new(5);
        h.record(3);
        h.record(12);
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(5, 1), (10, 0), (15, 1)]);
    }
}
