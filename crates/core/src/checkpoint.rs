//! Crash-safe binary checkpoints: the `krr-ckpt-v1` container format.
//!
//! A long-running profiler (days over a Twitter-scale stream) must survive
//! restarts without replaying the trace. This module provides the framing
//! shared by every checkpointable component: [`KrrModel`](crate::KrrModel),
//! [`ShardedKrr`](crate::ShardedKrr), the metrics registry, the accuracy
//! watchdog, and the mini-Redis store. The design goals, in order:
//!
//! 1. **Crash safety.** Files are written to a temporary sibling and
//!    atomically renamed into place ([`CheckpointWriter::write_atomic`]),
//!    so a crash mid-write
//!    leaves the previous checkpoint intact.
//! 2. **Corruption detection.** Every section carries a CRC-32 of its
//!    payload; a bit flip, truncation, bad magic, or future version is
//!    rejected with a distinct, descriptive [`io::Error`] instead of
//!    silently restoring garbage.
//! 3. **Bit-identical resume.** Component payloads capture *everything*
//!    that influences future outputs — RNG streams, histograms, counters —
//!    so killing a run at a batch boundary, restoring, and finishing the
//!    trace yields an MRC bit-identical to an uninterrupted run.
//! 4. **No dependencies.** The CRC-32 and all (de)serialization are
//!    hand-rolled over `std`.
//!
//! ## On-disk layout
//!
//! ```text
//! magic    8 bytes   "KRRCKPT" + version byte (currently 1)
//! section  4 bytes   ASCII tag (e.g. "SHRD", "METR", "STRM")
//!          8 bytes   payload length, little-endian u64
//!          n bytes   payload (component-defined, see component docs)
//!          4 bytes   CRC-32 (IEEE) of the payload, little-endian
//! ...               more sections
//! end      "END\0" + length 0 + CRC of the empty payload
//! ```
//!
//! Integers inside payloads are little-endian; `f64`s are stored as their
//! IEEE-754 bit patterns ([`f64::to_bits`]), so round-trips are exact.
//!
//! ```
//! use krr_core::checkpoint::{CheckpointReader, CheckpointWriter, SECTION_STREAM};
//!
//! let mut w = CheckpointWriter::new();
//! w.section(SECTION_STREAM).put_u64(12_345);
//! let mut bytes = Vec::new();
//! w.write_to(&mut bytes).unwrap();
//!
//! let r = CheckpointReader::from_bytes(&bytes).unwrap();
//! let mut dec = r.section(SECTION_STREAM).unwrap();
//! assert_eq!(dec.u64().unwrap(), 12_345);
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

/// File magic: `"KRRCKPT"` followed by [`VERSION`].
pub const MAGIC: [u8; 7] = *b"KRRCKPT";

/// Current format version, stored as the 8th byte of the file header.
pub const VERSION: u8 = 1;

/// Section tag: a single [`crate::KrrModel`]'s full state.
pub const SECTION_MODEL: [u8; 4] = *b"MODL";
/// Section tag: a [`crate::ShardedKrr`] bank (template config + shards).
pub const SECTION_SHARDED: [u8; 4] = *b"SHRD";
/// Section tag: a [`crate::metrics::MetricsSnapshot`].
pub const SECTION_METRICS: [u8; 4] = *b"METR";
/// Section tag: accuracy-watchdog state (config, schedule, shadow Olken).
pub const SECTION_WATCHDOG: [u8; 4] = *b"WDOG";
/// Section tag: trace-stream position (refs seen, byte offset, line
/// number, stats rows) written by `krr model --checkpoint-every`.
pub const SECTION_STREAM: [u8; 4] = *b"STRM";
/// Section tag: mini-Redis store state (dict, memory accounting, stats).
pub const SECTION_STORE: [u8; 4] = *b"STOR";
/// Terminator section tag.
pub const SECTION_END: [u8; 4] = *b"END\0";

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data` — the checksum
/// guarding every checkpoint section.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Little-endian payload encoder used by every component's `save_state`.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.put_u64(v.to_bits())
    }

    /// Appends a `u64`-length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// The encoded payload so far.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning the payload.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-style decoder over a section payload; every read is
/// bounds-checked and a short payload yields a descriptive
/// [`io::ErrorKind::InvalidData`] error instead of a panic.
#[derive(Debug, Clone)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad_data("checkpoint payload truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` stored as its bit pattern.
    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64`-length-prefixed byte string.
    pub fn bytes(&mut self) -> io::Result<&'a [u8]> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| bad_data("checkpoint length overflows usize"))?;
        self.take(n)
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once the whole payload has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

/// Builds a multi-section `krr-ckpt-v1` file in memory, then writes it in
/// one shot ([`CheckpointWriter::write_to`]) or atomically to a path
/// ([`CheckpointWriter::write_atomic`]).
#[derive(Debug, Default)]
pub struct CheckpointWriter {
    sections: Vec<([u8; 4], Enc)>,
}

impl CheckpointWriter {
    /// Creates a writer with no sections.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new section with `tag` and returns its payload encoder.
    /// Sections are written in insertion order.
    pub fn section(&mut self, tag: [u8; 4]) -> &mut Enc {
        self.sections.push((tag, Enc::new()));
        &mut self.sections.last_mut().expect("just pushed").1
    }

    /// Adds a section with an already-encoded payload.
    pub fn add_section(&mut self, tag: [u8; 4], payload: Enc) {
        self.sections.push((tag, payload));
    }

    /// Serializes magic, every section (tag, length, payload, CRC-32) and
    /// the END terminator to `w`.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(&MAGIC)?;
        w.write_all(&[VERSION])?;
        for (tag, enc) in &self.sections {
            write_section(&mut w, *tag, enc.as_slice())?;
        }
        write_section(&mut w, SECTION_END, &[])?;
        w.flush()
    }

    /// Writes the checkpoint to `path` crash-safely: the bytes go to a
    /// `.tmp` sibling in the same directory, are synced to disk, and the
    /// temporary is renamed over `path` — readers only ever observe the
    /// previous complete checkpoint or the new one.
    pub fn write_atomic<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let file = std::fs::File::create(&tmp)?;
            let mut buf = io::BufWriter::new(file);
            self.write_to(&mut buf)?;
            buf.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

fn write_section<W: Write>(w: &mut W, tag: [u8; 4], payload: &[u8]) -> io::Result<()> {
    w.write_all(&tag)?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// A parsed `krr-ckpt-v1` file: magic and version verified, every
/// section's CRC-32 checked, terminator found.
#[derive(Debug)]
pub struct CheckpointReader {
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl CheckpointReader {
    /// Parses a checkpoint from any reader, validating magic, version,
    /// per-section CRCs and the END terminator.
    ///
    /// # Errors
    ///
    /// * bad magic → `InvalidData` "not a krr-ckpt checkpoint"
    /// * newer version → `InvalidData` "unsupported checkpoint version"
    /// * CRC mismatch → `InvalidData` "crc mismatch"
    /// * short file → `UnexpectedEof` "truncated checkpoint"
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut header = [0u8; 8];
        read_exact(&mut r, &mut header)?;
        if header[..7] != MAGIC {
            return Err(bad_data("not a krr-ckpt checkpoint (bad magic)"));
        }
        let version = header[7];
        if version != VERSION {
            return Err(bad_data(format!(
                "unsupported checkpoint version {version} (this build reads v{VERSION})"
            )));
        }
        let mut sections = Vec::new();
        loop {
            let mut tag = [0u8; 4];
            read_exact(&mut r, &mut tag)?;
            let mut len = [0u8; 8];
            read_exact(&mut r, &mut len)?;
            let len = u64::from_le_bytes(len);
            let len = usize::try_from(len)
                .map_err(|_| bad_data("checkpoint section length overflows usize"))?;
            let mut payload = vec![0u8; len];
            read_exact(&mut r, &mut payload)?;
            let mut crc = [0u8; 4];
            read_exact(&mut r, &mut crc)?;
            if u32::from_le_bytes(crc) != crc32(&payload) {
                return Err(bad_data(format!(
                    "section {:?} crc mismatch (corrupted checkpoint)",
                    String::from_utf8_lossy(&tag)
                )));
            }
            if tag == SECTION_END {
                return Ok(Self { sections });
            }
            sections.push((tag, payload));
        }
    }

    /// Parses a checkpoint held in memory.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        Self::read_from(bytes)
    }

    /// Opens and parses a checkpoint file.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Self::read_from(io::BufReader::new(std::fs::File::open(path)?))
    }

    /// Decoder over the first section with `tag`, if present.
    #[must_use]
    pub fn section(&self, tag: [u8; 4]) -> Option<Dec<'_>> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| Dec::new(p))
    }

    /// Decoder over the section with `tag`, or a descriptive error naming
    /// the missing section.
    pub fn require(&self, tag: [u8; 4]) -> io::Result<Dec<'_>> {
        self.section(tag).ok_or_else(|| {
            bad_data(format!(
                "checkpoint has no {:?} section",
                String::from_utf8_lossy(&tag)
            ))
        })
    }

    /// Tags of all sections, in file order.
    #[must_use]
    pub fn tags(&self) -> Vec<[u8; 4]> {
        self.sections.iter().map(|(t, _)| *t).collect()
    }
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(io::ErrorKind::UnexpectedEof, "truncated checkpoint")
        } else {
            e
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_reference_vectors() {
        // Published IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn enc_dec_roundtrip() {
        let mut e = Enc::new();
        e.put_u8(7)
            .put_u32(0xDEAD_BEEF)
            .put_u64(u64::MAX)
            .put_f64(-0.125)
            .put_bytes(b"hello");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.f64().unwrap(), -0.125);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert!(d.is_empty());
        assert!(d.u8().is_err(), "reads past the end must fail");
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = CheckpointWriter::new();
        w.section(SECTION_MODEL).put_u64(1).put_u64(2);
        w.section(SECTION_METRICS).put_bytes(b"xyz");
        let mut bytes = Vec::new();
        w.write_to(&mut bytes).unwrap();
        let r = CheckpointReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.tags(), vec![SECTION_MODEL, SECTION_METRICS]);
        let mut d = r.require(SECTION_MODEL).unwrap();
        assert_eq!((d.u64().unwrap(), d.u64().unwrap()), (1, 2));
        assert!(r.section(SECTION_STORE).is_none());
        assert!(r.require(SECTION_STORE).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = CheckpointReader::from_bytes(b"NOTCKPT\x01whatever").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = Vec::new();
        CheckpointWriter::new().write_to(&mut bytes).unwrap();
        bytes[7] = 9;
        let err = CheckpointReader::from_bytes(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("unsupported checkpoint version 9"),
            "{err}"
        );
    }

    #[test]
    fn truncation_rejected() {
        let mut w = CheckpointWriter::new();
        w.section(SECTION_MODEL).put_bytes(&[0u8; 64]);
        let mut bytes = Vec::new();
        w.write_to(&mut bytes).unwrap();
        for cut in [3, 9, 20, bytes.len() - 1] {
            let err = CheckpointReader::from_bytes(&bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut={cut}");
            assert!(err.to_string().contains("truncated"), "cut={cut}: {err}");
        }
    }

    #[test]
    fn bitflip_rejected_by_crc() {
        let mut w = CheckpointWriter::new();
        w.section(SECTION_MODEL).put_bytes(&[0xABu8; 64]);
        let mut bytes = Vec::new();
        w.write_to(&mut bytes).unwrap();
        // Flip one bit inside the payload region.
        bytes[8 + 4 + 8 + 10] ^= 0x40;
        let err = CheckpointReader::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("crc mismatch"), "{err}");
    }

    #[test]
    fn atomic_write_replaces_previous_checkpoint() {
        let dir = std::env::temp_dir().join(format!("krr-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.ckpt");
        let mut w = CheckpointWriter::new();
        w.section(SECTION_STREAM).put_u64(1);
        w.write_atomic(&path).unwrap();
        let mut w2 = CheckpointWriter::new();
        w2.section(SECTION_STREAM).put_u64(2);
        w2.write_atomic(&path).unwrap();
        let r = CheckpointReader::open(&path).unwrap();
        assert_eq!(r.require(SECTION_STREAM).unwrap().u64().unwrap(), 2);
        assert!(
            !dir.join("a.ckpt.tmp").exists(),
            "temporary must be renamed away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
