//! Request exemplars: which requests pay the tail, and why.
//!
//! The mini-Redis server assigns every RESP command a u64 request id and
//! times it. When a command's latency lands in the top of the latency
//! distribution (its log2 bucket at or above the live p99 bucket — the
//! threshold re-derives itself from the ring's own [`LogHistogram`] every
//! 64 observations), the connection thread captures an **exemplar**: the
//! request id, tenant, latency, the span join key (`start_ns`, matching
//! the Chrome-trace span timestamps in `/trace`), and the counter context
//! active during the request — cumulative ring parks, the deep swap-chain
//! length, and whether a `/metrics` scrape was in flight. Exemplars land
//! in a bounded multi-writer lock-free ring (overwrite-oldest, losses
//! counted); the expo server renders the most recent one per bucket as
//! OpenMetrics exemplar syntax on `/metrics` and dumps the whole ring as
//! `krr-exemplars-v1` JSON on `/exemplars`.
//!
//! Concurrency: connection threads capture concurrently, so slots are
//! claimed with one `fetch_add` and sealed with a per-slot sequence word
//! (seqlock): writer stores 0 (`Release`), fills the payload (`Relaxed`),
//! then stores `claim + 1` (`Release`); the reader loads the sequence
//! (`Acquire`), copies the payload, fences, and re-checks — a torn slot
//! reads as in-progress and is skipped, never emitted half-written. The
//! whole structure is independent of the model: capture touches no KRR
//! state, so MRCs stay bit-identical with forensics on or off.
//!
//! ```
//! use krr_core::forensics::{Exemplar, ExemplarRing};
//!
//! let ring = ExemplarRing::new();
//! let id = ring.next_request_id();
//! // With no history yet every observation is "the tail":
//! if ring.observe(5_000_000) {
//!     ring.capture(&Exemplar { request_id: id, latency_ns: 5_000_000, ..Exemplar::default() });
//! }
//! let dump = ring.snapshot();
//! assert_eq!(dump.exemplars.len(), 1);
//! assert_eq!(dump.exemplars[0].request_id, id);
//! ```

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};

use crate::metrics::{bucket_bound, bucket_of, HistogramSnapshot, LogHistogram};

/// Default exemplar-ring capacity (slots, power of two).
pub const EXEMPLAR_RING_CAPACITY: usize = 256;

/// How many observations between threshold-bucket refreshes.
const THRESHOLD_REFRESH: u64 = 64;

/// One captured tail request with its counter context.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Exemplar {
    /// Per-server monotone request id (from [`ExemplarRing::next_request_id`]).
    pub request_id: u64,
    /// Tenant selected on the connection, if any.
    pub tenant: Option<u64>,
    /// End-to-end command latency.
    pub latency_ns: u64,
    /// Recorder-epoch start timestamp — the join key to the `/trace`
    /// Chrome dump: the command's `Phase::Command` span has `ts =
    /// start_ns / 1000`.
    pub start_ns: u64,
    /// RESP command tag (same map as `Phase::Command` span args).
    pub command_tag: u8,
    /// Whether a `/metrics` scrape was in flight during the request.
    pub scrape_in_progress: bool,
    /// Cumulative router park count at capture time.
    pub router_parks: u64,
    /// Cumulative worker park count at capture time.
    pub worker_parks: u64,
    /// Cumulative deep stack updates (`updater.chain_len.count`) at
    /// capture time — a cheap lock-free read, unlike a full histogram
    /// snapshot.
    pub deep_chains: u64,
}

const WORDS: usize = 8;

fn pack_flags(ex: &Exemplar) -> u64 {
    u64::from(ex.command_tag) | (u64::from(ex.scrape_in_progress) << 8)
}

#[derive(Debug)]
struct Slot {
    /// 0 = empty or being written; otherwise `claim + 1` of the writer
    /// that sealed it.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

/// A dump of the ring's current contents plus its loss accounting,
/// ordered oldest-first by `start_ns`.
#[derive(Debug, Clone)]
pub struct ExemplarDump {
    /// Ring capacity in slots.
    pub capacity: usize,
    /// Exemplars ever captured (monotone).
    pub captured: u64,
    /// Exemplars lost to overwrite-oldest (`captured - capacity`, floored
    /// at zero).
    pub dropped: u64,
    /// Current capture threshold as a latency bound: commands at or above
    /// this land in the ring.
    pub threshold_ns: u64,
    /// The surviving exemplars.
    pub exemplars: Vec<Exemplar>,
}

/// Bounded lock-free multi-writer exemplar ring with its own command
/// latency histogram and self-adjusting p99 capture threshold.
#[derive(Debug)]
pub struct ExemplarRing {
    enabled: AtomicBool,
    request_ids: AtomicU64,
    /// Depth of in-flight `/metrics` scrapes (guards may nest).
    scrapes: AtomicU64,
    hist: LogHistogram,
    /// Log2 bucket index at/above which a command is captured.
    threshold_bucket: AtomicU64,
    cursor: AtomicU64,
    slots: Box<[Slot]>,
}

impl Default for ExemplarRing {
    fn default() -> Self {
        Self::with_capacity(EXEMPLAR_RING_CAPACITY)
    }
}

impl ExemplarRing {
    /// Ring with the default capacity, enabled.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Ring holding `capacity` exemplars (rounded up to a power of two,
    /// minimum 16), enabled.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(16).next_power_of_two();
        Self {
            enabled: AtomicBool::new(true),
            request_ids: AtomicU64::new(0),
            scrapes: AtomicU64::new(0),
            hist: LogHistogram::new(),
            threshold_bucket: AtomicU64::new(0),
            cursor: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
        }
    }

    /// Turns capture on or off (`CONFIG SET forensics on|off`). Off,
    /// [`Self::observe`] is one flag load — the recorder-only baseline.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether capture is enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Issues the next request id (1-based, monotone per ring).
    #[must_use]
    pub fn next_request_id(&self) -> u64 {
        self.request_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records a command latency and reports whether it lands at or above
    /// the capture threshold (the live p99 bucket). The very first
    /// observations all qualify (threshold starts at bucket 0) until 64
    /// samples establish a distribution.
    #[must_use]
    pub fn observe(&self, latency_ns: u64) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        self.hist.record(latency_ns);
        if self.hist.count() % THRESHOLD_REFRESH == 0 {
            self.refresh_threshold();
        }
        bucket_of(latency_ns) as u64 >= self.threshold_bucket.load(Ordering::Relaxed)
    }

    fn refresh_threshold(&self) {
        let snap = self.hist.snapshot();
        if snap.count == 0 {
            return;
        }
        // The threshold is the lowest bucket whose suffix count (requests
        // at or above it) stays within the 1% tail budget — so captures
        // are the top ~1% of requests, never the bulk bucket, even when
        // the distribution sits exactly on the 99th-percentile boundary.
        let tail_budget = (snap.count / 100).max(1);
        let mut suffix = 0u64;
        let mut threshold = snap.buckets.len() as u64;
        for (b, &c) in snap.buckets.iter().enumerate().rev() {
            suffix += c;
            if suffix > tail_budget {
                break;
            }
            threshold = b as u64;
        }
        self.threshold_bucket.store(threshold, Ordering::Relaxed);
    }

    /// Captures an exemplar into the ring (overwrite-oldest). Safe to
    /// call from any number of threads concurrently.
    pub fn capture(&self, ex: &Exemplar) {
        let claim = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim % self.slots.len() as u64) as usize];
        slot.seq.store(0, Ordering::Release);
        let words = [
            ex.request_id,
            ex.tenant.map_or(u64::MAX, |t| t),
            ex.latency_ns,
            ex.start_ns,
            pack_flags(ex),
            ex.router_parks,
            ex.worker_parks,
            ex.deep_chains,
        ];
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(claim + 1, Ordering::Release);
    }

    /// Exemplars ever captured.
    #[must_use]
    pub fn captured(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Exemplars lost to overwrite-oldest (the `/healthz` loss counter).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.captured().saturating_sub(self.slots.len() as u64)
    }

    /// Current capture threshold as a latency bound in nanoseconds:
    /// commands at or above this latency land in the ring.
    #[must_use]
    pub fn threshold_ns(&self) -> u64 {
        let b = self.threshold_bucket.load(Ordering::Relaxed) as usize;
        if b == 0 {
            0
        } else {
            bucket_bound(b - 1).saturating_add(1)
        }
    }

    /// Snapshot of the ring's command latency histogram (the source of
    /// the `/metrics` `krr_command_latency_ns` family).
    #[must_use]
    pub fn latency_histogram(&self) -> HistogramSnapshot {
        self.hist.snapshot()
    }

    /// Marks a `/metrics` scrape as in flight for the guard's lifetime;
    /// exemplars captured meanwhile carry `scrape_in_progress = true`.
    #[must_use]
    pub fn scrape_guard(&self) -> ScrapeGuard<'_> {
        self.scrapes.fetch_add(1, Ordering::Relaxed);
        ScrapeGuard { ring: self }
    }

    /// Whether any scrape is currently in flight.
    #[must_use]
    pub fn scrape_in_progress(&self) -> bool {
        self.scrapes.load(Ordering::Relaxed) > 0
    }

    /// Reads the ring's surviving exemplars, skipping slots concurrently
    /// being rewritten, ordered by `start_ns` then request id.
    #[must_use]
    pub fn snapshot(&self) -> ExemplarDump {
        let mut exemplars = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let words: [u64; WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq {
                continue; // torn: a writer re-claimed this slot mid-read
            }
            exemplars.push(Exemplar {
                request_id: words[0],
                tenant: (words[1] != u64::MAX).then_some(words[1]),
                latency_ns: words[2],
                start_ns: words[3],
                command_tag: (words[4] & 0xFF) as u8,
                scrape_in_progress: words[4] & 0x100 != 0,
                router_parks: words[5],
                worker_parks: words[6],
                deep_chains: words[7],
            });
        }
        exemplars.sort_by_key(|e| (e.start_ns, e.request_id));
        ExemplarDump {
            capacity: self.slots.len(),
            captured: self.captured(),
            dropped: self.dropped(),
            threshold_ns: self.threshold_ns(),
            exemplars,
        }
    }

    /// Renders the ring as a `krr-exemplars-v1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let dump = self.snapshot();
        let mut s = String::with_capacity(256 + dump.exemplars.len() * 160);
        let _ = write!(
            s,
            "{{\"schema\":\"krr-exemplars-v1\",\"capacity\":{},\"captured\":{},\"dropped\":{},\"threshold_ns\":{},\"exemplars\":[",
            dump.capacity, dump.captured, dump.dropped, dump.threshold_ns
        );
        for (i, e) in dump.exemplars.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"request_id\":{},\"tenant\":{},\"latency_ns\":{},\"start_ns\":{},\"command_tag\":{},\"scrape_in_progress\":{},\"router_parks\":{},\"worker_parks\":{},\"deep_chains\":{}}}",
                e.request_id,
                e.tenant.map_or_else(|| "null".to_string(), |t| t.to_string()),
                e.latency_ns,
                e.start_ns,
                e.command_tag,
                e.scrape_in_progress,
                e.router_parks,
                e.worker_parks,
                e.deep_chains,
            );
        }
        s.push_str("]}");
        s
    }
}

/// RAII marker for an in-flight `/metrics` scrape (see
/// [`ExemplarRing::scrape_guard`]).
#[derive(Debug)]
pub struct ScrapeGuard<'a> {
    ring: &'a ExemplarRing,
}

impl Drop for ScrapeGuard<'_> {
    fn drop(&mut self) {
        self.ring.scrapes.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capture_roundtrips_every_field() {
        let ring = ExemplarRing::new();
        let ex = Exemplar {
            request_id: 42,
            tenant: Some(7),
            latency_ns: 1_234_567,
            start_ns: 99,
            command_tag: 3,
            scrape_in_progress: true,
            router_parks: 5,
            worker_parks: 11,
            deep_chains: 1000,
        };
        ring.capture(&ex);
        let dump = ring.snapshot();
        assert_eq!(dump.exemplars, vec![ex]);
        assert_eq!(dump.captured, 1);
        assert_eq!(dump.dropped, 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = ExemplarRing::with_capacity(16);
        for i in 0..40u64 {
            ring.capture(&Exemplar {
                request_id: i,
                start_ns: i,
                ..Exemplar::default()
            });
        }
        let dump = ring.snapshot();
        assert_eq!(dump.captured, 40);
        assert_eq!(dump.dropped, 24);
        assert_eq!(dump.exemplars.len(), 16);
        assert_eq!(dump.exemplars.first().unwrap().request_id, 24);
        assert_eq!(dump.exemplars.last().unwrap().request_id, 39);
    }

    #[test]
    fn threshold_tracks_p99_bucket() {
        let ring = ExemplarRing::new();
        // 127 fast requests + 1 slow one = 128 observations, two refreshes.
        for _ in 0..127 {
            let _ = ring.observe(1_000);
        }
        assert!(ring.observe(8_000_000));
        // Threshold now sits at the p99 bucket: fast requests no longer
        // qualify, slow ones still do.
        assert!(!ring.observe(1_000));
        assert!(ring.observe(8_000_000));
        assert!(ring.threshold_ns() > 1_000);
    }

    #[test]
    fn disabled_ring_observes_nothing() {
        let ring = ExemplarRing::new();
        ring.set_enabled(false);
        assert!(!ring.observe(u64::MAX));
        assert_eq!(ring.latency_histogram().count, 0);
        ring.set_enabled(true);
        assert!(ring.observe(1));
    }

    #[test]
    fn scrape_guard_nests_and_releases() {
        let ring = ExemplarRing::new();
        assert!(!ring.scrape_in_progress());
        {
            let _a = ring.scrape_guard();
            let _b = ring.scrape_guard();
            assert!(ring.scrape_in_progress());
        }
        assert!(!ring.scrape_in_progress());
    }

    #[test]
    fn request_ids_are_monotone_from_one() {
        let ring = ExemplarRing::new();
        assert_eq!(ring.next_request_id(), 1);
        assert_eq!(ring.next_request_id(), 2);
    }

    #[test]
    fn concurrent_capture_never_yields_torn_exemplars() {
        let ring = Arc::new(ExemplarRing::with_capacity(32));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        // Every field derives from request_id so a torn
                        // read is detectable.
                        let id = t * 1_000_000 + i;
                        ring.capture(&Exemplar {
                            request_id: id,
                            tenant: Some(id),
                            latency_ns: id,
                            start_ns: id,
                            command_tag: (id % 14) as u8,
                            scrape_in_progress: false,
                            router_parks: id,
                            worker_parks: id,
                            deep_chains: id,
                        });
                        if i % 64 == 0 {
                            for e in ring.snapshot().exemplars {
                                assert_eq!(e.tenant, Some(e.request_id));
                                assert_eq!(e.latency_ns, e.request_id);
                                assert_eq!(e.router_parks, e.request_id);
                                assert_eq!(e.deep_chains, e.request_id);
                            }
                        }
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(ring.captured(), 8_000);
        assert_eq!(ring.dropped(), 8_000 - 32);
    }

    #[test]
    fn json_dump_has_schema_and_fields() {
        let ring = ExemplarRing::new();
        ring.capture(&Exemplar {
            request_id: 1,
            tenant: None,
            latency_ns: 9,
            ..Exemplar::default()
        });
        let json = ring.to_json();
        assert!(
            json.starts_with("{\"schema\":\"krr-exemplars-v1\""),
            "{json}"
        );
        assert!(json.contains("\"tenant\":null"), "{json}");
        assert!(json.contains("\"latency_ns\":9"), "{json}");
        let doc = crate::json::parse(&json).unwrap();
        assert_eq!(
            doc.get("exemplars")
                .and_then(crate::json::Json::as_arr)
                .map(<[_]>::len),
            Some(1)
        );
    }
}
