//! Plain-text persistence for analysis artifacts: stack-distance
//! histograms and MRCs.
//!
//! Online profilers export their histogram periodically (the MRC is a
//! pure function of it), ship it off-box, and the analysis side rebuilds
//! curves without replaying any traffic. The format is line-oriented,
//! versioned, and deliberately trivial: no dependencies, greppable, and
//! stable under append-only evolution.
//!
//! This module is for *analysis artifacts* meant to be read by humans and
//! scripts. For crash-safe, bit-exact profiler state (RNG streams, stacks,
//! counters) use the binary [`checkpoint`](crate::checkpoint) format
//! instead — text round-trips of `f64`s and histograms are lossy by
//! design here.
//!
//! ```text
//! krr-sdh v1
//! bin_width 1
//! cold 42
//! bin 0 17        # count of distances in bin 0
//! bin 7 3
//! end
//! ```

use crate::histogram::SdHistogram;
use crate::metrics::MetricsSnapshot;
use crate::mrc::Mrc;
use std::io::{self, BufRead, Write};

/// Writes a histogram in the `krr-sdh v1` text format.
pub fn write_histogram<W: Write>(mut w: W, hist: &SdHistogram) -> io::Result<()> {
    writeln!(w, "krr-sdh v1")?;
    writeln!(w, "bin_width {}", hist.bin_width())?;
    writeln!(w, "cold {}", hist.cold())?;
    for (b, (_, count)) in hist.iter().enumerate() {
        if count > 0 {
            writeln!(w, "bin {b} {count}")?;
        }
    }
    writeln!(w, "end")
}

/// Reads a histogram written by [`write_histogram`].
pub fn read_histogram<R: BufRead>(r: R) -> io::Result<SdHistogram> {
    let bad = |line: usize, msg: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {}: {msg}", line + 1),
        )
    };
    let mut lines = Vec::new();
    for l in r.lines() {
        lines.push(l?);
    }
    let mut it = lines.iter().enumerate();
    let (i, header) = it.next().ok_or_else(|| bad(0, "empty input"))?;
    if header.trim() != "krr-sdh v1" {
        return Err(bad(i, "expected header 'krr-sdh v1'"));
    }
    let mut bin_width: Option<u64> = None;
    let mut cold = 0u64;
    let mut bins: Vec<(usize, u64)> = Vec::new();
    let mut ended = false;
    for (i, line) in it {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("bin_width") => {
                let v = parts
                    .next()
                    .ok_or_else(|| bad(i, "bin_width needs a value"))?;
                bin_width = Some(v.parse().map_err(|_| bad(i, "bad bin_width"))?);
            }
            Some("cold") => {
                let v = parts.next().ok_or_else(|| bad(i, "cold needs a value"))?;
                cold = v.parse().map_err(|_| bad(i, "bad cold count"))?;
            }
            Some("bin") => {
                let idx: usize = parts
                    .next()
                    .ok_or_else(|| bad(i, "bin needs an index"))?
                    .parse()
                    .map_err(|_| bad(i, "bad bin index"))?;
                let count: u64 = parts
                    .next()
                    .ok_or_else(|| bad(i, "bin needs a count"))?
                    .parse()
                    .map_err(|_| bad(i, "bad bin count"))?;
                bins.push((idx, count));
            }
            Some("end") => {
                ended = true;
                break;
            }
            Some(other) => return Err(bad(i, &format!("unknown record {other:?}"))),
            None => {}
        }
    }
    if !ended {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "missing 'end' marker",
        ));
    }
    let w = bin_width.ok_or_else(|| bad(0, "missing bin_width"))?;
    let mut hist = SdHistogram::new(w);
    for (idx, count) in bins {
        // Reconstruct counts through the public API: one record per unit at
        // a distance inside the bin.
        let d = (idx as u64) * w + 1;
        for _ in 0..count {
            hist.record(d);
        }
    }
    for _ in 0..cold {
        hist.record_cold();
    }
    Ok(hist)
}

/// Writes a metrics snapshot as one JSON document (`krr-metrics-v1`
/// schema, see [`MetricsSnapshot::to_json`]) followed by a newline, so a
/// checkpoint file of snapshots is newline-delimited JSON.
pub fn write_metrics_json<W: Write>(mut w: W, snap: &MetricsSnapshot) -> io::Result<()> {
    w.write_all(snap.to_json().as_bytes())?;
    writeln!(w)
}

/// Writes an MRC as `cache_size,miss_ratio` CSV.
pub fn write_mrc<W: Write>(mut w: W, mrc: &Mrc) -> io::Result<()> {
    writeln!(w, "cache_size,miss_ratio")?;
    for &(x, y) in mrc.points() {
        writeln!(w, "{x},{y}")?;
    }
    Ok(())
}

/// Reads an MRC written by [`write_mrc`].
pub fn read_mrc<R: BufRead>(r: R) -> io::Result<Mrc> {
    let mut points = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line == "cache_size,miss_ratio" || line.starts_with('#') {
            continue;
        }
        let (x, y) = line.split_once(',').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: no comma", i + 1),
            )
        })?;
        let parse = |s: &str| {
            s.trim().parse::<f64>().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad number", i + 1),
                )
            })
        };
        points.push((parse(x)?, parse(y)?));
    }
    Ok(Mrc::from_points(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_roundtrip() {
        let mut h = SdHistogram::new(4);
        for d in [1u64, 2, 9, 9, 33, 120] {
            h.record(d);
        }
        h.record_cold();
        h.record_cold();
        let mut buf = Vec::new();
        write_histogram(&mut buf, &h).unwrap();
        let back = read_histogram(buf.as_slice()).unwrap();
        assert_eq!(back.total(), h.total());
        assert_eq!(back.cold(), h.cold());
        assert_eq!(back.bin_width(), h.bin_width());
        for b in 0..h.num_bins() {
            assert_eq!(back.bin(b), h.bin(b), "bin {b}");
        }
        // The derived MRCs must match exactly.
        assert_eq!(
            Mrc::from_histogram(&back, 1.0),
            Mrc::from_histogram(&h, 1.0)
        );
    }

    #[test]
    fn histogram_rejects_garbage() {
        assert!(read_histogram("not a header\n".as_bytes()).is_err());
        assert!(
            read_histogram("krr-sdh v1\nbin_width 1\n".as_bytes()).is_err(),
            "missing end"
        );
        assert!(read_histogram("krr-sdh v1\nbin x y\nend\n".as_bytes()).is_err());
        assert!(read_histogram("krr-sdh v1\nfrob 1\nend\n".as_bytes()).is_err());
    }

    #[test]
    fn histogram_tolerates_comments_and_blanks() {
        let text = "krr-sdh v1\nbin_width 2\n# a comment\n\ncold 3\nbin 0 5\nend\n";
        let h = read_histogram(text.as_bytes()).unwrap();
        assert_eq!(h.total(), 8);
        assert_eq!(h.cold(), 3);
    }

    #[test]
    fn mrc_roundtrip() {
        let mrc = Mrc::from_points(vec![(0.0, 1.0), (10.0, 0.5), (100.0, 0.125)]);
        let mut buf = Vec::new();
        write_mrc(&mut buf, &mrc).unwrap();
        let back = read_mrc(buf.as_slice()).unwrap();
        assert_eq!(back.points(), mrc.points());
    }

    #[test]
    fn mrc_rejects_garbage() {
        assert!(read_mrc("1;2\n".as_bytes()).is_err());
        assert!(read_mrc("1,notanumber\n".as_bytes()).is_err());
    }

    #[test]
    fn metrics_json_is_newline_terminated() {
        let reg = crate::metrics::MetricsRegistry::new();
        reg.accesses.add(3);
        reg.chain_len.record(5);
        let mut buf = Vec::new();
        write_metrics_json(&mut buf, &reg.snapshot()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.ends_with('\n'));
        assert!(
            !text[..text.len() - 1].contains('\n'),
            "one line per snapshot"
        );
        assert!(text.contains("\"schema\":\"krr-metrics-v1\""));
    }
}
