//! SHARDS-style uniform spatial sampling (§2.4).
//!
//! A reference with key `L` is processed iff `hash(L) mod P < T`; the
//! effective sampling rate is `R = T / P`. Sampling by key (not by request)
//! keeps every reference to a sampled object, which preserves reuse
//! structure — the property SHARDS relies on and KRR inherits.

use crate::hashing::hash_key;

/// Default modulus: 2^24, as in the SHARDS paper.
pub const DEFAULT_MODULUS: u64 = 1 << 24;

/// Spatial sampling filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpatialFilter {
    threshold: u64,
    modulus: u64,
}

impl SpatialFilter {
    /// Filter with an explicit threshold and modulus (`R = threshold/modulus`).
    #[must_use]
    pub fn new(threshold: u64, modulus: u64) -> Self {
        assert!(modulus > 0 && threshold > 0 && threshold <= modulus);
        Self { threshold, modulus }
    }

    /// Filter with sampling rate `rate` in `(0, 1]` over the default modulus.
    #[must_use]
    pub fn with_rate(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "rate must be in (0,1], got {rate}"
        );
        let threshold = ((rate * DEFAULT_MODULUS as f64).round() as u64).max(1);
        Self::new(threshold.min(DEFAULT_MODULUS), DEFAULT_MODULUS)
    }

    /// A filter that samples everything (rate 1.0).
    #[must_use]
    pub fn all() -> Self {
        Self::new(DEFAULT_MODULUS, DEFAULT_MODULUS)
    }

    /// True if references to `key` should be processed.
    #[inline]
    #[must_use]
    pub fn admits(&self, key: u64) -> bool {
        self.admits_hashed(hash_key(key))
    }

    /// [`SpatialFilter::admits`] for a key whose [`hash_key`] value is
    /// already in hand — the route-once path: the sharded router hashes
    /// each key exactly once and passes the hash through, so admission
    /// never re-hashes. Only the low `log2(modulus)` bits are consumed;
    /// shard routing reads disjoint high bits of the same hash.
    #[inline]
    #[must_use]
    pub fn admits_hashed(&self, key_hash: u64) -> bool {
        key_hash % self.modulus < self.threshold
    }

    /// [`SpatialFilter::admits_hashed`] over a batch of 8 pre-hashed keys,
    /// returning a bitmask (bit `i` set ⇔ `hashes[i]` admitted). Branchless:
    /// each lane is one compare folded into the mask, so the batched
    /// pipeline hot path takes no data-dependent branches while filtering.
    /// Bit-identical to eight scalar calls by construction.
    #[inline]
    #[must_use]
    pub fn admits_hashed8(&self, hashes: &[u64; 8]) -> u8 {
        let mut mask = 0u8;
        for (i, &h) in hashes.iter().enumerate() {
            mask |= u8::from(h % self.modulus < self.threshold) << i;
        }
        mask
    }

    /// True when the filter admits every key (rate 1.0) — lets batch
    /// processing skip per-reference admission entirely.
    #[inline]
    #[must_use]
    pub fn admits_all(&self) -> bool {
        self.threshold >= self.modulus
    }

    /// Admission threshold `T` (checkpointing: a filter round-trips exactly
    /// via `SpatialFilter::new(threshold(), modulus())`).
    #[must_use]
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Hash-space modulus `P`.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Effective sampling rate `R = T/P`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.threshold as f64 / self.modulus as f64
    }

    /// The factor by which sampled stack distances must be scaled to recover
    /// full-trace cache sizes (`1/R`).
    #[must_use]
    pub fn scale(&self) -> f64 {
        1.0 / self.rate()
    }
}

/// Picks a sampling rate that keeps the *expected* number of sampled distinct
/// objects at or above `min_objects` (§5.3's guard: "we apply a higher
/// sampling rate to those workloads with a small working set size such that
/// ... at least 8K objects are sampled").
#[must_use]
pub fn rate_for_working_set(requested_rate: f64, working_set: u64, min_objects: u64) -> f64 {
    assert!(requested_rate > 0.0 && requested_rate <= 1.0);
    if working_set == 0 {
        return 1.0;
    }
    let needed = min_objects as f64 / working_set as f64;
    requested_rate.max(needed).min(1.0)
}

/// The paper's default guard value: 8K sampled objects.
pub const DEFAULT_MIN_SAMPLED_OBJECTS: u64 = 8 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_roundtrip() {
        let f = SpatialFilter::with_rate(0.001);
        assert!((f.rate() - 0.001).abs() < 1e-6);
        assert!((f.scale() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn admits_is_stable_per_key() {
        let f = SpatialFilter::with_rate(0.01);
        for key in 0..1000u64 {
            assert_eq!(f.admits(key), f.admits(key));
        }
    }

    #[test]
    fn empirical_rate_matches_nominal() {
        let f = SpatialFilter::with_rate(0.01);
        let n = 1_000_000u64;
        let admitted = (0..n).filter(|&k| f.admits(k)).count() as f64;
        let got = admitted / n as f64;
        assert!((got - 0.01).abs() < 0.002, "empirical rate {got}");
    }

    #[test]
    fn rate_one_admits_everything() {
        let f = SpatialFilter::all();
        assert!((0..10_000u64).all(|k| f.admits(k)));
        assert_eq!(f.scale(), 1.0);
        assert!(f.admits_all());
        assert!(!SpatialFilter::with_rate(0.5).admits_all());
    }

    #[test]
    fn admits_hashed8_matches_scalar() {
        let f = SpatialFilter::with_rate(0.3);
        for base in 0..200u64 {
            let hashes = std::array::from_fn(|i| hash_key(base * 8 + i as u64));
            let mask = f.admits_hashed8(&hashes);
            for (i, &h) in hashes.iter().enumerate() {
                assert_eq!(mask >> i & 1 == 1, f.admits_hashed(h), "lane {i}");
            }
        }
    }

    #[test]
    fn working_set_guard_raises_small_rates() {
        // 8K objects needed out of 16K working set -> at least rate 0.5.
        assert_eq!(rate_for_working_set(0.001, 16 * 1024, 8 * 1024), 0.5);
        // Large working set keeps the requested rate.
        assert_eq!(rate_for_working_set(0.001, 100_000_000, 8 * 1024), 0.001);
        // Tiny working set -> sample everything.
        assert_eq!(rate_for_working_set(0.001, 100, 8 * 1024), 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be in (0,1]")]
    fn zero_rate_rejected() {
        let _ = SpatialFilter::with_rate(0.0);
    }
}
