//! Opt-in counting global allocator for live/peak heap gauges.
//!
//! The [`crate::footprint`] layer *models* structure sizes; this module
//! measures allocator ground truth. [`CountingAlloc`] wraps the system
//! allocator and — when the crate is built with the **`alloc-stats`**
//! feature — maintains two process-wide atomics: bytes currently live and
//! the high-water mark. Both are published as the `heap_live_bytes` /
//! `heap_peak_bytes` gauges in `krr-metrics-v1` and on `/metrics`.
//!
//! Without the feature the wrapper is a transparent pass-through (zero
//! bookkeeping, and [`live_bytes`]/[`peak_bytes`] read 0), so binaries can
//! install it unconditionally:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: krr_core::heap::CountingAlloc = krr_core::heap::CountingAlloc;
//! ```
//!
//! Counting costs two `Relaxed` RMWs per alloc/dealloc — measurable on
//! allocation-heavy phases, which is why it is opt-in rather than default.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// True when the crate was built with the `alloc-stats` feature (i.e. a
/// [`CountingAlloc`] actually counts).
#[must_use]
pub fn counting_enabled() -> bool {
    cfg!(feature = "alloc-stats")
}

/// Bytes currently allocated through a [`CountingAlloc`] (0 when the
/// `alloc-stats` feature is off or no counting allocator is installed).
#[must_use]
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start.
#[must_use]
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

#[inline]
fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as u64, Ordering::Relaxed);
}

/// A [`System`]-backed global allocator that (with the `alloc-stats`
/// feature) tracks live and peak heap bytes.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the bookkeeping touches
// only atomics and never the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if counting_enabled() && !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if counting_enabled() {
            on_dealloc(layout.size());
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if counting_enabled() && !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_read_zero_without_traffic_or_feature() {
        // Whether or not alloc-stats is on, the accessors must be callable
        // and consistent: peak >= live always.
        assert!(peak_bytes() >= live_bytes() || live_bytes() == 0);
    }

    #[test]
    fn manual_bookkeeping_tracks_peak() {
        // Exercise the counters directly (the allocator itself is only
        // installed by binaries that opt in).
        let base_live = live_bytes();
        on_alloc(1024);
        assert!(live_bytes() >= base_live + 1024);
        assert!(peak_bytes() >= live_bytes());
        on_dealloc(1024);
        assert!(peak_bytes() >= 1024);
    }
}
