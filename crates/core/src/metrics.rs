//! Lock-free metrics for the KRR pipeline: atomic counters and
//! log-bucketed histograms, aggregated in a [`MetricsRegistry`] that every
//! stage (model, updaters, shards, simulators, mini-Redis) can share
//! through an `Arc`.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost.** A production MRC profiler is judged by its
//!    per-access overhead (Byrne's MRC survey; Inoue's multi-step LRU), so
//!    every record is a handful of `Relaxed` atomic RMWs — no locks, no
//!    allocation, no branching beyond one `Option` check in the caller.
//!    Latency timing is *sampled* (callers time ~1/64 of accesses) because
//!    reading the clock costs more than the work being measured.
//! 2. **Concurrency.** Shard workers and server connection threads record
//!    into the same registry concurrently; `AtomicU64` everywhere makes
//!    that safe. Snapshots are *not* atomic across fields — they are
//!    monotone-consistent, which is what monitoring needs.
//! 3. **No dependencies.** Snapshots export to Redis-`INFO`-style text and
//!    hand-rolled JSON; both formats are documented in DESIGN.md.
//!
//! ```
//! use krr_core::metrics::MetricsRegistry;
//! use std::sync::Arc;
//!
//! let reg = Arc::new(MetricsRegistry::new());
//! reg.accesses.inc();
//! reg.chain_len.record(17);
//! let snap = reg.snapshot();
//! assert_eq!(snap.accesses, 1);
//! assert_eq!(snap.chain_len.count, 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of buckets in a [`LogHistogram`]: bucket 0 holds value 0, bucket
/// `b >= 1` holds values with `ilog2(v) == b - 1`, i.e. `[2^(b-1), 2^b)`.
pub const LOG_BUCKETS: usize = 65;

/// A monotone event counter (`Relaxed` atomics; ~1 ns per increment).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (`Relaxed` store/load). Unlike a [`Counter`] it
/// can move both ways — used for live readings such as the accuracy
/// watchdog's current MAE.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a zeroed gauge.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Overwrites the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram of `u64` values (chain lengths, scan counts,
/// nanosecond latencies, candidate ages). Recording is 4 `Relaxed` RMWs.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; LOG_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket holding `v`.
#[inline]
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    match v.checked_ilog2() {
        None => 0,
        Some(b) => b as usize + 1,
    }
}

/// Inclusive upper bound of bucket `b` (the value reported for percentile
/// estimates).
#[inline]
#[must_use]
pub fn bucket_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Values recorded so far.
    #[inline]
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Adds a snapshot's contents into this histogram (bucket counts,
    /// count and sum accumulate; max raises the running maximum). Used to
    /// carry metrics across a checkpoint/restore: restoring into a fresh
    /// registry makes the counters continue where the crashed run left
    /// off.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        for (b, &c) in self.buckets.iter().zip(&snap.buckets) {
            if c > 0 {
                b.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }
}

/// Non-atomic copy of a [`LogHistogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_of`]).
    pub buckets: [u64; LOG_BUCKETS],
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-resolution percentile estimate: the upper bound of the first
    /// bucket whose cumulative count reaches `p` (0 < p <= 1) of the total.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target.max(1) {
                return bucket_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// Percentile estimate with linear interpolation inside the winning
    /// log2 bucket. [`HistogramSnapshot::percentile`] quantizes to bucket
    /// upper bounds, so adjacent runs of the same workload can disagree by
    /// a full power of two; interpolating by rank position within the
    /// bucket smooths that out, which matters when two runs are *compared*
    /// (the load harness gates A/B p99 deltas on this). Still a bucket
    /// estimate — not more accurate, just continuous.
    #[must_use]
    pub fn percentile_interp(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let lower = if b == 0 { 0 } else { bucket_bound(b - 1) + 1 };
                let upper = bucket_bound(b).min(self.max);
                let frac = (target - cum) as f64 / c as f64;
                return lower as f64 + frac * (upper.saturating_sub(lower)) as f64;
            }
            cum += c;
        }
        self.max as f64
    }

    /// Windowed difference `self - earlier` for two snapshots of the same
    /// histogram: bucket counts, count and sum subtract (saturating, so a
    /// mismatched pair degrades to zeros instead of wrapping); `max` stays
    /// the absolute maximum, since a windowed max is not recoverable from
    /// two cumulative snapshots. Used by the stats timeline.
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// `(bucket_upper_bound, count)` for occupied buckets.
    #[must_use]
    pub fn occupied(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_bound(b), c))
            .collect()
    }

    /// Serializes the snapshot into a `krr-ckpt-v1` payload.
    pub fn save_state(&self, enc: &mut crate::checkpoint::Enc) {
        enc.put_u64(self.count).put_u64(self.sum).put_u64(self.max);
        for &b in &self.buckets {
            enc.put_u64(b);
        }
    }

    /// Reconstructs a snapshot from a [`HistogramSnapshot::save_state`]
    /// payload.
    pub fn load_state(dec: &mut crate::checkpoint::Dec<'_>) -> std::io::Result<Self> {
        let count = dec.u64()?;
        let sum = dec.u64()?;
        let max = dec.u64()?;
        let mut buckets = [0u64; LOG_BUCKETS];
        for b in &mut buckets {
            *b = dec.u64()?;
        }
        Ok(Self {
            buckets,
            count,
            sum,
            max,
        })
    }
}

/// One tenant's observability row, published by a
/// [`crate::fleet::FleetArena`] at its publish cadence and carried through
/// every export format (JSON `tenant.rows`, `INFO # tenant`, OpenMetrics
/// `{tenant="..."}` labels).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantRow {
    /// Tenant id.
    pub id: u64,
    /// References routed to this tenant's model.
    pub refs: u64,
    /// Distinct sampled objects resident in the tenant's model.
    pub resident: u64,
    /// Deep bytes of the tenant's model ([`crate::footprint`] accounting).
    pub resident_bytes: u64,
    /// Modeled miss ratio at the fleet's budget, in parts per million.
    pub miss_ratio_ppm: u64,
    /// Watchdog drift events recorded against this tenant.
    pub drift_events: u64,
    /// Latest watchdog MAE for this tenant, in parts per million (0 when
    /// the tenant is not shadowed).
    pub mae_ppm: u64,
    /// Whether the accuracy watchdog currently shadows this tenant (only
    /// the top-K tenants by traffic are).
    pub shadowed: bool,
}

impl TenantRow {
    /// The row as one JSON object — the element shape of the snapshot's
    /// `tenant.rows` array and of `/tenants`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"refs\":{},\"resident\":{},\"resident_bytes\":{},\"miss_ratio_ppm\":{},\"drift_events\":{},\"mae_ppm\":{},\"shadowed\":{}}}",
            self.id,
            self.refs,
            self.resident,
            self.resident_bytes,
            self.miss_ratio_ppm,
            self.drift_events,
            self.mae_ppm,
            self.shadowed
        )
    }
}

/// The shared registry: one instance observes a whole pipeline.
///
/// Sections (mirrored by [`MetricsSnapshot`] and the export formats):
///
/// * **model** — reference flow through [`crate::KrrModel`]: offered,
///   spatially filtered, hits, cold misses.
/// * **updater** — per-update work: swap-chain length and positions
///   examined by the configured update strategy.
/// * **latency** — sampled per-access wall time in nanoseconds.
/// * **shards** — per-shard access balance and histogram merge cost for
///   [`crate::ShardedKrr`].
/// * **pipeline** — the streaming route-once profiling pipeline
///   (`crate::pipeline`): batches routed, bounded-channel stalls, keys
///   hashed by the router (route-once ⇒ equals references routed),
///   router/worker busy time, and per-shard queue-depth high-water marks.
/// * **eviction** — simulator/store-side: evictions performed and the
///   age (idle time) of sampled eviction candidates.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// References offered to the model (`KrrModel::access` calls).
    pub accesses: Counter,
    /// References rejected by the spatial filter.
    pub spatial_rejected: Counter,
    /// Re-references (finite stack distance).
    pub hits: Counter,
    /// First references (cold misses).
    pub cold_misses: Counter,
    /// Swap-chain length per stack update.
    pub chain_len: LogHistogram,
    /// Stack positions examined per update (the updater's work).
    pub positions_scanned: LogHistogram,
    /// Sampled per-access latency in nanoseconds (~1/64 of accesses).
    pub access_ns: LogHistogram,
    /// Histogram merges performed by `ShardedKrr::mrc`.
    pub merges: Counter,
    /// Total nanoseconds spent merging shard histograms.
    pub merge_ns: Counter,
    /// Evictions performed by a simulator or store.
    pub evictions: Counter,
    /// Idle time / age of sampled eviction candidates.
    pub candidate_age: LogHistogram,
    /// Batches handed to shard workers by the pipeline router.
    pub pipeline_batches: Counter,
    /// Bounded-channel-full events seen by the router (back-pressure: the
    /// router had to block until a worker drained a batch).
    pub pipeline_stalls: Counter,
    /// Keys hashed while routing. The streaming pipeline hashes each
    /// reference exactly once, so after a pipeline run this equals the
    /// reference count N — the legacy rescan path records T·N instead.
    pub pipeline_keys_hashed: Counter,
    /// Nanoseconds the router thread spent hashing, batching and sending.
    pub pipeline_router_busy_ns: Counter,
    /// Total nanoseconds workers spent draining batches into shard models.
    pub pipeline_worker_busy_ns: Counter,
    /// Times the router exhausted its spin budget and parked on a full
    /// worker ring (`crate::ring`) — sustained back-pressure, the SPSC
    /// analogue of a blocking channel send. Near zero in a healthy run.
    pub pipeline_router_parks: Counter,
    /// Times a worker parked on an empty batch ring (starvation: the
    /// router could not keep that worker fed).
    pub pipeline_worker_parks: Counter,
    /// Completed slot-buffer cycles summed over the router→worker rings
    /// (`pushes / capacity` per ring) — how hard the bounded transport was
    /// reused, the steady-state counterpart of allocating queue memory.
    pub pipeline_ring_wraps: Counter,
    /// Shadow-vs-KRR comparisons performed by the accuracy watchdog.
    pub watchdog_checks: Counter,
    /// References admitted into the watchdog's shadow Olken profiler.
    pub watchdog_shadow_refs: Counter,
    /// Checks whose MAE exceeded the configured drift threshold.
    pub watchdog_drift_events: Counter,
    /// Latest MAE between the KRR MRC and the shadow Olken MRC, in parts
    /// per million of miss ratio (MAE 0.0123 → 12300).
    pub watchdog_mae_ppm: Gauge,
    /// Deep bytes of every KRR stack (entries + key index), summed across
    /// shards; refreshed at footprint publish points (see
    /// [`crate::footprint`]).
    pub footprint_stack_bytes: Gauge,
    /// Deep bytes of the stack-distance histograms, summed across shards.
    pub footprint_hist_bytes: Gauge,
    /// Deep bytes of the byte-level `sizeArray`s (0 in uniform-size mode).
    pub footprint_sizes_bytes: Gauge,
    /// Resident bytes of the streaming pipeline's routing buffers
    /// (`shards × batch_size × 24 B`), set when a pipeline run starts and
    /// retaining the most recent run's value.
    pub footprint_pipeline_bytes: Gauge,
    /// Deep bytes of the accuracy watchdog's shadow Olken profiler.
    pub footprint_shadow_bytes: Gauge,
    /// Sum of every published footprint gauge — the profiler's modeled
    /// space cost (§5.6–5.7).
    pub footprint_total_bytes: Gauge,
    /// Live heap bytes from the counting allocator (0 unless the
    /// `alloc-stats` feature is on and [`crate::heap::CountingAlloc`] is
    /// installed).
    pub heap_live_bytes: Gauge,
    /// Peak heap bytes from the counting allocator (same caveat).
    pub heap_peak_bytes: Gauge,
    shard_accesses: OnceLock<Box<[Counter]>>,
    queue_hwm: OnceLock<Box<[AtomicU64]>>,
    ring_hwm: OnceLock<Box<[AtomicU64]>>,
    shard_resident: OnceLock<Box<[AtomicU64]>>,
    shard_depth: OnceLock<Box<[AtomicU64]>>,
    // Per-tenant rows, replaced wholesale by a fleet arena at its publish
    // cadence — Mutex, not atomics, because this is never on the access
    // hot path.
    tenant_rows: Mutex<Vec<TenantRow>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `n` per-shard access counters and queue-depth high-water
    /// marks. First caller wins; later calls with a different count are
    /// ignored (the registry observes one sharded pipeline).
    pub fn init_shards(&self, n: usize) {
        let _ = self
            .shard_accesses
            .set((0..n).map(|_| Counter::new()).collect());
        let _ = self
            .queue_hwm
            .set((0..n).map(|_| AtomicU64::new(0)).collect());
        let _ = self
            .shard_resident
            .set((0..n).map(|_| AtomicU64::new(0)).collect());
        let _ = self
            .shard_depth
            .set((0..n).map(|_| AtomicU64::new(0)).collect());
    }

    /// Records an access routed to shard `i` (no-op before
    /// [`MetricsRegistry::init_shards`]).
    #[inline]
    pub fn shard_access(&self, i: usize) {
        self.shard_access_n(i, 1);
    }

    /// Records `n` accesses routed to shard `i` — the batched pipeline
    /// counts a whole batch with one RMW instead of one per reference.
    #[inline]
    pub fn shard_access_n(&self, i: usize, n: u64) {
        if let Some(shards) = self.shard_accesses.get() {
            if let Some(c) = shards.get(i) {
                c.add(n);
            }
        }
    }

    /// Raises shard `i`'s queue-depth high-water mark to `depth` if it is a
    /// new maximum (no-op before [`MetricsRegistry::init_shards`]). `depth`
    /// is the number of batches in flight for that shard after a send.
    #[inline]
    pub fn record_queue_depth(&self, i: usize, depth: u64) {
        if let Some(hwm) = self.queue_hwm.get() {
            if let Some(a) = hwm.get(i) {
                a.fetch_max(depth, Ordering::Relaxed);
            }
        }
    }

    /// Per-shard queue-depth high-water marks (empty before `init_shards`).
    #[must_use]
    pub fn queue_depth_hwm(&self) -> Vec<u64> {
        self.queue_hwm
            .get()
            .map(|s| s.iter().map(|a| a.load(Ordering::Relaxed)).collect())
            .unwrap_or_default()
    }

    /// Allocates `n` per-*worker* ring-occupancy high-water marks (one per
    /// router→worker SPSC ring, unlike the per-*shard* queue gauges).
    /// First caller wins, like [`MetricsRegistry::init_shards`].
    pub fn init_rings(&self, n: usize) {
        let _ = self
            .ring_hwm
            .set((0..n).map(|_| AtomicU64::new(0)).collect());
    }

    /// Raises worker `w`'s ring-occupancy high-water mark to `depth` if it
    /// is a new maximum (no-op before [`MetricsRegistry::init_rings`]).
    /// The pipeline publishes each ring's producer-side observation when a
    /// run finishes.
    #[inline]
    pub fn record_ring_depth(&self, w: usize, depth: u64) {
        if let Some(hwm) = self.ring_hwm.get() {
            if let Some(a) = hwm.get(w) {
                a.fetch_max(depth, Ordering::Relaxed);
            }
        }
    }

    /// Per-worker ring-occupancy high-water marks (empty before
    /// `init_rings`).
    #[must_use]
    pub fn ring_depth_hwm(&self) -> Vec<u64> {
        self.ring_hwm
            .get()
            .map(|s| s.iter().map(|a| a.load(Ordering::Relaxed)).collect())
            .unwrap_or_default()
    }

    /// Per-shard access counts (empty before `init_shards`).
    #[must_use]
    pub fn shard_counts(&self) -> Vec<u64> {
        self.shard_accesses
            .get()
            .map(|s| s.iter().map(Counter::get).collect())
            .unwrap_or_default()
    }

    /// Sets shard `i`'s resident-object gauge — the number of distinct
    /// objects its KRR stack currently tracks (no-op before
    /// [`MetricsRegistry::init_shards`]). Workers publish this at batch
    /// boundaries; the sequential path after every access.
    #[inline]
    pub fn set_shard_resident(&self, i: usize, objects: u64) {
        if let Some(res) = self.shard_resident.get() {
            if let Some(a) = res.get(i) {
                a.store(objects, Ordering::Relaxed);
            }
        }
    }

    /// Raises shard `i`'s stack-depth high-water mark to `depth` — the
    /// deepest 1-based stack position a re-reference has hit on that shard
    /// (no-op before [`MetricsRegistry::init_shards`]).
    #[inline]
    pub fn record_shard_depth(&self, i: usize, depth: u64) {
        if let Some(d) = self.shard_depth.get() {
            if let Some(a) = d.get(i) {
                a.fetch_max(depth, Ordering::Relaxed);
            }
        }
    }

    /// Replaces the per-tenant observability rows wholesale. Called by a
    /// [`crate::fleet::FleetArena`] when it publishes (batch boundaries /
    /// refresh cadence), never per access.
    pub fn set_tenant_rows(&self, rows: Vec<TenantRow>) {
        *self.tenant_rows.lock().expect("tenant rows poisoned") = rows;
    }

    /// Copy of the current per-tenant rows (empty without a fleet arena).
    #[must_use]
    pub fn tenant_rows(&self) -> Vec<TenantRow> {
        self.tenant_rows
            .lock()
            .expect("tenant rows poisoned")
            .clone()
    }

    /// Per-shard resident-object gauges (empty before `init_shards`).
    #[must_use]
    pub fn shard_resident(&self) -> Vec<u64> {
        self.shard_resident
            .get()
            .map(|s| s.iter().map(|a| a.load(Ordering::Relaxed)).collect())
            .unwrap_or_default()
    }

    /// Per-shard stack-depth high-water marks (empty before `init_shards`).
    #[must_use]
    pub fn shard_depth_hwm(&self) -> Vec<u64> {
        self.shard_depth
            .get()
            .map(|s| s.iter().map(|a| a.load(Ordering::Relaxed)).collect())
            .unwrap_or_default()
    }

    /// Publishes a footprint breakdown (see [`crate::footprint`]) into the
    /// memory gauges. Recognized part labels map onto the dedicated gauges
    /// (`stack_entries`/`stack_index`/`stack_scratch` → stack,
    /// `histogram` → hist, `size_array` → sizes, `shadow_*` → shadow); a
    /// gauge is only overwritten when its labels appear in the report, so
    /// independent publishers (the profiler, the watchdog's shadow) don't
    /// stomp each other. The total gauge is recomputed as the sum of the
    /// five component gauges after the update, and the heap gauges are
    /// refreshed from [`crate::heap`] on every publish.
    pub fn publish_footprint(&self, report: &crate::footprint::FootprintReport) {
        let has = |label: &str| report.parts().iter().any(|&(l, _)| l == label);
        if has("stack_entries") || has("stack_index") || has("stack_scratch") {
            let stack = report.get("stack_entries")
                + report.get("stack_index")
                + report.get("stack_scratch");
            self.footprint_stack_bytes.set(stack as u64);
        }
        if has("histogram") {
            self.footprint_hist_bytes
                .set(report.get("histogram") as u64);
        }
        if has("size_array") {
            self.footprint_sizes_bytes
                .set(report.get("size_array") as u64);
        }
        let shadow_parts: Vec<_> = report
            .parts()
            .iter()
            .filter(|(l, _)| l.starts_with("shadow_"))
            .collect();
        if !shadow_parts.is_empty() {
            let shadow: usize = shadow_parts.iter().map(|&&(_, b)| b).sum();
            self.footprint_shadow_bytes.set(shadow as u64);
        }
        self.footprint_total_bytes.set(
            self.footprint_stack_bytes.get()
                + self.footprint_hist_bytes.get()
                + self.footprint_sizes_bytes.get()
                + self.footprint_shadow_bytes.get()
                + self.footprint_pipeline_bytes.get(),
        );
        self.heap_live_bytes.set(crate::heap::live_bytes());
        self.heap_peak_bytes.set(crate::heap::peak_bytes());
    }

    /// Point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accesses: self.accesses.get(),
            spatial_rejected: self.spatial_rejected.get(),
            hits: self.hits.get(),
            cold_misses: self.cold_misses.get(),
            chain_len: self.chain_len.snapshot(),
            positions_scanned: self.positions_scanned.snapshot(),
            access_ns: self.access_ns.snapshot(),
            merges: self.merges.get(),
            merge_ns: self.merge_ns.get(),
            evictions: self.evictions.get(),
            candidate_age: self.candidate_age.snapshot(),
            shard_accesses: self.shard_counts(),
            pipeline_batches: self.pipeline_batches.get(),
            pipeline_stalls: self.pipeline_stalls.get(),
            pipeline_keys_hashed: self.pipeline_keys_hashed.get(),
            pipeline_router_busy_ns: self.pipeline_router_busy_ns.get(),
            pipeline_worker_busy_ns: self.pipeline_worker_busy_ns.get(),
            pipeline_router_parks: self.pipeline_router_parks.get(),
            pipeline_worker_parks: self.pipeline_worker_parks.get(),
            pipeline_ring_wraps: self.pipeline_ring_wraps.get(),
            pipeline_queue_hwm: self.queue_depth_hwm(),
            pipeline_ring_hwm: self.ring_depth_hwm(),
            watchdog_checks: self.watchdog_checks.get(),
            watchdog_shadow_refs: self.watchdog_shadow_refs.get(),
            watchdog_drift_events: self.watchdog_drift_events.get(),
            watchdog_mae_ppm: self.watchdog_mae_ppm.get(),
            shard_resident: self.shard_resident(),
            shard_depth_hwm: self.shard_depth_hwm(),
            footprint_stack_bytes: self.footprint_stack_bytes.get(),
            footprint_hist_bytes: self.footprint_hist_bytes.get(),
            footprint_sizes_bytes: self.footprint_sizes_bytes.get(),
            footprint_pipeline_bytes: self.footprint_pipeline_bytes.get(),
            footprint_shadow_bytes: self.footprint_shadow_bytes.get(),
            // The pipeline sets its component gauge directly between
            // publish_footprint calls, so the stored total can lag; a
            // scrape must never read total < the live parts.
            footprint_total_bytes: self.footprint_total_bytes.get().max(
                self.footprint_stack_bytes.get()
                    + self.footprint_hist_bytes.get()
                    + self.footprint_sizes_bytes.get()
                    + self.footprint_shadow_bytes.get()
                    + self.footprint_pipeline_bytes.get(),
            ),
            heap_live_bytes: self.heap_live_bytes.get(),
            heap_peak_bytes: self.heap_peak_bytes.get(),
            tenant_rows: self.tenant_rows(),
        }
    }

    /// Adds a snapshot's contents into this registry: counters and
    /// histograms accumulate, gauges take the snapshot value, and the
    /// per-shard vectors claim `init_shards` at the snapshot's shard count
    /// before accumulating. Restoring a checkpointed
    /// [`MetricsSnapshot`] into a fresh registry this way makes every
    /// counter continue from where the interrupted run stopped.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        self.accesses.add(snap.accesses);
        self.spatial_rejected.add(snap.spatial_rejected);
        self.hits.add(snap.hits);
        self.cold_misses.add(snap.cold_misses);
        self.chain_len.absorb(&snap.chain_len);
        self.positions_scanned.absorb(&snap.positions_scanned);
        self.access_ns.absorb(&snap.access_ns);
        self.merges.add(snap.merges);
        self.merge_ns.add(snap.merge_ns);
        self.evictions.add(snap.evictions);
        self.candidate_age.absorb(&snap.candidate_age);
        self.pipeline_batches.add(snap.pipeline_batches);
        self.pipeline_stalls.add(snap.pipeline_stalls);
        self.pipeline_keys_hashed.add(snap.pipeline_keys_hashed);
        self.pipeline_router_busy_ns
            .add(snap.pipeline_router_busy_ns);
        self.pipeline_worker_busy_ns
            .add(snap.pipeline_worker_busy_ns);
        self.pipeline_router_parks.add(snap.pipeline_router_parks);
        self.pipeline_worker_parks.add(snap.pipeline_worker_parks);
        self.pipeline_ring_wraps.add(snap.pipeline_ring_wraps);
        if !snap.pipeline_ring_hwm.is_empty() {
            self.init_rings(snap.pipeline_ring_hwm.len());
            for (w, &d) in snap.pipeline_ring_hwm.iter().enumerate() {
                self.record_ring_depth(w, d);
            }
        }
        self.watchdog_checks.add(snap.watchdog_checks);
        self.watchdog_shadow_refs.add(snap.watchdog_shadow_refs);
        self.watchdog_drift_events.add(snap.watchdog_drift_events);
        self.watchdog_mae_ppm.set(snap.watchdog_mae_ppm);
        if !snap.shard_accesses.is_empty() {
            self.init_shards(snap.shard_accesses.len());
            for (i, &c) in snap.shard_accesses.iter().enumerate() {
                self.shard_access_n(i, c);
            }
        }
        for (i, &d) in snap.pipeline_queue_hwm.iter().enumerate() {
            self.record_queue_depth(i, d);
        }
        if !snap.shard_resident.is_empty() {
            self.init_shards(snap.shard_resident.len());
            for (i, &r) in snap.shard_resident.iter().enumerate() {
                self.set_shard_resident(i, r);
            }
        }
        for (i, &d) in snap.shard_depth_hwm.iter().enumerate() {
            self.record_shard_depth(i, d);
        }
        self.footprint_stack_bytes.set(snap.footprint_stack_bytes);
        self.footprint_hist_bytes.set(snap.footprint_hist_bytes);
        self.footprint_sizes_bytes.set(snap.footprint_sizes_bytes);
        self.footprint_pipeline_bytes
            .set(snap.footprint_pipeline_bytes);
        self.footprint_shadow_bytes.set(snap.footprint_shadow_bytes);
        self.footprint_total_bytes.set(snap.footprint_total_bytes);
        self.heap_live_bytes.set(snap.heap_live_bytes);
        self.heap_peak_bytes.set(snap.heap_peak_bytes);
        if !snap.tenant_rows.is_empty() {
            self.set_tenant_rows(snap.tenant_rows.clone());
        }
    }
}

/// Non-atomic copy of a [`MetricsRegistry`], exportable as `INFO` text or
/// JSON.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// See [`MetricsRegistry::accesses`].
    pub accesses: u64,
    /// See [`MetricsRegistry::spatial_rejected`].
    pub spatial_rejected: u64,
    /// See [`MetricsRegistry::hits`].
    pub hits: u64,
    /// See [`MetricsRegistry::cold_misses`].
    pub cold_misses: u64,
    /// See [`MetricsRegistry::chain_len`].
    pub chain_len: HistogramSnapshot,
    /// See [`MetricsRegistry::positions_scanned`].
    pub positions_scanned: HistogramSnapshot,
    /// See [`MetricsRegistry::access_ns`].
    pub access_ns: HistogramSnapshot,
    /// See [`MetricsRegistry::merges`].
    pub merges: u64,
    /// See [`MetricsRegistry::merge_ns`].
    pub merge_ns: u64,
    /// See [`MetricsRegistry::evictions`].
    pub evictions: u64,
    /// See [`MetricsRegistry::candidate_age`].
    pub candidate_age: HistogramSnapshot,
    /// Per-shard access counts (empty when unsharded).
    pub shard_accesses: Vec<u64>,
    /// See [`MetricsRegistry::pipeline_batches`].
    pub pipeline_batches: u64,
    /// See [`MetricsRegistry::pipeline_stalls`].
    pub pipeline_stalls: u64,
    /// See [`MetricsRegistry::pipeline_keys_hashed`].
    pub pipeline_keys_hashed: u64,
    /// See [`MetricsRegistry::pipeline_router_busy_ns`].
    pub pipeline_router_busy_ns: u64,
    /// See [`MetricsRegistry::pipeline_worker_busy_ns`].
    pub pipeline_worker_busy_ns: u64,
    /// See [`MetricsRegistry::pipeline_router_parks`].
    pub pipeline_router_parks: u64,
    /// See [`MetricsRegistry::pipeline_worker_parks`].
    pub pipeline_worker_parks: u64,
    /// See [`MetricsRegistry::pipeline_ring_wraps`].
    pub pipeline_ring_wraps: u64,
    /// Per-shard queue-depth high-water marks (empty when unsharded).
    pub pipeline_queue_hwm: Vec<u64>,
    /// Per-worker ring-occupancy high-water marks (empty before a ring
    /// pipeline run).
    pub pipeline_ring_hwm: Vec<u64>,
    /// See [`MetricsRegistry::watchdog_checks`].
    pub watchdog_checks: u64,
    /// See [`MetricsRegistry::watchdog_shadow_refs`].
    pub watchdog_shadow_refs: u64,
    /// See [`MetricsRegistry::watchdog_drift_events`].
    pub watchdog_drift_events: u64,
    /// See [`MetricsRegistry::watchdog_mae_ppm`].
    pub watchdog_mae_ppm: u64,
    /// Per-shard resident-object gauges (empty when unsharded).
    pub shard_resident: Vec<u64>,
    /// Per-shard stack-depth high-water marks (empty when unsharded).
    pub shard_depth_hwm: Vec<u64>,
    /// See [`MetricsRegistry::footprint_stack_bytes`].
    pub footprint_stack_bytes: u64,
    /// See [`MetricsRegistry::footprint_hist_bytes`].
    pub footprint_hist_bytes: u64,
    /// See [`MetricsRegistry::footprint_sizes_bytes`].
    pub footprint_sizes_bytes: u64,
    /// See [`MetricsRegistry::footprint_pipeline_bytes`].
    pub footprint_pipeline_bytes: u64,
    /// See [`MetricsRegistry::footprint_shadow_bytes`].
    pub footprint_shadow_bytes: u64,
    /// See [`MetricsRegistry::footprint_total_bytes`].
    pub footprint_total_bytes: u64,
    /// See [`MetricsRegistry::heap_live_bytes`].
    pub heap_live_bytes: u64,
    /// See [`MetricsRegistry::heap_peak_bytes`].
    pub heap_peak_bytes: u64,
    /// Per-tenant observability rows (empty without a fleet arena).
    pub tenant_rows: Vec<TenantRow>,
}

impl MetricsSnapshot {
    /// Sum of every tenant row's reference count.
    #[must_use]
    pub fn tenant_refs(&self) -> u64 {
        self.tenant_rows.iter().map(|t| t.refs).sum()
    }

    /// Number of tenants with at least one recorded drift event.
    #[must_use]
    pub fn tenant_drifted(&self) -> u64 {
        self.tenant_rows
            .iter()
            .filter(|t| t.drift_events > 0)
            .count() as u64
    }

    /// Number of tenants currently shadowed by the accuracy watchdog.
    #[must_use]
    pub fn tenant_shadowed(&self) -> u64 {
        self.tenant_rows.iter().filter(|t| t.shadowed).count() as u64
    }

    /// `(total, mean, max)` rollup of per-tenant resident bytes — the
    /// `memory.tenant.*` gauges.
    #[must_use]
    pub fn tenant_memory(&self) -> (u64, u64, u64) {
        let total: u64 = self.tenant_rows.iter().map(|t| t.resident_bytes).sum();
        let max = self
            .tenant_rows
            .iter()
            .map(|t| t.resident_bytes)
            .max()
            .unwrap_or(0);
        let mean = if self.tenant_rows.is_empty() {
            0
        } else {
            total / self.tenant_rows.len() as u64
        };
        (total, mean, max)
    }

    /// Largest relative deviation of any shard's access count from the
    /// per-shard mean (0 = perfectly balanced; `None` when unsharded or
    /// idle).
    #[must_use]
    pub fn shard_imbalance(&self) -> Option<f64> {
        if self.shard_accesses.len() < 2 {
            return None;
        }
        let total: u64 = self.shard_accesses.iter().sum();
        if total == 0 {
            return None;
        }
        let mean = total as f64 / self.shard_accesses.len() as f64;
        self.shard_accesses
            .iter()
            .map(|&c| (c as f64 - mean).abs() / mean)
            .fold(None, |acc: Option<f64>, d| {
                Some(acc.map_or(d, |a| a.max(d)))
            })
    }

    /// Renders Redis-`INFO`-style sections (`# section` headers,
    /// `key:value` lines, CRLF terminators) — the wire format of the
    /// mini-Redis `INFO`/`METRICS` command.
    #[must_use]
    pub fn render_info(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "# model\r\naccesses:{}\r\nspatial_rejected:{}\r\nhits:{}\r\ncold_misses:{}\r\n",
            self.accesses, self.spatial_rejected, self.hits, self.cold_misses
        );
        let hist = |s: &mut String, name: &str, h: &HistogramSnapshot| {
            let _ = write!(
                s,
                "{name}_count:{}\r\n{name}_mean:{:.2}\r\n{name}_p99:{}\r\n{name}_max:{}\r\n",
                h.count,
                h.mean(),
                h.percentile(0.99),
                h.max
            );
            let _ = write!(s, "{name}_buckets:");
            for (i, (bound, count)) in h.occupied().iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{bound}={count}");
            }
            s.push_str("\r\n");
        };
        s.push_str("# updater\r\n");
        hist(&mut s, "chain_len", &self.chain_len);
        hist(&mut s, "positions_scanned", &self.positions_scanned);
        s.push_str("# latency\r\n");
        hist(&mut s, "access_ns", &self.access_ns);
        let _ = write!(
            s,
            "# shards\r\nshard_count:{}\r\nmerges:{}\r\nmerge_ns:{}\r\n",
            self.shard_accesses.len(),
            self.merges,
            self.merge_ns
        );
        let _ = write!(s, "shard_accesses:");
        for (i, c) in self.shard_accesses.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{c}");
        }
        s.push_str("\r\n");
        if let Some(im) = self.shard_imbalance() {
            let _ = write!(s, "shard_imbalance:{im:.4}\r\n");
        }
        let list = |s: &mut String, name: &str, vals: &[u64]| {
            let _ = write!(s, "{name}:");
            for (i, c) in vals.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}");
            }
            s.push_str("\r\n");
        };
        list(&mut s, "shard_resident", &self.shard_resident);
        list(&mut s, "shard_depth_hwm", &self.shard_depth_hwm);
        let _ = write!(
            s,
            "# pipeline\r\nbatches:{}\r\nstalls:{}\r\nkeys_hashed:{}\r\nrouter_busy_ns:{}\r\nworker_busy_ns:{}\r\n",
            self.pipeline_batches,
            self.pipeline_stalls,
            self.pipeline_keys_hashed,
            self.pipeline_router_busy_ns,
            self.pipeline_worker_busy_ns
        );
        let _ = write!(s, "queue_depth_hwm:");
        for (i, c) in self.pipeline_queue_hwm.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{c}");
        }
        s.push_str("\r\n");
        let _ = write!(
            s,
            "ring_wraps:{}\r\nring_router_parks:{}\r\nring_worker_parks:{}\r\n",
            self.pipeline_ring_wraps, self.pipeline_router_parks, self.pipeline_worker_parks
        );
        list(&mut s, "ring_depth_hwm", &self.pipeline_ring_hwm);
        let _ = write!(
            s,
            "# watchdog\r\nchecks:{}\r\nshadow_refs:{}\r\ndrift_events:{}\r\nmae_ppm:{}\r\n",
            self.watchdog_checks,
            self.watchdog_shadow_refs,
            self.watchdog_drift_events,
            self.watchdog_mae_ppm
        );
        let _ = write!(
            s,
            "# tenant\r\ncount:{}\r\nrefs:{}\r\ndrifted:{}\r\nshadowed:{}\r\n",
            self.tenant_rows.len(),
            self.tenant_refs(),
            self.tenant_drifted(),
            self.tenant_shadowed()
        );
        let (t_total, t_mean, t_max) = self.tenant_memory();
        let _ = write!(
            s,
            "# memory\r\nstack_bytes:{}\r\nhist_bytes:{}\r\nsizes_bytes:{}\r\npipeline_bytes:{}\r\nshadow_bytes:{}\r\ntotal_bytes:{}\r\nheap_live_bytes:{}\r\nheap_peak_bytes:{}\r\ntenant_count:{}\r\ntenant_total_bytes:{t_total}\r\ntenant_mean_bytes:{t_mean}\r\ntenant_max_bytes:{t_max}\r\n",
            self.footprint_stack_bytes,
            self.footprint_hist_bytes,
            self.footprint_sizes_bytes,
            self.footprint_pipeline_bytes,
            self.footprint_shadow_bytes,
            self.footprint_total_bytes,
            self.heap_live_bytes,
            self.heap_peak_bytes,
            self.tenant_rows.len()
        );
        let _ = write!(s, "# eviction\r\nevictions:{}\r\n", self.evictions);
        hist(&mut s, "candidate_age", &self.candidate_age);
        s
    }

    /// Renders the snapshot as a single JSON object (schema in DESIGN.md).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        fn hist_json(h: &HistogramSnapshot) -> String {
            let mut s = String::from("{");
            let _ = write!(
                s,
                "\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"p99\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.max,
                h.mean(),
                h.percentile(0.99)
            );
            for (i, (bound, count)) in h.occupied().iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{bound},{count}]");
            }
            s.push_str("]}");
            s
        }
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"schema\":\"krr-metrics-v1\",\"model\":{{\"accesses\":{},\"spatial_rejected\":{},\"hits\":{},\"cold_misses\":{}}},",
            self.accesses, self.spatial_rejected, self.hits, self.cold_misses
        );
        let _ = write!(
            s,
            "\"updater\":{{\"chain_len\":{},\"positions_scanned\":{}}},",
            hist_json(&self.chain_len),
            hist_json(&self.positions_scanned)
        );
        let _ = write!(
            s,
            "\"latency\":{{\"access_ns\":{}}},",
            hist_json(&self.access_ns)
        );
        let _ = write!(
            s,
            "\"shards\":{{\"merges\":{},\"merge_ns\":{},\"accesses\":[",
            self.merges, self.merge_ns
        );
        let arr = |s: &mut String, vals: &[u64]| {
            for (i, c) in vals.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}");
            }
        };
        arr(&mut s, &self.shard_accesses);
        s.push_str("],\"resident\":[");
        arr(&mut s, &self.shard_resident);
        s.push_str("],\"depth_hwm\":[");
        arr(&mut s, &self.shard_depth_hwm);
        s.push_str("]},");
        let _ = write!(
            s,
            "\"pipeline\":{{\"batches\":{},\"stalls\":{},\"keys_hashed\":{},\"router_busy_ns\":{},\"worker_busy_ns\":{},\"queue_depth_hwm\":[",
            self.pipeline_batches,
            self.pipeline_stalls,
            self.pipeline_keys_hashed,
            self.pipeline_router_busy_ns,
            self.pipeline_worker_busy_ns
        );
        for (i, c) in self.pipeline_queue_hwm.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{c}");
        }
        let _ = write!(
            s,
            "],\"ring\":{{\"wraps\":{},\"router_parks\":{},\"worker_parks\":{},\"depth_hwm\":[",
            self.pipeline_ring_wraps, self.pipeline_router_parks, self.pipeline_worker_parks
        );
        arr(&mut s, &self.pipeline_ring_hwm);
        s.push_str("]}},");
        let _ = write!(
            s,
            "\"watchdog\":{{\"checks\":{},\"shadow_refs\":{},\"drift_events\":{},\"mae_ppm\":{}}},",
            self.watchdog_checks,
            self.watchdog_shadow_refs,
            self.watchdog_drift_events,
            self.watchdog_mae_ppm
        );
        let _ = write!(
            s,
            "\"tenant\":{{\"count\":{},\"refs\":{},\"drifted\":{},\"shadowed\":{},\"rows\":[",
            self.tenant_rows.len(),
            self.tenant_refs(),
            self.tenant_drifted(),
            self.tenant_shadowed()
        );
        for (i, t) in self.tenant_rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&t.to_json());
        }
        s.push_str("]},");
        let (t_total, t_mean, t_max) = self.tenant_memory();
        let _ = write!(
            s,
            "\"memory\":{{\"stack_bytes\":{},\"hist_bytes\":{},\"sizes_bytes\":{},\"pipeline_bytes\":{},\"shadow_bytes\":{},\"total_bytes\":{},\"heap_live_bytes\":{},\"heap_peak_bytes\":{},\"tenant\":{{\"count\":{},\"total_bytes\":{t_total},\"mean_bytes\":{t_mean},\"max_bytes\":{t_max}}}}},",
            self.footprint_stack_bytes,
            self.footprint_hist_bytes,
            self.footprint_sizes_bytes,
            self.footprint_pipeline_bytes,
            self.footprint_shadow_bytes,
            self.footprint_total_bytes,
            self.heap_live_bytes,
            self.heap_peak_bytes,
            self.tenant_rows.len()
        );
        let _ = write!(
            s,
            "\"eviction\":{{\"evictions\":{},\"candidate_age\":{}}}",
            self.evictions,
            hist_json(&self.candidate_age)
        );
        s.push('}');
        s
    }

    /// Serializes the snapshot into a `krr-ckpt-v1` payload (the `METR`
    /// checkpoint section).
    pub fn save_state(&self, enc: &mut crate::checkpoint::Enc) {
        enc.put_u64(self.accesses)
            .put_u64(self.spatial_rejected)
            .put_u64(self.hits)
            .put_u64(self.cold_misses);
        self.chain_len.save_state(enc);
        self.positions_scanned.save_state(enc);
        self.access_ns.save_state(enc);
        enc.put_u64(self.merges)
            .put_u64(self.merge_ns)
            .put_u64(self.evictions);
        self.candidate_age.save_state(enc);
        enc.put_u64(self.shard_accesses.len() as u64);
        for &c in &self.shard_accesses {
            enc.put_u64(c);
        }
        enc.put_u64(self.pipeline_batches)
            .put_u64(self.pipeline_stalls)
            .put_u64(self.pipeline_keys_hashed)
            .put_u64(self.pipeline_router_busy_ns)
            .put_u64(self.pipeline_worker_busy_ns);
        enc.put_u64(self.pipeline_queue_hwm.len() as u64);
        for &c in &self.pipeline_queue_hwm {
            enc.put_u64(c);
        }
        enc.put_u64(self.watchdog_checks)
            .put_u64(self.watchdog_shadow_refs)
            .put_u64(self.watchdog_drift_events)
            .put_u64(self.watchdog_mae_ppm);
        enc.put_u64(self.shard_resident.len() as u64);
        for &c in &self.shard_resident {
            enc.put_u64(c);
        }
        enc.put_u64(self.shard_depth_hwm.len() as u64);
        for &c in &self.shard_depth_hwm {
            enc.put_u64(c);
        }
        enc.put_u64(self.footprint_stack_bytes)
            .put_u64(self.footprint_hist_bytes)
            .put_u64(self.footprint_sizes_bytes)
            .put_u64(self.footprint_pipeline_bytes)
            .put_u64(self.footprint_shadow_bytes)
            .put_u64(self.footprint_total_bytes)
            .put_u64(self.heap_live_bytes)
            .put_u64(self.heap_peak_bytes);
        enc.put_u64(self.tenant_rows.len() as u64);
        for t in &self.tenant_rows {
            enc.put_u64(t.id)
                .put_u64(t.refs)
                .put_u64(t.resident)
                .put_u64(t.resident_bytes)
                .put_u64(t.miss_ratio_ppm)
                .put_u64(t.drift_events)
                .put_u64(t.mae_ppm)
                .put_u64(u64::from(t.shadowed));
        }
        // Ring-transport counters: appended at the end of the METR payload
        // (the grow-at-end convention this section has always used).
        enc.put_u64(self.pipeline_router_parks)
            .put_u64(self.pipeline_worker_parks)
            .put_u64(self.pipeline_ring_wraps);
        enc.put_u64(self.pipeline_ring_hwm.len() as u64);
        for &d in &self.pipeline_ring_hwm {
            enc.put_u64(d);
        }
    }

    /// Reconstructs a snapshot from a [`MetricsSnapshot::save_state`]
    /// payload.
    pub fn load_state(dec: &mut crate::checkpoint::Dec<'_>) -> std::io::Result<Self> {
        let accesses = dec.u64()?;
        let spatial_rejected = dec.u64()?;
        let hits = dec.u64()?;
        let cold_misses = dec.u64()?;
        let chain_len = HistogramSnapshot::load_state(dec)?;
        let positions_scanned = HistogramSnapshot::load_state(dec)?;
        let access_ns = HistogramSnapshot::load_state(dec)?;
        let merges = dec.u64()?;
        let merge_ns = dec.u64()?;
        let evictions = dec.u64()?;
        let candidate_age = HistogramSnapshot::load_state(dec)?;
        let mut shard_accesses = Vec::new();
        for _ in 0..dec.u64()? {
            shard_accesses.push(dec.u64()?);
        }
        let pipeline_batches = dec.u64()?;
        let pipeline_stalls = dec.u64()?;
        let pipeline_keys_hashed = dec.u64()?;
        let pipeline_router_busy_ns = dec.u64()?;
        let pipeline_worker_busy_ns = dec.u64()?;
        let mut pipeline_queue_hwm = Vec::new();
        for _ in 0..dec.u64()? {
            pipeline_queue_hwm.push(dec.u64()?);
        }
        Ok(Self {
            accesses,
            spatial_rejected,
            hits,
            cold_misses,
            chain_len,
            positions_scanned,
            access_ns,
            merges,
            merge_ns,
            evictions,
            candidate_age,
            shard_accesses,
            pipeline_batches,
            pipeline_stalls,
            pipeline_keys_hashed,
            pipeline_router_busy_ns,
            pipeline_worker_busy_ns,
            pipeline_queue_hwm,
            watchdog_checks: dec.u64()?,
            watchdog_shadow_refs: dec.u64()?,
            watchdog_drift_events: dec.u64()?,
            watchdog_mae_ppm: dec.u64()?,
            shard_resident: {
                let mut v = Vec::new();
                for _ in 0..dec.u64()? {
                    v.push(dec.u64()?);
                }
                v
            },
            shard_depth_hwm: {
                let mut v = Vec::new();
                for _ in 0..dec.u64()? {
                    v.push(dec.u64()?);
                }
                v
            },
            footprint_stack_bytes: dec.u64()?,
            footprint_hist_bytes: dec.u64()?,
            footprint_sizes_bytes: dec.u64()?,
            footprint_pipeline_bytes: dec.u64()?,
            footprint_shadow_bytes: dec.u64()?,
            footprint_total_bytes: dec.u64()?,
            heap_live_bytes: dec.u64()?,
            heap_peak_bytes: dec.u64()?,
            tenant_rows: {
                let mut v = Vec::new();
                for _ in 0..dec.u64()? {
                    v.push(TenantRow {
                        id: dec.u64()?,
                        refs: dec.u64()?,
                        resident: dec.u64()?,
                        resident_bytes: dec.u64()?,
                        miss_ratio_ppm: dec.u64()?,
                        drift_events: dec.u64()?,
                        mae_ppm: dec.u64()?,
                        shadowed: dec.u64()? != 0,
                    });
                }
                v
            },
            // Struct-literal fields decode in written order, so these read
            // the ring counters appended at the payload's end.
            pipeline_router_parks: dec.u64()?,
            pipeline_worker_parks: dec.u64()?,
            pipeline_ring_wraps: dec.u64()?,
            pipeline_ring_hwm: {
                let mut v = Vec::new();
                for _ in 0..dec.u64()? {
                    v.push(dec.u64()?);
                }
                v
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
        // Every value lands in a bucket whose bound is >= the value.
        for v in [0u64, 1, 2, 5, 63, 64, 1_000_000] {
            assert!(bucket_bound(bucket_of(v)) >= v, "v={v}");
        }
    }

    #[test]
    fn histogram_mean_and_percentile() {
        let h = LogHistogram::new();
        for v in [1u64, 1, 2, 4, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 108);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 21.6).abs() < 1e-9);
        // p50 lands in the bucket of the 3rd value (2 -> bound 3).
        assert_eq!(s.percentile(0.5), 3);
        // p100 caps at the observed max, not the bucket bound.
        assert_eq!(s.percentile(1.0), 100);
        assert_eq!(
            HistogramSnapshot {
                buckets: [0; LOG_BUCKETS],
                count: 0,
                sum: 0,
                max: 0
            }
            .percentile(0.5),
            0
        );
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Arc::new(MetricsRegistry::new());
        let threads = 8;
        let per = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for i in 0..per {
                        reg.accesses.inc();
                        reg.chain_len.record(i % 37);
                    }
                });
            }
        });
        let s = reg.snapshot();
        assert_eq!(s.accesses, threads * per);
        assert_eq!(s.chain_len.count, threads * per);
        assert_eq!(s.chain_len.buckets.iter().sum::<u64>(), threads * per);
    }

    #[test]
    fn shard_counters_and_imbalance() {
        let reg = MetricsRegistry::new();
        assert!(reg.shard_counts().is_empty());
        reg.shard_access(0); // no-op before init
        reg.init_shards(4);
        reg.init_shards(9); // ignored
        for i in 0..4 {
            for _ in 0..=(i * 10) {
                reg.shard_access(i);
            }
        }
        reg.shard_access(99); // out of range: ignored
        let s = reg.snapshot();
        assert_eq!(s.shard_accesses, vec![1, 11, 21, 31]);
        let im = s.shard_imbalance().unwrap();
        assert!(im > 0.5, "imbalance {im}");
        let balanced = MetricsSnapshot {
            shard_accesses: vec![10, 10],
            ..s
        };
        assert_eq!(balanced.shard_imbalance(), Some(0.0));
    }

    #[test]
    fn queue_depth_high_water_marks() {
        let reg = MetricsRegistry::new();
        reg.record_queue_depth(0, 5); // no-op before init
        assert!(reg.queue_depth_hwm().is_empty());
        reg.init_shards(3);
        reg.record_queue_depth(0, 2);
        reg.record_queue_depth(0, 7);
        reg.record_queue_depth(0, 4); // below the mark: ignored
        reg.record_queue_depth(2, 1);
        reg.record_queue_depth(9, 3); // out of range: ignored
        assert_eq!(reg.queue_depth_hwm(), vec![7, 0, 1]);
        reg.shard_access_n(1, 40);
        assert_eq!(reg.shard_counts(), vec![0, 40, 0]);
        let snap = reg.snapshot();
        assert_eq!(snap.pipeline_queue_hwm, vec![7, 0, 1]);
    }

    #[test]
    fn gauge_overwrites_both_ways() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(500);
        assert_eq!(g.get(), 500);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_delta_is_windowed() {
        let h = LogHistogram::new();
        h.record(4);
        h.record(100);
        let early = h.snapshot();
        h.record(2);
        h.record(2);
        let late = h.snapshot();
        let d = late.delta(&early);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 4);
        assert_eq!(d.buckets[bucket_of(2)], 2);
        assert_eq!(d.buckets[bucket_of(100)], 0);
        // max stays absolute — the window's own max is unrecoverable.
        assert_eq!(d.max, 100);
        // Degenerate (swapped) pair saturates to zero instead of wrapping.
        let swapped = early.delta(&late);
        assert_eq!(swapped.count, 0);
        assert_eq!(swapped.sum, 0);
    }

    #[test]
    fn watchdog_fields_flow_to_renderings() {
        let reg = MetricsRegistry::new();
        reg.watchdog_checks.add(4);
        reg.watchdog_shadow_refs.add(123);
        reg.watchdog_drift_events.inc();
        reg.watchdog_mae_ppm.set(7700);
        let snap = reg.snapshot();
        assert_eq!(snap.watchdog_checks, 4);
        assert_eq!(snap.watchdog_mae_ppm, 7700);
        let info = snap.render_info();
        assert!(info.contains("# watchdog"));
        assert!(info.contains("mae_ppm:7700"));
        assert!(info.contains("drift_events:1"));
        let json = snap.to_json();
        assert!(json.contains(
            "\"watchdog\":{\"checks\":4,\"shadow_refs\":123,\"drift_events\":1,\"mae_ppm\":7700}"
        ));
    }

    #[test]
    fn snapshot_save_load_absorb_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.accesses.add(42);
        reg.hits.add(30);
        reg.chain_len.record(9);
        reg.chain_len.record(100);
        reg.watchdog_mae_ppm.set(1234);
        reg.init_shards(3);
        reg.shard_access_n(1, 17);
        reg.record_queue_depth(2, 5);
        reg.set_shard_resident(1, 9);
        reg.record_shard_depth(1, 33);
        reg.footprint_total_bytes.set(4096);
        reg.pipeline_router_parks.add(2);
        reg.pipeline_worker_parks.add(6);
        reg.pipeline_ring_wraps.add(11);
        reg.init_rings(2);
        reg.record_ring_depth(1, 8);
        let snap = reg.snapshot();

        let mut enc = crate::checkpoint::Enc::new();
        snap.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let loaded = MetricsSnapshot::load_state(&mut crate::checkpoint::Dec::new(&bytes)).unwrap();

        // Absorb into a fresh registry: counters continue where they were.
        let fresh = MetricsRegistry::new();
        fresh.absorb(&loaded);
        fresh.accesses.inc();
        let after = fresh.snapshot();
        assert_eq!(after.accesses, 43);
        assert_eq!(after.hits, 30);
        assert_eq!(after.chain_len.count, 2);
        assert_eq!(after.chain_len.sum, 109);
        assert_eq!(after.chain_len.max, 100);
        assert_eq!(after.watchdog_mae_ppm, 1234);
        assert_eq!(after.shard_accesses, vec![0, 17, 0]);
        assert_eq!(after.pipeline_queue_hwm, vec![0, 0, 5]);
        assert_eq!(after.shard_resident, vec![0, 9, 0]);
        assert_eq!(after.shard_depth_hwm, vec![0, 33, 0]);
        assert_eq!(after.footprint_total_bytes, 4096);
        assert_eq!(after.pipeline_router_parks, 2);
        assert_eq!(after.pipeline_worker_parks, 6);
        assert_eq!(after.pipeline_ring_wraps, 11);
        assert_eq!(after.pipeline_ring_hwm, vec![0, 8]);
    }

    #[test]
    fn ring_depth_high_water_marks() {
        let reg = MetricsRegistry::new();
        reg.record_ring_depth(0, 5); // no-op before init
        assert!(reg.ring_depth_hwm().is_empty());
        reg.init_rings(2);
        reg.init_rings(7); // ignored: first caller wins
        reg.record_ring_depth(0, 3);
        reg.record_ring_depth(0, 9);
        reg.record_ring_depth(0, 4); // below the mark: ignored
        reg.record_ring_depth(5, 1); // out of range: ignored
        assert_eq!(reg.ring_depth_hwm(), vec![9, 0]);
        let snap = reg.snapshot();
        assert_eq!(snap.pipeline_ring_hwm, vec![9, 0]);
        let info = snap.render_info();
        assert!(info.contains("ring_depth_hwm:9,0"));
        let json = snap.to_json();
        assert!(json.contains(
            "\"ring\":{\"wraps\":0,\"router_parks\":0,\"worker_parks\":0,\"depth_hwm\":[9,0]}"
        ));
    }

    #[test]
    fn footprint_publish_maps_labels_onto_gauges() {
        let reg = MetricsRegistry::new();
        reg.footprint_pipeline_bytes.set(100);
        let mut r = crate::footprint::FootprintReport::new();
        r.add("stack_entries", 10)
            .add("stack_index", 20)
            .add("stack_scratch", 5)
            .add("histogram", 7)
            .add("size_array", 3)
            .add("shadow_tree", 40)
            .add("shadow_index", 2);
        reg.publish_footprint(&r);
        assert_eq!(reg.footprint_stack_bytes.get(), 35);
        assert_eq!(reg.footprint_hist_bytes.get(), 7);
        assert_eq!(reg.footprint_sizes_bytes.get(), 3);
        assert_eq!(reg.footprint_shadow_bytes.get(), 42);
        assert_eq!(reg.footprint_total_bytes.get(), 87 + 100);
        // A partial publish (shadow only) must not stomp the other gauges.
        let mut shadow_only = crate::footprint::FootprintReport::new();
        shadow_only.add("shadow_olken", 50);
        reg.publish_footprint(&shadow_only);
        assert_eq!(reg.footprint_stack_bytes.get(), 35);
        assert_eq!(reg.footprint_shadow_bytes.get(), 50);
        assert_eq!(reg.footprint_total_bytes.get(), 95 + 100);
        let snap = reg.snapshot();
        let info = snap.render_info();
        assert!(info.contains("# memory"));
        assert!(info.contains("total_bytes:195"));
        let json = snap.to_json();
        assert!(json.contains("\"memory\":{\"stack_bytes\":35"));
        assert!(json.contains("\"total_bytes\":195"));
        assert!(json.contains("\"resident\":[]"));
    }

    #[test]
    fn info_and_json_renderings_contain_sections() {
        let reg = MetricsRegistry::new();
        reg.accesses.add(3);
        reg.hits.inc();
        reg.chain_len.record(5);
        reg.init_shards(2);
        reg.shard_access(0);
        let snap = reg.snapshot();
        let info = snap.render_info();
        for section in [
            "# model",
            "# updater",
            "# latency",
            "# shards",
            "# pipeline",
            "# watchdog",
            "# eviction",
        ] {
            assert!(info.contains(section), "{section} missing from\n{info}");
        }
        assert!(info.contains("accesses:3"));
        assert!(info.contains("chain_len_count:1"));
        assert!(info.contains("keys_hashed:0"));
        assert!(info.contains("queue_depth_hwm:0,0"));
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"schema\":\"krr-metrics-v1\""));
        assert!(json.contains("\"accesses\":3"));
        assert!(json.contains("\"pipeline\":{\"batches\":0"));
        assert!(json.contains("\"queue_depth_hwm\":[0,0]"));
        // Brace balance as a cheap well-formedness check.
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
    }

    #[test]
    fn percentile_interp_is_continuous_within_a_bucket() {
        let h = LogHistogram::new();
        // 100 values spread through the [64, 127] bucket.
        for i in 0..100u64 {
            h.record(64 + (i * 63) / 99);
        }
        let snap = h.snapshot();
        // The quantized estimate can only report the bucket bound...
        assert_eq!(snap.percentile(0.5), 127);
        // ...while the interpolated one moves with the rank.
        let p10 = snap.percentile_interp(0.10);
        let p50 = snap.percentile_interp(0.50);
        let p90 = snap.percentile_interp(0.90);
        assert!(p10 < p50 && p50 < p90, "{p10} {p50} {p90}");
        assert!((64.0..=127.0).contains(&p10));
        assert!((64.0..=127.0).contains(&p90));
        // Extremes behave.
        assert_eq!(LogHistogram::new().snapshot().percentile_interp(0.99), 0.0);
        assert!(snap.percentile_interp(1.0) <= snap.max as f64);
    }

    #[test]
    fn percentile_interp_caps_at_observed_max() {
        let h = LogHistogram::new();
        h.record(1000); // bucket [512, 1023], max 1000
        let snap = h.snapshot();
        assert!(snap.percentile_interp(0.99) <= 1000.0);
        assert!(snap.percentile_interp(0.01) >= 512.0);
    }
}
