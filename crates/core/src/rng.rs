//! Deterministic, fast pseudo-random number generation for the hot paths.
//!
//! The stack updaters draw one or more random numbers per reference, so the
//! generator must be cheap and allocation-free. We use `xoshiro256**`
//! (Blackman & Vigna) seeded through `splitmix64`, the combination the
//! reference implementation recommends. Determinism from a `u64` seed makes
//! every experiment in the bench harness reproducible.

/// `splitmix64` stream generator; used for seeding and as a statistical
/// mix function (see [`crate::hashing`]).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }
}

/// The `splitmix64` finalizer: a high-quality 64-bit mixing function.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `xoshiro256**` generator: the workhorse RNG for stack updates, cache
/// eviction sampling and workload synthesis.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed, expanding it with
    /// `splitmix64` as recommended by the xoshiro authors.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is invalid for xoshiro; splitmix64 cannot produce
        // four consecutive zeros, but guard anyway for clarity.
        debug_assert!(s.iter().any(|&w| w != 0));
        Self { s }
    }

    /// Exports the raw 256-bit generator state for checkpointing. Feeding
    /// it back through [`Xoshiro256::from_state`] resumes the stream at
    /// exactly the next output.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Restores a generator from a state captured by [`Xoshiro256::state`].
    ///
    /// # Panics
    ///
    /// Panics if `s` is all zeros (the one state xoshiro cannot leave, so
    /// it can never come from a genuine [`Xoshiro256::state`] export).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "all-zero state is invalid for xoshiro256**"
        );
        Self { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in the half-open interval `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 high bits -> exactly representable dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the half-open interval `(0, 1]`, as required by the
    /// backward stack update (Algorithm 2 draws from `(0, 1]` so that the
    /// inverse-CDF position is never zero).
    #[inline]
    pub fn unit_open_low(&mut self) -> f64 {
        1.0 - self.unit()
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift method with a rejection loop, so the
    /// result is exactly uniform.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            // threshold = 2^64 mod n
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vectors() {
        // Reference outputs for seed 0 from the public-domain splitmix64.c.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(43);
        let differs = (0..16).any(|_| a.next_u64() != c.next_u64());
        assert!(differs, "different seeds must yield different streams");
    }

    #[test]
    fn unit_stays_in_range_and_has_sane_mean() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn unit_open_low_excludes_zero() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..100_000 {
            let u = rng.unit_open_low();
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let n = 10u64;
        let draws = 200_000;
        let mut counts = [0u64; 10];
        for _ in 0..draws {
            counts[rng.below(n) as usize] += 1;
        }
        let expected = draws as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i} deviates by {dev}");
        }
    }

    #[test]
    fn below_handles_powers_of_two_and_one() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(rng.below(1), 0);
            assert!(rng.below(8) < 8);
            assert!(rng.below(u64::MAX) < u64::MAX);
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = Xoshiro256::seed_from_u64(99);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = Xoshiro256::from_state(a.state());
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256::from_state([0; 4]);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }
}
