//! Byte-level stack distances for variable object sizes (§4.4.1).
//!
//! A `sizeArray` keeps the exact cumulative byte size of the top `b^j` stack
//! positions for every power `b^j` up to the stack length. Because a KRR
//! update only moves objects along the swap chain, each boundary's sum
//! changes by exactly `size(referenced) − size(object crossing the
//! boundary)`, and the crossing object is the one at the largest chain
//! position at or below the boundary — an `O(log M + |chain|)` maintenance
//! cost. Byte distances for non-boundary positions are interpolated between
//! the two enclosing boundaries (Algorithm 3).

/// Logarithmic cumulative-size index over a KRR stack.
#[derive(Debug, Clone)]
pub struct SizeArray {
    base: u64,
    /// Boundary positions `1, b, b², …` (all ≤ `len`), ascending.
    bounds: Vec<u64>,
    /// `sums[j]` = exact total bytes of stack positions `1..=bounds[j]`.
    sums: Vec<u64>,
    total: u64,
    len: u64,
}

impl SizeArray {
    /// Creates an empty index with logarithmic base `base >= 2`.
    #[must_use]
    pub fn new(base: u64) -> Self {
        assert!(base >= 2, "sizeArray base must be >= 2");
        Self {
            base,
            bounds: Vec::new(),
            sums: Vec::new(),
            total: 0,
            len: 0,
        }
    }

    /// Logarithmic base in use.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total bytes of all objects on the stack.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Mirrored stack length.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True before the first insertion.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Registers a cold object appended at the stack end (new position
    /// `len+1`). Must be called *before* [`SizeArray::apply`] for the same
    /// reference so newly created boundaries include the object.
    pub fn on_insert(&mut self, size: u32) {
        self.len += 1;
        self.total += u64::from(size);
        let next_bound = match self.bounds.last() {
            None => 1,
            Some(&b) => b.saturating_mul(self.base),
        };
        if self.len == next_bound {
            // The whole stack fits within this boundary right now, so its
            // cumulative sum is the current total.
            self.bounds.push(next_bound);
            self.sums.push(self.total);
        }
    }

    /// Adjusts for a referenced object at position `phi` changing size from
    /// `old` to `new` (e.g. an overwriting SET). Must be called *before*
    /// [`SizeArray::apply`] for the same reference.
    pub fn on_resize(&mut self, phi: u64, old: u32, new: u32) {
        if old == new {
            return;
        }
        let delta = i64::from(new) - i64::from(old);
        self.total = add_signed(self.total, delta);
        // The object sits at phi, so every boundary covering phi shifts.
        let start = self.bounds.partition_point(|&b| b < phi);
        for s in &mut self.sums[start..] {
            *s = add_signed(*s, delta);
        }
    }

    /// Applies a stack update: the referenced object of size `ref_size`
    /// moved from `phi` to the top, and the pre-update occupant of each
    /// swap-chain position moved to the next chain position (the last one to
    /// `phi`). `chain`/`chain_sizes` come from
    /// [`crate::stack::KrrStack::last_chain`] and `last_chain_sizes`.
    pub fn apply(&mut self, chain: &[u64], chain_sizes: &[u32], phi: u64, ref_size: u32) {
        debug_assert_eq!(chain.len(), chain_sizes.len());
        if phi <= 1 {
            return;
        }
        debug_assert!(!chain.is_empty() && chain[0] == 1);
        let mut ci = 0usize;
        for (t, &b) in self.bounds.iter().enumerate() {
            if b >= phi {
                // Boundaries at or below-the-fold of φ see no net change:
                // both the referenced object and the chain moves stay inside.
                break;
            }
            // Largest chain position <= b; boundaries ascend so ci only grows.
            while ci + 1 < chain.len() && chain[ci + 1] <= b {
                ci += 1;
            }
            debug_assert!(chain[ci] <= b);
            let out_size = i64::from(chain_sizes[ci]);
            self.sums[t] = add_signed(self.sums[t], i64::from(ref_size) - out_size);
        }
    }

    /// Estimated heap footprint in bytes (logarithmically small, §4.4.1).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        (self.bounds.capacity() + self.sums.capacity()) * std::mem::size_of::<u64>()
    }

    /// Byte-level stack distance of the object at position `phi`
    /// (Algorithm 3): the exact boundary sum when `phi` is a boundary,
    /// otherwise a linear interpolation between the enclosing boundaries
    /// (or between the last boundary and the stack end).
    #[must_use]
    pub fn distance(&self, phi: u64) -> u64 {
        assert!(phi >= 1 && phi <= self.len, "position {phi} out of range");
        let idx = self.bounds.partition_point(|&b| b <= phi) - 1;
        let lo_pos = self.bounds[idx];
        let lo_sum = self.sums[idx];
        if lo_pos == phi {
            return lo_sum;
        }
        let (hi_pos, hi_sum) = if idx + 1 < self.bounds.len() {
            (self.bounds[idx + 1], self.sums[idx + 1])
        } else {
            (self.len, self.total)
        };
        debug_assert!(hi_pos > lo_pos && hi_sum >= lo_sum);
        let frac = (phi - lo_pos) as f64 / (hi_pos - lo_pos) as f64;
        lo_sum + ((hi_sum - lo_sum) as f64 * frac).round() as u64
    }

    /// Serializes the index into a `krr-ckpt-v1` payload (base, totals, and
    /// the boundary/sum arrays).
    pub fn save_state(&self, enc: &mut crate::checkpoint::Enc) {
        enc.put_u64(self.base)
            .put_u64(self.total)
            .put_u64(self.len)
            .put_u64(self.bounds.len() as u64);
        for (&b, &s) in self.bounds.iter().zip(&self.sums) {
            enc.put_u64(b).put_u64(s);
        }
    }

    /// Reconstructs an index from a [`SizeArray::save_state`] payload.
    pub fn load_state(dec: &mut crate::checkpoint::Dec<'_>) -> std::io::Result<Self> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let base = dec.u64()?;
        if base < 2 {
            return Err(bad("sizeArray base < 2 in checkpoint"));
        }
        let total = dec.u64()?;
        let len = dec.u64()?;
        let n = usize::try_from(dec.u64()?).map_err(|_| bad("sizeArray length overflow"))?;
        let mut bounds = Vec::with_capacity(n);
        let mut sums = Vec::with_capacity(n);
        for _ in 0..n {
            bounds.push(dec.u64()?);
            sums.push(dec.u64()?);
        }
        Ok(Self {
            base,
            bounds,
            sums,
            total,
            len,
        })
    }
}

impl crate::footprint::Footprint for SizeArray {
    fn footprint(&self) -> crate::footprint::FootprintReport {
        let mut r = crate::footprint::FootprintReport::new();
        r.add("size_array", self.memory_bytes());
        r
    }
}

#[inline]
fn add_signed(value: u64, delta: i64) -> u64 {
    let out = value as i64 + delta;
    debug_assert!(out >= 0, "cumulative size went negative");
    out as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;
    use crate::stack::KrrStack;
    use crate::update::UpdaterKind;

    /// Drives a stack + sizeArray together and verifies that every boundary
    /// sum stays *exactly* equal to the naive prefix sum over the stack.
    fn check_exactness(base: u64, updater: UpdaterKind, keys: u64, ops: usize) {
        let mut stack = KrrStack::new(4.0, updater, 99);
        let mut sa = SizeArray::new(base);
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..ops {
            let key = rng.below(keys);
            let size = (rng.below(500) + 1) as u32;
            match stack.position_of(key) {
                Some(phi) => {
                    let old = stack.entry_at(phi).unwrap().size;
                    sa.on_resize(phi, old, size);
                    let acc = stack.access(key, size);
                    sa.apply(
                        stack.last_chain(),
                        stack.last_chain_sizes(),
                        acc.phi(),
                        size,
                    );
                }
                None => {
                    let acc = stack.access(key, size);
                    sa.on_insert(size);
                    sa.apply(
                        stack.last_chain(),
                        stack.last_chain_sizes(),
                        acc.phi(),
                        size,
                    );
                }
            }
        }
        // Naive verification of every boundary.
        let sizes: Vec<u64> = stack.iter().map(|e| u64::from(e.size)).collect();
        let mut bound = 1u64;
        let mut t = 0usize;
        while bound <= sizes.len() as u64 {
            let naive: u64 = sizes[..bound as usize].iter().sum();
            assert_eq!(
                sa.distance(bound),
                naive,
                "boundary {bound} (base {base}, {updater:?})"
            );
            t += 1;
            bound = base.pow(t as u32);
        }
        let total: u64 = sizes.iter().sum();
        assert_eq!(sa.total_bytes(), total);
        assert_eq!(sa.len(), sizes.len() as u64);
    }

    #[test]
    fn boundary_sums_are_exact_base2() {
        for updater in UpdaterKind::ALL {
            check_exactness(2, updater, 300, 5_000);
        }
    }

    #[test]
    fn boundary_sums_are_exact_other_bases() {
        check_exactness(4, UpdaterKind::Backward, 500, 8_000);
        check_exactness(8, UpdaterKind::Backward, 500, 8_000);
    }

    #[test]
    fn interpolation_brackets_true_prefix_sum_for_uniform_sizes() {
        // With uniform sizes the interpolation is exact everywhere.
        let mut stack = KrrStack::new(3.0, UpdaterKind::Backward, 1);
        let mut sa = SizeArray::new(2);
        for key in 0..100u64 {
            let acc = stack.access(key, 10);
            sa.on_insert(10);
            sa.apply(stack.last_chain(), stack.last_chain_sizes(), acc.phi(), 10);
        }
        for phi in 1..=100u64 {
            assert_eq!(sa.distance(phi), phi * 10, "phi={phi}");
        }
    }

    #[test]
    fn paper_figure_4_3_example() {
        // Five objects, total size 20, D at position 4, byte distance 11 via
        // exact sums (the figure's point: uniform assumption says 16).
        // Sizes chosen to reproduce: A=2, B=4, C=1, D=4, E=9 -> A+B+C+D = 11.
        let sizes = [2u32, 4, 1, 4, 9];
        let mut sa = SizeArray::new(2);
        for &s in &sizes {
            sa.on_insert(s);
        }
        // No updates yet: stack order = insertion order only if no chain was
        // applied; sums at boundaries 1,2,4 are prefix sums of insertion.
        assert_eq!(sa.distance(1), 2);
        assert_eq!(sa.distance(2), 6);
        assert_eq!(sa.distance(4), 11);
        // Uniform-size estimate would be 4 * (20/5) = 16 ≠ 11.
        let uniform_estimate = 4 * (20 / 5);
        assert_ne!(uniform_estimate as u64, sa.distance(4));
    }

    #[test]
    fn resize_propagates_to_covering_boundaries() {
        let mut sa = SizeArray::new(2);
        for _ in 0..8 {
            sa.on_insert(100);
        }
        assert_eq!(sa.distance(4), 400);
        sa.on_resize(3, 100, 150);
        assert_eq!(sa.distance(2), 200, "boundary below phi unchanged");
        assert_eq!(sa.distance(4), 450);
        assert_eq!(sa.distance(8), 850);
        assert_eq!(sa.total_bytes(), 850);
    }

    #[test]
    fn distance_at_stack_end_is_total() {
        let mut sa = SizeArray::new(2);
        for s in [5u32, 7, 11] {
            sa.on_insert(s);
        }
        assert_eq!(sa.distance(3), 23); // interpolates between bound 2 and len 3
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn distance_beyond_len_panics() {
        let mut sa = SizeArray::new(2);
        sa.on_insert(1);
        let _ = sa.distance(2);
    }
}
