//! Always-on self-profiler: per-thread phase-attribution rings.
//!
//! A conventional sampling profiler interrupts threads from the outside;
//! that needs signals or OS timers and is never dependency-free. This
//! profiler inverts the direction: the pipeline's router and workers, and
//! the mini-Redis connection threads, already reach natural *batch
//! boundaries* thousands of times per second — so each thread samples
//! **itself** there, attributing the nanoseconds since the previous
//! boundary to one of a fixed set of phase buckets
//! ([`ProfPhase`]: `hash` / `filter` / `update` / `ring_wait` / `serve` /
//! `other`). Most samples arrive for free, piggybacked on the flight
//! recorder's span tags ([`crate::obs::ThreadRecorder::record`] forwards
//! every span to its thread's profile); the router additionally
//! self-samples its hashing stretch explicitly, which no span covers.
//!
//! Each registered thread owns:
//!
//! * cumulative per-bucket totals (`ns` + sample counts, `Relaxed`
//!   atomics — readable at any time without stopping the thread), and
//! * a bounded ring of recent samples (single writer, overwrite-oldest;
//!   losses are counted, never silent — `/healthz` surfaces them).
//!
//! [`PhaseProfiler::folded`] renders the totals as collapsed-stack folded
//! text (`krr;<thread>;<bucket> <ns>`), the line format every flamegraph
//! tool ingests directly; the expo server serves it at `/profile`.
//! Sampling is gated by one `Relaxed` flag so a recorder-only baseline
//! (profiling off) costs a single branch — the `BENCH_doctor.json` gate
//! holds the enabled path under 3 % tail overhead.
//!
//! ```
//! use std::sync::Arc;
//! use krr_core::profiler::{PhaseProfiler, ProfPhase};
//!
//! let prof = Arc::new(PhaseProfiler::new());
//! let t = prof.register("worker-0");
//! t.sample(ProfPhase::Update, 1_200);
//! t.sample(ProfPhase::RingWait, 300);
//! let folded = prof.folded();
//! assert!(folded.contains("krr;worker-0;update 1200"));
//! assert!(folded.contains("krr;worker-0;ring_wait 300"));
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::obs::Phase;

/// Number of attribution buckets (the [`ProfPhase`] variants).
pub const PROF_BUCKETS: usize = 6;

/// Default per-thread sample-ring capacity.
pub const PROFILE_RING_CAPACITY: usize = 1024;

/// One phase-attribution bucket. Coarser than [`Phase`] on purpose: a
/// flamegraph wants "where do the cycles go" in a handful of stable
/// categories, not one lane per instrumentation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ProfPhase {
    /// Key hashing + routing in the router (`hash_keys8` stretches).
    Hash = 0,
    /// Router dispatch/filter work: batch hand-off, shard bookkeeping.
    Filter = 1,
    /// Model work in a worker: spatial filter + stack updates + merge.
    Update = 2,
    /// Waiting on a ring: router blocked on a full ring, worker on empty.
    RingWait = 3,
    /// Mini-Redis command handling on a connection thread.
    Serve = 4,
    /// Everything else (stats ticks, watchdog checks, CSV input).
    Other = 5,
}

impl ProfPhase {
    /// Stable bucket name used in folded output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProfPhase::Hash => "hash",
            ProfPhase::Filter => "filter",
            ProfPhase::Update => "update",
            ProfPhase::RingWait => "ring_wait",
            ProfPhase::Serve => "serve",
            ProfPhase::Other => "other",
        }
    }

    /// The bucket a flight-recorder span tag attributes to.
    #[must_use]
    pub fn from_span(phase: Phase) -> ProfPhase {
        match phase {
            Phase::RouterBatch => ProfPhase::Filter,
            Phase::RouterStall | Phase::RingWait => ProfPhase::RingWait,
            Phase::WorkerBatch | Phase::Merge | Phase::StackUpdate | Phase::DeepUpdate => {
                ProfPhase::Update
            }
            Phase::Command => ProfPhase::Serve,
            Phase::CsvRead | Phase::StatsTick | Phase::WatchdogCheck => ProfPhase::Other,
        }
    }

    fn from_id(id: u64) -> Option<ProfPhase> {
        Some(match id {
            0 => ProfPhase::Hash,
            1 => ProfPhase::Filter,
            2 => ProfPhase::Update,
            3 => ProfPhase::RingWait,
            4 => ProfPhase::Serve,
            5 => ProfPhase::Other,
            _ => return None,
        })
    }

    /// All buckets, in id order.
    #[must_use]
    pub fn all() -> [ProfPhase; PROF_BUCKETS] {
        [
            ProfPhase::Hash,
            ProfPhase::Filter,
            ProfPhase::Update,
            ProfPhase::RingWait,
            ProfPhase::Serve,
            ProfPhase::Other,
        ]
    }
}

/// One thread's profile state: totals plus a recent-sample ring.
#[derive(Debug)]
struct ThreadProf {
    label: String,
    ns: [AtomicU64; PROF_BUCKETS],
    samples: [AtomicU64; PROF_BUCKETS],
    /// Samples ever written (monotone; slot = cursor % capacity).
    cursor: AtomicU64,
    /// Packed samples: `(ns << 3) | bucket_id` (ns saturates at 2^61-1,
    /// ~73 years — durations never get there).
    slots: Box<[AtomicU64]>,
}

/// Read-only totals for one registered thread, as returned by
/// [`PhaseProfiler::thread_totals`].
#[derive(Debug, Clone)]
pub struct ThreadProfile {
    /// Registration label (thread name).
    pub label: String,
    /// Cumulative nanoseconds per bucket, indexed by `ProfPhase as usize`.
    pub ns: [u64; PROF_BUCKETS],
    /// Sample counts per bucket.
    pub samples: [u64; PROF_BUCKETS],
    /// Samples lost to ring overwrite on this thread.
    pub dropped: u64,
}

/// The shared profiler: a registry of per-thread profiles plus the global
/// enable flag.
#[derive(Debug)]
pub struct PhaseProfiler {
    enabled: AtomicBool,
    capacity: usize,
    threads: Mutex<Vec<Arc<ThreadProf>>>,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        Self::with_capacity(PROFILE_RING_CAPACITY)
    }
}

impl PhaseProfiler {
    /// Profiler with the default per-thread sample-ring capacity, enabled.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Profiler whose per-thread rings hold `capacity` samples (rounded up
    /// to a power of two, minimum 16), enabled.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(true),
            capacity: capacity.max(16).next_power_of_two(),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Turns sampling on or off. Off, [`ProfilerHandle::sample`] is one
    /// `Relaxed` load and a branch — the recorder-only baseline the
    /// overhead gate compares against.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether sampling is currently enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Registers a thread and returns its sampling handle. Registration
    /// takes a lock (rare); sampling never does.
    #[must_use]
    pub fn register(self: &Arc<Self>, label: &str) -> ProfilerHandle {
        let prof = Arc::new(ThreadProf {
            label: label.to_string(),
            ns: std::array::from_fn(|_| AtomicU64::new(0)),
            samples: std::array::from_fn(|_| AtomicU64::new(0)),
            cursor: AtomicU64::new(0),
            slots: (0..self.capacity).map(|_| AtomicU64::new(0)).collect(),
        });
        self.threads
            .lock()
            .expect("profiler poisoned")
            .push(Arc::clone(&prof));
        ProfilerHandle {
            profiler: Arc::clone(self),
            prof,
        }
    }

    /// Per-thread totals, in registration order.
    #[must_use]
    pub fn thread_totals(&self) -> Vec<ThreadProfile> {
        let threads = self.threads.lock().expect("profiler poisoned");
        threads
            .iter()
            .map(|t| ThreadProfile {
                label: t.label.clone(),
                ns: std::array::from_fn(|i| t.ns[i].load(Ordering::Relaxed)),
                samples: std::array::from_fn(|i| t.samples[i].load(Ordering::Relaxed)),
                dropped: t
                    .cursor
                    .load(Ordering::Relaxed)
                    .saturating_sub(t.slots.len() as u64),
            })
            .collect()
    }

    /// Total samples lost to ring overwrite across all threads (the
    /// `/healthz` loss counter).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.thread_totals().iter().map(|t| t.dropped).sum()
    }

    /// Total samples recorded across all threads and buckets.
    #[must_use]
    pub fn samples_total(&self) -> u64 {
        self.thread_totals()
            .iter()
            .map(|t| t.samples.iter().sum::<u64>())
            .sum()
    }

    /// Collapsed-stack folded text: one `krr;<thread>;<bucket> <ns>` line
    /// per (thread label, bucket) with at least one sample, repeat
    /// registrations of the same label merged. Feed straight into
    /// `flamegraph.pl` / speedscope / inferno.
    #[must_use]
    pub fn folded(&self) -> String {
        use std::collections::BTreeMap;
        use std::fmt::Write as _;
        let mut merged: BTreeMap<(String, usize), u64> = BTreeMap::new();
        for t in self.thread_totals() {
            for (i, &ns) in t.ns.iter().enumerate() {
                if t.samples[i] > 0 {
                    *merged.entry((t.label.clone(), i)).or_insert(0) += ns;
                }
            }
        }
        let mut s = String::new();
        for ((label, bucket), ns) in merged {
            let name = ProfPhase::from_id(bucket as u64).expect("bucket id in range");
            let _ = writeln!(s, "krr;{label};{} {ns}", name.name());
        }
        s
    }

    /// Most recent ring samples of every thread, oldest first per thread:
    /// `(label, bucket, ns)` triples. Mainly for tests and ad-hoc
    /// inspection; the folded view is the primary export.
    #[must_use]
    pub fn recent_samples(&self) -> Vec<(String, ProfPhase, u64)> {
        let threads = self.threads.lock().expect("profiler poisoned");
        let mut out = Vec::new();
        for t in threads.iter() {
            let cap = t.slots.len() as u64;
            let end = t.cursor.load(Ordering::Acquire);
            let start = end.saturating_sub(cap);
            for i in start..end {
                let w = t.slots[(i % cap) as usize].load(Ordering::Relaxed);
                if let Some(p) = ProfPhase::from_id(w & 0x7) {
                    out.push((t.label.clone(), p, w >> 3));
                }
            }
        }
        out
    }
}

/// One thread's handle into a [`PhaseProfiler`]. Sampling is a handful of
/// `Relaxed` atomic adds — no locks, no allocation. `Send` but not
/// `Clone`: one sample ring has one writer.
#[derive(Debug)]
pub struct ProfilerHandle {
    profiler: Arc<PhaseProfiler>,
    prof: Arc<ThreadProf>,
}

impl ProfilerHandle {
    /// Attributes `ns` nanoseconds to `phase` on this thread. A no-op
    /// (one flag load) while the profiler is disabled.
    #[inline]
    pub fn sample(&self, phase: ProfPhase, ns: u64) {
        if !self.profiler.enabled.load(Ordering::Relaxed) {
            return;
        }
        let b = phase as usize;
        self.prof.ns[b].fetch_add(ns, Ordering::Relaxed);
        self.prof.samples[b].fetch_add(1, Ordering::Relaxed);
        let cap = self.prof.slots.len() as u64;
        let i = self.prof.cursor.load(Ordering::Relaxed);
        let packed = (ns.min((1 << 61) - 1) << 3) | phase as u64;
        self.prof.slots[(i % cap) as usize].store(packed, Ordering::Relaxed);
        self.prof.cursor.store(i + 1, Ordering::Release);
    }

    /// The profiler this handle samples into.
    #[must_use]
    pub fn profiler(&self) -> &Arc<PhaseProfiler> {
        &self.profiler
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_folded_accumulate() {
        let prof = Arc::new(PhaseProfiler::new());
        let a = prof.register("router");
        let b = prof.register("worker-0");
        a.sample(ProfPhase::Hash, 100);
        a.sample(ProfPhase::Hash, 50);
        a.sample(ProfPhase::RingWait, 10);
        b.sample(ProfPhase::Update, 400);
        let folded = prof.folded();
        assert!(folded.contains("krr;router;hash 150\n"), "{folded}");
        assert!(folded.contains("krr;router;ring_wait 10\n"), "{folded}");
        assert!(folded.contains("krr;worker-0;update 400\n"), "{folded}");
        assert!(!folded.contains("serve"), "unsampled buckets are omitted");
        assert_eq!(prof.samples_total(), 4);
        assert_eq!(prof.dropped(), 0);
    }

    #[test]
    fn same_label_registrations_merge_in_folded() {
        let prof = Arc::new(PhaseProfiler::new());
        let a = prof.register("router");
        a.sample(ProfPhase::Hash, 5);
        drop(a);
        let b = prof.register("router");
        b.sample(ProfPhase::Hash, 7);
        assert!(prof.folded().contains("krr;router;hash 12\n"));
        // thread_totals keeps them separate (per-registration rows).
        assert_eq!(prof.thread_totals().len(), 2);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let prof = Arc::new(PhaseProfiler::with_capacity(16));
        let t = prof.register("w");
        for i in 0..40 {
            t.sample(ProfPhase::Update, i);
        }
        assert_eq!(prof.dropped(), 24);
        let recent = prof.recent_samples();
        assert_eq!(recent.len(), 16);
        assert_eq!(recent.first().unwrap().2, 24);
        assert_eq!(recent.last().unwrap().2, 39);
        // Totals are unaffected by ring loss.
        assert_eq!(
            prof.thread_totals()[0].samples[ProfPhase::Update as usize],
            40
        );
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let prof = Arc::new(PhaseProfiler::new());
        let t = prof.register("w");
        prof.set_enabled(false);
        t.sample(ProfPhase::Serve, 99);
        assert_eq!(prof.samples_total(), 0);
        assert!(prof.folded().is_empty());
        prof.set_enabled(true);
        t.sample(ProfPhase::Serve, 99);
        assert_eq!(prof.samples_total(), 1);
    }

    #[test]
    fn span_phase_mapping_covers_every_phase() {
        for p in [
            Phase::RouterBatch,
            Phase::RouterStall,
            Phase::WorkerBatch,
            Phase::Merge,
            Phase::StackUpdate,
            Phase::DeepUpdate,
            Phase::CsvRead,
            Phase::Command,
            Phase::StatsTick,
            Phase::WatchdogCheck,
            Phase::RingWait,
        ] {
            // Every span phase maps to some bucket without panicking.
            let _ = ProfPhase::from_span(p);
        }
        assert_eq!(ProfPhase::from_span(Phase::Command), ProfPhase::Serve);
        assert_eq!(ProfPhase::from_span(Phase::RingWait), ProfPhase::RingWait);
    }
}
