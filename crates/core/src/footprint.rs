//! Deep memory-footprint accounting (§5.6–5.7 space costs).
//!
//! The paper ranks MRC techniques by *space* as much as time: KRR's stack
//! plus key index is orders of magnitude smaller than an unsampled Olken
//! tree and comparable to SHARDS at the same rate. This module turns that
//! claim into a measurable number: every profiling structure implements
//! [`Footprint`], reporting its estimated heap bytes with a per-field
//! breakdown, and the totals are published as gauges in `krr-metrics-v1`
//! (and scraped from `/metrics`, see [`crate::expo`]).
//!
//! Footprints are *models*, not allocator truth: they count the dominant
//! heap blocks (`Vec` capacities, hash-table slots at hashbrown's 8/7
//! slack, tree slabs) and deliberately ignore constant-size struct
//! headers. For allocator ground truth, enable the `alloc-stats` feature
//! (see [`crate::heap`]) and compare the live-heap gauge.
//!
//! ```
//! use krr_core::footprint::Footprint;
//! use krr_core::{KrrConfig, KrrModel};
//!
//! let mut m = KrrModel::new(KrrConfig::new(5.0));
//! for key in 0..1000u64 {
//!     m.access_key(key);
//! }
//! let report = m.footprint();
//! assert_eq!(report.total(), m.deep_bytes());
//! assert!(report.get("stack_entries") > 0);
//! ```

/// A per-field breakdown of a structure's deep heap footprint.
///
/// Parts are `(label, bytes)` pairs; merging reports (e.g. summing one
/// report per shard) accumulates bytes by label, so an aggregate keeps the
/// same breakdown shape as a single instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FootprintReport {
    parts: Vec<(&'static str, usize)>,
}

impl FootprintReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `bytes` under `label`, accumulating if the label exists.
    pub fn add(&mut self, label: &'static str, bytes: usize) -> &mut Self {
        match self.parts.iter_mut().find(|(l, _)| *l == label) {
            Some((_, b)) => *b += bytes,
            None => self.parts.push((label, bytes)),
        }
        self
    }

    /// Accumulates every part of `other` into this report (label-wise).
    pub fn merge(&mut self, other: &FootprintReport) -> &mut Self {
        for &(label, bytes) in &other.parts {
            self.add(label, bytes);
        }
        self
    }

    /// The `(label, bytes)` parts in insertion order.
    #[must_use]
    pub fn parts(&self) -> &[(&'static str, usize)] {
        &self.parts
    }

    /// Bytes recorded under `label` (0 if absent).
    #[must_use]
    pub fn get(&self, label: &str) -> usize {
        self.parts
            .iter()
            .find(|(l, _)| *l == label)
            .map_or(0, |&(_, b)| b)
    }

    /// Sum of all parts.
    #[must_use]
    pub fn total(&self) -> usize {
        self.parts.iter().map(|&(_, b)| b).sum()
    }
}

/// Deep heap footprint of a profiling structure.
///
/// Implementations estimate the bytes of every owned heap block — backing
/// arrays at their *capacity*, hash tables at their slot count, tree slabs
/// including free-list slack — so the number tracks what the allocator
/// actually holds, not just live entries.
pub trait Footprint {
    /// The footprint with a per-field breakdown.
    fn footprint(&self) -> FootprintReport;

    /// Total estimated heap bytes ([`FootprintReport::total`] of
    /// [`Footprint::footprint`]).
    fn deep_bytes(&self) -> usize {
        self.footprint().total()
    }
}

/// Estimated heap bytes of a hashbrown-backed `std` hash map/set holding
/// entries of `entry_bytes` at the given capacity: one control byte per
/// slot and ~8/7 slot slack over capacity — the same model
/// `KrrStack::memory_bytes` has used since PR 0.
#[must_use]
pub fn map_bytes(capacity: usize, entry_bytes: usize) -> usize {
    capacity * (entry_bytes + 1) * 8 / 7
}

/// Estimated heap bytes of a `BTreeMap` with `len` entries of
/// `entry_bytes`: B-tree nodes hold up to 11 entries and run ~70% full, so
/// per-entry cost is modeled as the entry plus ~16 bytes of node overhead
/// at 10/7 slack. Coarse by design — `BTreeMap` appears only in the
/// SHARDS_max baseline's eviction index.
#[must_use]
pub fn btree_bytes(len: usize, entry_bytes: usize) -> usize {
    len * (entry_bytes + 16) * 10 / 7
}

/// Heap bytes of a `Vec`'s backing buffer at its current capacity.
#[must_use]
pub fn vec_bytes<T>(v: &[T]) -> usize {
    // Callers pass `&vec` (auto-deref); a slice's len equals the vec's len,
    // so take capacity explicitly where it matters — this helper is for
    // scratch buffers where len == capacity is the common case.
    std::mem::size_of_val(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_by_label() {
        let mut r = FootprintReport::new();
        r.add("a", 10).add("b", 5).add("a", 3);
        assert_eq!(r.get("a"), 13);
        assert_eq!(r.get("b"), 5);
        assert_eq!(r.get("c"), 0);
        assert_eq!(r.total(), 18);
        assert_eq!(r.parts().len(), 2);
    }

    #[test]
    fn merge_sums_label_wise() {
        let mut a = FootprintReport::new();
        a.add("x", 1).add("y", 2);
        let mut b = FootprintReport::new();
        b.add("y", 10).add("z", 20);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 12);
        assert_eq!(a.get("z"), 20);
        assert_eq!(a.total(), 33);
    }

    #[test]
    fn map_model_matches_stack_seed_formula() {
        // The historical KrrStack formula, kept bit-for-bit.
        let cap = 1000usize;
        let entry = std::mem::size_of::<(u64, u32)>();
        assert_eq!(map_bytes(cap, entry), cap * (entry + 1) * 8 / 7);
    }
}
